"""Golden-stats recorder for the hot-path refactor safety net.

The optimizations in the simulator hot path (decode-time metadata,
int-opcode dispatch, wakeup-driven scheduling) must be *behaviour
preserving*: the refactored core has to reproduce the exact same
``CoreStats``, cache hit counts, transient-window depths, and trial
payloads as the pre-refactor implementation.  This module defines what
"the same" means:

* :func:`core_record` — one workload × controller run distilled to its
  stats, per-level cache counters, transient-window max, and a hash of
  the architectural end state;
* :func:`preset_records` — every trial of a quick-tier harness preset
  executed through :func:`repro.harness.runner.run_trial`, keyed by the
  trial's spec hash.

``python -m tests.golden.recorder`` regenerates
``tests/golden/golden_stats.json``.  The fixture committed in this repo
was recorded from the pre-refactor implementation; regenerate it only
when a behaviour change is *intended* (and say so in the commit).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

from repro.harness import presets as preset_registry
from repro.harness.registry import get_workload, make_controller
from repro.harness.runner import run_trial
from repro.harness.spec import canonical_json

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_stats.json")

#: Quick-tier Fig. 7 kernels — the workloads the differential cores run.
CORE_WORKLOADS = ("zeusmp", "mcf", "gems")

#: Every runahead controller, including the defenses (which are
#: controllers too): the refactor must preserve all of them.
CORE_CONTROLLERS = ("none", "original", "precise", "vector", "secure",
                    "branch-skip")

#: Quick-tier presets to snapshot end to end (trial payload equality).
PRESET_NAMES = ("table1", "fig4", "fig7", "fig9", "fig10", "fig11",
                "fig12", "sec43", "sec6", "ablations")


def _arch_state_digest(core) -> str:
    """Stable hash of the architectural end state (registers + memory)."""
    regs, memory = core.architectural_state()
    payload = repr((regs, sorted(memory.items())))
    return hashlib.sha256(payload.encode()).hexdigest()


def distill_core(core) -> dict:
    """Distill everything observable about a finished core into a record."""
    hier = core.hierarchy
    caches = {}
    for label, cache in (("l1i", hier.l1i), ("l1d", hier.l1d),
                         ("l2", hier.l2), ("l3", hier.l3)):
        caches[label] = dataclasses.asdict(cache.stats)
    return {
        "stats": dataclasses.asdict(core.stats),
        "ipc": repr(core.stats.ipc),
        "transient_window_max": core.transient_window_max,
        "caches": caches,
        "hierarchy": dataclasses.asdict(hier.stats),
        "branch": dataclasses.asdict(core.branch_unit.stats),
        "arch_state": _arch_state_digest(core),
    }


def core_record(workload_name: str, controller_name: str) -> dict:
    """Run one workload on one controller; distill everything observable."""
    workload = get_workload(workload_name)
    controller = make_controller(controller_name)
    return distill_core(workload.run(runahead=controller))


def all_core_records() -> dict:
    return {f"{workload}/{controller}": core_record(workload, controller)
            for workload in CORE_WORKLOADS
            for controller in CORE_CONTROLLERS}


def preset_records(name: str) -> dict:
    """Run every quick-tier trial of a preset; key by trial spec hash."""
    preset = preset_registry.get(name)
    sweep = preset.build(quick=True)
    records = {}
    for trial in sweep.trials:
        key = f"{trial.label}#{trial.spec_hash()[:12]}"
        records[key] = run_trial(trial)
    return records


def all_preset_records() -> dict:
    return {name: preset_records(name) for name in PRESET_NAMES}


def build_golden() -> dict:
    return {"cores": all_core_records(), "presets": all_preset_records()}


def load_golden() -> dict:
    with GOLDEN_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def normalize(value):
    """Round-trip through canonical JSON so float/int representations
    compare the way they are stored in the fixture."""
    return json.loads(canonical_json(value))


def main() -> int:
    golden = build_golden()
    GOLDEN_PATH.write_text(json.dumps(golden, sort_keys=True, indent=1)
                           + "\n", encoding="utf-8")
    n_presets = sum(len(v) for v in golden["presets"].values())
    print(f"wrote {GOLDEN_PATH}: {len(golden['cores'])} core records, "
          f"{n_presets} preset trials")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Property-test shim over the seeded gadget generator.

The property: for every generated program and defense, the static
checker and the cycle simulator must satisfy the cross-check contract
(:mod:`repro.verify.crosscheck`).  This shim runs that property over a
seed range and, when a seed fails, *shrinks* it — the generator draws
every knob through an overridable parameter, so shrinking re-generates
the same seed with knobs forced toward their simplest values one at a
time, keeping an override only while the disagreement persists.  The
minimal failing program is dumped as a commented ``.isa`` artifact next
to this file so the failure is reproducible without the generator.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verify.crosscheck import CrossCheckResult, cross_check_case
from repro.verify.gen import generate_case
from repro.verify.targets import GadgetCase

ARTIFACT_DIR = pathlib.Path(__file__).with_name("artifacts")

#: Per-family shrink moves, in application order: (knob, simplest value).
#: A move is kept only if the failure survives it, so the result is a
#: locally-minimal knob assignment for the same seed.
SHRINK_MOVES: Dict[str, Tuple[Tuple[str, object], ...]] = {
    "spec": (("padding", 0), ("hops", 0), ("touch_secret", False),
             ("malicious", False)),
    "stale": (("hops", 0), ("plant_secret", False)),
    "straight": (("ops", 2),),
}


@dataclass
class PropertyFailure:
    seed: int
    family: str
    overrides: Dict[str, object]
    case: GadgetCase
    disagreements: List[str]
    artifact: Optional[pathlib.Path]

    def __str__(self) -> str:
        lines = [f"seed={self.seed} family={self.family} "
                 f"minimal overrides={self.overrides or '{}'}"]
        lines += [f"  {d}" for d in self.disagreements]
        if self.artifact:
            lines.append(f"  minimal program: {self.artifact}")
        return "\n".join(lines)


def family_of(seed: int, family: Optional[str] = None) -> str:
    return generate_case(seed, family=family).name.split(":")[1]


def check_seed(seed: int, family: Optional[str] = None,
               defenses: Sequence[str] = ("original",),
               **overrides) -> Tuple[GadgetCase, CrossCheckResult]:
    """Cross-check one generated program; returns (case, result)."""
    case = generate_case(seed, family=family, **overrides)
    return case, cross_check_case(case, defenses=defenses)


def shrink(seed: int, family: str,
           fails: Callable[[GadgetCase], bool]
           ) -> Tuple[Dict[str, object], GadgetCase]:
    """Greedy knob minimization: force each knob simple while ``fails``
    still holds.  Returns the kept overrides and the minimal case."""
    overrides: Dict[str, object] = {}
    for knob, simplest in SHRINK_MOVES[family]:
        candidate = dict(overrides)
        candidate[knob] = simplest
        if fails(generate_case(seed, family=family, **candidate)):
            overrides = candidate
    return overrides, generate_case(seed, family=family, **overrides)


def dump_artifact(case: GadgetCase, seed: int,
                  overrides: Dict[str, object],
                  disagreements: Sequence[str]) -> pathlib.Path:
    """Write the minimal failing program as a commented .isa file."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / f"minimal-{case.name.replace(':', '-')}.isa"
    header = [f"; minimal failing gadget {case.name}",
              f"; regenerate: generate_case({seed}, "
              f"family={case.name.split(':')[1]!r}, "
              + ", ".join(f"{k}={v!r}" for k, v in overrides.items())
              + ")",
              f"; knobs: {case.notes}"]
    header += [f"; disagreement: {d}" for d in disagreements]
    body = "\n".join(case.program.disassemble())
    path.write_text("\n".join(header) + "\n\n" + body + "\n",
                    encoding="utf-8")
    return path


def run_property(seeds: Sequence[int],
                 defenses: Sequence[str] = ("original",),
                 family: Optional[str] = None,
                 artifacts: bool = True) -> List[PropertyFailure]:
    """Cross-check every seed; shrink and dump whatever fails."""
    failures: List[PropertyFailure] = []
    for seed in seeds:
        case, result = check_seed(seed, family=family, defenses=defenses)
        if result.ok:
            continue
        fam = case.name.split(":")[1]

        def fails(candidate: GadgetCase) -> bool:
            return not cross_check_case(candidate,
                                        defenses=defenses).ok

        overrides, minimal = shrink(seed, fam, fails)
        final = cross_check_case(minimal, defenses=defenses)
        artifact = dump_artifact(minimal, seed, overrides,
                                 final.disagreements) if artifacts \
            else None
        failures.append(PropertyFailure(
            seed=seed, family=fam, overrides=overrides, case=minimal,
            disagreements=list(final.disagreements), artifact=artifact))
    return failures

"""Golden ``LeakReport`` differential tests for the static checker.

``tests/verify/golden_reports.json`` pins the checker's full verdict —
report set, window attribution, taint chains, exploration counters —
for every registered attack target under the default defense sweep.
A mismatch means the checker's semantics changed; regenerate with
``python -m tests.verify.recorder`` only when that change is intended.
"""

from __future__ import annotations

import pytest

from tests.verify import recorder
from repro.verify.targets import target_names

GOLDEN = recorder.load_golden()

CELL_KEYS = sorted(GOLDEN)


def test_fixture_covers_expected_grid():
    """Every registered target × recorded defense has a golden cell."""
    expected = {f"{target}/{defense}"
                for target in target_names()
                for defense in recorder.DEFENSES_RECORDED}
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("key", CELL_KEYS)
def test_reports_match_golden(key):
    target, defense = key.rsplit("/", 1)
    fresh = recorder.normalize(
        recorder.verify_report_record(target, defense))
    want = GOLDEN[key]
    assert fresh.keys() == want.keys()
    for field in want:
        assert fresh[field] == want[field], \
            f"{key}: {field} diverged from the recorded checker verdict"

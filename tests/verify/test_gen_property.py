"""Property test: generated gadgets obey the cross-check contract.

Small-N in the tier-1 suite (the full 200-seed sweep is the
``verify_cross_check`` preset); the exercised seed range is printed so
a CI failure names exactly which programs ran.  On failure the shim
shrinks the seed to a minimal knob assignment and dumps the program as
``tests/verify/artifacts/minimal-*.isa`` — the assertion message
carries the path.
"""

from __future__ import annotations

import pytest

from tests.verify import gen as shim
from repro.verify.gen import FAMILIES, gen_target, generate_case

PROPERTY_SEEDS = range(0, 8)
PROPERTY_DEFENSES = ("original", "branch-skip")


@pytest.mark.slow
def test_generated_gadgets_satisfy_the_cross_check_contract(capsys):
    with capsys.disabled():
        print(f"\n[gen property] seeds={list(PROPERTY_SEEDS)} "
              f"defenses={PROPERTY_DEFENSES}", flush=True)
    failures = shim.run_property(PROPERTY_SEEDS,
                                 defenses=PROPERTY_DEFENSES)
    assert not failures, \
        "cross-check disagreement on generated gadget(s):\n" + \
        "\n".join(str(f) for f in failures)


def test_generation_is_deterministic():
    a = generate_case(41)
    b = generate_case(41)
    assert a.name == b.name and a.notes == b.notes
    assert a.secret_value == b.secret_value
    assert list(a.program.disassemble()) == list(b.program.disassemble())


def test_gen_target_name_roundtrip():
    for family in FAMILIES:
        case = gen_target(f"gen:{family}:5")
        assert case.name == f"gen:{family}:5"
    with pytest.raises(KeyError, match="bad generated-target name"):
        gen_target("gen:spec")
    with pytest.raises(KeyError, match="unknown generator family"):
        gen_target("gen:meltdown:1")


def test_overrides_force_drawn_knobs():
    """Every knob is drawn-unless-overridden — the shrinker's contract."""
    leaky = generate_case(3, family="spec", touch_secret=True,
                          malicious=True)
    assert leaky.expect_leak
    defused = generate_case(3, family="spec", touch_secret=True,
                            malicious=False)
    assert not defused.expect_leak
    assert "malicious=False" in defused.notes


def test_shrinker_minimizes_while_preserving_the_predicate():
    """Shrink against an artificial predicate (the case leaks): knobs
    irrelevant to it get forced simple, load-bearing knobs survive."""
    seed = next(s for s in range(64)
                if generate_case(s, family="spec").expect_leak
                and "padding=0" not in generate_case(s,
                                                     family="spec").notes)
    overrides, minimal = shim.shrink(
        seed, "spec", lambda case: case.expect_leak)
    # padding and hops don't affect expect_leak -> forced simple.
    assert overrides.get("padding") == 0
    assert overrides.get("hops") == 0
    # touch_secret/malicious are what makes it leak -> not overridden.
    assert "touch_secret" not in overrides
    assert "malicious" not in overrides
    assert minimal.expect_leak and "padding=0" in minimal.notes


def test_artifact_dump_is_reproducible(tmp_path, monkeypatch):
    monkeypatch.setattr(shim, "ARTIFACT_DIR", tmp_path)
    case = generate_case(3, family="stale", plant_secret=True, hops=0)
    path = shim.dump_artifact(case, 3, {"plant_secret": True, "hops": 0},
                              ["example disagreement"])
    text = path.read_text()
    assert "generate_case(3" in text and "example disagreement" in text
    # The dumped body is the program's own disassembly.
    assert "\n".join(case.program.disassemble()) in text


def test_generated_benign_values_never_alias_the_secret():
    """Footprint-oracle soundness: values the architectural path may
    transmit through the probe array must differ from the secret, or
    the oracle could not tell a benign transmission from a leak."""
    for seed in range(24):
        case = generate_case(seed)
        family = case.name.split(":")[1]
        words = case.image.initial_words()
        if family == "spec":
            array1 = case.image.address_of("array1")
            benign = [words[array1 + 8 * i]
                      for i in range(case.image.size_of("array1") // 8)]
        elif family == "stale":
            benign = [words[case.image.address_of("safe_word")]]
        else:
            continue   # straight never derives a probe address from data
        assert case.secret_value not in benign, \
            f"{case.name}: benign word aliases the secret value"

"""Golden ``LeakReport`` recorder for the static leak checker.

``tests/verify/golden_reports.json`` pins the checker's verdict for
every registered attack target under every defense in the default
cross-check sweep: the exact report set (pc, window kind, taint
provenance, chain) plus the exploration counters.  The checker is an
abstract interpreter — any change to its window semantics, fork policy
or taint propagation shows up here first, the same way
``tests/golden/golden_stats.json`` guards the cycle simulator.

``python -m tests.verify.recorder`` regenerates the fixture; do that
only when a verdict change is *intended* (and re-run the cross-check
gate — ``repro sweep verify_cross_check --quick`` — before committing).
"""

from __future__ import annotations

import json
import pathlib

from repro.harness.runner import resolve_verify_target, verify_record
from repro.harness.spec import canonical_json
from repro.verify import check_program
from repro.verify.crosscheck import DEFAULT_DEFENSES
from repro.verify.targets import target_names

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_reports.json")

#: The defense sweep the fixture spans (same as the cross-check gate).
DEFENSES_RECORDED = DEFAULT_DEFENSES


def verify_report_record(target: str, defense: str) -> dict:
    """Run the checker on one target × defense cell; full payload."""
    case = resolve_verify_target(target)
    result = check_program(case.program, case.image,
                           secret_addrs=case.secret_addrs,
                           initial_sp=case.initial_sp, defense=defense)
    return verify_record(case, result)


def all_report_records() -> dict:
    return {f"{target}/{defense}": verify_report_record(target, defense)
            for target in target_names()
            for defense in DEFENSES_RECORDED}


def load_golden() -> dict:
    with GOLDEN_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def normalize(value):
    """Round-trip through canonical JSON so the fresh record compares
    the way it is stored in the fixture."""
    return json.loads(canonical_json(value))


def main() -> int:
    golden = all_report_records()
    GOLDEN_PATH.write_text(json.dumps(golden, sort_keys=True, indent=1)
                           + "\n", encoding="utf-8")
    flagged = sum(1 for rec in golden.values() if not rec["clean"])
    print(f"wrote {GOLDEN_PATH}: {len(golden)} cells, {flagged} flagged")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Defense-suppression semantics of the static leak checker.

Each defense model must kill exactly the window kind it defends and
nothing else (positive *and* negative cells):

* ``secure`` (SL-cache quarantine) suppresses **runahead**-window
  reports only — speculation-window leaks survive it;
* ``branch-skip`` (branch restrictions) kills **speculation**-window
  reports only — the straight-line stale-store leak survives it;
* ``no-runahead`` closes runahead windows but leaves in-ROB
  speculation leaks standing.

Plus the SPECRUN-specific pin: the stale-store gadget is reachable
*only* through a runahead window — disable runahead exploration and the
checker goes clean; the pht-padded gadget needs the long window too.
"""

from __future__ import annotations

import pytest

from repro.verify import (DEFENSES, WINDOW_RUNAHEAD, WINDOW_SPECULATION,
                          VerifyError, check_program, check_target)
from repro.verify.targets import build_target


def windows_of(result):
    return {report.window for report in result.reports}


# (target, defense, expect_clean, expected_windows-if-flagged)
MATRIX_CELLS = [
    # secure kills runahead-window reports ONLY:
    ("stale-store", "secure", True, set()),            # positive
    ("pht", "secure", False, {WINDOW_SPECULATION}),    # negative
    # branch-skip kills speculation-window reports ONLY:
    ("pht", "branch-skip", True, set()),               # positive
    ("stale-store", "branch-skip", False, {WINDOW_RUNAHEAD}),  # negative
    # no-runahead closes runahead windows but not in-ROB speculation:
    ("stale-store", "no-runahead", True, set()),
    ("pht", "no-runahead", False, {WINDOW_SPECULATION}),
    # the undefended machine flags both gadget shapes:
    ("pht", "original", False, {WINDOW_SPECULATION}),
    ("stale-store", "original", False, {WINDOW_RUNAHEAD}),
    # benign twins stay clean even undefended:
    ("pht-safe", "original", True, set()),
    ("stale-store-safe", "original", True, set()),
]


@pytest.mark.parametrize("target,defense,expect_clean,expect_windows",
                         MATRIX_CELLS)
def test_defense_suppression_cell(target, defense, expect_clean,
                                  expect_windows):
    _, result = check_target(target, defense=defense)
    assert result.clean == expect_clean, \
        f"{target}/{defense}: expected " \
        f"{'clean' if expect_clean else 'flagged'}, got " \
        f"{len(result.reports)} report(s)"
    if not expect_clean:
        assert windows_of(result) == expect_windows


def test_secure_counts_what_it_suppresses():
    """The secure model doesn't silently drop the runahead leak — it
    records the suppression, so 'clean because defended' is
    distinguishable from 'nothing there'."""
    _, defended = check_target("stale-store", defense="secure")
    assert defended.clean and defended.suppressed == 1
    _, benign = check_target("stale-store-safe", defense="secure")
    assert benign.clean and benign.suppressed == 0


class TestRunaheadOnlyReach:
    """Gadgets beyond the speculation window: the paper's core claim
    that runahead opens transient windows ordinary speculation cannot."""

    def test_stale_store_needs_the_runahead_window(self):
        case = build_target("stale-store")
        both = check_program(case.program, case.image,
                             secret_addrs=case.secret_addrs,
                             initial_sp=case.initial_sp)
        assert windows_of(both) == {WINDOW_RUNAHEAD}
        spec_only = check_program(case.program, case.image,
                                  secret_addrs=case.secret_addrs,
                                  initial_sp=case.initial_sp,
                                  windows=(WINDOW_SPECULATION,))
        assert spec_only.clean

    def test_padded_pht_outruns_the_speculation_depth(self):
        """Fig. 11: with the gadget pushed past the ROB, the in-ROB
        speculation model can't reach it — only exploration that
        continues past the stall (no-runahead defense closes it)."""
        _, padded = check_target("pht-padded", defense="no-runahead")
        assert padded.clean
        _, original = check_target("pht-padded", defense="original")
        assert not original.clean


class TestCheckerValidation:
    def test_unknown_defense_is_rejected(self):
        case = build_target("pht")
        with pytest.raises(VerifyError, match="unknown defense"):
            check_program(case.program, case.image,
                          secret_addrs=case.secret_addrs,
                          initial_sp=case.initial_sp, defense="asbestos")

    def test_unknown_window_is_rejected(self):
        case = build_target("pht")
        with pytest.raises(VerifyError, match="unknown window"):
            check_program(case.program, case.image,
                          secret_addrs=case.secret_addrs,
                          initial_sp=case.initial_sp, windows=("rob",))

    def test_defense_names_match_the_harness_registry(self):
        from repro.harness.registry import CONTROLLERS
        assert set(DEFENSES) == set(CONTROLLERS)

"""The differential gate itself: checker vs simulator, in-suite subset.

The full gate is the ``verify_cross_check`` preset (every registered
target and 200 generated programs across four defenses); these tests
hold the same contract over a representative subset so tier-1 catches a
broken gate without the full sweep's wall time.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_trial
from repro.harness.spec import Trial
from repro.verify.crosscheck import (DEFAULT_DEFENSES, cross_check_case,
                                     empirical_secret_leak,
                                     make_defense_controller)
from repro.verify.report import LeakReport, merge_reports
from repro.verify.targets import build_target

#: One gadget per shape: probe-loop attack, its benign twin, and the
#: probe-free runahead-only gadget pair.
SUBSET = ("pht", "pht-safe", "stale-store", "stale-store-safe")


@pytest.mark.slow
@pytest.mark.parametrize("target", SUBSET)
def test_contract_holds_across_the_default_defenses(target):
    result = cross_check_case(build_target(target),
                              defenses=DEFAULT_DEFENSES)
    assert result.ok, "\n".join(result.disagreements)
    assert len(result.cells) == len(DEFAULT_DEFENSES)


@pytest.mark.slow
def test_stale_store_leaks_empirically_despite_branch_restrictions():
    """The SPECRUN claim the gadget pins: branch restrictions do not
    stop a straight-line runahead leak, the SL cache does."""
    case = build_target("stale-store")
    leaked, oracle, detail = empirical_secret_leak(case, "branch-skip")
    assert leaked and oracle == "footprint"
    assert str(case.secret_value) in detail
    blocked, _, _ = empirical_secret_leak(case, "secure")
    assert not blocked


def test_unknown_defense_is_rejected():
    with pytest.raises(KeyError, match="unknown defense"):
        make_defense_controller("asbestos")


def test_footprint_oracle_sees_nothing_for_the_benign_twin():
    case = build_target("stale-store-safe")
    leaked, oracle, detail = empirical_secret_leak(case, "original")
    assert not leaked and oracle == "footprint"


class TestShardFanOut:
    """Per-branch shard fan-out: the union of shard results must equal
    the unsharded run byte for byte (what the executors rely on)."""

    def _reports(self, params):
        record = run_trial(Trial("verify", dict(params)))
        return [LeakReport.from_dict(d) for d in record["reports"]]

    @pytest.mark.parametrize("target", ("pht", "stale-store"))
    def test_shard_union_equals_full_run(self, target):
        base = {"target": target, "defense": "original"}
        full = self._reports(base)
        shards = [self._reports({**base, "shard": [k, 3]})
                  for k in range(3)]
        merged = merge_reports(*shards)
        assert [r.to_dict() for r in merged] == \
            [r.to_dict() for r in full]

    def test_shard_excludes_cross_check(self):
        from repro.harness.runner import TrialError
        with pytest.raises(TrialError, match="shard"):
            run_trial(Trial("verify", {"target": "stale-store",
                                       "shard": [0, 2],
                                       "cross_check": True}))

"""``backend="fleet"`` lockstep driver == the object-walking loop."""

import dataclasses

import pytest

from repro.harness.registry import get_workload, make_controller
from repro.memory.hierarchy import PHYS_WINDOW_STRIDE, SharedHierarchy
from repro.multicore.system import MultiCoreSystem
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core

CONFIG = CoreConfig.small()


def make_system(n_workloads, restart=False):
    shared = SharedHierarchy(CONFIG.hierarchy, cores=0)
    system = MultiCoreSystem(shared)
    for index, name in enumerate(n_workloads):
        workload = get_workload(name)
        view = shared.add_core(phys_base=index * PHYS_WINDOW_STRIDE)

        def factory(workload=workload, view=view):
            program, image, sp = workload.materialize()
            return Core(program, memory_image=image, config=CONFIG,
                        runahead=make_controller("none"), initial_sp=sp,
                        warm_icache=True, hierarchy=view)

        system.add_core(factory, name=name,
                        restart=restart and index > 0)
    return system


def assert_systems_identical(fleet, lockstep):
    assert fleet.cycle == lockstep.cycle
    for slot_f, slot_l in zip(fleet.slots, lockstep.slots):
        assert slot_f.respawns == slot_l.respawns, slot_f.name
        assert slot_f.core.halted == slot_l.core.halted, slot_f.name
        assert dataclasses.asdict(slot_f.core.stats) == \
            dataclasses.asdict(slot_l.core.stats), slot_f.name


def test_pair_matches_lockstep_backend():
    workloads = ["gems", "lbm"]
    fleet_sys = make_system(workloads)
    lock_sys = make_system(workloads)
    fleet = fleet_sys.run(max_cycles=5_000_000, backend="fleet")
    lock = lock_sys.run(max_cycles=5_000_000, backend="lockstep")
    assert fleet.halted and lock.halted
    assert_systems_identical(fleet_sys, lock_sys)


def test_restart_corunner_matches_lockstep_backend():
    """Respawning slots exercise the factory-refresh path of the
    column-hoisted driver; counts and stats must match exactly."""
    fleet_sys = make_system(["zeusmp", "reference"], restart=True)
    lock_sys = make_system(["zeusmp", "reference"], restart=True)
    fleet = fleet_sys.run(max_cycles=5_000_000, backend="fleet")
    lock = lock_sys.run(max_cycles=5_000_000, backend="lockstep")
    assert fleet.halted and lock.halted
    assert fleet_sys.slots[1].respawns >= 1
    assert_systems_identical(fleet_sys, lock_sys)


def test_single_core_matches_plain_run():
    solo = get_workload("gems").run(runahead=make_controller("none"),
                                    config=CONFIG)
    primary = make_system(["gems"]).run(max_cycles=5_000_000,
                                        backend="fleet")
    assert primary.halted
    assert dataclasses.asdict(primary.stats) == \
        dataclasses.asdict(solo.stats)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        make_system(["gems"]).run(backend="warp")


def test_fleet_backend_validates_primary_restart():
    system = make_system(["gems", "lbm"], restart=True)
    system.slots[0].restart = True
    with pytest.raises(ValueError, match="primary"):
        system.run(backend="fleet")

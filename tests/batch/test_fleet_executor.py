"""FleetExecutor: byte-identity with serial over real sweeps,
cache/error semantics, and the ``executor="fleet"`` wiring."""

import os

import pytest

from repro.batch.executor import FleetExecutor, fleet_trial_runner
from repro.harness import presets
from repro.harness.cache import ResultCache
from repro.harness.executor import (EXECUTORS, Executor, SerialExecutor,
                                    make_executor, run_sweep)
from repro.harness.runner import TrialError, run_trial
from repro.harness.spec import Sweep, Trial


def cheap_sweep(name="cheap-fleet") -> Sweep:
    """Mixed fleetable + non-fleetable kinds on the small config."""
    sweep = Sweep(name)
    sweep.add("taint")
    sweep.add("run", workload="reference", runahead="none",
              config_base="small")
    sweep.add("ipc", workload="reference", baseline="none",
              contender="original", config_base="small")
    sweep.add("run", workload="reference", runahead="none",
              config_base="small")          # duplicate spec: deduped
    sweep.add("window", runahead="none", sled=64, config_base="small")
    return sweep


class TestByteIdentity:
    def test_cheap_sweep_identical_to_serial(self):
        serial = SerialExecutor().execute(cheap_sweep(), cache=None)
        fleet = FleetExecutor().execute(cheap_sweep(), cache=None)
        assert serial.to_json() == fleet.to_json()

    def test_fig7_quick_identical_to_serial(self):
        sweep = presets.get("fig7").build(quick=True)
        serial = SerialExecutor().execute(sweep, cache=None)
        fleet = FleetExecutor().execute(
            presets.get("fig7").build(quick=True), cache=None)
        assert serial.to_json() == fleet.to_json()

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(presets.PRESETS))
    def test_every_quick_preset_identical_to_serial(self, name):
        """The fleet-vs-serial differential over all quick-tier
        presets — any divergence anywhere in the matrix fails here."""
        serial = SerialExecutor().execute(
            presets.get(name).build(quick=True), cache=None)
        fleet = FleetExecutor().execute(
            presets.get(name).build(quick=True), cache=None)
        assert serial.to_json() == fleet.to_json()

    def test_width_and_budget_do_not_change_bytes(self):
        wide = FleetExecutor(width=None).execute(cheap_sweep(),
                                                 cache=None)
        narrow = FleetExecutor(width=1, budget=64).execute(
            cheap_sweep(), cache=None)
        assert wide.to_json() == narrow.to_json()


class TestSemantics:
    def test_cache_round_trip(self, tmp_path):
        store = ResultCache(root=tmp_path, code_version="v1")
        cold = FleetExecutor().execute(cheap_sweep(), cache=store)
        assert cold.cache_misses == len(cold)
        warm = FleetExecutor().execute(cheap_sweep(), cache=store)
        assert warm.cache_hits == len(warm)
        assert cold.to_json() == warm.to_json()

    def test_fleet_reads_serial_cache_entries(self, tmp_path):
        """Same trials, same cache keys: executors share the cache."""
        store = ResultCache(root=tmp_path, code_version="v1")
        SerialExecutor().execute(cheap_sweep(), cache=store)
        warm = FleetExecutor().execute(cheap_sweep(), cache=store)
        assert warm.cache_hits == len(warm)

    def test_unknown_workload_raises_trial_error(self):
        sweep = Sweep("bad")
        sweep.add("ipc", workload="does-not-exist")
        with pytest.raises(TrialError, match="does-not-exist"):
            FleetExecutor().execute(sweep, cache=None)

    def test_non_halting_trial_error_matches_serial(self):
        sweep = Sweep("ceiling")
        sweep.add("run", workload="reference", runahead="none",
                  config_base="small", max_cycles=2)
        with pytest.raises(TrialError) as fleet_err:
            FleetExecutor().execute(sweep, cache=None)
        with pytest.raises(TrialError) as serial_err:
            SerialExecutor().execute(sweep, cache=None)
        assert str(fleet_err.value) == str(serial_err.value)


class TestWiring:
    def test_fleet_is_a_registered_executor(self):
        assert "fleet" in EXECUTORS
        assert isinstance(make_executor("fleet"), Executor)
        assert isinstance(make_executor("fleet"), FleetExecutor)

    def test_make_executor_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("quantum")

    def test_run_sweep_executor_param(self):
        serial = run_sweep(cheap_sweep(), workers=1, cache=None)
        fleet = run_sweep(cheap_sweep(), workers=1, cache=None,
                          executor="fleet")
        assert serial.to_json() == fleet.to_json()

    def test_run_sweep_executor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "fleet")
        result = run_sweep(cheap_sweep(), workers=1, cache=None)
        baseline = SerialExecutor().execute(cheap_sweep(), cache=None)
        assert result.to_json() == baseline.to_json()

    def test_fleet_trial_runner_matches_run_trial(self):
        ipc = Trial("ipc", {"workload": "reference", "baseline": "none",
                            "contender": "original",
                            "config_base": "small"})
        assert fleet_trial_runner(ipc) == run_trial(ipc)
        taint = Trial("taint", {})
        assert fleet_trial_runner(taint) == run_trial(taint)

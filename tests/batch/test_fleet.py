"""Fleet kernel bit-identity: every lane == a solo ``Core.run``.

The property test assembles randomized fleets — mixed workloads, mixed
controllers (runahead on/off/secure per lane), mixed cycle ceilings,
small step budgets and width caps so lanes retire mid-run and queued
lanes backfill (ragged retirement) — and checks every lane's full
``CoreStats`` against a solo reference run of an identically-built
core.
"""

import dataclasses
import random

import pytest

from repro.batch.fleet import FleetCore, run_fleet
from repro.batch.runs import FleetRuns
from repro.harness.registry import get_workload, make_config, \
    make_controller
from repro.pipeline.core import Core

WORKLOADS = ("zeusmp", "mcf", "gems")
CONTROLLERS = ("none", "original", "secure")


def build_core(workload_name, controller_name, config_base="paper"):
    """Exactly the core ``Workload.run`` builds for this spec."""
    workload = get_workload(workload_name)
    program, image, sp = workload.materialize()
    return Core(program, memory_image=image,
                config=make_config(config_base, None),
                runahead=make_controller(controller_name),
                initial_sp=sp, warm_icache=True)


def solo_reference(workload_name, controller_name, max_cycles,
                   config_base="paper"):
    core = build_core(workload_name, controller_name, config_base)
    core.run(max_cycles=max_cycles)
    return core


def assert_cores_identical(fleet_core, solo_core, label):
    assert fleet_core.halted == solo_core.halted, label
    assert fleet_core.cycle == solo_core.cycle, label
    assert dataclasses.asdict(fleet_core.stats) == \
        dataclasses.asdict(solo_core.stats), label


class TestFleetCore:
    def test_single_lane_matches_solo_run(self):
        solo = solo_reference("gems", "original", 5_000_000)
        fleet = FleetCore(width=1)
        core = build_core("gems", "original")
        fleet.add_lane(core, max_cycles=5_000_000)
        fleet.run(budget=777)    # odd budget: segments never line up
        assert_cores_identical(core, solo, "gems/original")

    def test_cycle_ceiling_lane_matches_solo(self):
        """A lane truncated by max_cycles seals exactly like Core.run."""
        solo = solo_reference("mcf", "original", 3_000)
        assert not solo.halted
        fleet = FleetCore()
        core = build_core("mcf", "original")
        fleet.add_lane(core, max_cycles=3_000)
        fleet.run(budget=64)
        assert_cores_identical(core, solo, "truncated mcf")

    def test_ragged_retirement_with_backfill(self):
        """Short and long lanes in one fleet, width < lanes: early
        retirements admit queued lanes mid-run; every lane still
        matches its solo reference."""
        specs = [("gems", "none", 2_000), ("mcf", "original", 5_000_000),
                 ("zeusmp", "none", 1_000), ("gems", "secure", 5_000_000),
                 ("mcf", "none", 4_000)]
        fleet = FleetCore(width=2)
        cores = []
        for workload, controller, limit in specs:
            core = build_core(workload, controller)
            fleet.add_lane(core, max_cycles=limit)
            cores.append(core)
        assert fleet.remaining == len(specs)
        fleet.run(budget=113)
        assert fleet.remaining == 0
        for core, (workload, controller, limit) in zip(cores, specs):
            solo = solo_reference(workload, controller, limit)
            assert_cores_identical(core, solo,
                                   f"{workload}/{controller}@{limit}")

    @pytest.mark.slow
    def test_randomized_fleet_property(self):
        """Randomly-assembled fleets are lane-for-lane bit-identical to
        serial Core.run (seeded, so failures reproduce)."""
        rng = random.Random(0x5EC2)
        for round_no in range(3):
            specs = []
            for _ in range(rng.randint(3, 6)):
                specs.append((rng.choice(WORKLOADS),
                              rng.choice(CONTROLLERS),
                              rng.choice((5_000_000, 5_000_000,
                                          rng.randint(500, 20_000)))))
            width = rng.randint(1, len(specs))
            budget = rng.choice((97, 1024, 4096))
            fleet = FleetCore(width=width)
            cores = []
            for workload, controller, limit in specs:
                core = build_core(workload, controller)
                fleet.add_lane(core, max_cycles=limit)
                cores.append(core)
            fleet.run(budget=budget)
            for core, (workload, controller, limit) in zip(cores, specs):
                solo = solo_reference(workload, controller, limit)
                assert_cores_identical(
                    core, solo,
                    f"round {round_no}: {workload}/{controller}@{limit} "
                    f"width={width} budget={budget}")

    def test_run_fleet_convenience(self):
        core_a = build_core("gems", "none")
        core_b = build_core("zeusmp", "none")
        done = run_fleet([(core_a, 5_000_000), (core_b, 5_000_000)],
                         width=2)
        assert done == [core_a, core_b]
        assert core_a.halted and core_b.halted


class TestFleetRuns:
    def test_dedup_computes_distinct_specs_once(self):
        runs = FleetRuns(width=4)
        key_a = runs.add("gems", "none", {}, "paper", None, 5_000_000)
        key_b = runs.add("gems", "none", {}, "paper", None, 5_000_000)
        key_c = runs.add("gems", "original", {}, "paper", None, 5_000_000)
        assert key_a == key_b and key_a != key_c
        assert len(runs) == 2
        runs.execute()
        _, _, core_a = runs.core(key_a)
        _, _, core_b = runs.core(key_b)
        assert core_a is core_b          # one computation, both served

    def test_dedup_off_runs_every_lane(self):
        runs = FleetRuns(width=4, dedup=False)
        key_a = runs.add("gems", "none", {}, "paper", None, 5_000_000)
        key_b = runs.add("gems", "none", {}, "paper", None, 5_000_000)
        assert key_a != key_b
        assert len(runs) == 2
        runs.execute()
        _, _, core_a = runs.core(key_a)
        _, _, core_b = runs.core(key_b)
        assert core_a is not core_b
        assert dataclasses.asdict(core_a.stats) == \
            dataclasses.asdict(core_b.stats)

    def test_non_halting_spec_raises_like_workload_run(self):
        runs = FleetRuns()
        key = runs.add("mcf", "original", {}, "paper", None, 1_000)
        runs.execute()
        with pytest.raises(RuntimeError, match="mcf did not halt"):
            runs.core(key)

"""Unit tests for the pipeline's building blocks: ROB, FU pool, config."""

import pytest

from repro.isa import Instruction, Opcode, int_reg
from repro.isa.instructions import FuKind
from repro.pipeline import CoreConfig, FunctionalUnitPool, ReorderBuffer
from repro.pipeline.config import PAPER_FUNCTIONAL_UNITS
from repro.pipeline.rob import RobEntry


def entry(seq, opcode=Opcode.NOP):
    return RobEntry(seq, seq * 4, Instruction(opcode))


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        for seq in range(1, 4):
            rob.push(entry(seq))
        assert rob.head().seq == 1
        assert rob.pop_head().seq == 1
        assert rob.head().seq == 2

    def test_capacity_enforced(self):
        rob = ReorderBuffer(2)
        rob.push(entry(1))
        rob.push(entry(2))
        assert rob.full
        with pytest.raises(OverflowError):
            rob.push(entry(3))

    def test_squash_younger_marks_victims(self):
        rob = ReorderBuffer(8)
        entries = [entry(seq) for seq in range(1, 6)]
        for e in entries:
            rob.push(e)
        victims = rob.squash_younger(3)
        assert [v.seq for v in victims] == [5, 4]
        assert all(v.squashed for v in victims)
        assert len(rob) == 3

    def test_squash_younger_none_when_youngest(self):
        rob = ReorderBuffer(4)
        rob.push(entry(1))
        assert rob.squash_younger(1) == []

    def test_clear_squashes_everything(self):
        rob = ReorderBuffer(4)
        for seq in range(1, 4):
            rob.push(entry(seq))
        victims = rob.clear()
        assert len(victims) == 3
        assert rob.empty
        assert all(v.squashed for v in victims)

    def test_entry_role_predicates(self):
        load = RobEntry(1, 0, Instruction(Opcode.LOAD, dest=int_reg(1),
                                          srcs=(int_reg(2),), imm=0))
        store = RobEntry(2, 4, Instruction(
            Opcode.STORE, srcs=(int_reg(1), int_reg(2)), imm=0))
        ret = RobEntry(3, 8, Instruction(Opcode.RET, dest=29, srcs=(29,)))
        call = RobEntry(4, 12, Instruction(Opcode.CALL, dest=29, srcs=(29,),
                                           target=0))
        assert load.is_load and not load.is_store
        assert store.is_store and not store.is_load
        assert ret.is_load and ret.is_branch      # ret pops via a load
        assert call.is_store and call.is_branch   # call pushes via a store


class TestFunctionalUnits:
    def test_per_cycle_slots(self):
        pool = FunctionalUnitPool(PAPER_FUNCTIONAL_UNITS)
        pool.new_cycle(0)
        for _ in range(4):
            assert pool.can_issue(FuKind.INT_ALU)
            assert pool.issue(FuKind.INT_ALU) == 1
        assert not pool.can_issue(FuKind.INT_ALU)

    def test_slots_reset_each_cycle(self):
        pool = FunctionalUnitPool(PAPER_FUNCTIONAL_UNITS)
        pool.new_cycle(0)
        pool.issue(FuKind.FP_DIV)
        assert not pool.can_issue(FuKind.FP_DIV)   # only one unit
        pool.new_cycle(1)
        assert pool.can_issue(FuKind.FP_DIV)       # pipelined

    def test_latencies_match_table1(self):
        pool = FunctionalUnitPool(PAPER_FUNCTIONAL_UNITS)
        assert pool.latency(FuKind.INT_ALU) == 1
        assert pool.latency(FuKind.INT_MUL) == 2
        assert pool.latency(FuKind.INT_DIV) == 5
        assert pool.latency(FuKind.FP_ADD) == 5
        assert pool.latency(FuKind.FP_MUL) == 10
        assert pool.latency(FuKind.FP_DIV) == 15

    def test_overissue_raises(self):
        pool = FunctionalUnitPool(PAPER_FUNCTIONAL_UNITS)
        pool.new_cycle(0)
        pool.issue(FuKind.INT_DIV)
        with pytest.raises(RuntimeError):
            pool.issue(FuKind.INT_DIV)


class TestCoreConfig:
    def test_rename_register_counts(self):
        config = CoreConfig.paper()
        assert config.rename_int == 80 - 32
        assert config.rename_fp == 40 - 16
        assert config.rename_vec == 40 - 8

    def test_rejects_undersized_register_files(self):
        with pytest.raises(ValueError):
            CoreConfig(int_regs=16)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            CoreConfig(width=0)

    def test_with_overrides_returns_new_config(self):
        config = CoreConfig.paper()
        other = config.with_overrides(rob_size=64)
        assert other.rob_size == 64
        assert config.rob_size == 256

    def test_small_config_keeps_mechanisms(self):
        config = CoreConfig.small()
        assert config.rob_size < CoreConfig.paper().rob_size
        assert config.predictor == "twolevel"
        assert config.runahead.cache_entries > 0

"""LSQ and serialization edge cases."""

import pytest

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.isa import int_reg


def run_core(source, image=None, config=None, **kwargs):
    program = assemble(source, memory_image=image)
    core = Core(program, memory_image=image,
                config=config or CoreConfig.small(), warm_icache=True,
                **kwargs)
    core.run(max_cycles=300_000)
    assert core.halted
    return core


class TestForwardingEdges:
    def test_youngest_matching_store_forwards(self):
        image = MemoryImage()
        image.alloc_array("buf", 2)
        core = run_core("""
            li r1, @buf
            li r2, 1
            li r3, 2
            store r2, r1, 0
            store r3, r1, 0      # younger store to the same word
            load r4, r1, 0
            halt
        """, image)
        assert core.arch_regs[int_reg(4)] == 2

    def test_different_words_same_line_do_not_forward(self):
        image = MemoryImage()
        addr = image.alloc_array("buf", 8)
        image.write_word(addr + 8, 77)
        core = run_core("""
            li r1, @buf
            li r2, 5
            store r2, r1, 0
            load r3, r1, 8       # adjacent word: must read memory value
            halt
        """, image)
        assert core.arch_regs[int_reg(3)] == 77

    def test_load_waits_for_unknown_store_address(self):
        """A load never bypasses an older store whose address is still
        being computed (conservative disambiguation)."""
        image = MemoryImage()
        image.alloc_array("buf", 4)
        core = run_core("""
            li r1, @buf
            li r2, 9
            li r5, 0
            muli r6, r2, 0       # slow-ish chain feeding the store address
            mul  r6, r6, r6
            add  r7, r1, r6      # store address = buf
            store r2, r7, 0
            load r8, r1, 0       # overlaps: must see 9
            halt
        """, image)
        assert core.arch_regs[int_reg(8)] == 9

    def test_vector_load_waits_for_overlapping_store(self):
        image = MemoryImage()
        addr = image.alloc_array("buf", 4)
        image.write_words(addr, [1, 2])
        core = run_core("""
            li r1, @buf
            li r2, 50
            store r2, r1, 8      # overlaps lane 1 of the vload
            vload x1, r1, 0
            vextract r3, x1, 0
            vextract r4, x1, 1
            halt
        """, image)
        assert core.arch_regs[int_reg(3)] == 1
        assert core.arch_regs[int_reg(4)] == 50

    def test_vstore_forwards_each_lane(self):
        image = MemoryImage()
        image.alloc_array("buf", 4)
        core = run_core("""
            li r1, @buf
            li r2, 7
            vsplat x1, r2
            vadd x2, x1, x1      # lanes (14, 14)
            vstore x2, r1, 0
            load r3, r1, 0
            load r4, r1, 8
            halt
        """, image)
        assert core.arch_regs[int_reg(3)] == 14
        assert core.arch_regs[int_reg(4)] == 14


class TestQueueCapacity:
    def test_lq_pressure_does_not_deadlock(self):
        image = MemoryImage()
        image.alloc_array("buf", 64)
        loads = "\n".join(f"load r{2 + i % 8}, r1, {i * 8}"
                          for i in range(32))
        core = run_core(f"li r1, @buf\n{loads}\nhalt", image)
        assert core.stats.committed == 34

    def test_sq_pressure_does_not_deadlock(self):
        image = MemoryImage()
        image.alloc_array("buf", 64)
        stores = "\n".join(f"store r2, r1, {i * 8}" for i in range(32))
        core = run_core(f"li r1, @buf\nli r2, 3\n{stores}\nhalt", image)
        assert core.stats.committed == 35
        assert core.memory.read_word(image.address_of("buf") + 31 * 8) == 3


class TestSerializationEdges:
    def test_fence_at_program_start(self):
        core = run_core("fence\nli r1, 1\nhalt")
        assert core.arch_regs[int_reg(1)] == 1

    def test_back_to_back_fences(self):
        core = run_core("fence\nfence\nfence\nhalt")
        assert core.stats.committed == 4

    def test_rdtsc_values_commit_in_order(self):
        core = run_core("""
            rdtsc r1
            .repeat 30, nop
            fence
            rdtsc r2
            sltu r3, r1, r2
            halt
        """)
        assert core.arch_regs[int_reg(3)] == 1

    def test_clflush_of_unmapped_line_is_harmless(self):
        core = run_core("""
            li r1, 0x900000
            clflush r1, 0
            halt
        """)
        assert core.stats.committed == 3


class TestWrongPathRobustness:
    def test_wrong_path_misaligned_address_masked(self):
        """Speculative garbage addresses must not crash the simulator."""
        image = MemoryImage()
        addr = image.alloc_array("buf", 4)
        image.write_word(addr, 3)   # odd garbage base for the wrong path
        core = run_core("""
            li r1, @buf
            load r2, r1, 0        # r2 = 3 (misaligned as a pointer)
            beq r2, r0, wrong     # not taken architecturally; cold
                                  # predictor agrees, so force training:
            jmp join
        wrong:
            load r3, r2, 0        # would be misaligned
        join:
            halt
        """, image)
        assert core.halted

    def test_wrong_path_huge_offset_is_safe(self):
        image = MemoryImage()
        image.alloc_array("buf", 2)
        core = run_core("""
            li r1, @buf
            li r4, 1
        train_loop:
            load r2, r1, 0
            beq r4, r0, skip      # never taken; trains not-taken
            addi r4, r4, 0
        skip:
            slli r5, r2, 40       # huge value if mispredicted path used it
            addi r4, r4, -1
            bne r4, r0, train_loop
            halt
        """, image)
        assert core.halted

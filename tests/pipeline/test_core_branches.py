"""Core pipeline: branches, speculation, recovery, call/ret."""

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.isa import int_reg


def run_core(source, image=None, config=None, **kwargs):
    program = assemble(source, memory_image=image)
    core = Core(program, memory_image=image,
                config=config or CoreConfig.small(), warm_icache=True,
                **kwargs)
    core.run(max_cycles=500_000)
    assert core.halted, "program did not reach halt"
    return core


class TestBranches:
    def test_loop_result(self):
        core = run_core("""
            li r1, 0
            li r2, 10
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            bne r2, r0, loop
            halt
        """)
        assert core.arch_regs[int_reg(1)] == 55

    def test_mispredictions_do_not_corrupt_state(self):
        # Alternating branch pattern forces mispredicts; result must hold.
        core = run_core("""
            li r1, 0      # accumulator
            li r2, 0      # i
            li r3, 20     # limit
        loop:
            andi r4, r2, 1
            beq r4, r0, even
            addi r1, r1, 100
            jmp next
        even:
            addi r1, r1, 1
        next:
            addi r2, r2, 1
            bne r2, r3, loop
            halt
        """)
        assert core.arch_regs[int_reg(1)] == 10 * 100 + 10 * 1
        assert core.stats.branch_mispredicts > 0
        assert core.stats.squashed > 0

    def test_wrong_path_stores_never_commit(self):
        image = MemoryImage()
        addr = image.alloc_array("flag", 2)
        core = run_core("""
            li r1, @flag
            li r2, 1
            li r3, 1
            beq r3, r0, poison    # never taken... but cold predictor
            jmp done
        poison:
            store r2, r1, 0
        done:
            halt
        """, image)
        assert core.memory.read_word(addr) == 0

    def test_indirect_jump(self):
        core = run_core("""
            li r1, 16            # address of target instruction
            jr r1
            li r2, 1             # skipped
            li r3, 2             # skipped (pc=8)
            li r4, 3             # skipped (pc=12)
            li r5, 4             # target (pc=16)
            halt
        """)
        assert core.arch_regs[int_reg(2)] == 0
        assert core.arch_regs[int_reg(5)] == 4

    def test_nested_branches(self):
        core = run_core("""
            li r1, 0
            li r2, 5
            li r3, 3
            blt r2, r3, skip_outer
            addi r1, r1, 1
            blt r3, r2, inner_hit
            jmp skip_outer
        inner_hit:
            addi r1, r1, 2
        skip_outer:
            halt
        """)
        assert core.arch_regs[int_reg(1)] == 3


class TestCallRet:
    def make_image(self):
        image = MemoryImage()
        sp = image.alloc_stack(32)
        return image, sp

    def test_simple_call(self):
        image, sp = self.make_image()
        core = run_core("""
            li r1, 1
            call fn
            addi r1, r1, 10
            halt
        fn:
            addi r1, r1, 100
            ret
        """, image, initial_sp=sp)
        assert core.arch_regs[int_reg(1)] == 111
        assert core.arch_regs[int_reg(29)] == sp

    def test_nested_calls(self):
        image, sp = self.make_image()
        core = run_core("""
            li r1, 0
            call outer
            halt
        outer:
            addi r1, r1, 1
            call inner
            addi r1, r1, 4
            ret
        inner:
            addi r1, r1, 2
            ret
        """, image, initial_sp=sp)
        assert core.arch_regs[int_reg(1)] == 7

    def test_recursion(self):
        image, sp = self.make_image()
        # sum(1..5) by recursion.
        core = run_core("""
            li r1, 5
            li r2, 0
            call rec
            halt
        rec:
            beq r1, r0, base
            add r2, r2, r1
            addi r1, r1, -1
            call rec
        base:
            ret
        """, image, initial_sp=sp)
        assert core.arch_regs[int_reg(2)] == 15

    def test_overwritten_return_address_is_followed(self):
        """Architectural ret follows the stack, even though the RSB
        predicted otherwise — the SpectreRSB divergence (Fig. 4b)."""
        image, sp = self.make_image()
        program = assemble("""
            call fn
            li r2, 2        # skipped: fn overwrites its return address
            halt
        fn:
            li r1, @hijack_pc
            store r1, sp, 0
            ret
        hijack:
            li r3, 3
            halt
        """, symbols={"hijack_pc": 6 * 4})
        core = Core(program, memory_image=image, initial_sp=sp,
                    config=CoreConfig.small(), warm_icache=True)
        core.run(max_cycles=100_000)
        assert core.halted
        assert core.arch_regs[int_reg(2)] == 0
        assert core.arch_regs[int_reg(3)] == 3
        assert core.branch_unit.stats.rsb_mispredicts >= 1

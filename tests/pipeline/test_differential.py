"""Golden-model differential testing.

Random programs (ALU ops, loads/stores, forward branches, bounded loops)
must produce *identical* architectural end state — registers and memory —
on the functional interpreter and on the out-of-order core.  Timing
differs; architecture must not.  ``rdtsc`` is excluded (explicitly
implementation-defined timing).

This is the single most important invariant in the repository: runahead
(tested in ``tests/runahead/test_differential_runahead.py``) must also
preserve it, because runahead is a pure microarchitectural optimization.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Core, CoreConfig, MemoryImage, assemble, run_program
from repro.isa.registers import NUM_ARCH_REGS, REG_SP

pytestmark = pytest.mark.slow

# A compact register set keeps dependencies dense (more interesting
# schedules) without losing coverage.
_REGS = [f"r{i}" for i in range(1, 8)]
_FREGS = [f"f{i}" for i in range(1, 4)]

_ALU3 = ["add", "sub", "and", "or", "xor", "slt", "sltu", "mul"]
_ALUI = ["addi", "andi", "ori", "xori", "slti", "muli"]
_SHIFT = ["slli", "srli"]


@st.composite
def straightline_block(draw, data_words):
    """One random instruction operating on r1..r7 and the data array."""
    kind = draw(st.sampled_from(
        ["li", "alu3", "alui", "shift", "load", "store", "divrem", "fp",
         "vec"]))
    reg = lambda: draw(st.sampled_from(_REGS))
    if kind == "li":
        return f"li {reg()}, {draw(st.integers(-1000, 1000))}"
    if kind == "alu3":
        return f"{draw(st.sampled_from(_ALU3))} {reg()}, {reg()}, {reg()}"
    if kind == "alui":
        return (f"{draw(st.sampled_from(_ALUI))} {reg()}, {reg()}, "
                f"{draw(st.integers(-64, 64))}")
    if kind == "shift":
        return (f"{draw(st.sampled_from(_SHIFT))} {reg()}, {reg()}, "
                f"{draw(st.integers(0, 8))}")
    if kind == "divrem":
        return f"{draw(st.sampled_from(['div', 'rem']))} {reg()}, {reg()}, {reg()}"
    if kind == "load":
        offset = draw(st.integers(0, data_words - 1)) * 8
        return f"load {reg()}, r10, {offset}"
    if kind == "store":
        offset = draw(st.integers(0, data_words - 1)) * 8
        return f"store {reg()}, r10, {offset}"
    if kind == "fp":
        op = draw(st.sampled_from(["fadd", "fsub", "fmul"]))
        a, b, c = (draw(st.sampled_from(_FREGS)) for _ in range(3))
        return f"{op} {a}, {b}, {c}"
    if kind == "vec":
        return f"vsplat x1, {reg()}"
    raise AssertionError(kind)


@st.composite
def random_program(draw):
    """A program of straight-line blocks, forward branches and one loop."""
    data_words = 16
    lines = [
        "li r10, @data",
        "li r11, 4",          # loop counter
        "fcvt f1, r11",
        "fcvt f2, r10",
    ]
    n_blocks = draw(st.integers(1, 4))
    label_counter = [0]

    def block(depth):
        body = [draw(straightline_block(data_words))
                for _ in range(draw(st.integers(1, 6)))]
        if depth < 2 and draw(st.booleans()):
            # Forward branch over a sub-block.
            label_counter[0] += 1
            label = f"skip_{label_counter[0]}"
            cond = draw(st.sampled_from(["beq", "bne", "blt", "bge"]))
            a, b = draw(st.sampled_from(_REGS)), draw(st.sampled_from(_REGS))
            inner = block(depth + 1)
            body.append(f"{cond} {a}, {b}, {label}")
            body.extend(inner)
            body.append(f"{label}:")
        return body

    for _ in range(n_blocks):
        lines.extend(block(0))

    if draw(st.booleans()):
        # A bounded loop re-running one block.
        loop_body = [draw(straightline_block(data_words))
                     for _ in range(draw(st.integers(1, 4)))]
        lines.append("loop_top:")
        lines.extend(loop_body)
        lines.append("addi r11, r11, -1")
        lines.append("bne r11, r0, loop_top")

    lines.append("halt")
    return "\n".join(lines)


def _image():
    image = MemoryImage()
    addr = image.alloc_array("data", 16)
    image.write_words(addr, [(i * 37 + 5) % 256 for i in range(16)])
    return image


def _normalize_float(value):
    # inf/nan compare oddly through pipelines; normalize representation.
    return repr(value)


def assert_same_architecture(program, image_a, image_b, core):
    reference = run_program(program, memory_image=image_a, max_steps=200_000)
    assert core.halted, "core did not halt"
    for reg in range(NUM_ARCH_REGS):
        if reg == REG_SP:
            continue
        ref, got = reference.registers[reg], core.arch_regs[reg]
        if isinstance(ref, float) or isinstance(got, float):
            assert _normalize_float(ref) == _normalize_float(got), \
                f"register {reg}: {ref!r} != {got!r}"
        else:
            assert ref == got, f"register {reg}: {ref!r} != {got!r}"
    core_memory = core.memory.snapshot()
    keys = set(reference.memory) | set(core_memory)
    for addr in keys:
        ref = reference.memory.get(addr, 0)
        got = core_memory.get(addr, 0)
        if isinstance(ref, float) or isinstance(got, float):
            assert _normalize_float(ref) == _normalize_float(got), \
                f"memory {addr:#x}: {ref!r} != {got!r}"
        else:
            assert ref == got, f"memory {addr:#x}: {ref!r} != {got!r}"


class TestDifferentialOoO:
    @given(random_program())
    @settings(max_examples=80, deadline=None)
    def test_core_matches_interpreter(self, source):
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        core = Core(program_b, memory_image=image_b,
                    config=CoreConfig.small(), warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)

    @given(random_program())
    @settings(max_examples=30, deadline=None)
    def test_core_matches_interpreter_paper_config(self, source):
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        core = Core(program_b, memory_image=image_b,
                    config=CoreConfig.paper(), warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)


class TestDifferentialPredictors:
    @given(random_program(),
           st.sampled_from(["bimodal", "gshare", "twolevel"]))
    @settings(max_examples=30, deadline=None)
    def test_architecture_independent_of_predictor(self, source, predictor):
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        config = CoreConfig.small(predictor=predictor)
        core = Core(program_b, memory_image=image_b, config=config,
                    warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)

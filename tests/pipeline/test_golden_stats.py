"""Golden-stats differential tests for the hot-path refactor.

``tests/golden/golden_stats.json`` was recorded from the pre-refactor
simulator (decode-time-metadata / int-dispatch / wakeup-scheduling
overhaul, PR 2).  These tests assert the optimized core reproduces it
*byte for byte*:

* every quick-tier Fig. 7 kernel × every runahead controller (including
  both defenses) must yield identical ``CoreStats``, per-level cache
  hit/miss/fill counts, transient-window maxima, branch-unit counters,
  and architectural end state;
* every quick-tier harness preset trial (all 10 paper figures) must
  yield an identical result payload through ``run_trial``.

If a future change *intends* to alter behaviour, regenerate the fixture
with ``python -m tests.golden.recorder`` and say so in the commit; a
mismatch here otherwise means the fast path broke timing equivalence.
"""

from __future__ import annotations

import pytest

from tests.golden import recorder

GOLDEN = recorder.load_golden()

CORE_KEYS = sorted(GOLDEN["cores"])
PRESET_NAMES = sorted(GOLDEN["presets"])


def test_fixture_covers_expected_grid():
    """The fixture spans the full workload × controller grid and every
    quick-tier preset (guards against silently-thinned coverage)."""
    expected_cores = {f"{workload}/{controller}"
                      for workload in recorder.CORE_WORKLOADS
                      for controller in recorder.CORE_CONTROLLERS}
    assert set(GOLDEN["cores"]) == expected_cores
    assert set(GOLDEN["presets"]) == set(recorder.PRESET_NAMES)


@pytest.mark.slow
@pytest.mark.parametrize("key", CORE_KEYS)
def test_core_stats_match_golden(key):
    workload, controller = key.split("/")
    fresh = recorder.normalize(recorder.core_record(workload, controller))
    want = GOLDEN["cores"][key]
    assert fresh.keys() == want.keys()
    for field in want:
        assert fresh[field] == want[field], \
            f"{key}: {field} diverged from the pre-refactor recording"


@pytest.mark.slow
@pytest.mark.parametrize("name", PRESET_NAMES)
def test_preset_trials_match_golden(name):
    fresh = recorder.normalize(recorder.preset_records(name))
    want = GOLDEN["presets"][name]
    assert fresh.keys() == want.keys(), \
        f"preset {name}: trial grid changed"
    for trial_key in want:
        assert fresh[trial_key] == want[trial_key], \
            f"preset {name}: {trial_key} diverged from the " \
            f"pre-refactor recording"

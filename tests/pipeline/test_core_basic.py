"""Core pipeline: basic execution semantics and timing sanity."""

import pytest

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.isa import fp_reg, int_reg


def run_core(source, image=None, config=None, warm_icache=True, **kwargs):
    program = assemble(source, memory_image=image)
    core = Core(program, memory_image=image,
                config=config or CoreConfig.small(),
                warm_icache=warm_icache, **kwargs)
    core.run(max_cycles=200_000)
    assert core.halted, "program did not reach halt"
    return core


class TestStraightLine:
    def test_alu_chain(self):
        core = run_core("""
            li r1, 5
            li r2, 7
            add r3, r1, r2
            mul r4, r3, r2
            halt
        """)
        assert core.arch_regs[int_reg(3)] == 12
        assert core.arch_regs[int_reg(4)] == 84

    def test_dependency_ordering(self):
        core = run_core("""
            li r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            halt
        """)
        assert core.arch_regs[int_reg(1)] == 4

    def test_zero_register_ignored(self):
        core = run_core("""
            li r0, 77
            mov r1, r0
            halt
        """)
        assert core.arch_regs[int_reg(1)] == 0

    def test_fp_latency_respected(self):
        core = run_core("""
            li r1, 2
            fcvt f1, r1
            fmul f2, f1, f1
            fadd f3, f2, f1
            halt
        """)
        assert core.arch_regs[fp_reg(2)] == 4.0
        assert core.arch_regs[fp_reg(3)] == 6.0
        # fcvt(5) + fmul(10) + fadd(5) plus pipeline overheads.
        assert core.stats.cycles >= 20

    def test_ipc_bounded_by_width(self):
        core = run_core(".repeat 100, nop\nhalt")
        assert core.stats.committed == 101
        assert core.stats.ipc <= core.config.width


class TestMemoryOps:
    def test_store_load_round_trip(self):
        image = MemoryImage()
        image.alloc_array("buf", 4)
        core = run_core("""
            li r1, @buf
            li r2, 99
            store r2, r1, 8
            load r3, r1, 8
            halt
        """, image)
        assert core.arch_regs[int_reg(3)] == 99

    def test_store_to_load_forwarding_is_fast(self):
        image = MemoryImage()
        image.alloc_array("buf", 4)
        core = run_core("""
            li r1, @buf
            li r2, 42
            store r2, r1, 0
            load r3, r1, 0
            halt
        """, image)
        assert core.arch_regs[int_reg(3)] == 42
        # The load must not pay a memory round trip: with forwarding the
        # whole program takes well under the 200-cycle memory latency.
        assert core.stats.cycles < 100

    def test_load_sees_committed_store_not_stale_memory(self):
        image = MemoryImage()
        addr = image.alloc_array("buf", 2)
        image.write_word(addr, 1)
        core = run_core("""
            li r1, @buf
            li r2, 2
            store r2, r1, 0
            .repeat 20, nop
            load r3, r1, 0
            halt
        """, image)
        assert core.arch_regs[int_reg(3)] == 2

    def test_vector_memory(self):
        image = MemoryImage()
        addr = image.alloc_array("v", 4)
        image.write_words(addr, [3, 4])
        core = run_core("""
            li r1, @v
            vload x1, r1, 0
            vadd x2, x1, x1
            vstore x2, r1, 16
            load r2, r1, 16
            load r3, r1, 24
            halt
        """, image)
        assert core.arch_regs[int_reg(2)] == 6
        assert core.arch_regs[int_reg(3)] == 8

    def test_memory_level_miss_latency_visible(self):
        image = MemoryImage()
        image.alloc_array("cold", 2)
        core = run_core("""
            li r1, @cold
            load r2, r1, 0
            halt
        """, image)
        # A single cold miss must cost at least the memory latency.
        assert core.stats.cycles >= core.config.hierarchy.mem_latency


class TestSerialization:
    def test_rdtsc_pairs_measure_latency(self):
        image = MemoryImage()
        image.alloc_array("probe", 2)
        core = run_core("""
            li r1, @probe
            load r9, r1, 0       # warm the line
            fence
            rdtsc r2
            load r3, r1, 0
            fence
            rdtsc r4
            sub r5, r4, r2
            halt
        """, image)
        measured = core.arch_regs[int_reg(5)]
        # Warm line: small latency, strictly positive.
        assert 0 < measured < 40

    def test_rdtsc_measures_cold_miss(self):
        image = MemoryImage()
        image.alloc_array("cold", 2)
        core = run_core("""
            li r1, @cold
            fence
            rdtsc r2
            load r3, r1, 0
            fence
            rdtsc r4
            sub r5, r4, r2
            halt
        """, image)
        assert core.arch_regs[int_reg(5)] >= \
            core.config.hierarchy.mem_latency

    def test_fence_drains(self):
        core = run_core("""
            li r1, 3
            mul r2, r1, r1
            fence
            rdtsc r3
            halt
        """)
        assert core.stats.fence_stalls >= 1


class TestClflush:
    def test_flush_makes_reload_slow(self):
        image = MemoryImage()
        image.alloc_array("target", 2)
        core = run_core("""
            li r1, @target
            load r2, r1, 0       # warm
            fence
            clflush r1, 0
            fence
            rdtsc r3
            load r4, r1, 0
            fence
            rdtsc r5
            sub r6, r5, r3
            halt
        """, image)
        assert core.arch_regs[int_reg(6)] >= \
            core.config.hierarchy.mem_latency


class TestTermination:
    def test_missing_halt_quiesces(self):
        program = assemble("li r1, 1")
        core = Core(program, config=CoreConfig.small())
        core.run(max_cycles=10_000)
        assert not core.halted
        assert core.arch_regs[int_reg(1)] == 1
        assert core.stats.cycles < 10_000   # quiesced, not spun

    def test_rename_pressure_does_not_deadlock(self):
        # More independent dests than rename registers.
        source = "\n".join(f"li r{i % 20 + 1}, {i}" for i in range(200))
        core = run_core(source + "\nhalt")
        assert core.stats.committed == 201

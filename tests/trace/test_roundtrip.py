"""The record → replay → record round-trip property.

The lowering contract of :class:`repro.trace.replay.TraceReplayWorkload`
is that a replayed program reproduces the source trace's *address
stream* (kind, address and address-dependence, in order) and *taken
stream* exactly, as observed by the reference interpreter — with the
replay's own bookkeeping (the branch-pattern array) excluded via
``internal_ranges``.
"""

import pytest

from repro.harness.registry import get_workload
from repro.trace import (TRACE_FAMILIES, TraceReplayWorkload, record_trace,
                         synthetic_trace)

#: Parameter points per family — small, but covering the stride mix,
#: entropy and footprint axes (a poor man's property-based grid; every
#: generator is deterministic, so these are stable).
FAMILY_POINTS = [
    ("mcf", {}),
    ("mcf", {"events": 500, "arcs": 0, "branch_entropy": 0.5}),
    ("mcf", {"events": 400, "footprint_bytes": 4096, "arcs": 3,
             "arc_stride_lines": 7}),
    ("stream", {}),
    ("stream", {"events": 300, "streams": 4, "stride_bytes": 8}),
    ("gcc", {}),
    ("gcc", {"events": 350, "store_fraction": 0.5, "branch_entropy": 0.5}),
    ("zipf", {}),
    ("zipf", {"events": 300, "hot_fraction": 0.5, "branch_every": 2}),
]


def _round_trip(trace):
    workload = TraceReplayWorkload(trace)
    recorded = record_trace(workload,
                            exclude_ranges=workload.internal_ranges)
    return workload, recorded


@pytest.mark.parametrize("family,params", FAMILY_POINTS)
def test_synthetic_round_trip(family, params):
    trace = synthetic_trace(family, **params)
    _, recorded = _round_trip(trace)
    assert [(e.kind, e.address, e.depends) for e in recorded.events
            if e.is_memory] == \
           [(e.kind, e.address, e.depends) for e in trace.events
            if e.is_memory]
    assert recorded.taken_stream() == trace.taken_stream()


@pytest.mark.parametrize("workload", ["mcf", "lbm", "reference"])
def test_recorded_workload_round_trip(workload):
    """Traces recorded from real kernels survive the round trip too."""
    trace = record_trace(get_workload(workload))
    _, recorded = _round_trip(trace)
    assert [(e.kind, e.address, e.depends) for e in recorded.events
            if e.is_memory] == \
           [(e.kind, e.address, e.depends) for e in trace.events
            if e.is_memory]
    assert recorded.taken_stream() == trace.taken_stream()


def test_every_family_is_covered():
    assert {family for family, _ in FAMILY_POINTS} == set(TRACE_FAMILIES)


def test_recorder_detects_pointer_chase_dependence():
    """The mcf kernel's next-pointer walk records as dependent loads."""
    trace = record_trace(get_workload("mcf"))
    assert trace.dependent_load_count() > 100
    # The streaming kernel has no address dependence at all.
    assert record_trace(get_workload("lbm")).dependent_load_count() == 0


def test_replay_runs_on_the_cycle_core():
    """The replayed program halts on the pipeline and commits exactly
    the instructions the straight-line lowering emitted (each *taken*
    replay branch skips its not-taken-path nop)."""
    trace = synthetic_trace("stream", events=200)
    workload = TraceReplayWorkload(trace)
    core = workload.run()
    program, _, _ = workload.materialize()
    assert core.halted
    skipped = sum(trace.taken_stream())
    assert core.stats.committed == len(program.instructions) - skipped

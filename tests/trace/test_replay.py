"""Replay workload semantics: dependence, registry, presets, files."""

from dataclasses import replace

import pytest

from repro.harness import presets
from repro.harness.registry import get_workload, workloads
from repro.runahead.base import NoRunahead
from repro.runahead.original import OriginalRunahead
from repro.trace import (Trace, TraceReplayWorkload, pointer_chase_trace,
                         synthetic_trace, trace_suite)


class TestDependenceLowering:
    def test_dependent_chase_serializes_the_baseline(self):
        """The dep-load re-serialization is load-bearing: stripping the
        flags lets the plain OoO core extract the chase's MLP itself
        (higher baseline IPC), while the faithful replay keeps the
        chase serial and leaves the gain to runahead's arc prefetches —
        the mcf asymmetry the trace engine exists to reproduce."""
        trace = pointer_chase_trace(events=800)
        stripped = Trace(name="flat",
                         events=[replace(e, depends=False)
                                 for e in trace.events],
                         meta=trace.meta)
        faithful = TraceReplayWorkload(trace, name="faithful")
        parallel = TraceReplayWorkload(stripped, name="parallel")
        base_faithful = faithful.run(runahead=NoRunahead()).stats
        base_parallel = parallel.run(runahead=NoRunahead()).stats
        assert base_faithful.ipc < base_parallel.ipc
        ra_faithful = faithful.run(runahead=OriginalRunahead()).stats
        speedup = ra_faithful.ipc / base_faithful.ipc
        assert speedup > 1.3, "runahead must reclaim the arc MLP"

    def test_memory_bound_trace_families_gain_from_runahead(self):
        for name in ("trace-mcf", "trace-stream"):
            workload = get_workload(name)
            base = workload.run(runahead=NoRunahead()).stats
            cont = workload.run(runahead=OriginalRunahead()).stats
            assert cont.ipc > base.ipc, name


class TestRegistry:
    def test_suite_names_resolve(self):
        table = workloads()
        for name in ("trace-mcf", "trace-stream", "trace-gcc",
                     "trace-zipf"):
            assert name in table
            assert table[name].name == name

    def test_trace_suite_is_reproducible(self):
        first = trace_suite()["trace-mcf"]
        second = trace_suite()["trace-mcf"]
        assert first.cache_key == second.cache_key
        assert first.trace.digest() == second.trace.digest()

    def test_trace_file_names_resolve(self, tmp_path):
        path = tmp_path / "tiny.trace"
        synthetic_trace("stream", events=60).save(path)
        workload = get_workload(f"trace:{path}")
        assert workload.run().halted

    def test_missing_trace_file_is_a_registry_error(self):
        with pytest.raises(KeyError, match="cannot read trace workload"):
            get_workload("trace:/nonexistent/missing.trace")

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError, match="rounds"):
            TraceReplayWorkload(synthetic_trace("stream", events=40),
                                rounds=0)

    def test_result_cache_key_tracks_trace_file_content(self, tmp_path):
        """Re-recording a trace file invalidates cached trials that
        replay it — the one external input the spec hash can't see."""
        from repro.harness.cache import ResultCache
        from repro.harness.spec import Trial

        path = tmp_path / "w.trace"
        synthetic_trace("stream", events=60).save(path)
        cache = ResultCache(root=tmp_path / "cache", code_version="x")
        trial = Trial(kind="ipc", params={"workload": f"trace:{path}"})
        first = cache.key(trial)
        assert cache.key(trial) == first          # stable while unchanged
        synthetic_trace("stream", events=80).save(path)
        assert cache.key(trial) != first
        plain = Trial(kind="ipc", params={"workload": "mcf"})
        assert cache.key(plain) == cache.key(plain)

    def test_cli_trace_argument_resolution(self, tmp_path, monkeypatch):
        """One precedence for every CLI surface: trace:<path> file, then
        family, then bare file path — including the record subcommand's
        own default output names (trace-mcf.trace)."""
        from repro.trace import resolve_trace_source, trace_workload_name

        assert trace_workload_name("mcf") == "trace-mcf"
        assert trace_workload_name("trace-mcf") == "trace-mcf"
        saved = tmp_path / "trace-mcf.trace"
        synthetic_trace("stream", events=60).save(saved)
        assert trace_workload_name(str(saved)) == f"trace:{saved}"
        assert resolve_trace_source(str(saved)).name == "stream"
        # A file named like a family loses to the family; trace: forces it.
        monkeypatch.chdir(tmp_path)
        synthetic_trace("stream", events=60).save(tmp_path / "mcf")
        assert trace_workload_name("mcf") == "trace-mcf"
        assert resolve_trace_source("trace:mcf").name == "stream"
        # Unresolvable names pass through to the registry's error.
        assert trace_workload_name("nosuch") == "nosuch"
        with pytest.raises(FileNotFoundError, match="families"):
            resolve_trace_source("nosuch")


class TestPresets:
    def test_trace_presets_exist_and_resolve(self):
        for name in ("fig7_traces", "trace_pressure_sweep"):
            sweep = presets.get(name).build()
            assert len(sweep) > 0
            quick = presets.get(name).build(quick=True)
            assert 0 < len(quick) <= len(sweep)

    def test_fig7_traces_covers_the_suite(self):
        sweep = presets.get("fig7_traces").build()
        assert {t.params["workload"] for t in sweep} == \
            set(presets.TRACE_KERNELS)

    def test_trace_pressure_rows(self):
        sweep = presets.get("trace_pressure_sweep").build()
        for trial in sweep:
            assert trial.kind == "extract"
            assert trial.params["cores"] >= 2
            if trial.params.get("corunner"):
                assert trial.params["corunner"].startswith("trace-")
                assert trial.params["corunner_runahead"] == "original"
        corunners = {t.params.get("corunner") for t in sweep}
        assert corunners == {None, "trace-stream", "trace-mcf"}

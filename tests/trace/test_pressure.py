"""The trace-pressure finding, pinned end to end.

``trace_pressure_sweep`` exists to show that the *structure* of
co-runner interference decides whether prime+probe's benign-run
calibration survives: the mcf-style chase trace (compact node graph +
arc arrays aliasing the probe entries' set range, densified by the
co-runner core's own runahead prefetching) floods the calibration
baseline over the secret's sets, while the streaming trace's contiguous
low band calibrates away.  Like the Fig. 9 monotonicity and the PR 4
smt_corunner finding, this is an empirical property of the committed
constants — re-verify here when retuning generator defaults or gadget
layout.
"""

import pytest

from repro.channel.extract import extract_secret

PRESSURE = dict(cores=3, corunner_runahead="original", trials=2, seed=7)
SECRET = "SC"


def test_mcf_trace_defeats_prime_probe_calibration():
    result = extract_secret(SECRET, receiver="prime-probe",
                            corunner="trace-mcf", **PRESSURE)
    assert result.success_rate == 0.0, \
        f"calibration survived: {result.recovered_text()!r}"


def test_streaming_trace_calibrates_away():
    result = extract_secret(SECRET, receiver="prime-probe",
                            corunner="trace-stream", **PRESSURE)
    assert result.success_rate == 1.0


def test_reload_channel_only_loses_bandwidth():
    """A trace co-runner in its own physical window cannot fake a reload
    hit; flush+reload stays correct under either trace family."""
    clean = extract_secret(SECRET, receiver="flush-reload", trials=2,
                           seed=7, cores=2)
    for corunner in ("trace-mcf", "trace-stream"):
        pressured = extract_secret(SECRET, receiver="flush-reload",
                                   corunner=corunner, **PRESSURE)
        assert pressured.success_rate == 1.0, corunner
        assert pressured.total_cycles > clean.total_cycles, \
            "real trace pressure must slow the run (contention)"


@pytest.mark.slow
def test_trace_presets_are_worker_count_invariant():
    """fig7_traces and trace_pressure_sweep are byte-identical at 1 and
    4 workers (trace workloads are pure functions of their generator
    parameters, so their trials shard like every other kind)."""
    from repro.harness import presets, run_sweep

    for name in ("fig7_traces", "trace_pressure_sweep"):
        serial = run_sweep(presets.get(name).build(quick=True),
                           workers=1, cache=None)
        sharded = run_sweep(presets.get(name).build(quick=True),
                            workers=4, cache=None)
        assert serial.to_json() == sharded.to_json(), name

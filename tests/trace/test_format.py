"""Trace format: events, derived views, and file round-trips."""

import pytest

from repro.trace import (BRANCH, LOAD, STORE, Trace, TraceEvent,
                         TraceFormatError, load_trace, make_trace)


def _sample():
    return make_trace("sample", [
        TraceEvent(pc=0x100, kind=LOAD, address=0x10_0040),
        TraceEvent(pc=0x104, kind=STORE, address=0x10_0080),
        TraceEvent(pc=0x108, kind=BRANCH, taken=True),
        TraceEvent(pc=0x10c, kind=LOAD, address=0x10_0040, depends=True),
        TraceEvent(pc=0x110, kind=BRANCH, taken=False),
    ], meta={"family": "unit"})


class TestEvents:
    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceFormatError, match="unknown event kind"):
            TraceEvent(pc=0, kind="jump")

    def test_rejects_misaligned_address(self):
        with pytest.raises(TraceFormatError, match="misaligned"):
            TraceEvent(pc=0, kind=LOAD, address=0x1001)

    def test_depends_only_on_loads(self):
        with pytest.raises(TraceFormatError, match="depends"):
            TraceEvent(pc=0, kind=STORE, address=0x40, depends=True)

    def test_branch_is_not_memory(self):
        assert not TraceEvent(pc=0, kind=BRANCH).is_memory
        assert TraceEvent(pc=0, kind=LOAD, address=8).is_memory


class TestDerivedViews:
    def test_streams_and_counts(self):
        trace = _sample()
        assert trace.address_stream() == [
            (LOAD, 0x10_0040), (STORE, 0x10_0080), (LOAD, 0x10_0040)]
        assert trace.taken_stream() == [True, False]
        assert trace.counts() == {LOAD: 2, STORE: 1, BRANCH: 2}
        assert trace.dependent_load_count() == 1
        assert trace.taken_rate() == 0.5
        assert trace.max_address() == 0x10_0080

    def test_footprint_and_set_stream(self):
        trace = _sample()
        assert trace.footprint_lines() == 2
        # paper L1D: 64 sets of 64B lines.
        sets = trace.set_stream(64)
        assert sets == [(0x10_0040 // 64) % 64, (0x10_0080 // 64) % 64,
                        (0x10_0040 // 64) % 64]

    def test_digest_covers_depends(self):
        trace = _sample()
        flat = make_trace("sample", [
            TraceEvent(e.pc, e.kind, e.address, e.taken, False)
            for e in trace.events], meta=trace.meta)
        assert trace.digest() != flat.digest()


class TestFileFormat:
    def test_text_round_trip(self):
        trace = _sample()
        loaded = Trace.loads(trace.dumps())
        assert loaded.name == trace.name
        assert loaded.meta == trace.meta
        assert [(e.kind, e.pc, e.address, e.taken, e.depends)
                for e in loaded.events] == \
               [(e.kind, e.pc, e.address, e.taken, e.depends)
                for e in trace.events]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "sample.trace"
        trace = _sample()
        trace.save(path)
        assert load_trace(path).digest() == trace.digest()

    def test_rejects_missing_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            Trace.loads("L 0 40\n")

    def test_rejects_malformed_event(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            Trace.loads("#repro-trace v1\nX 0 40\n")

"""Replay preserves the source trace's cache-set geometry.

Regression guard for the lowering's address mapping: today replay keeps
traced byte addresses verbatim, so set indices match by identity.  If
the lowering ever starts remapping addresses (compaction, window
packing), these tests pin the actual contract — the *set index
sequence* at every cache level, and the line-footprint size, must
survive — which is exactly what makes trace pressure representative.
"""

import pytest

from repro.harness.registry import make_config
from repro.trace import (TraceReplayWorkload, pattern_region, record_trace,
                         synthetic_trace)

GEOMETRIES = ("l1d", "l2", "l3")


@pytest.fixture(scope="module")
def hierarchy():
    return make_config("paper").hierarchy


@pytest.mark.parametrize("family", ["mcf", "stream", "gcc", "zipf"])
def test_replay_preserves_set_index_sequence(family, hierarchy):
    trace = synthetic_trace(family, events=400)
    workload = TraceReplayWorkload(trace)
    replayed = record_trace(workload,
                            exclude_ranges=workload.internal_ranges)
    for level in GEOMETRIES:
        config = getattr(hierarchy, level)
        assert replayed.set_stream(config.n_sets, config.line_bytes) == \
            trace.set_stream(config.n_sets, config.line_bytes), level
    assert replayed.footprint_lines() == trace.footprint_lines()


def test_pattern_region_sits_above_the_trace_footprint():
    """The lowering's one artifact (the branch-pattern array) must not
    collide with any traced line."""
    trace = synthetic_trace("gcc", events=400)
    region = pattern_region(trace)
    assert region is not None
    start, end = region
    assert start % 64 == 0
    assert start > trace.max_address()
    assert (end - start) // 8 == len(trace.branch_events())


def test_branchless_trace_has_no_pattern_region():
    trace = synthetic_trace("stream", events=120, branch_entropy=0.0)
    branchless = type(trace)(name="nobranch",
                             events=trace.memory_events(), meta={})
    assert pattern_region(branchless) is None
    workload = TraceReplayWorkload(branchless)
    assert workload.internal_ranges == ()
    assert workload.run().halted


def test_rounds_replay_the_stream_repeatedly():
    trace = synthetic_trace("stream", events=150)
    once = TraceReplayWorkload(trace, rounds=1, name="r1")
    twice = TraceReplayWorkload(trace, rounds=2, name="r2")
    rec1 = record_trace(once, exclude_ranges=once.internal_ranges)
    rec2 = record_trace(twice, exclude_ranges=twice.internal_ranges)
    mem1 = [(e.kind, e.address) for e in rec1.events if e.is_memory]
    mem2 = [(e.kind, e.address) for e in rec2.events if e.is_memory]
    assert mem2 == mem1 * 2
    # Distinct cache keys: the two programs must not share a build.
    assert once.cache_key != twice.cache_key

"""Original runahead execution: mechanics and invariants."""

import pytest

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.isa import int_reg
from repro.runahead import NoRunahead, OriginalRunahead


def run_core(source, image=None, config=None, runahead=None, **kwargs):
    program = assemble(source, memory_image=image)
    core = Core(program, memory_image=image,
                config=config or CoreConfig.small(),
                runahead=runahead or OriginalRunahead(),
                warm_icache=True, **kwargs)
    core.run(max_cycles=500_000)
    return core


def stall_program(image, tail):
    """Cold load at the head of the window, then ``tail``."""
    image.alloc_array("cold", 2)
    return f"""
        li r1, @cold
        load r2, r1, 0       # memory-level miss: triggers runahead
        {tail}
        halt
    """


class TestEntryExit:
    def test_enters_and_exits_once(self):
        image = MemoryImage()
        core = run_core(stall_program(image, ".repeat 100, nop"), image)
        assert core.halted
        assert core.stats.runahead_episodes == 1
        assert core.stats.pseudo_retired > 0
        assert core.stats.runahead_cycles > 0
        assert core.mode == "normal"

    def test_no_entry_without_controller(self):
        image = MemoryImage()
        core = run_core(stall_program(image, ".repeat 100, nop"), image,
                        runahead=NoRunahead())
        assert core.stats.runahead_episodes == 0
        assert core.stats.pseudo_retired == 0

    def test_no_entry_on_cache_hit(self):
        image = MemoryImage()
        addr = image.alloc_array("warm", 2)
        source = """
            li r1, @warm
            load r2, r1, 0
            load r3, r1, 0
            halt
        """
        program = assemble(source, memory_image=image)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=OriginalRunahead(), warm_icache=True)
        core.hierarchy.warm(addr)
        core.run(max_cycles=100_000)
        assert core.stats.runahead_episodes == 0

    def test_architectural_state_restored(self):
        image = MemoryImage()
        addr = image.alloc_array("cold", 2)
        image.write_word(addr, 1234)
        core = run_core("""
            li r1, @cold
            li r3, 7
            load r2, r1, 0
            addi r3, r2, 1       # depends on the stalling load
            halt
        """, image)
        assert core.halted
        assert core.stats.runahead_episodes == 1
        assert core.arch_regs[int_reg(2)] == 1234
        assert core.arch_regs[int_reg(3)] == 1235

    def test_async_flush_of_stalling_line_prolongs_runahead(self):
        """An external (co-resident attacker) flush of the stalling line
        during runahead prolongs the episode (Fig. 10 case ③)."""
        from repro.attack.window import measure_window
        from repro.runahead import OriginalRunahead

        base = measure_window(OriginalRunahead(), sled=512,
                              config=CoreConfig.small())
        extended = measure_window(OriginalRunahead(), async_flushes=1,
                                  sled=512, config=CoreConfig.small())
        assert extended.cycles > base.cycles
        assert extended.window >= base.window

    def test_self_flushing_program_livelocks(self):
        """A program that re-flushes its own stalling line livelocks the
        runahead machine: the younger clflush re-executes after every
        exit and re-drops the fill.  This is why the paper calls the
        repeated-flush scenario 'probabilistic' — it needs a second
        thread, not straight-line code."""
        from repro.attack.window import window_program

        program, image = window_program(sled=64, self_flushes=1)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=OriginalRunahead(), warm_icache=True)
        core.run(max_cycles=30_000)
        assert not core.halted
        assert core.stats.runahead_episodes > 5


class TestInvPropagation:
    def test_inv_sources_poison_dependents(self):
        image = MemoryImage()
        core = run_core(stall_program(image, """
            addi r3, r2, 1
            add r4, r3, r3
            .repeat 50, nop
        """), image)
        assert core.stats.inv_instructions >= 2

    def test_independent_work_executes_validly(self):
        image = MemoryImage()
        core = run_core(stall_program(image, """
            li r5, 3
            muli r6, r5, 7
            .repeat 50, nop
        """), image)
        # Independent instructions pseudo-retire with real values: the
        # INV count stays at 0 beyond load-dependent ones.
        assert core.stats.inv_instructions == 0
        assert core.arch_regs[int_reg(6)] == 21

    def test_inv_branch_never_resolves(self):
        image = MemoryImage()
        core = run_core(stall_program(image, """
            bge r2, r0, over      # predicate depends on stalling load
            nop
        over:
            .repeat 50, nop
        """), image)
        assert core.stats.inv_branches >= 1

    def test_valid_branch_resolves_inside_runahead(self):
        image = MemoryImage()
        core = run_core(stall_program(image, """
            li r5, 1
            beq r5, r0, nothere   # valid sources: resolves in runahead
            addi r6, r5, 1
        nothere:
            .repeat 50, nop
        """), image)
        assert core.stats.runahead_episodes == 1
        assert core.stats.inv_branches == 0


class TestPrefetchBenefit:
    def test_runahead_prefetches_miss_beyond_rob_reach(self):
        """The defining benefit (paper Fig. 5): an independent miss too far
        ahead for the ROB to reach is prefetched only under runahead."""
        def build_image():
            image = MemoryImage()
            image.alloc_array("cold_a", 2)
            image.alloc_array("cold_b", 2)
            return image

        # 60 nops > small-config ROB (32): without runahead the second
        # load cannot even dispatch until the first one completes.
        source = """
            li r1, @cold_a
            li r3, @cold_b
            load r2, r1, 0       # stalls; runahead begins
            .repeat 60, nop
            load r4, r3, 0       # beyond the ROB: prefetched by runahead
            halt
        """
        with_ra = run_core(source, build_image())
        without = run_core(source, build_image(), runahead=NoRunahead())
        assert with_ra.stats.runahead_prefetches >= 1
        # The two memory latencies overlap only under runahead.
        assert with_ra.stats.cycles < without.stats.cycles - 100

    def test_memory_miss_in_runahead_returns_inv_not_waits(self):
        image = MemoryImage()
        image.alloc_array("cold_a", 2)
        image.alloc_array("cold_b", 2)
        core = run_core("""
            li r1, @cold_a
            li r3, @cold_b
            load r2, r1, 0
            load r4, r3, 0       # second miss: INV result, prefetch issued
            addi r5, r4, 1       # poisoned
            halt
        """, image)
        assert core.stats.runahead_prefetches >= 1
        assert core.stats.inv_instructions >= 1
        # Architecture still correct after exit and re-execution.
        assert core.arch_regs[int_reg(5)] == 1


class TestRunaheadCache:
    def test_store_forwarding_through_runahead_cache(self):
        image = MemoryImage()
        image.alloc_array("cold", 2)
        image.alloc_array("scratch", 2)
        core = run_core("""
            li r1, @cold
            li r3, @scratch
            li r5, 88
            load r2, r1, 0
            store r5, r3, 0      # pseudo-retires into the runahead cache
            .repeat 30, nop
            load r6, r3, 0       # reads it back inside runahead
            halt
        """, image)
        assert core.runahead_cache.writes >= 1
        assert core.runahead_cache.hits >= 1
        # Architecture: the store *does* commit on re-execution.
        assert core.arch_regs[int_reg(6)] == 88

    def test_runahead_store_does_not_reach_memory_during_runahead(self):
        image = MemoryImage()
        image.alloc_array("cold", 2)
        scratch = image.alloc_array("scratch", 2)
        source = """
            li r1, @cold
            li r3, @scratch
            li r5, 88
            load r2, r1, 0
            store r5, r3, 0
            .repeat 200, nop
            halt
        """
        program = assemble(source, memory_image=image)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=OriginalRunahead(), warm_icache=True)
        # Step until we are inside runahead with the store pseudo-retired.
        while core.stats.pseudo_retired < 10 and core.cycle < 50_000:
            core.step()
        assert core.mode == "runahead"
        assert core.memory.read_word(scratch) == 0
        core.run(max_cycles=200_000)
        assert core.memory.read_word(scratch) == 88

"""Architectural transparency of runahead execution.

Runahead is a pure microarchitectural optimization: random programs run
with any runahead variant must end in exactly the same architectural
state as the functional interpreter.  Cold caches maximize runahead
entries, so these runs exercise checkpoint/restore, INV propagation and
pseudo-retirement heavily.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.runahead import OriginalRunahead

pytestmark = pytest.mark.slow

from ..pipeline.test_differential import (assert_same_architecture,
                                          random_program, _image)


def _controllers():
    from repro.runahead.precise import PreciseRunahead
    from repro.runahead.vector import VectorRunahead
    return {
        "original": OriginalRunahead,
        "precise": PreciseRunahead,
        "vector": VectorRunahead,
    }


class TestRunaheadTransparency:
    @given(random_program())
    @settings(max_examples=60, deadline=None)
    def test_original_runahead_preserves_architecture(self, source):
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        core = Core(program_b, memory_image=image_b,
                    config=CoreConfig.small(), runahead=OriginalRunahead(),
                    warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)

    @given(random_program(), st.sampled_from(["precise", "vector"]))
    @settings(max_examples=40, deadline=None)
    def test_variant_runahead_preserves_architecture(self, source, name):
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        controller = _controllers()[name]()
        core = Core(program_b, memory_image=image_b,
                    config=CoreConfig.small(), runahead=controller,
                    warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)

    def test_transparency_is_not_vacuous(self):
        """Deterministic guard: a straight-line cold-load program does
        trigger runahead under this harness (entry behaviour itself is
        covered in test_original.py)."""
        image = _image()
        source = ("li r10, @data\n" +
                  "\n".join(f"load r{1 + i % 7}, r10, {i * 8}"
                            for i in range(8)) + "\nhalt")
        program = assemble(source, memory_image=image)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=OriginalRunahead(), warm_icache=True)
        core.run(max_cycles=400_000)
        assert core.stats.runahead_episodes >= 1

"""Precise and vector runahead: variant-specific mechanisms."""

import pytest

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.runahead import (OriginalRunahead, PreciseRunahead, RunaheadCache,
                            VectorRunahead, compute_stall_slices)
from repro.runahead.vector import _StrideEntry


class TestStallSlices:
    def test_address_chain_is_in_slice(self):
        program = assemble("""
            li r1, 0x1000        # address chain
            addi r2, r1, 8
            load r3, r2, 0
            add r4, r3, r3       # consumer: NOT in slice
            halt
        """)
        slices = compute_stall_slices(program)
        assert {0, 1, 2} <= slices
        assert 3 not in slices

    def test_nested_chain(self):
        program = assemble("""
            li r1, 0x1000
            load r2, r1, 0       # produces an address
            load r3, r2, 0       # dependent load: r1, load r2 in slice
            halt
        """)
        slices = compute_stall_slices(program)
        assert {0, 1, 2} <= slices

    def test_pure_compute_not_in_slice(self):
        program = assemble("""
            li r1, 1
            li r5, 2
            mul r6, r5, r5       # feeds nothing address-like
            load r2, r1, 0
            halt
        """)
        slices = compute_stall_slices(program)
        assert 2 not in slices

    def test_ret_counts_as_load(self):
        program = assemble("ret")
        assert 0 in compute_stall_slices(program)


class TestPreciseRunahead:
    def test_filters_only_in_runahead(self):
        image = MemoryImage()
        image.alloc_array("cold", 2)
        source = """
            li r1, @cold
            load r2, r1, 0
            .repeat 40, muli r5, r5, 3
            halt
        """
        program = assemble(source, memory_image=image)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=PreciseRunahead(), warm_icache=True)
        core.run(max_cycles=200_000)
        assert core.halted
        assert core.stats.filtered_instructions > 0
        # Architecture unaffected by filtering.
        assert core.arch_regs[5] == 0    # r5 starts 0; muli keeps 0

    def test_filtered_instructions_use_no_backend(self):
        """With a huge non-slice body, precise runahead still pseudo-
        retires it entirely (nothing waits on the issue queue)."""
        image = MemoryImage()
        image.alloc_array("cold", 2)
        source = """
            li r1, @cold
            load r2, r1, 0
            .repeat 200, fmul f1, f2, f3
            halt
        """
        program = assemble(source, memory_image=image)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=PreciseRunahead(), warm_icache=True)
        core.run(max_cycles=200_000)
        assert core.stats.filtered_instructions >= 100

    def test_slice_size_property(self):
        image = MemoryImage()
        image.alloc_array("cold", 2)
        program = assemble("li r1, @cold\nload r2, r1, 0\nhalt",
                           memory_image=image)
        controller = PreciseRunahead()
        Core(program, memory_image=image, config=CoreConfig.small(),
             runahead=controller)
        assert controller.slice_size >= 2


class TestStrideDetection:
    def test_stride_entry_confidence(self):
        entry = _StrideEntry(100)
        entry.observe(164)
        assert entry.confidence == 1
        entry.observe(228)
        assert entry.confidence == 2
        entry.observe(300)    # stride broken
        assert entry.confidence <= 1

    def test_zero_stride_never_confident(self):
        entry = _StrideEntry(100)
        for _ in range(5):
            entry.observe(100)
        assert entry.confidence == 0

    def test_vector_prefetches_on_strided_stream(self):
        image = MemoryImage()
        image.alloc_array("stream", 1024)
        image.alloc_array("cold", 2)
        source = """
            li r1, @cold
            li r3, @stream
            li r4, 40
        warm_stride:
            load r5, r3, 0       # trains the stride table in normal mode
            addi r3, r3, 64
            addi r4, r4, -1
            bne r4, r0, warm_stride
            load r2, r1, 0       # stall: enter runahead
            li r4, 30
        ra_loop:
            load r5, r3, 0       # strided loads inside runahead
            addi r3, r3, 64
            addi r4, r4, -1
            bne r4, r0, ra_loop
            halt
        """
        program = assemble(source, memory_image=image)
        core = Core(program, memory_image=image, config=CoreConfig.paper(),
                    runahead=VectorRunahead(), warm_icache=True)
        core.run(max_cycles=500_000)
        assert core.halted
        assert core.stats.vector_prefetches > 0

    def test_vector_faster_than_original_on_strided_misses(self):
        def run(controller):
            image = MemoryImage()
            image.alloc_array("cold", 2)
            image.alloc_array("stream", 4096)
            source = """
                li r1, @cold
                li r3, @stream
                li r4, 100
            loop:
                load r5, r3, 0
                add r6, r6, r5
                addi r3, r3, 64
                load r2, r1, 0     # re-triggering stall each lap
                addi r4, r4, -1
                clflush r1, 0
                bne r4, r0, loop
                halt
            """
            program = assemble(source, memory_image=image)
            core = Core(program, memory_image=image,
                        config=CoreConfig.paper(), runahead=controller,
                        warm_icache=True)
            core.run(max_cycles=2_000_000)
            assert core.halted
            return core.stats.cycles

        original = run(OriginalRunahead())
        vector = run(VectorRunahead())
        # Scalar runahead already reaches every load of this short loop,
        # so vector's lane prefetches can only tie (plus channel noise);
        # the win case needs loops deeper than the runahead interval.
        assert vector <= original * 1.02


class TestRunaheadCache:
    def test_write_read_round_trip(self):
        cache = RunaheadCache(capacity=4)
        cache.write(0x100, 42, inv=False)
        assert cache.read(0x100) == (42, False)

    def test_inv_marker(self):
        cache = RunaheadCache(capacity=4)
        cache.write(0x100, 0, inv=True)
        value, inv = cache.read(0x100)
        assert inv

    def test_fifo_eviction(self):
        cache = RunaheadCache(capacity=2)
        cache.write(0x0, 1)
        cache.write(0x8, 2)
        cache.write(0x10, 3)
        assert cache.read(0x0) is None
        assert cache.read(0x10) == (3, False)

    def test_rewrite_updates_in_place(self):
        cache = RunaheadCache(capacity=2)
        cache.write(0x0, 1)
        cache.write(0x0, 9)
        assert len(cache) == 1
        assert cache.read(0x0) == (9, False)

    def test_clear_keeps_stats(self):
        cache = RunaheadCache(capacity=2)
        cache.write(0x0, 1)
        cache.read(0x0)
        cache.clear()
        assert len(cache) == 0
        assert cache.writes == 1
        assert cache.hits == 1

    def test_bad_capacity(self):
        import pytest
        with pytest.raises(ValueError):
            RunaheadCache(capacity=0)

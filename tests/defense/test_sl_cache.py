"""SL-cache unit tests (§6 quarantine buffer + counter C semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.defense import SLCache


class TestBasicOps:
    def test_insert_lookup(self):
        sl = SLCache(capacity=4)
        sl.insert(0x1000, btag=(1, 1), is_set={1}, ready_cycle=100)
        entry = sl.lookup(0x1000)
        assert entry is not None
        assert entry.is_usl
        assert entry.scope_ids == {1}
        assert sl.counter == 1

    def test_safe_entry(self):
        sl = SLCache(capacity=4)
        sl.insert(0x1000, btag=None, is_set=frozenset(), ready_cycle=0)
        assert not sl.lookup(0x1000).is_usl

    def test_btag_scope_counts_even_without_is(self):
        sl = SLCache(capacity=4)
        sl.insert(0x1000, btag=(3, 0), is_set=frozenset(), ready_cycle=0)
        assert sl.lookup(0x1000).scope_ids == {3}

    def test_promote_decrements_counter(self):
        sl = SLCache(capacity=4)
        sl.insert(0x1000, None, frozenset(), 0)
        entry = sl.promote(0x1000)
        assert entry is not None
        assert sl.counter == 0
        assert sl.lookup(0x1000) is None
        assert sl.stats.promotions == 1

    def test_capacity_fifo_eviction(self):
        sl = SLCache(capacity=2)
        sl.insert(0x0, None, frozenset(), 0)
        sl.insert(0x40, None, frozenset(), 0)
        sl.insert(0x80, None, frozenset(), 0)
        assert sl.lookup(0x0) is None        # oldest evicted
        assert sl.counter == 2
        assert sl.stats.evictions == 1

    def test_reinsert_replaces(self):
        sl = SLCache(capacity=2)
        sl.insert(0x0, None, frozenset(), 0)
        sl.insert(0x0, (1, 1), {1}, 50)
        assert sl.counter == 1
        assert sl.lookup(0x0).is_usl

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SLCache(capacity=0)


class TestScopeDeletion:
    def test_delete_by_btag_scope(self):
        sl = SLCache(capacity=8)
        sl.insert(0x0, (1, 1), {1}, 0)
        sl.insert(0x40, (2, 1), {2}, 0)
        deleted = sl.delete_scopes({1})
        assert deleted == 1
        assert sl.lookup(0x0) is None
        assert sl.lookup(0x40) is not None

    def test_delete_by_is_membership(self):
        sl = SLCache(capacity=8)
        sl.insert(0x0, None, {1, 2}, 0)   # outside-scope taint-related load
        assert sl.delete_scopes({2}) == 1

    def test_delete_nested_scopes_together(self):
        """Algorithm 1 line 16: the branch and its inner branches."""
        sl = SLCache(capacity=8)
        sl.insert(0x0, (1, 1), {1}, 0)
        sl.insert(0x40, (2, 1), {2}, 0)     # inner scope of 1
        sl.insert(0x80, (3, 1), {3}, 0)     # unrelated
        deleted = sl.delete_scopes({1, 2})
        assert deleted == 2
        assert sl.lookup(0x80) is not None

    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(1, 4)),
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_counter_equals_resident_entries(self, inserts):
        sl = SLCache(capacity=16)
        for line_slot, scope in inserts:
            sl.insert(line_slot * 64, (scope, 1), {scope}, 0)
            assert sl.counter == len(sl.lines())
            assert sl.counter <= 16

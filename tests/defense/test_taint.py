"""Taint tracker unit tests, including the Fig. 12 table cell-for-cell."""

import pytest

from repro.defense import TaintTracker
from repro.isa import Instruction, Opcode, int_reg


def load(dest, addr_reg):
    return Instruction(Opcode.LOAD, dest=int_reg(dest),
                       srcs=(int_reg(addr_reg),), imm=0)


def alu(dest, *src_regs):
    return Instruction(Opcode.ADD, dest=int_reg(dest),
                       srcs=tuple(int_reg(s) for s in src_regs))


class TestBasics:
    def test_untrusted_propagates_through_alu(self):
        tracker = TaintTracker(untrusted_regs=(int_reg(1),))
        tracker.on_instruction(0x0, alu(2, 1, 3))
        assert tracker.reg_taint[int_reg(2)]

    def test_clean_overwrite_clears_taint(self):
        tracker = TaintTracker(untrusted_regs=(int_reg(1),))
        tracker.on_instruction(0x0, alu(2, 1, 1))
        tracker.on_instruction(0x4, alu(2, 3, 4))
        assert int_reg(2) not in tracker.reg_taint

    def test_load_outside_scope_has_no_btag(self):
        tracker = TaintTracker()
        info = tracker.on_instruction(0x0, load(2, 3))
        assert info.btag is None
        assert not info.is_set

    def test_untainted_load_in_scope_gets_m_zero(self):
        tracker = TaintTracker()
        tracker.open_scope(0x0, 0x100, predicted_taken=False)
        info = tracker.on_instruction(0x4, load(2, 3))
        assert info.btag == (1, 0)
        assert not info.is_usl

    def test_tainted_load_in_scope_is_usl(self):
        tracker = TaintTracker(untrusted_regs=(int_reg(3),))
        scope = tracker.open_scope(0x0, 0x100, predicted_taken=False)
        info = tracker.on_instruction(0x4, load(2, 3))
        assert info.btag == (scope.scope_id, 1)
        assert info.is_set == {scope.scope_id}
        assert info.is_usl

    def test_scope_pops_at_end_address(self):
        tracker = TaintTracker()
        tracker.open_scope(0x0, 0x10, predicted_taken=False)
        tracker.on_instruction(0x10, alu(2, 3, 4))   # at Bne: popped
        assert tracker.innermost() is None

    def test_conservative_mode_marks_all_scope_loads(self):
        tracker = TaintTracker(conservative=True)
        tracker.open_scope(0x0, 0x100, predicted_taken=False)
        info = tracker.on_instruction(0x4, load(2, 3))
        assert info.is_usl

    def test_descendants_follow_nesting(self):
        tracker = TaintTracker()
        outer = tracker.open_scope(0x0, 0x100, predicted_taken=False)
        inner = tracker.open_scope(0x10, 0x50, predicted_taken=False)
        assert tracker.descendants(outer.scope_id) == \
            {outer.scope_id, inner.scope_id}
        assert tracker.descendants(inner.scope_id) == {inner.scope_id}

    def test_reset_clears_state_but_keeps_scope_records(self):
        tracker = TaintTracker(untrusted_regs=(int_reg(1),))
        scope = tracker.open_scope(0x0, 0x100, predicted_taken=False)
        tracker.reset()
        assert tracker.innermost() is None
        assert tracker.reg_taint[int_reg(1)]      # untrusted re-marked
        assert scope.scope_id in tracker.scopes   # records persist


def fig12_trace():
    """The exact machine-code sequence of Fig. 12.

    Register assignment: rA..rH = r1..r8 (clean base addresses),
    rX = r9, rY = r10 (untrusted), r0..r14 of the figure = r11..r25.
    """
    rA, rB, rC, rD, rE, rF, rG, rH = range(1, 9)
    rX, rY = 9, 10
    out = lambda n: n + 11     # figure's r<n> -> our r<n+11>
    return [
        # inside B1 (scope 1), which spans the whole listing to B1e
        ("load r0 (rA)", load(out(0), rA)),
        ("r1 = rB + rX", alu(out(1), rB, rX)),
        ("load r2 (r1)", load(out(2), out(1))),
        ("r3 = rC * r2", alu(out(3), rC, out(2))),
        # inner branch B2 opens here (scope 2)
        ("r4 = rD - rY", alu(out(4), rD, rY)),
        ("load r5 (r4)", load(out(5), out(4))),
        ("r6 = r5 + r2", alu(out(6), out(5), out(2))),
        ("load r7 (r6)", load(out(7), out(6))),
        # B2 ends
        ("r8 = r3 - rE", alu(out(8), out(3), rE)),
        ("load r9 (r8)", load(out(9), out(8))),
        # B1 ends
        ("r10 = rF + r9", alu(out(10), rF, out(9))),
        ("load r11 (r10)", load(out(11), out(10))),
        ("r12 = rG * r7", alu(out(12), rG, out(7))),
        ("load r13 (r12)", load(out(13), out(12))),
        ("load r14 (rH)", load(out(14), rH)),
    ], rX, rY


class TestFig12:
    """Reproduce the Btag / IS assignment table of Fig. 12 exactly."""

    def run_trace(self):
        rows, rX, rY = fig12_trace()
        tracker = TaintTracker(untrusted_regs=(int_reg(rX), int_reg(rY)))
        results = {}
        pc = 0
        b1 = tracker.open_scope(pc, end_pc=10 * 4, predicted_taken=False)
        for index, (label, instr) in enumerate(rows):
            pc = index * 4
            if index == 4:
                b2 = tracker.open_scope(pc, end_pc=8 * 4,
                                        predicted_taken=False)
            results[label] = tracker.on_instruction(pc, instr)
        return results, b1.scope_id, b2.scope_id

    def test_btag_column(self):
        results, b1, b2 = self.run_trace()
        assert results["load r0 (rA)"].btag == (b1, 0)
        assert results["load r2 (r1)"].btag == (b1, 1)
        assert results["load r5 (r4)"].btag == (b2, 1)
        assert results["load r7 (r6)"].btag == (b2, 2)
        assert results["load r9 (r8)"].btag == (b1, 2)
        assert results["load r11 (r10)"].btag is None   # outside: Btag 0
        assert results["load r13 (r12)"].btag is None
        assert results["load r14 (rH)"].btag is None

    def test_is_column(self):
        results, b1, b2 = self.run_trace()
        assert results["load r0 (rA)"].is_set == set()
        assert results["load r2 (r1)"].is_set == {b1}
        assert results["load r5 (r4)"].is_set == {b2}
        assert results["load r7 (r6)"].is_set == {b1, b2}
        assert results["load r9 (r8)"].is_set == {b1}
        assert results["load r11 (r10)"].is_set == {b1}   # outside scope!
        assert results["load r13 (r12)"].is_set == {b1, b2}
        assert results["load r14 (rH)"].is_set == set()

    def test_rendering(self):
        results, b1, b2 = self.run_trace()
        names = {b1: "B1", b2: "B2"}
        assert results["load r2 (r1)"].render_btag(names) == "B1,1"
        assert results["load r7 (r6)"].render_is(names) == "B1, B2"
        assert results["load r14 (rH)"].render_is(names) == "0"
        assert results["load r14 (rH)"].render_btag(names) == "0"

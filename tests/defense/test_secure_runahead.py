"""End-to-end tests of the §6 defenses."""

import pytest

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.attack import run_specrun
from repro.defense import BranchRestrictedRunahead, SecureRunahead
from repro.isa import int_reg
from repro.runahead import OriginalRunahead


class TestSecureRunaheadBlocksAttacks:
    def test_blocks_pht_poc(self):
        result = run_specrun("pht", runahead=SecureRunahead())
        assert not result.leaked

    @pytest.mark.parametrize("variant", ["btb", "rsb-overwrite",
                                         "rsb-flush"])
    def test_blocks_indirect_variants(self, variant):
        """Our episode-long indirect scopes extend the paper's scheme to
        the Fig. 4 variants."""
        result = run_specrun(variant, runahead=SecureRunahead())
        assert not result.leaked

    def test_blocks_beyond_rob_attack(self):
        result = run_specrun("pht", runahead=SecureRunahead(),
                             secret_value=127, nop_padding=300)
        assert not result.leaked

    def test_secret_line_never_enters_hierarchy(self):
        """Stronger than 'no dip': the transmit line must not be present
        in any cache level after the attack."""
        from repro.attack import SpecRunAttack

        attack = SpecRunAttack("pht", runahead=SecureRunahead())
        program = attack.attack
        core = Core(program.program, memory_image=program.image,
                    config=attack.config, runahead=attack.runahead,
                    initial_sp=program.initial_sp, warm_icache=True)
        core.run(max_cycles=3_000_000)
        assert core.halted
        # The deletion happened (entries were quarantined then dropped).
        controller = attack.runahead
        assert controller.sl.stats.inserts >= 1
        assert controller.sl.stats.deletions >= 1


class TestBranchSkipBlocksAttacks:
    def test_blocks_pht_poc(self):
        controller = BranchRestrictedRunahead()
        result = run_specrun("pht", runahead=controller)
        assert not result.leaked
        assert controller.skipped_branches >= 1

    @pytest.mark.parametrize("variant", ["btb", "rsb-flush"])
    def test_blocks_indirect_variants_by_stopping_fetch(self, variant):
        controller = BranchRestrictedRunahead()
        result = run_specrun(variant, runahead=controller)
        assert not result.leaked
        assert controller.stopped_fetches >= 1


class TestDefensePreservesSemantics:
    """The defenses are microarchitectural: architecture must not change."""

    def test_secure_runahead_differential(self):
        from ..pipeline.test_differential import (assert_same_architecture,
                                                  _image)
        source = """
            li r10, @data
            li r11, 6
        loop:
            load r1, r10, 0
            addi r2, r1, 3
            store r2, r10, 64
            load r3, r10, 64
            addi r10, r10, 8
            addi r11, r11, -1
            bne r11, r0, loop
            halt
        """
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        core = Core(program_b, memory_image=image_b,
                    config=CoreConfig.small(), runahead=SecureRunahead(),
                    warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)

    def test_branch_skip_differential(self):
        from ..pipeline.test_differential import (assert_same_architecture,
                                                  _image)
        source = """
            li r10, @data
            load r1, r10, 0
            bge r1, r0, skip     # INV predicate: skipped in runahead
            addi r2, r2, 1
        skip:
            addi r3, r1, 5
            halt
        """
        image_a, image_b = _image(), _image()
        program_a = assemble(source, memory_image=image_a)
        program_b = assemble(source, memory_image=image_b)
        core = Core(program_b, memory_image=image_b,
                    config=CoreConfig.small(),
                    runahead=BranchRestrictedRunahead(), warm_icache=True)
        core.run(max_cycles=400_000)
        assert_same_architecture(program_a, image_a, image_b, core)


class TestSecureRunaheadPreservesBenefit:
    def test_safe_prefetches_promote_through_sl(self):
        """A benign memory-bound kernel still benefits: SL entries of
        correctly-predicted (or unscoped) loads promote on first use."""
        def build():
            image = MemoryImage()
            image.alloc_array("a", 256)
            image.alloc_array("b", 256)
            source = """
                li r10, @a
                li r11, @b
                li r12, 16
            loop:
                load r1, r10, 0       # independent streams of misses
                load r2, r11, 0
                add r3, r1, r2
                addi r10, r10, 64
                addi r11, r11, 64
                addi r12, r12, -1
                bne r12, r0, loop
                halt
            """
            return assemble(source, memory_image=image), image

        def run(controller):
            program, image = build()
            core = Core(program, memory_image=image,
                        config=CoreConfig.paper(), runahead=controller,
                        warm_icache=True)
            core.run(max_cycles=1_000_000)
            assert core.halted
            return core

        secure = run(SecureRunahead())
        assert secure.runahead.sl.stats.inserts >= 1
        assert secure.runahead.sl.stats.promotions >= 1

    def test_usl_wait_timeout_recovers(self):
        """A USL whose branch never re-resolves is dropped after the wait
        limit instead of deadlocking."""
        image = MemoryImage()
        image.alloc_array("cold", 2)
        image.alloc_array("tbl", 64)
        # The scope branch depends on the stalling load; post-exit the
        # architectural path jumps away before re-resolving it.
        source = """
            li r10, @cold
            li r11, @tbl
            li r13, 1
            load r1, r10, 0      # stalling load
            beq r13, r0, side    # never taken architecturally
            bge r1, r0, over     # INV scope branch (taken architecturally)
            load r2, r11, 512    # USL inside scope
        over:
            load r3, r11, 512    # post-exit access to the quarantined line
            halt
        side:
            halt
        """
        program = assemble(source, memory_image=image)
        controller = SecureRunahead(usl_wait_limit=200)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=controller, warm_icache=True)
        core.run(max_cycles=500_000)
        assert core.halted

"""Workload generator tests (the Fig. 7 kernel set)."""

import pytest

from repro.pipeline import CoreConfig
from repro.runahead import NoRunahead, OriginalRunahead
from repro.workloads import (FIG7_ORDER, build_mcf_like, build_zeusmp_like,
                             geometric_mean_speedup, ipc_comparison,
                             spec_like_suite)


@pytest.fixture(scope="module")
def suite():
    return spec_like_suite()


class TestSuiteStructure:
    def test_all_six_benchmarks_present(self, suite):
        assert set(suite) == set(FIG7_ORDER)
        assert len(FIG7_ORDER) == 6   # zeusm, wrf, bwave, lbm, mcf, Gems

    def test_memory_bound_classification(self, suite):
        assert not suite["zeusmp"].memory_bound
        assert not suite["wrf"].memory_bound
        for name in ("bwaves", "lbm", "mcf", "gems"):
            assert suite[name].memory_bound

    def test_builders_are_reproducible(self, suite):
        program_a, image_a, _ = suite["mcf"].build()
        program_b, image_b, _ = suite["mcf"].build()
        assert len(program_a) == len(program_b)
        assert image_a.initial_words() == image_b.initial_words()


class TestKernelsRun:
    @pytest.mark.parametrize("name", FIG7_ORDER)
    def test_kernel_halts_on_both_machines(self, suite, name):
        for controller in (NoRunahead(), OriginalRunahead()):
            core = suite[name].run(runahead=controller)
            assert core.halted
            assert core.stats.committed > 500

    def test_mcf_chain_is_a_permutation(self):
        """Every node is visited exactly once per lap of the chase."""
        workload = build_mcf_like(nodes=32)
        program, image, _ = workload.build()
        base = image.address_of("nodes")
        seen = set()
        addr = base
        for _ in range(32):
            assert addr not in seen
            seen.add(addr)
            addr = image.initial_words()[addr]
        assert addr == base   # closed cycle
        assert len(seen) == 32


class TestRunaheadBehaviour:
    def test_memory_bound_kernels_gain(self, suite):
        for name in ("lbm", "gems"):
            _, _, speedup = ipc_comparison(
                suite[name], NoRunahead(), OriginalRunahead())
            assert speedup > 1.05, f"{name}: {speedup:.3f}"

    def test_compute_bound_kernel_gains_little(self, suite):
        _, _, speedup = ipc_comparison(
            suite["zeusmp"], NoRunahead(), OriginalRunahead())
        assert 0.95 < speedup < 1.12

    def test_runahead_triggers_on_memory_bound(self, suite):
        core = suite["gems"].run(runahead=OriginalRunahead())
        assert core.stats.runahead_episodes >= 1
        assert core.stats.runahead_prefetches >= 10

    def test_geomean_helper(self):
        rows = [{"speedup": 1.0}, {"speedup": 4.0}]
        assert geometric_mean_speedup(rows) == pytest.approx(2.0)
        assert geometric_mean_speedup([]) == 0.0

    def test_architectural_result_stable_under_runahead(self, suite):
        """The mcf accumulator must be identical with and without
        runahead (workload-level differential check)."""
        base = suite["mcf"].run(runahead=NoRunahead())
        ra = suite["mcf"].run(runahead=OriginalRunahead())
        reg = 5   # r5 accumulates costs
        assert base.arch_regs[reg] == ra.arch_regs[reg]
        assert base.arch_regs[reg] != 0

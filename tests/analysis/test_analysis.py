"""Unit tests for threshold/leak analysis and report rendering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (analyze_probe, classify_hits, format_bars,
                            format_latency_plot, format_table,
                            largest_gap_threshold, normalized)


class TestThresholds:
    def test_clear_bimodal_split(self):
        latencies = [250] * 100 + [10] + [250] * 155
        threshold = largest_gap_threshold(latencies)
        assert threshold is not None
        assert 10 < threshold < 250

    def test_unimodal_returns_none(self):
        assert largest_gap_threshold([250] * 256) is None

    def test_small_jitter_not_split(self):
        latencies = [250, 251, 252, 253] * 64
        assert largest_gap_threshold(latencies) is None

    def test_classify_finds_single_hit(self):
        latencies = [250] * 256
        latencies[86] = 12
        hits, threshold = classify_hits(latencies)
        assert hits == [86]
        assert threshold > 12

    def test_classify_with_explicit_threshold(self):
        hits, threshold = classify_hits([100, 5, 100], threshold=50)
        assert hits == [1]
        assert threshold == 50

    def test_empty_and_short_inputs(self):
        assert largest_gap_threshold([]) is None
        assert largest_gap_threshold([5]) is None

    @given(st.lists(st.integers(200, 300), min_size=8, max_size=64),
           st.integers(2, 40))
    @settings(max_examples=50, deadline=None)
    def test_single_planted_dip_always_found(self, base, dip_value):
        index = len(base) // 2
        latencies = list(base)
        latencies[index] = dip_value
        hits, _ = classify_hits(latencies)
        assert hits == [index]


class TestThresholdEdgeCases:
    """Pin the exact behaviour of largest_gap_threshold at its edges."""

    def test_all_equal_latencies(self):
        assert largest_gap_threshold([7, 7, 7, 7]) is None
        assert largest_gap_threshold([0, 0]) is None

    def test_two_point_input_splits_midway(self):
        # Low "cluster" is a single point (spread 0) so the guard
        # compares against max(spread, 1): any gap >= 2 splits.
        threshold = largest_gap_threshold([10, 250])
        assert threshold == 10 + (250 - 10) // 2
        hits, _ = classify_hits([10, 250])
        assert hits == [0]

    def test_two_point_minimal_gap_rejected(self):
        # Gap of 1 < 2 * max(spread=0, 1): unimodal by the guard.
        assert largest_gap_threshold([10, 11]) is None
        assert largest_gap_threshold([10, 12]) == 11

    def test_noise_guard_rejects_wide_low_cluster(self):
        # Largest gap 15 at the top, but the low cluster spans 10:
        # 15 < 2 * 10, so no split (slow drift is not bimodality).
        assert largest_gap_threshold([0, 5, 10, 25]) is None
        # Double the gap and it clears the guard.
        assert largest_gap_threshold([0, 5, 10, 31]) is not None

    def test_tie_in_gap_size_first_gap_wins(self):
        # Gaps of 10 between (0,10) and (10,20): the first strict
        # maximum is kept, so the split lands below 10 and only the
        # lowest value classifies as a hit.
        threshold = largest_gap_threshold([0, 10, 20])
        assert threshold == 5
        hits, _ = classify_hits([20, 0, 10])
        assert hits == [1]

    def test_unsorted_input_equivalent(self):
        latencies = [250] * 10 + [12]
        assert largest_gap_threshold(latencies) == \
            largest_gap_threshold(sorted(latencies))


class TestLeakReport:
    def test_single_dip_recovered(self):
        latencies = [260] * 256
        latencies[42] = 8
        report = analyze_probe(latencies)
        assert report.leaked
        assert report.recovered == 42
        assert "42" in report.describe()

    def test_no_dip_no_leak(self):
        report = analyze_probe([260] * 256)
        assert not report.leaked
        assert report.hits == []
        assert "no leak" in report.describe()

    def test_ignored_indices_excluded(self):
        latencies = [260] * 256
        latencies[0] = 8
        latencies[99] = 8
        report = analyze_probe(latencies, ignore_indices=(0,))
        assert report.recovered == 99

    def test_multiple_hits_never_recover(self):
        latencies = [260] * 256
        latencies[10] = 8
        latencies[20] = 8
        report = analyze_probe(latencies)
        assert report.hits == [10, 20]
        assert report.recovered is None


class TestExpectedHitsSemantics:
    """expected_hits reports, it never changes recovery (explicit since
    the PR that removed the silent fallback override)."""

    def test_single_hit_recovers_regardless_of_expected(self):
        latencies = [260] * 64
        latencies[5] = 8
        for expected in (0, 1, 2, 7):
            report = analyze_probe(latencies, expected_hits=expected)
            assert report.recovered == 5
            assert report.expected_hits == expected
        assert analyze_probe(latencies, expected_hits=1).hits_as_expected
        assert not analyze_probe(latencies,
                                 expected_hits=2).hits_as_expected

    def test_two_hits_match_expected_two_but_stay_unrecovered(self):
        latencies = [260] * 64
        latencies[5] = 8
        latencies[9] = 8
        report = analyze_probe(latencies, expected_hits=2)
        assert report.hits_as_expected
        assert report.recovered is None          # ambiguous by design

    def test_no_hits_matches_expected_zero(self):
        report = analyze_probe([260] * 64, expected_hits=0)
        assert report.hits_as_expected
        assert report.recovered is None

    def test_exclusions_feed_the_expected_count(self):
        latencies = [260] * 64
        latencies[0] = 8
        latencies[5] = 8
        report = analyze_probe(latencies, expected_hits=1,
                               ignore_indices=(0,))
        assert report.hits == [5]
        assert report.hits_as_expected
        assert report.recovered == 5


class TestReportRendering:
    def test_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_bars_scale_to_peak(self):
        text = format_bars(["x", "y"], [1.0, 2.0], width=10)
        x_line, y_line = text.splitlines()
        assert y_line.count("#") == 10
        assert x_line.count("#") == 5

    def test_latency_plot_contains_axis(self):
        text = format_latency_plot([250] * 128 + [10] + [250] * 127)
        assert "+" in text
        assert "*" in text

    def test_normalized(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]
        assert normalized([1.0], 0.0) == [0.0]

    def test_empty_inputs(self):
        assert format_bars([], []) == "(no data)"
        assert format_latency_plot([]) == "(no data)"

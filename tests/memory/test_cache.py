"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import CacheConfig, SetAssociativeCache


def make_cache(size=1024, assoc=2, line=64, replacement="lru"):
    return SetAssociativeCache(
        CacheConfig("test", size, assoc, line_bytes=line,
                    replacement=replacement))


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        assert cache.config.n_sets == 8
        assert cache.config.n_lines == 16

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 2, line_bytes=64)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheConfig("bad", 3 * 64 * 2, 2))

    def test_line_of_masks_offset(self):
        cache = make_cache()
        assert cache.line_of(0x1234) == 0x1200


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offsets(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x1038)  # same 64B line

    def test_probe_has_no_side_effects(self):
        cache = make_cache()
        cache.fill(0x1000)
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.probe(0x1000)
        assert not cache.probe(0x2000)
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.probe(0x1000)
        assert not cache.invalidate(0x1000)


class TestEviction:
    def test_lru_evicts_least_recent(self):
        cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
        # Three lines mapping to set 0: line numbers 0, 2, 4 (stride 128).
        cache.fill(0x000)
        cache.fill(0x100)
        cache.lookup(0x000)          # refresh line 0
        evicted = cache.fill(0x200)  # must evict 0x100
        assert evicted == 0x100
        assert cache.probe(0x000)
        assert not cache.probe(0x100)

    def test_fifo_ignores_hits(self):
        cache = make_cache(size=256, assoc=2, line=64, replacement="fifo")
        cache.fill(0x000)
        cache.fill(0x100)
        cache.lookup(0x000)          # does not refresh under FIFO
        evicted = cache.fill(0x200)
        assert evicted == 0x000

    def test_refill_of_resident_line_evicts_nothing(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.fill(0x1000) is None
        assert cache.stats.evictions == 0

    def test_random_policy_is_deterministic(self):
        results = []
        for _ in range(2):
            cache = make_cache(size=256, assoc=2, replacement="random")
            cache.fill(0x000)
            cache.fill(0x100)
            results.append(cache.fill(0x200))
        assert results[0] == results[1]
        assert results[0] in (0x000, 0x100)


class TestOccupancyInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200),
           st.sampled_from(["lru", "fifo", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, line_indices, policy):
        cache = make_cache(size=512, assoc=2, line=64, replacement=policy)
        for index in line_indices:
            cache.fill(index * 64)
            assert cache.occupancy() <= cache.config.n_lines
            for ways in cache._sets:
                assert len(ways) <= cache.config.assoc

    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=31)),
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_fill_then_probe_consistency(self, ops):
        """A line is present iff its last fill was not followed by eviction
        or invalidation — tracked against a reference set."""
        cache = make_cache(size=4096, assoc=64, line=64)  # 1 set, 64 ways
        reference = set()
        for is_fill, index in ops:
            addr = index * 64
            if is_fill:
                cache.fill(addr)
                reference.add(addr)   # assoc 64 > 32 lines: never evicts
            else:
                cache.invalidate(addr)
                reference.discard(addr)
            assert cache.probe(addr) == (addr in reference)

    def test_resident_lines_round_trip(self):
        cache = make_cache()
        for addr in (0x0, 0x40, 0x80):
            cache.fill(addr)
        assert sorted(cache.resident_lines()) == [0x0, 0x40, 0x80]

    def test_reset_clears_everything(self):
        cache = make_cache()
        cache.fill(0x1000)
        cache.lookup(0x1000)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.stats.accesses == 0

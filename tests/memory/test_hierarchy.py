"""Unit tests for the memory hierarchy: lazy fills, merging, clflush."""

import pytest

from repro.memory import (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_MEM,
                          LEVEL_PENDING, CoreView, HierarchyConfig,
                          MainMemory, MemoryChannel, MemoryHierarchy,
                          SharedHierarchy)


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(HierarchyConfig.paper())


class TestLatencies:
    def test_cold_miss_goes_to_memory(self, hierarchy):
        result = hierarchy.access_data(0x1000, now=0)
        assert result.level == LEVEL_MEM
        # L1 (2) + L2 (8) + L3 (32) + memory (200).
        assert result.latency == 242

    def test_l1_hit_after_fill_completes(self, hierarchy):
        first = hierarchy.access_data(0x1000, now=0)
        result = hierarchy.access_data(0x1000, now=first.completion + 1)
        assert result.level == LEVEL_L1
        assert result.latency == 2

    def test_l2_and_l3_hits(self, hierarchy):
        first = hierarchy.access_data(0x1000, now=0)
        now = first.completion + 1
        hierarchy.apply_completed(now)
        hierarchy.l1d.invalidate(0x1000)
        result = hierarchy.access_data(0x1000, now=now)
        assert result.level == LEVEL_L2
        assert result.latency == 10
        hierarchy.l1d.invalidate(0x1000)
        hierarchy.l2.invalidate(0x1000)
        result = hierarchy.access_data(0x1000, now=now + 1)
        assert result.level == LEVEL_L3
        assert result.latency == 42

    def test_warm_skips_timing(self, hierarchy):
        hierarchy.warm(0x2000)
        result = hierarchy.access_data(0x2000, now=0)
        assert result.level == LEVEL_L1


class TestLazyFills:
    def test_line_invisible_until_completion(self, hierarchy):
        first = hierarchy.access_data(0x1000, now=0)
        assert not hierarchy.present_in(0x1000, LEVEL_L1)
        mid = hierarchy.access_data(0x1000, now=first.completion - 10)
        assert mid.level == LEVEL_PENDING
        assert mid.merged
        assert mid.latency == 10
        hierarchy.apply_completed(first.completion)
        assert hierarchy.present_in(0x1000, LEVEL_L1)
        assert hierarchy.present_in(0x1000, LEVEL_L2)
        assert hierarchy.present_in(0x1000, LEVEL_L3)

    def test_merged_request_issues_no_new_memory_request(self, hierarchy):
        hierarchy.access_data(0x1000, now=0)
        before = hierarchy.stats.mem_requests
        hierarchy.access_data(0x1000, now=5)
        assert hierarchy.stats.mem_requests == before
        assert hierarchy.stats.merged_requests == 1

    def test_no_fill_access_returns_data_without_install(self, hierarchy):
        result = hierarchy.access_data(0x1000, now=0, fill=False)
        hierarchy.apply_completed(result.completion + 1)
        assert not hierarchy.present_in(0x1000, LEVEL_L1)
        assert not hierarchy.present_in(0x1000, LEVEL_L3)

    def test_merge_upgrades_no_fill_to_fill(self, hierarchy):
        result = hierarchy.access_data(0x1000, now=0, fill=False)
        hierarchy.access_data(0x1000, now=1, fill=True)
        hierarchy.apply_completed(result.completion + 1)
        assert hierarchy.present_in(0x1000, LEVEL_L1)

    def test_next_event_tracks_earliest_completion(self, hierarchy):
        assert hierarchy.next_event() is None
        first = hierarchy.access_data(0x1000, now=0)
        second = hierarchy.access_data(0x4000, now=3)
        assert hierarchy.next_event() == min(first.completion,
                                             second.completion)


class TestClflush:
    def test_flush_evicts_all_levels(self, hierarchy):
        hierarchy.warm(0x1000)
        hierarchy.flush_line(0x1000)
        for level in (LEVEL_L1, LEVEL_L2, LEVEL_L3):
            assert not hierarchy.present_in(0x1000, level)

    def test_flush_in_flight_drops_fill_but_waiter_completes(self, hierarchy):
        first = hierarchy.access_data(0x1000, now=0)
        hierarchy.flush_line(0x1000)   # Fig. 10 case ③
        hierarchy.apply_completed(first.completion + 1)
        assert not hierarchy.present_in(0x1000, LEVEL_L1)
        assert hierarchy.stats.dropped_fills == 1
        # A new access after the drop restarts a real memory request.
        again = hierarchy.access_data(0x1000, now=first.completion + 2)
        assert again.level == LEVEL_MEM

    def test_flush_then_reload_timing_gap(self, hierarchy):
        """The covert-channel primitive: flushed lines are slow, cached fast."""
        hierarchy.warm(0x8000)
        hit = hierarchy.access_data(0x8000, now=0)
        hierarchy.flush_line(0x8000)
        miss = hierarchy.access_data(0x8000, now=100)
        assert miss.latency > 5 * hit.latency


class TestContention:
    def test_back_to_back_misses_queue(self):
        hierarchy = MemoryHierarchy(HierarchyConfig.paper())
        first = hierarchy.access_data(0x0000, now=0)
        second = hierarchy.access_data(0x4000, now=0)
        assert second.completion == first.completion + \
            hierarchy.config.mem_occupancy

    def test_channel_idle_restart(self):
        channel = MemoryChannel(latency=100, occupancy=10)
        assert channel.request(0) == 100
        assert channel.request(0) == 110
        assert channel.request(500) == 600

    def test_channel_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MemoryChannel(latency=0)


class TestInstructionPath:
    def test_inst_miss_fills_l1i_not_l1d(self, hierarchy):
        result = hierarchy.access_inst(0x0, now=0)
        assert result.level == LEVEL_MEM
        hierarchy.apply_completed(result.completion + 1)
        assert hierarchy.l1i.probe(0x0)
        assert not hierarchy.l1d.probe(0x0)

    def test_inst_hit(self, hierarchy):
        first = hierarchy.access_inst(0x0, now=0)
        result = hierarchy.access_inst(0x0, now=first.completion + 1)
        assert result.level == LEVEL_L1
        assert result.latency == 2


class TestFacade:
    """A standalone MemoryHierarchy IS a single view of its own shared
    level — the facade the multi-core subsystem generalizes."""

    def test_memory_hierarchy_is_the_core_view(self):
        assert CoreView is MemoryHierarchy

    def test_standalone_builds_its_own_shared_level(self, hierarchy):
        assert hierarchy.shared.views == [hierarchy]
        assert hierarchy.l3 is hierarchy.shared.l3
        assert hierarchy.channel is hierarchy.shared.channel
        assert not hierarchy.shared.inclusive

    def test_explicit_single_view_behaves_identically(self):
        explicit = SharedHierarchy(HierarchyConfig.paper(), cores=1).core(0)
        implicit = MemoryHierarchy(HierarchyConfig.paper())
        for h in (explicit, implicit):
            first = h.access_data(0x1000, now=0)
            assert first.level == LEVEL_MEM
            h.apply_completed(first.completion)
        assert explicit.probe_latency(0x1000, 10_000) == \
            implicit.probe_latency(0x1000, 10_000)

    def test_llc_hit_latency_is_the_full_walk_to_l3(self, hierarchy):
        config = hierarchy.config
        assert config.llc_hit_latency == (config.l1d.latency +
                                          config.l2.latency +
                                          config.l3.latency)

    def test_flush_drops_in_flight_fill_exactly_once(self, hierarchy):
        hierarchy.access_data(0x9000, now=0)
        hierarchy.flush_line(0x9000)
        hierarchy.flush_line(0x9000)
        assert hierarchy.stats.dropped_fills == 1
        assert hierarchy.stats.flushes == 2


class TestMainMemory:
    def test_read_write(self):
        mem = MainMemory()
        mem.write_word(0x100, 7)
        assert mem.read_word(0x100) == 7
        assert mem.read_word(0x108) == 0

    def test_misaligned_rejected(self):
        mem = MainMemory()
        with pytest.raises(ValueError):
            mem.read_word(0x101)
        with pytest.raises(ValueError):
            mem.write_word(0x103, 1)

    def test_snapshot_is_a_copy(self):
        mem = MainMemory()
        mem.write_word(0x0, 1)
        snap = mem.snapshot()
        mem.write_word(0x0, 2)
        assert snap[0x0] == 1

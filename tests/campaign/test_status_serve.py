"""Status metrics and the read-only HTTP server."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import (Campaign, campaign_status, make_server,
                            render_status)
from repro.campaign.journal import CampaignDir, CampaignError
from repro.harness.spec import Sweep


def small_sweep(name="demo", n=4) -> Sweep:
    sweep = Sweep(name)
    for i in range(n):
        sweep.add("window", runahead="none", sled=8 + 8 * i,
                  config_base="small")
    return sweep


class TestStatus:
    def test_created_campaign(self, tmp_path):
        Campaign.create(tmp_path / "camp", small_sweep())
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "created"
        assert status["total_trials"] == 4
        assert status["completed"] == 0
        assert status["remaining"] == 4
        assert status["runs"] == 0
        assert status["eta_seconds"] is None

    def test_finished_campaign(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp", small_sweep())
        campaign.run(workers=2)
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "finished"
        assert status["completed"] == status["total_trials"] == 4
        assert status["computed"] == 4
        assert status["cached"] == 0
        assert status["remaining"] == 0
        assert status["progress"] == 1.0
        assert status["cache_hit_rate"] == 0.0
        assert status["runs"] == 1
        assert status["errors"] == []

    def test_resumed_campaign_counts_stay_consistent(self, tmp_path):
        """A trial computed in run 1 and cache-served in run 2 stays
        'done' — resume replays must never flip totals."""
        campaign = Campaign.create(tmp_path / "camp", small_sweep())
        campaign.run(workers=2)
        Campaign.open(tmp_path / "camp").run(workers=2)
        status = campaign_status(tmp_path / "camp")
        assert status["runs"] == 2
        assert status["computed"] == 4
        assert status["cached"] == 0
        assert status["completed"] == 4
        assert status["sweeps"]["demo"] == {"trials": 4, "done": 4,
                                            "cached": 0}

    def test_status_of_missing_campaign_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            campaign_status(tmp_path / "nothing-here")

    def test_throughput_and_eta_from_synthetic_journal(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp",
                                   small_sweep(n=4))
        cdir = CampaignDir(tmp_path / "camp")
        cdir.append_event({"event": "start", "run": 1})
        journal = cdir.journal_path
        # Hand-write two computed trials one second apart: 1 trial/s.
        lines = []
        for i, stamp in enumerate((1000.0, 1001.0)):
            lines.append(json.dumps({
                "event": "trial", "sweep": "demo", "index": i,
                "spec_hash": f"h{i}", "status": "done",
                "elapsed": 1.0, "time": stamp}))
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "in-progress"
        assert status["trials_per_second"] == pytest.approx(1.0)
        assert status["eta_seconds"] == pytest.approx(2.0)

    def test_render_status_is_human_readable(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp", small_sweep())
        campaign.run(workers=2)
        text = render_status(campaign_status(tmp_path / "camp"))
        assert "[finished]" in text
        assert "4/4 trials (100%)" in text
        assert "sweep demo: 4/4" in text


@pytest.fixture
def served_campaign(tmp_path):
    campaign = Campaign.create(tmp_path / "camp", small_sweep())
    campaign.run(workers=2)
    server = make_server(tmp_path / "camp")   # port=0: pick a free one
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestServer:
    def test_index_lists_endpoints(self, served_campaign):
        code, payload = fetch(served_campaign + "/")
        assert code == 200
        assert payload["campaign"] == "demo"
        assert payload["state"] == "finished"
        assert "/result/demo" in payload["endpoints"]

    def test_status_endpoint_matches_library(self, served_campaign,
                                             tmp_path):
        code, payload = fetch(served_campaign + "/status")
        assert code == 200
        local = campaign_status(tmp_path / "camp")
        assert payload["completed"] == local["completed"] == 4
        assert payload["state"] == "finished"

    def test_manifest_endpoint(self, served_campaign):
        code, payload = fetch(served_campaign + "/manifest")
        assert code == 200
        assert payload["name"] == "demo"
        assert len(payload["sweeps"][0]["trials"]) == 4

    def test_result_endpoint_serves_canonical_json(self, served_campaign,
                                                   tmp_path):
        code, payload = fetch(served_campaign + "/result/demo")
        assert code == 200
        on_disk = CampaignDir(tmp_path / "camp").read_result("demo")
        assert payload == json.loads(on_disk)

    def test_unknown_sweep_is_404(self, served_campaign):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(served_campaign + "/result/nope")
        assert excinfo.value.code == 404

    def test_path_traversal_is_404(self, served_campaign):
        for ugly in ("/result/..%2fcampaign", "/result/."):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(served_campaign + ugly)
            assert excinfo.value.code == 404

    def test_unknown_path_is_404(self, served_campaign):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(served_campaign + "/secrets")
        assert excinfo.value.code == 404

    def test_head_request(self, served_campaign):
        request = urllib.request.Request(served_campaign + "/status",
                                         method="HEAD")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.read() == b""

    def test_server_never_writes_to_the_campaign(self, served_campaign,
                                                 tmp_path):
        before = sorted(p.name for p in (tmp_path / "camp").iterdir())
        for path in ("/", "/status", "/manifest", "/result/demo",
                     "/healthz"):
            fetch(served_campaign + path)
        after = sorted(p.name for p in (tmp_path / "camp").iterdir())
        assert after == before

    def test_healthz_reports_ok_with_journal_figures(
            self, served_campaign, tmp_path):
        code, payload = fetch(served_campaign + "/healthz")
        assert code == 200
        assert payload["status"] == "ok"
        journal = (tmp_path / "camp" / "journal.jsonl").read_text()
        assert payload["journal_lines"] == len(journal.splitlines())
        assert payload["journal_events"] >= 1

    def test_healthz_503_when_campaign_state_unreadable(self, tmp_path):
        # A directory with no campaign in it: the manifest probe fails.
        (tmp_path / "empty").mkdir()
        server = make_server(tmp_path / "empty")
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"http://{host}:{port}/healthz")
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert body["status"] == "unhealthy"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestSigterm:
    def test_serve_shuts_down_cleanly_on_sigterm(self, tmp_path):
        """A supervisor's TERM must exit 0 via the KeyboardInterrupt
        path, not linger until a hard kill."""
        import os
        import signal
        import subprocess
        import sys
        import time

        from ._chaos import SRC, child_env
        campaign = Campaign.create(tmp_path / "camp", small_sweep())
        campaign.run(workers=1)
        child = (
            "import sys\n"
            "from repro.campaign import serve\n"
            "serve(sys.argv[1], port=0,\n"
            "      announce=lambda line: print(line, flush=True))\n"
            "print('clean-exit', flush=True)\n")
        proc = subprocess.Popen(
            [sys.executable, "-c", child, str(tmp_path / "camp")],
            env=child_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            assert "serving campaign" in proc.stdout.readline()
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.returncode == 0
        assert "clean-exit" in out

"""Kill-and-resume acceptance: a campaign SIGKILLed mid-flight resumes
to a byte-identical result, for both cache backends, at any worker
count.

The campaign subprocess runs in its own session so ``killpg`` takes out
the driver *and* its worker processes at once — the closest a test can
get to a power cut.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import Campaign, campaign_status
from repro.harness.executor import run_sweep
from repro.harness.spec import Sweep

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

_CHILD = """
import sys
from repro.campaign import Campaign
Campaign.open(sys.argv[1]).run(workers=2)
"""


def acceptance_sweep(n=200) -> Sweep:
    """n unique window trials, a few ms each on the small config."""
    sweep = Sweep("acceptance")
    for i in range(n):
        sweep.add("window", runahead="none", sled=512 + 6 * i,
                  config_base="small")
    return sweep


def run_campaign_child(directory):
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   [SRC] + os.environ.get("PYTHONPATH", "").split(
                       os.pathsep)).rstrip(os.pathsep))
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(directory)],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def kill_at_halfway(proc, campaign_dir, total, deadline=60.0):
    """Poll the journal; SIGKILL the whole process group near 50%."""
    journal = campaign_dir / "journal.jsonl"
    target = total // 2
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if proc.poll() is not None:
            return False                      # finished before the kill
        try:
            done = journal.read_text().count('"status": "done"')
        except OSError:
            done = 0
        if done >= target:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            return True
        time.sleep(0.002)
    os.killpg(proc.pid, signal.SIGKILL)       # safety net
    proc.wait(timeout=30)
    raise AssertionError(f"campaign never reached {target} trials")


@pytest.mark.slow
@pytest.mark.parametrize("cache_uri", ["dir:cache",
                                       "sqlite:results.sqlite"])
@pytest.mark.parametrize("resume_workers", [1, 3])
def test_sigkill_resume_byte_identical(tmp_path, cache_uri,
                                       resume_workers):
    sweep = acceptance_sweep()
    campaign_dir = tmp_path / "camp"
    Campaign.create(campaign_dir, sweep, cache=cache_uri)

    proc = run_campaign_child(campaign_dir)
    try:
        interrupted = kill_at_halfway(proc, campaign_dir, len(sweep))
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
    assert interrupted, "campaign finished before it could be killed"

    status = campaign_status(campaign_dir)
    assert status["state"] == "in-progress"
    assert 0 < status["completed"] < len(sweep)

    result = Campaign.open(campaign_dir).run(workers=resume_workers)[0]
    reference = run_sweep(sweep, workers=1, cache=None).to_json()
    assert result.to_json() == reference
    assert Campaign.open(campaign_dir).cdir.read_result("acceptance") \
        == reference
    # The resume actually reused the interrupted run's work.  The cache
    # may be slightly ahead of the journal (a kill can land between a
    # cache write and its journal append), never behind.
    assert sum(result.cached) >= status["completed"] > 0

    final = campaign_status(campaign_dir)
    assert final["state"] == "finished"
    assert final["remaining"] == 0


@pytest.mark.slow
def test_double_kill_still_converges(tmp_path):
    """Two successive kills; the journal survives both truncations."""
    sweep = acceptance_sweep()
    campaign_dir = tmp_path / "camp"
    Campaign.create(campaign_dir, sweep)

    for _ in range(2):
        proc = run_campaign_child(campaign_dir)
        try:
            if not kill_at_halfway(proc, campaign_dir, len(sweep)):
                break                        # completed — nothing to kill
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)

    result = Campaign.open(campaign_dir).run(workers=2)[0]
    reference = run_sweep(sweep, workers=1, cache=None).to_json()
    assert result.to_json() == reference

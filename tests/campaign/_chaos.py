"""Fault injection for the multi-host campaign tests.

Two ingredients:

* :class:`FlakyProxy` — an in-process raw-TCP proxy that forwards
  HTTP requests to a backend while injecting seeded, per-exchange
  faults: drop the connection before forwarding, delay it, truncate
  the request mid-body, or truncate the response mid-stream.  It
  exploits the fact that both sides of the campaign protocol are
  close-per-request (urllib sends ``Connection: close``; the stdlib
  handlers default to HTTP/1.0), so one TCP connection carries
  exactly one exchange and "read request until Content-Length, read
  response until EOF" is a complete proxy.

* child-process helpers mirroring ``test_resume``'s idiom: spawn
  coordinators/workers in their own sessions (``start_new_session``)
  so ``killpg`` is a clean host-death simulation, and poll the
  journal to trigger kills at a chosen progress point.

Everything is deterministic given the proxy seed; no test dependency
beyond the stdlib.
"""

import os
import random
import signal
import socket
import socketserver
import subprocess
import sys
import threading
import time

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

_COORDINATOR_CHILD = """
import sys
from repro.campaign import coordinate
sys.exit(coordinate(sys.argv[1], port=int(sys.argv[2]),
                    lease_seconds=float(sys.argv[3]), until_done=True,
                    announce=lambda line: print(line, flush=True)))
"""

_WORKER_CHILD = """
import sys
from repro.campaign import run_worker
from repro.campaign.netretry import RetryPolicy
# A worker must outlive proxy faults AND a coordinator kill+restart
# window, so its retry budget is deliberately generous; delays stay
# small to keep the test fast.
policy = RetryPolicy(attempts=40, base_delay=0.05, max_delay=0.5,
                     timeout=5.0)
sys.exit(run_worker(sys.argv[1], host=sys.argv[2], policy=policy,
                    poll=0.1,
                    announce=lambda line: print(line, flush=True)))
"""


def child_env():
    return dict(os.environ,
                PYTHONPATH=os.pathsep.join(
                    [SRC] + os.environ.get("PYTHONPATH", "").split(
                        os.pathsep)).rstrip(os.pathsep))


def spawn_coordinator(directory, port, lease_seconds=5.0, log=None):
    """Coordinator child in its own session (killpg-able), fixed port
    so workers and a restarted coordinator share the address."""
    return subprocess.Popen(
        [sys.executable, "-c", _COORDINATOR_CHILD, str(directory),
         str(port), str(lease_seconds)],
        env=child_env(), start_new_session=True,
        stdout=log or subprocess.DEVNULL, stderr=subprocess.STDOUT)


def spawn_worker(url, host, log=None):
    return subprocess.Popen(
        [sys.executable, "-c", _WORKER_CHILD, url, host],
        env=child_env(), start_new_session=True,
        stdout=log or subprocess.DEVNULL, stderr=subprocess.STDOUT)


def kill_host(proc):
    """SIGKILL a child's whole session — the power-cut primitive."""
    if proc.poll() is None:
        os.killpg(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for_journal(journal_path, predicate, deadline=120.0,
                     poll=0.01):
    """Poll the journal text until ``predicate(text)`` holds."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            text = journal_path.read_text()
        except OSError:
            text = ""
        if predicate(text):
            return text
        time.sleep(poll)
    name = getattr(predicate, "__name__", repr(predicate))
    raise AssertionError(f"journal never satisfied {name}")


def done_count(journal_text):
    return journal_text.count('"status": "done"')


def _read_http_request(rfile):
    """One full HTTP request (headers + Content-Length body) as bytes;
    None if the client vanished first."""
    head = b""
    while b"\r\n\r\n" not in head:
        chunk = rfile.read(1)
        if not chunk:
            return None
        head += chunk
        if len(head) > 64 * 1024:
            return None
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            try:
                length = int(line.split(b":", 1)[1].strip())
            except ValueError:
                return None
    body = rfile.read(length) if length else b""
    if len(body) != length:
        return None
    return head + body


class FlakyProxy:
    """Seeded fault-injecting TCP proxy in front of an HTTP backend.

    Per exchange, with the configured probabilities (checked in this
    order): drop the connection unanswered, truncate the request
    before forwarding, truncate the response mid-stream, or delay the
    exchange.  Everything else forwards verbatim.
    """

    def __init__(self, backend_port, seed=0, drop_rate=0.1,
                 truncate_request_rate=0.05,
                 truncate_response_rate=0.05,
                 delay_rate=0.1, delay=0.05):
        self.backend_port = backend_port
        self.rng = random.Random(seed)
        self.rng_lock = threading.Lock()
        self.drop_rate = drop_rate
        self.truncate_request_rate = truncate_request_rate
        self.truncate_response_rate = truncate_response_rate
        self.delay_rate = delay_rate
        self.delay = delay
        self.exchanges = 0
        self.faults = 0

        proxy = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self):
                proxy._handle(self)

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self.server = _Server(("127.0.0.1", 0), _Handler)
        self.port = self.server.server_address[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)

    def start(self):
        self.thread.start()
        return self

    def stop(self):
        self.server.shutdown()
        self.server.server_close()

    def _roll(self):
        with self.rng_lock:
            self.exchanges += 1
            return (self.rng.random(), self.rng.random())

    def _handle(self, handler):
        fate, magnitude = self._roll()
        request = _read_http_request(handler.rfile)
        if request is None:
            return
        if fate < self.drop_rate:
            self.faults += 1
            return                       # connection dies unanswered
        fate -= self.drop_rate
        if fate < self.truncate_request_rate:
            self.faults += 1
            request = request[:max(1, int(len(request) * magnitude))]
            truncate_response_at = 0     # nothing sane can come back
        else:
            fate -= self.truncate_request_rate
            if fate < self.truncate_response_rate:
                self.faults += 1
                truncate_response_at = None    # decided once we know len
            else:
                fate -= self.truncate_response_rate
                if fate < self.delay_rate:
                    self.faults += 1
                    time.sleep(self.delay)
                truncate_response_at = -1      # forward everything
        try:
            with socket.create_connection(
                    ("127.0.0.1", self.backend_port), timeout=10) as up:
                up.sendall(request)
                if truncate_response_at == 0:
                    return
                response = b""
                up.settimeout(10)
                while True:
                    chunk = up.recv(65536)
                    if not chunk:
                        break
                    response += chunk
        except OSError:
            return                       # backend down: drop silently
        if truncate_response_at is None:
            response = response[:max(1, int(len(response) * magnitude))]
        try:
            handler.wfile.write(response)
        except OSError:
            pass                         # client already gave up

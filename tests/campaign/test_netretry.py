"""Unit tests for the capped-jitter backoff and the retrying HTTP
JSON client (no real network beyond loopback)."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.campaign.netretry import (DEFAULT_MAX_DELAY, RetryPolicy,
                                     Unreachable, backoff_delay,
                                     request_json)


class TestBackoffDelay:
    def test_never_exceeds_cap(self):
        for attempt in range(1, 40):
            delay = backoff_delay(0.25, attempt, cap=5.0,
                                  key=("t", attempt))
            assert 0.0 <= delay <= 5.0

    def test_default_cap_bounds_huge_bases(self):
        # The uncapped formula would be 1000 * 2**19 seconds here.
        assert backoff_delay(1000.0, 20, key=("t", 1)) \
            <= DEFAULT_MAX_DELAY

    def test_keyed_draws_are_deterministic(self):
        a = backoff_delay(0.25, 3, key=("pool", 7))
        b = backoff_delay(0.25, 3, key=("pool", 7))
        assert a == b

    def test_distinct_keys_desynchronize(self):
        # Full jitter exists to break retry lockstep: trials failing
        # together must not sleep identically.
        delays = {backoff_delay(0.25, 2, key=("pool", i))
                  for i in range(16)}
        assert len(delays) > 1

    def test_attempts_share_the_exponential_ceiling(self):
        base = 0.25
        for attempt in (1, 2, 3, 4):
            ceiling = min(DEFAULT_MAX_DELAY, base * 2 ** (attempt - 1))
            assert backoff_delay(base, attempt,
                                 key=("x", attempt)) <= ceiling

    def test_zero_base_is_zero(self):
        assert backoff_delay(0.0, 5, key=("t", 1)) == 0.0

    def test_unkeyed_draw_is_bounded(self):
        assert 0.0 <= backoff_delay(0.25, 2) <= 0.5


class _Script(BaseHTTPRequestHandler):
    """Responds per a scripted list shared via the class: each entry is
    an (status, payload) pair or the string "hang-up"."""

    script = None
    seen = None

    def log_message(self, fmt, *args):
        pass

    def _serve(self):
        self.seen.append((self.command, self.path))
        step = self.script.pop(0) if self.script else (200, {})
        if step == "hang-up":
            # Close without a response — what a dropped connection or
            # the chaos proxy's "drop" fault looks like to the client.
            self.connection.close()
            return
        status, payload = step
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _serve


@pytest.fixture
def scripted_server():
    made = []

    def make(script):
        handler = type("H", (_Script,), {"script": script, "seen": []})
        server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        made.append(server)
        url = f"http://127.0.0.1:{server.server_address[1]}"
        return url, handler
    yield make
    for server in made:
        server.shutdown()
        server.server_close()


FAST = RetryPolicy(attempts=4, base_delay=0.0, max_delay=0.0,
                   timeout=5.0)


class TestRequestJson:
    def test_get_and_post_round_trip(self, scripted_server):
        url, handler = scripted_server([(200, {"x": 1}), (200, {"y": 2})])
        assert request_json(f"{url}/a", policy=FAST) == (200, {"x": 1})
        assert request_json(f"{url}/b", payload={"in": 3},
                            policy=FAST) == (200, {"y": 2})
        assert handler.seen == [("GET", "/a"), ("POST", "/b")]

    def test_retries_through_dropped_connections(self, scripted_server):
        url, handler = scripted_server(
            ["hang-up", "hang-up", (200, {"ok": True})])
        assert request_json(url, policy=FAST) == (200, {"ok": True})
        assert len(handler.seen) == 3

    def test_retries_5xx(self, scripted_server):
        url, _ = scripted_server([(503, {"busy": True}),
                                  (200, {"ok": True})])
        assert request_json(url, policy=FAST) == (200, {"ok": True})

    def test_4xx_returns_without_retry(self, scripted_server):
        url, handler = scripted_server([(404, {"error": "nope"})])
        code, body = request_json(url, policy=FAST)
        assert code == 404 and body == {"error": "nope"}
        assert len(handler.seen) == 1

    def test_unreachable_after_budget(self, scripted_server):
        url, handler = scripted_server(["hang-up"] * 10)
        with pytest.raises(Unreachable):
            request_json(url, policy=FAST)
        assert len(handler.seen) == FAST.attempts

    def test_no_listener_is_unreachable(self):
        with pytest.raises(Unreachable):
            request_json("http://127.0.0.1:1/",
                         policy=RetryPolicy(attempts=2, base_delay=0.0,
                                            max_delay=0.0, timeout=0.5))

    def test_sleeps_follow_policy_jitter(self, scripted_server):
        url, _ = scripted_server(["hang-up"] * 10)
        slept = []
        policy = RetryPolicy(attempts=3, base_delay=0.2, max_delay=1.0,
                             timeout=5.0)
        with pytest.raises(Unreachable):
            request_json(url, policy=policy, key=("test", 1),
                         sleep=slept.append)
        assert len(slept) == 2                 # between 3 attempts
        for attempt, delay in enumerate(slept, start=1):
            assert 0.0 <= delay <= min(1.0, 0.2 * 2 ** (attempt - 1))

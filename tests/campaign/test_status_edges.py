"""Throughput/ETA edge cases and the machine-readable status CLI.

``_throughput`` divides by a journal-derived time span; these tests pin
the degenerate journals (no completions, one completion, identical
timestamps) that must yield ``None`` rather than a ZeroDivisionError —
and that ``repro campaign status --json`` emits the full dict.
"""

import json

from repro.__main__ import main
from repro.campaign import Campaign, campaign_status, render_status
from repro.campaign.journal import CampaignDir
from repro.campaign.status import _throughput

from .test_status_serve import small_sweep


def write_trials(directory, stamps):
    """Hand-write a run with one computed trial per timestamp."""
    cdir = CampaignDir(directory)
    cdir.append_event({"event": "start", "run": 1})
    lines = [json.dumps({
        "event": "trial", "sweep": "demo", "index": i,
        "spec_hash": f"h{i}", "status": "done",
        "elapsed": 0.5, "time": stamp})
        for i, stamp in enumerate(stamps)]
    with open(cdir.journal_path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


class TestThroughputEdges:
    def test_no_samples(self):
        assert _throughput([]) is None

    def test_single_sample(self):
        assert _throughput([(1000.0, 0.5)]) is None

    def test_zero_span(self):
        # Two trials journalled at the same wall-clock instant (fast
        # trials + coarse clocks): no rate, not a division by zero.
        assert _throughput([(1000.0, 0.1), (1000.0, 0.1)]) is None

    def test_backwards_clock(self):
        assert _throughput([(1000.0, 0.1), (999.0, 0.1)]) is None

    def test_two_samples_one_second_apart(self):
        assert _throughput([(1000.0, 0.5), (1001.0, 0.5)]) == 1.0


class TestStatusEdges:
    def test_zero_completed_campaign_has_no_rate_or_eta(self, tmp_path):
        Campaign.create(tmp_path / "camp", small_sweep())
        status = campaign_status(tmp_path / "camp")
        assert status["completed"] == 0
        assert status["trials_per_second"] is None
        assert status["eta_seconds"] is None
        # The human renderer must survive the Nones too.
        assert "0/4 trials" in render_status(status)

    def test_single_completion_has_no_rate(self, tmp_path):
        Campaign.create(tmp_path / "camp", small_sweep())
        write_trials(tmp_path / "camp", [1000.0])
        status = campaign_status(tmp_path / "camp")
        assert status["completed"] == 1
        assert status["trials_per_second"] is None
        assert status["eta_seconds"] is None

    def test_same_instant_completions_have_no_rate(self, tmp_path):
        Campaign.create(tmp_path / "camp", small_sweep())
        write_trials(tmp_path / "camp", [1000.0, 1000.0])
        status = campaign_status(tmp_path / "camp")
        assert status["completed"] == 2
        assert status["trials_per_second"] is None
        assert status["eta_seconds"] is None

    def test_finished_campaign_has_no_eta(self, tmp_path):
        Campaign.create(tmp_path / "camp", small_sweep(n=2))
        write_trials(tmp_path / "camp", [1000.0, 1001.0])
        status = campaign_status(tmp_path / "camp")
        # Rate exists, but nothing remains: no ETA.
        assert status["trials_per_second"] == 1.0
        assert status["remaining"] == 0
        assert status["eta_seconds"] is None


class TestStatusJsonCli:
    def test_status_json_is_machine_readable(self, tmp_path, capsys):
        campaign = Campaign.create(tmp_path / "camp", small_sweep())
        campaign.run(workers=1)
        code = main(["campaign", "status", str(tmp_path / "camp"),
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "finished"
        assert payload["completed"] == payload["total_trials"] == 4
        assert payload["eta_seconds"] is None
        assert payload == campaign_status(tmp_path / "camp")

    def test_status_json_on_created_campaign(self, tmp_path, capsys):
        Campaign.create(tmp_path / "camp", small_sweep())
        code = main(["campaign", "status", str(tmp_path / "camp"),
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "created"
        assert payload["trials_per_second"] is None

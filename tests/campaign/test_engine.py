"""Campaign engine: byte-identity, retries, failure taxonomy, resume."""

import pytest

from repro.campaign import (Campaign, CampaignError, CampaignExecutor,
                            campaign_status)
from repro.harness.cache import SqliteCacheBackend
from repro.harness.executor import run_sweep
from repro.harness.spec import Sweep

from tests.campaign import _faults


def window_sweep(name="win", n=6, **extra) -> Sweep:
    """Cheap real sweep: window trials are ~ms each at config "small"."""
    sweep = Sweep(name)
    for i in range(n):
        sweep.add("window", runahead="none", sled=8 + 8 * i,
                  config_base="small", **extra)
    return sweep


def fault_sweep(name, fault, n=6, fault_at=(2,)) -> Sweep:
    """Window sweep with ``fault`` markers on selected trials.

    The marker is data only — real runners ignore it (it just changes
    the spec hash) — but the `_faults` runners key on it.
    """
    sweep = Sweep(name)
    for i in range(n):
        params = {"runahead": "none", "sled": 8 + 8 * i,
                  "config_base": "small"}
        if i in fault_at:
            params["fault"] = fault
        sweep.add("window", **params)
    return sweep


@pytest.fixture
def fault_dir(tmp_path, monkeypatch):
    flags = tmp_path / "fault-flags"
    flags.mkdir()
    monkeypatch.setenv(_faults.FAULT_DIR_ENV, str(flags))
    return flags


def journal_events(campaign, kind):
    return [e for e in campaign.cdir.events() if e.get("event") == kind]


class TestByteIdentity:
    def test_pool_campaign_matches_serial_run_sweep(self, tmp_path):
        sweep = window_sweep()
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        campaign = Campaign.create(tmp_path / "camp", sweep)
        (result,) = campaign.run(workers=3)
        assert result.to_json() == reference
        assert campaign.cdir.read_result(sweep.name) == reference

    def test_sqlite_backend_matches_directory_backend(self, tmp_path):
        sweep = window_sweep()
        via_dir = Campaign.create(tmp_path / "a", sweep,
                                  cache="dir:cache").run(workers=2)
        via_sql = Campaign.create(tmp_path / "b", sweep,
                                  cache="sqlite:results.sqlite") \
            .run(workers=2)
        assert via_dir[0].to_json() == via_sql[0].to_json()
        assert (tmp_path / "b" / "results.sqlite").exists()

    def test_serial_campaign_matches_pool(self, tmp_path):
        sweep = window_sweep()
        serial = Campaign.create(tmp_path / "s", sweep).run(serial=True)
        pooled = Campaign.create(tmp_path / "p", sweep).run(workers=3)
        assert serial[0].to_json() == pooled[0].to_json()


class TestResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        sweep = window_sweep()
        campaign = Campaign.create(tmp_path / "camp", sweep)
        first = campaign.run(workers=2)[0]
        again = Campaign.open(tmp_path / "camp").run(workers=2)[0]
        assert again.to_json() == first.to_json()
        assert all(again.cached)
        assert not any(first.cached)

    def test_partial_cache_computes_only_the_gap(self, tmp_path):
        sweep = window_sweep(n=6)
        campaign = Campaign.create(tmp_path / "camp", sweep)
        store = campaign.backend()
        # Pre-seed half the campaign's cache, as an interrupted run would.
        half = run_sweep(Sweep("seed", sweep.trials[:3]), workers=1,
                         cache=store)
        assert len(half.records) == 3
        result = campaign.run(workers=2)[0]
        assert result.cached == [True] * 3 + [False] * 3
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        assert result.to_json() == reference

    def test_executor_adapter_resumes(self, tmp_path):
        sweep = window_sweep()
        executor = CampaignExecutor(tmp_path / "camp", workers=2)
        first = executor.execute(sweep)
        second = executor.execute(sweep)
        assert second.to_json() == first.to_json()
        assert all(second.cached)

    def test_create_or_open_rejects_different_sweeps(self, tmp_path):
        Campaign.create(tmp_path / "camp", window_sweep())
        with pytest.raises(CampaignError, match="different campaign"):
            Campaign.create_or_open(tmp_path / "camp",
                                    window_sweep(n=9))

    def test_create_refuses_to_clobber(self, tmp_path):
        Campaign.create(tmp_path / "camp", window_sweep())
        with pytest.raises(CampaignError, match="already holds"):
            Campaign.create(tmp_path / "camp", window_sweep())

    def test_open_detects_edited_manifest(self, tmp_path):
        campaign = Campaign.create(tmp_path / "camp", window_sweep())
        manifest = campaign.cdir.read_manifest()
        manifest["sweeps"][0]["trials"][0]["params"]["sled"] = 4096
        campaign.cdir.write_manifest(manifest)
        with pytest.raises(CampaignError, match="signature mismatch"):
            Campaign.open(tmp_path / "camp")


class TestFaultTolerance:
    def test_killed_worker_is_retried(self, tmp_path, fault_dir):
        sweep = fault_sweep("kill", "kill")
        campaign = Campaign.create(tmp_path / "camp", sweep)
        result = campaign.run(workers=3, runner=_faults.kill_once)[0]
        assert len(result.records) == len(sweep)
        retries = journal_events(campaign, "retry")
        assert retries and "died" in retries[0]["reason"]

    def test_hung_trial_times_out_and_retries(self, tmp_path, fault_dir):
        sweep = fault_sweep("hang", "hang")
        campaign = Campaign.create(tmp_path / "camp", sweep, timeout=1.0)
        result = campaign.run(workers=3, runner=_faults.hang_once)[0]
        assert len(result.records) == len(sweep)
        retries = journal_events(campaign, "retry")
        assert retries and "timeout" in retries[0]["reason"]

    def test_transient_exception_is_retried(self, tmp_path, fault_dir):
        sweep = fault_sweep("raise", "raise")
        campaign = Campaign.create(tmp_path / "camp", sweep, backoff=0.01)
        result = campaign.run(workers=3, runner=_faults.raise_once)[0]
        assert len(result.records) == len(sweep)
        retries = journal_events(campaign, "retry")
        assert retries and "injected transient" in retries[0]["reason"]

    def test_retry_budget_exhaustion_fails_the_campaign(
            self, tmp_path, fault_dir):
        sweep = fault_sweep("exhaust", "always")
        campaign = Campaign.create(tmp_path / "camp", sweep,
                                   max_retries=1, backoff=0.01)
        with pytest.raises(CampaignError, match="failed 2 times"):
            campaign.run(workers=3, runner=_faults.always_raise)
        assert journal_events(campaign, "error")
        assert campaign_status(tmp_path / "camp")["state"] == "failed"

    def test_deterministic_trial_error_aborts_without_retry(
            self, tmp_path):
        from repro.harness.runner import TrialError
        sweep = window_sweep(n=4)
        sweep.add("run", workload="no-such-workload")
        campaign = Campaign.create(tmp_path / "camp", sweep)
        with pytest.raises(TrialError):
            campaign.run(workers=3)
        assert not journal_events(campaign, "retry")
        assert journal_events(campaign, "error")
        assert campaign_status(tmp_path / "camp")["state"] == "failed"

    def test_failed_campaign_resumes_after_fix(self, tmp_path, fault_dir):
        """The headline fault-tolerance story: crash, fix, resume,
        byte-identical completion."""
        sweep = fault_sweep("exhaust", "always", fault_at=(4,))
        campaign = Campaign.create(tmp_path / "camp", sweep,
                                   max_retries=0, backoff=0.01)
        with pytest.raises(CampaignError):
            campaign.run(workers=2, runner=_faults.always_raise)
        # Work done before the failure is cached; the resume (with a
        # healthy runner) completes exactly the remainder.
        result = Campaign.open(tmp_path / "camp").run(workers=2)[0]
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        assert result.to_json() == reference

    def test_serial_fallback_retries_transients(self, tmp_path, fault_dir):
        sweep = fault_sweep("raise", "raise")
        campaign = Campaign.create(tmp_path / "camp", sweep, backoff=0.01)
        result = campaign.run(serial=True, runner=_faults.raise_once)[0]
        assert len(result.records) == len(sweep)
        assert journal_events(campaign, "retry")

    def test_serial_fallback_propagates_trial_errors(self, tmp_path):
        from repro.harness.runner import TrialError
        sweep = Sweep("bad")
        sweep.add("run", workload="no-such-workload")
        sweep.add("window", runahead="none", sled=8, config_base="small")
        campaign = Campaign.create(tmp_path / "camp", sweep)
        with pytest.raises(TrialError):
            campaign.run(serial=True)


class TestRetryBackoff:
    """The pool's retry delays are capped and jittered — a giant
    backoff base can no longer stall a campaign for hours, and trials
    that fail together stop retrying in lockstep."""

    def _pool(self, backoff):
        from repro.campaign.engine import _WorkStealingPool
        from repro.harness.spec import Trial
        trials = {i: Trial(kind="window", params={"sled": i})
                  for i in range(8)}
        return _WorkStealingPool(
            trials, workers=1, timeout=None, max_retries=10,
            backoff=backoff, runner=lambda t: {},
            on_done=lambda *a: None, on_retry=lambda *a: None)

    def test_delay_is_capped(self):
        import time

        from repro.campaign.netretry import DEFAULT_MAX_DELAY
        pool = self._pool(backoff=1000.0)
        pool._schedule_retry(0, "boom")
        ready_time, index = pool.delayed[0]
        assert index == 0
        # Uncapped, attempt 1 would already wait 1000s.
        assert ready_time - time.monotonic() <= DEFAULT_MAX_DELAY + 0.1

    def test_distinct_trials_draw_distinct_delays(self):
        pool = self._pool(backoff=0.25)
        for index in range(8):
            pool._schedule_retry(index, "boom")
        delays = {ready for ready, _ in pool.delayed}
        assert len(delays) > 1

    def test_same_trial_same_attempt_is_reproducible(self):
        from repro.campaign.netretry import backoff_delay
        assert backoff_delay(0.25, 2, key=("pool", 3)) \
            == backoff_delay(0.25, 2, key=("pool", 3))


class TestManifestDefaults:
    def test_manifest_records_execution_policy(self, tmp_path):
        campaign = Campaign.create(
            tmp_path / "camp", window_sweep(), workers=7, timeout=12.5,
            max_retries=5, backoff=1.5, name="policy-demo")
        manifest = campaign.cdir.read_manifest()
        assert manifest["name"] == "policy-demo"
        assert manifest["workers"] == 7
        assert manifest["timeout"] == 12.5
        assert manifest["max_retries"] == 5
        assert manifest["backoff"] == 1.5
        assert manifest["total_trials"] == 6

    def test_needs_at_least_one_sweep(self, tmp_path):
        with pytest.raises(CampaignError, match="at least one sweep"):
            Campaign.create(tmp_path / "camp", [])

    def test_sweep_names_must_be_unique(self, tmp_path):
        with pytest.raises(CampaignError, match="unique"):
            Campaign.create(tmp_path / "camp",
                            [window_sweep("a"), window_sweep("a")])

    def test_multi_sweep_campaign_writes_every_result(self, tmp_path):
        sweeps = [window_sweep("first", n=3),
                  window_sweep("second", n=2, async_flushes=1)]
        campaign = Campaign.create(tmp_path / "camp", sweeps)
        results = campaign.run(workers=2)
        assert [r.name for r in results] == ["first", "second"]
        for sweep in sweeps:
            assert campaign.cdir.read_result(sweep.name) is not None

"""Campaign directory semantics: manifest, journal, kill tolerance."""

import json

import pytest

from repro.campaign.journal import (CampaignDir, CampaignError,
                                    MANIFEST_VERSION)
from repro.harness.spec import Sweep


def demo_sweep(name="demo", n=3) -> Sweep:
    sweep = Sweep(name)
    for i in range(n):
        sweep.add("window", runahead="none", sled=16 + 8 * i,
                  config_base="small")
    return sweep


class TestManifest:
    def test_round_trip(self, tmp_path):
        cdir = CampaignDir(tmp_path / "camp")
        manifest = {"version": MANIFEST_VERSION, "name": "demo",
                    "sweeps": [demo_sweep().to_dict()], "cache": "dir:cache"}
        cdir.write_manifest(manifest)
        assert cdir.exists()
        assert cdir.read_manifest() == manifest
        sweeps = cdir.sweeps()
        assert len(sweeps) == 1
        assert sweeps[0].signature() == demo_sweep().signature()

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign"):
            CampaignDir(tmp_path / "nowhere").read_manifest()

    def test_corrupt_manifest_raises(self, tmp_path):
        cdir = CampaignDir(tmp_path)
        cdir.manifest_path.write_text("{broken", encoding="utf-8")
        with pytest.raises(CampaignError, match="corrupt"):
            cdir.read_manifest()

    def test_wrong_version_raises(self, tmp_path):
        cdir = CampaignDir(tmp_path)
        cdir.write_manifest({"version": 99, "name": "x", "sweeps": []})
        with pytest.raises(CampaignError, match="version"):
            cdir.read_manifest()


class TestJournal:
    def test_events_append_in_order(self, tmp_path):
        cdir = CampaignDir(tmp_path)
        cdir.path.mkdir(exist_ok=True)
        for i in range(3):
            cdir.append_event({"event": "trial", "index": i})
        assert [e["index"] for e in cdir.events()] == [0, 1, 2]
        assert all("time" in e for e in cdir.events())

    def test_truncated_tail_is_skipped(self, tmp_path):
        """A SIGKILL can leave a half-written last line — readers must
        survive it and keep every complete line."""
        cdir = CampaignDir(tmp_path)
        cdir.path.mkdir(exist_ok=True)
        cdir.append_event({"event": "trial", "index": 0})
        cdir.append_event({"event": "trial", "index": 1})
        with open(cdir.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "trial", "ind')   # no newline, cut
        assert [e["index"] for e in cdir.events()] == [0, 1]

    def test_no_journal_yields_nothing(self, tmp_path):
        assert list(CampaignDir(tmp_path / "void").events()) == []

    def test_completed_hashes_filters_by_sweep_and_status(self, tmp_path):
        cdir = CampaignDir(tmp_path)
        cdir.path.mkdir(exist_ok=True)
        cdir.append_event({"event": "trial", "sweep": "a",
                           "spec_hash": "h1", "status": "done"})
        cdir.append_event({"event": "trial", "sweep": "a",
                           "spec_hash": "h2", "status": "cached"})
        cdir.append_event({"event": "trial", "sweep": "b",
                           "spec_hash": "h3", "status": "done"})
        cdir.append_event({"event": "retry", "sweep": "a", "index": 0})
        done = cdir.completed_hashes("a")
        assert done == {"h1": "done", "h2": "cached"}


class TestResults:
    def test_result_round_trip(self, tmp_path):
        cdir = CampaignDir(tmp_path)
        cdir.path.mkdir(exist_ok=True)
        assert cdir.read_result("demo") is None
        text = json.dumps({"sweep": "demo", "records": []})
        cdir.write_result("demo", text)
        assert cdir.read_result("demo") == text

"""Lease TTLs are monotonic-relative, never wall-clock timestamps.

Regression suite for the clock-mixing bug: the coordinator derived
lease expiry from ``time.monotonic()`` but journaled/reported it as a
``time.time()`` timestamp, so an NTP step (or plain wall/monotonic
drift) mis-scheduled worker renewals.  Claims and renewals now carry
``ttl_seconds`` — seconds of life from *now* — and the worker
heartbeat paces itself (and adapts) from that relative value alone.
"""

import json

import pytest

from repro.campaign import Campaign, make_coordinator
from repro.campaign.coordinator import CoordinatorState
from repro.campaign.worker import _Heartbeat
from repro.campaign.netretry import RetryPolicy
from repro.harness.spec import Sweep

FAST_NET = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02,
                       timeout=2.0)


def window_sweep(name="ttl", n=2) -> Sweep:
    sweep = Sweep(name)
    for i in range(n):
        sweep.add("window", runahead="none", sled=8 + 8 * i,
                  config_base="small")
    return sweep


def make_state(tmp_path, lease_seconds=5.0, **create_kwargs):
    Campaign.create(tmp_path / "camp", window_sweep(), **create_kwargs)
    _, state, _ = make_coordinator(tmp_path / "camp",
                                   lease_seconds=lease_seconds)
    return state


def journal_events(tmp_path):
    path = tmp_path / "camp" / "journal.jsonl"
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


class TestClaimTTL:
    def test_claim_reports_relative_ttl(self, tmp_path):
        state = make_state(tmp_path, lease_seconds=5.0)
        code, claim = state.claim("host-a")
        assert code == 200
        # Relative seconds-from-now, not an epoch timestamp: a lease
        # a few seconds long must not look like ~1.7e9.
        assert claim["ttl_seconds"] == pytest.approx(5.0, abs=0.25)
        assert claim["lease_seconds"] == pytest.approx(5.0)

    def test_journaled_lease_event_carries_ttl_not_wall_clock(
            self, tmp_path):
        state = make_state(tmp_path, lease_seconds=5.0)
        state.claim("host-a")
        leases = [e for e in journal_events(tmp_path)
                  if e["event"] == "lease"]
        assert len(leases) == 1
        assert leases[0]["ttl_seconds"] == pytest.approx(5.0, abs=0.25)
        assert "expires" not in leases[0]

    def test_per_trial_deadline_caps_the_ttl(self, tmp_path):
        """Near a trial timeout the lease (and so the advertised ttl)
        is capped below the full lease lifetime."""
        state = make_state(tmp_path, lease_seconds=30.0, timeout=0.5)
        _, claim = state.claim("host-a")
        # deadline + lease/3 cap: 0.5 + 10.0, far below 30s would be
        # wrong; the cap formula gives deadline + lease_seconds / 3.
        assert claim["ttl_seconds"] <= 0.5 + 30.0 / 3 + 0.25
        assert claim["ttl_seconds"] < 30.0


class TestRenewTTL:
    def test_renew_reports_fresh_relative_ttl(self, tmp_path):
        state = make_state(tmp_path, lease_seconds=5.0)
        _, claim = state.claim("host-a")
        code, renewed = state.renew(claim["lease"])
        assert code == 200 and renewed["ok"]
        assert renewed["ttl_seconds"] == pytest.approx(5.0, abs=0.25)

    def test_unknown_lease_renewal_refused(self, tmp_path):
        state = make_state(tmp_path)
        _, renewed = state.renew("not-a-lease")
        assert renewed == {"ok": False, "reason": "unknown-lease"}


class TestHeartbeatPacing:
    def test_interval_is_a_third_of_the_ttl(self):
        beat = _Heartbeat("http://x", "lease", 9.0, FAST_NET)
        assert beat.interval == pytest.approx(3.0)

    def test_interval_floor(self):
        beat = _Heartbeat("http://x", "lease", 0.01, FAST_NET)
        assert beat.interval == pytest.approx(0.05)

    def test_worker_paces_from_claim_ttl_not_lease_seconds(self):
        """A deadline-capped claim (ttl < lease_seconds) must tighten
        the heartbeat; pacing from lease_seconds would renew too late.
        This mirrors run_worker's ttl-preferring claim handling."""
        claim = {"lease_seconds": 30.0, "ttl_seconds": 3.0}
        ttl = claim.get("ttl_seconds") or claim.get("lease_seconds", 30.0)
        beat = _Heartbeat("http://x", "lease", float(ttl), FAST_NET)
        assert beat.interval == pytest.approx(1.0)

    def test_old_coordinator_without_ttl_falls_back(self):
        claim = {"lease_seconds": 6.0}
        ttl = claim.get("ttl_seconds") or claim.get("lease_seconds", 30.0)
        beat = _Heartbeat("http://x", "lease", float(ttl), FAST_NET)
        assert beat.interval == pytest.approx(2.0)

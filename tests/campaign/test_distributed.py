"""Multi-host campaign sharding: coordinator + worker protocol.

Fast tier: in-process coordinator with worker loops driven from
threads — lease journaling, expiry/reclaim, idempotent completions,
the failure taxonomy over HTTP, graceful worker degradation.

Slow tier: the chaos acceptance run — two worker *processes* pulling
through a fault-injecting proxy, one host SIGKILLed mid-campaign, the
coordinator SIGKILLed and restarted mid-campaign, on both cache
backends — and the final result must be byte-identical to a clean
single-host serial run.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.campaign import (Campaign, campaign_status, make_coordinator,
                            run_worker)
from repro.campaign.netretry import RetryPolicy, request_json
from repro.harness.executor import run_sweep
from repro.harness.runner import TrialError
from repro.harness.spec import Sweep

from ._chaos import (FlakyProxy, done_count, free_port, kill_host,
                     spawn_coordinator, spawn_worker, wait_for_journal)

FAST_NET = RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.05,
                       timeout=5.0)


def window_sweep(name="dist", n=8) -> Sweep:
    sweep = Sweep(name)
    for i in range(n):
        sweep.add("window", runahead="none", sled=8 + 8 * i,
                  config_base="small")
    return sweep


def journal_events(campaign_dir):
    events = []
    path = campaign_dir / "journal.jsonl"
    if path.exists():
        for line in path.read_text().splitlines():
            try:
                events.append(json.loads(line))
            except ValueError:
                pass
    return events


class _Coordinator:
    """In-process coordinator for the fast tests."""

    def __init__(self, directory, lease_seconds=5.0):
        self.server, self.state, self.loop = make_coordinator(
            directory, lease_seconds=lease_seconds)
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)

    def __enter__(self):
        self.thread.start()
        self.loop.start()
        return self

    def __exit__(self, *exc):
        self.loop.stop()
        self.server.shutdown()
        self.server.server_close()


def run_workers(url, count, **kwargs):
    codes = [None] * count

    def pull(i):
        codes[i] = run_worker(url, host=f"host-{i}", policy=FAST_NET,
                              poll=0.05, **kwargs)
    threads = [threading.Thread(target=pull, args=(i,))
               for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    return codes


class TestCoordinatedExecution:
    def test_two_hosts_byte_identical(self, tmp_path):
        sweep = window_sweep()
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        Campaign.create(tmp_path / "camp", sweep, cache="dir:cache")
        with _Coordinator(tmp_path / "camp") as coord:
            assert run_workers(coord.url, 2) == [0, 0]
        assert (tmp_path / "camp" / "dist.result.json").read_text() \
            == reference

        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "finished"
        assert status["hosts"] == ["host-0", "host-1"]
        assert status["leases"]["issued"] == len(sweep)

    def test_lease_events_journaled_with_hosts(self, tmp_path):
        sweep = window_sweep(n=4)
        Campaign.create(tmp_path / "camp", sweep)
        with _Coordinator(tmp_path / "camp") as coord:
            assert run_workers(coord.url, 1) == [0]
        events = journal_events(tmp_path / "camp")
        leases = [e for e in events if e["event"] == "lease"]
        assert len(leases) == 4
        assert all(e["host"] == "host-0" and e["lease"] for e in leases)
        done = [e for e in events
                if e["event"] == "trial" and e["status"] == "done"]
        assert {e["host"] for e in done} == {"host-0"}
        # Every completion's lease was journaled before it.
        lease_keys = [(e["sweep"], e["index"]) for e in leases]
        assert all((e["sweep"], e["index"]) in lease_keys for e in done)

    def test_restarted_coordinator_resumes_and_reseals(self, tmp_path):
        sweep = window_sweep()
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        Campaign.create(tmp_path / "camp", sweep)
        with _Coordinator(tmp_path / "camp") as coord:
            assert run_workers(coord.url, 1, max_trials=3) == [0]
        # New coordinator over the same directory: plans against the
        # cache, only the remainder is computed.
        with _Coordinator(tmp_path / "camp") as coord:
            assert run_workers(coord.url, 2) == [0, 0]
        assert (tmp_path / "camp" / "dist.result.json").read_text() \
            == reference
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "finished"
        assert status["runs"] == 2

    def test_fully_cached_campaign_finishes_without_workers(
            self, tmp_path):
        sweep = window_sweep(n=4)
        Campaign.create(tmp_path / "camp", sweep)
        Campaign.open(tmp_path / "camp").run(workers=1)
        with _Coordinator(tmp_path / "camp") as coord:
            # A worker should be told "done" on its first claim.
            assert run_workers(coord.url, 1) == [0]
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "finished"
        assert status["leases"]["issued"] == 0

    def test_mixed_local_then_distributed_campaign(self, tmp_path):
        """A campaign started on the local pool finishes under a
        coordinator (and vice versa is the restart test above)."""
        sweep = window_sweep()
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        Campaign.create(tmp_path / "camp", sweep,
                        cache="sqlite:results.sqlite")
        from repro.harness.runner import run_trial

        ran = 0

        def some(trial):
            nonlocal ran
            ran += 1
            if ran > 3:
                raise KeyboardInterrupt   # stop the local run early
            return run_trial(trial)
        try:
            Campaign.open(tmp_path / "camp").run(workers=1, runner=some)
        except KeyboardInterrupt:
            pass
        with _Coordinator(tmp_path / "camp") as coord:
            assert run_workers(coord.url, 2) == [0, 0]
        assert (tmp_path / "camp" / "dist.result.json").read_text() \
            == reference


class TestLeases:
    def test_expired_lease_is_reclaimed(self, tmp_path):
        sweep = window_sweep(n=2)
        Campaign.create(tmp_path / "camp", sweep)
        with _Coordinator(tmp_path / "camp",
                          lease_seconds=0.2) as coord:
            # Claim a trial and never touch it again — a dead host.
            code, claim = request_json(f"{coord.url}/claim",
                                       payload={"host": "ghost"},
                                       policy=FAST_NET)
            assert code == 200 and "lease" in claim
            # A live worker picks up everything, including the
            # reclaimed trial, once the lease expires.
            assert run_workers(coord.url, 1) == [0]
        events = journal_events(tmp_path / "camp")
        expired = [e for e in events if e["event"] == "lease-expired"]
        assert len(expired) == 1 and expired[0]["host"] == "ghost"
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 1
        assert "ghost" in retries[0]["reason"]
        assert campaign_status(tmp_path / "camp")["state"] == "finished"

    def test_renewal_keeps_a_slow_trial_alive(self, tmp_path):
        sweep = window_sweep(n=2)
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        Campaign.create(tmp_path / "camp", sweep)

        def slow(trial):
            from repro.harness.runner import run_trial
            time.sleep(0.7)          # several lease lifetimes
            return run_trial(trial)
        with _Coordinator(tmp_path / "camp",
                          lease_seconds=0.2) as coord:
            assert run_workers(coord.url, 1, runner=slow) == [0]
        events = journal_events(tmp_path / "camp")
        assert any(e["event"] == "renew" for e in events)
        assert not any(e["event"] == "lease-expired" for e in events)
        assert (tmp_path / "camp" / "dist.result.json").read_text() \
            == reference

    def test_duplicate_completion_is_idempotent(self, tmp_path):
        sweep = window_sweep(n=2)
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        Campaign.create(tmp_path / "camp", sweep)
        with _Coordinator(tmp_path / "camp") as coord:
            code, claim = request_json(f"{coord.url}/claim",
                                       payload={"host": "dup"},
                                       policy=FAST_NET)
            from repro.harness.runner import run_trial
            from repro.harness.spec import Trial
            result = run_trial(Trial.from_dict(claim["trial"]))
            payload = {"lease": claim["lease"], "host": "dup",
                       "sweep": claim["sweep"], "index": claim["index"],
                       "spec_hash": claim["spec_hash"], "result": result}
            code1, body1 = request_json(f"{coord.url}/complete",
                                        payload=payload, policy=FAST_NET)
            code2, body2 = request_json(f"{coord.url}/complete",
                                        payload=payload, policy=FAST_NET)
            assert (code1, body1) == (200, {"ok": True})
            assert code2 == 200 and body2.get("duplicate")
            assert run_workers(coord.url, 1) == [0]
        assert (tmp_path / "camp" / "dist.result.json").read_text() \
            == reference
        events = journal_events(tmp_path / "camp")
        done = [e for e in events
                if e["event"] == "trial" and e["status"] == "done"]
        assert len(done) == 2            # the duplicate left no event

    def test_orphan_completion_with_wrong_hash_rejected(self, tmp_path):
        sweep = window_sweep(n=2)
        Campaign.create(tmp_path / "camp", sweep)
        with _Coordinator(tmp_path / "camp") as coord:
            code, _ = request_json(
                f"{coord.url}/complete",
                payload={"lease": "bogus", "sweep": "dist", "index": 0,
                         "spec_hash": "f" * 16, "result": {"x": 1}},
                policy=FAST_NET)
            assert code == 409
        events = journal_events(tmp_path / "camp")
        assert not any(e["event"] == "trial" and e["status"] == "done"
                       for e in events)


class TestFailureTaxonomy:
    def test_trial_error_fails_campaign_and_workers_exit_1(
            self, tmp_path):
        sweep = window_sweep(n=4)
        Campaign.create(tmp_path / "camp", sweep)

        def broken(trial):
            raise TrialError("deterministic failure")
        with _Coordinator(tmp_path / "camp") as coord:
            codes = run_workers(coord.url, 2, runner=broken)
        assert set(codes) == {1}
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "failed"
        assert "deterministic failure" in status["errors"][0]["message"]

    def test_transient_errors_retry_then_succeed(self, tmp_path):
        sweep = window_sweep(n=3)
        reference = run_sweep(sweep, workers=1, cache=None).to_json()
        Campaign.create(tmp_path / "camp", sweep)
        failures = {"left": 2}
        flock = threading.Lock()

        def flaky(trial):
            from repro.harness.runner import run_trial
            with flock:
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise OSError("transient infrastructure burp")
            return run_trial(trial)
        with _Coordinator(tmp_path / "camp") as coord:
            assert run_workers(coord.url, 2, runner=flaky) == [0, 0]
        assert (tmp_path / "camp" / "dist.result.json").read_text() \
            == reference
        events = journal_events(tmp_path / "camp")
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 2
        assert campaign_status(tmp_path / "camp")["retries"] == 2

    def test_retry_exhaustion_fails_campaign(self, tmp_path):
        sweep = window_sweep(n=2)
        Campaign.create(tmp_path / "camp", sweep, max_retries=1,
                        backoff=0.01)

        def always_broken(trial):
            raise OSError("hardware on fire")
        with _Coordinator(tmp_path / "camp") as coord:
            codes = run_workers(coord.url, 1, runner=always_broken)
        assert codes == [1]
        status = campaign_status(tmp_path / "camp")
        assert status["state"] == "failed"
        assert "failed 2 times" in status["errors"][0]["message"]
        assert "hardware on fire" in status["errors"][0]["message"]


class TestGracefulDegradation:
    def test_worker_exits_3_when_coordinator_never_existed(self):
        port = free_port()
        code = run_worker(f"http://127.0.0.1:{port}", host="lost",
                          policy=RetryPolicy(attempts=2, base_delay=0.0,
                                             max_delay=0.0, timeout=0.5))
        assert code == 3

    def test_worker_exits_3_when_coordinator_dies_midway(self, tmp_path):
        sweep = window_sweep(n=6)
        Campaign.create(tmp_path / "camp", sweep)
        coord = _Coordinator(tmp_path / "camp").__enter__()
        try:
            stop_after = {"n": 2}

            def stopping(trial):
                from repro.harness.runner import run_trial
                result = run_trial(trial)
                stop_after["n"] -= 1
                if stop_after["n"] == 0:
                    coord.__exit__()       # coordinator vanishes
                return result
            codes = run_workers(coord.url, 1, runner=stopping)
            assert codes == [3]
        finally:
            try:
                coord.__exit__()
            except Exception:
                pass
        # Nothing corrupted: a local resume still converges to the
        # reference bytes.
        result = Campaign.open(tmp_path / "camp").run(workers=1)[0]
        assert result.to_json() \
            == run_sweep(sweep, workers=1, cache=None).to_json()

    def test_coordinator_healthz_and_snapshot(self, tmp_path):
        Campaign.create(tmp_path / "camp", window_sweep(n=2))
        with _Coordinator(tmp_path / "camp") as coord:
            with urllib.request.urlopen(f"{coord.url}/healthz") as r:
                assert r.status == 200
            with urllib.request.urlopen(f"{coord.url}/coordinator") as r:
                snap = json.loads(r.read())
        assert snap["state"] == "serving"
        assert snap["unfinished"] == 2
        assert snap["lease_seconds"] == pytest.approx(5.0)


@pytest.mark.slow
@pytest.mark.parametrize("cache_uri", ["dir:cache",
                                       "sqlite:results.sqlite"])
def test_chaos_acceptance(tmp_path, cache_uri):
    """The headline invariant: two worker hosts pulling through a
    fault-injecting proxy, one host SIGKILLed mid-campaign, the
    coordinator SIGKILLed and restarted mid-campaign — and the final
    result is byte-identical to a clean single-host serial run."""
    from .test_resume import acceptance_sweep

    sweep = acceptance_sweep(n=120)
    campaign_dir = tmp_path / "camp"
    journal = campaign_dir / "journal.jsonl"
    Campaign.create(campaign_dir, sweep, cache=cache_uri)
    reference = run_sweep(sweep, workers=1, cache=None).to_json()

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    log = open(tmp_path / "children.log", "w")
    proxy = FlakyProxy(port, seed=42).start()
    procs = []
    try:
        coordinator = spawn_coordinator(campaign_dir, port,
                                        lease_seconds=2.0, log=log)
        procs.append(coordinator)
        workers = [spawn_worker(proxy.url, f"chaos-{i}", log=log)
                   for i in range(2)]
        procs += workers

        # Kill one worker host around a quarter of the way in.
        wait_for_journal(journal,
                         lambda text: done_count(text) >= len(sweep) // 4)
        kill_host(workers[0])
        replacement = spawn_worker(proxy.url, "chaos-replacement",
                                   log=log)
        procs.append(replacement)

        # SIGKILL the coordinator itself around the halfway mark, then
        # restart it on the same port: surviving workers ride out the
        # gap on their network retry budgets.
        wait_for_journal(journal,
                         lambda text: done_count(text) >= len(sweep) // 2)
        kill_host(coordinator)
        coordinator = spawn_coordinator(campaign_dir, port,
                                        lease_seconds=2.0, log=log)
        procs.append(coordinator)

        for worker in (workers[1], replacement):
            worker.wait(timeout=240)
        assert coordinator.wait(timeout=60) == 0
        exit_codes = {workers[1].returncode, replacement.returncode}
        # 0 = saw the campaign finish; 3 = lost the coordinator during
        # the restart window after its last trial.  Either is a clean
        # exit — never a corrupting one.
        assert exit_codes <= {0, 3}
    finally:
        for proc in procs:
            try:
                kill_host(proc)
            except Exception:
                pass
        proxy.stop()
        log.close()

    assert (campaign_dir / "acceptance.result.json").read_text() \
        == reference
    status = campaign_status(campaign_dir)
    assert status["state"] == "finished"
    assert status["remaining"] == 0
    assert proxy.faults > 0, "the proxy never injected a fault"
    # Both the killed host and its replacement appear in the journal.
    assert {"chaos-0", "chaos-1"} <= set(status["hosts"])

"""Fault-injecting trial runners for campaign-engine tests.

Module-level functions so worker processes can unpickle them.  A trial
opts into a fault via a ``fault`` param (ignored by the real runners —
it only changes the spec hash); "once" faults mark a flag file under
``$REPRO_TEST_FAULT_DIR`` so the retry succeeds.
"""

import os
import pathlib
import signal
import time

from repro.harness.runner import run_trial

FAULT_DIR_ENV = "REPRO_TEST_FAULT_DIR"


def _first_attempt(trial) -> bool:
    flag = pathlib.Path(os.environ[FAULT_DIR_ENV]) / \
        f"{trial.spec_hash()}.tripped"
    if flag.exists():
        return False
    flag.write_text("tripped")
    return True


def kill_once(trial):
    """SIGKILL this worker on the first attempt of a marked trial.

    The pause lets the queue feeder thread flush the engine's "claim"
    message first, so the test exercises the claimed-trial retry path
    rather than the stall-reconciliation fallback.
    """
    if trial.params.get("fault") == "kill" and _first_attempt(trial):
        time.sleep(0.2)
        os.kill(os.getpid(), signal.SIGKILL)
    return run_trial(trial)


def hang_once(trial):
    """Hang far past any test timeout on the first attempt."""
    if trial.params.get("fault") == "hang" and _first_attempt(trial):
        time.sleep(300)
    return run_trial(trial)


def raise_once(trial):
    """Raise a non-TrialError (infrastructure-style) failure once."""
    if trial.params.get("fault") == "raise" and _first_attempt(trial):
        raise RuntimeError("injected transient failure")
    return run_trial(trial)


def always_raise(trial):
    """Every attempt of a marked trial fails transiently — exhausts
    the retry budget."""
    if trial.params.get("fault") == "always":
        raise RuntimeError("injected persistent transient failure")
    return run_trial(trial)

"""Cross-cutting integration scenarios not covered by the per-module
suites: defense x padded gadget, variant controllers x indirect attacks,
re-run determinism, and stats consistency."""

import pytest

from repro.attack import run_specrun
from repro.defense import SecureRunahead
from repro.runahead import OriginalRunahead, PreciseRunahead, VectorRunahead


class TestCrossMatrix:
    def test_vector_runahead_vs_btb_variant(self):
        result = run_specrun("btb", runahead=VectorRunahead())
        assert result.succeeded

    def test_precise_runahead_vs_rsb_overwrite(self):
        result = run_specrun("rsb-overwrite", runahead=PreciseRunahead())
        assert result.succeeded

    def test_secure_blocks_padded_gadget(self):
        result = run_specrun("pht", runahead=SecureRunahead(),
                             secret_value=127, nop_padding=300)
        assert not result.leaked


class TestDeterminism:
    def test_attack_is_bit_deterministic(self):
        """Two independent runs produce identical probe vectors — the
        simulator has no hidden global state."""
        a = run_specrun("pht", secret_value=55)
        b = run_specrun("pht", secret_value=55)
        assert a.latencies == b.latencies
        assert a.stats.cycles == b.stats.cycles


class TestStatsConsistency:
    def test_counts_are_coherent(self):
        result = run_specrun("pht")
        stats = result.stats
        assert stats.dispatched >= stats.committed
        assert stats.fetched >= stats.dispatched
        assert stats.issued <= stats.dispatched
        assert stats.transient_executed >= stats.pseudo_retired
        assert stats.cycles > 0
        assert 0 < stats.ipc <= 4

    def test_no_leak_means_no_recovered_secret(self):
        result = run_specrun("pht", runahead=SecureRunahead())
        assert result.recovered_secret is None
        assert "no leak" in result.describe()

"""Transient-window measurements (Fig. 10) and their invariants."""

import pytest

from repro.attack import measure_fig10, measure_window
from repro.attack.window import AsyncFlusher, window_program
from repro.pipeline import Core, CoreConfig
from repro.runahead import NoRunahead, OriginalRunahead


@pytest.fixture(scope="module")
def fig10():
    return measure_fig10(sled=2048)


class TestFig10:
    def test_n1_equals_rob_minus_one(self, fig10):
        n1, _, _ = fig10
        assert n1.window == CoreConfig.paper().rob_size - 1   # paper: 255

    def test_n2_exceeds_rob(self, fig10):
        _, n2, _ = fig10
        assert n2.window > CoreConfig.paper().rob_size
        assert n2.pseudo_retired > 0
        assert n2.runahead_episodes == 1

    def test_n3_exceeds_n2(self, fig10):
        _, n2, n3 = fig10
        assert n3.window > n2.window
        assert n3.cycles > n2.cycles

    def test_ordering_matches_paper(self, fig10):
        n1, n2, n3 = fig10
        assert n1.window < n2.window < n3.window

    def test_more_flushes_extend_further(self):
        one = measure_window(OriginalRunahead(), async_flushes=1, sled=4096)
        two = measure_window(OriginalRunahead(), async_flushes=2, sled=4096)
        assert two.window > one.window


class TestWindowScaling:
    def test_n1_tracks_rob_size(self):
        """Ablation: the normal-mode window is exactly ROB-limited."""
        for rob in (64, 128):
            config = CoreConfig.paper(rob_size=rob)
            m = measure_window(NoRunahead(), sled=1024, config=config)
            assert m.window == rob - 1

    def test_n2_tracks_memory_latency(self):
        """Longer stalls give runahead more room."""
        from repro.memory import HierarchyConfig
        short = CoreConfig.paper(hierarchy=HierarchyConfig.paper())
        slow_h = HierarchyConfig(
            l1i=short.hierarchy.l1i, l1d=short.hierarchy.l1d,
            l2=short.hierarchy.l2, l3=short.hierarchy.l3,
            mem_latency=400, mem_occupancy=8)
        slow = CoreConfig.paper(hierarchy=slow_h)
        fast_m = measure_window(OriginalRunahead(), sled=4096, config=short)
        slow_m = measure_window(OriginalRunahead(), sled=4096, config=slow)
        assert slow_m.window > fast_m.window


class TestLivelock:
    def test_self_flush_livelocks(self):
        """In-stream repeated flushing of the stalling line livelocks the
        runahead machine — why the paper's case ③ needs a second thread."""
        program, image = window_program(sled=64, self_flushes=1)
        core = Core(program, memory_image=image, config=CoreConfig.small(),
                    runahead=OriginalRunahead(), warm_icache=True)
        core.run(max_cycles=30_000)
        assert not core.halted
        assert core.stats.runahead_episodes > 5

    def test_async_flusher_is_bounded(self):
        m = measure_window(OriginalRunahead(), async_flushes=3, sled=8192)
        assert m.runahead_episodes == 1   # one long episode, not a loop

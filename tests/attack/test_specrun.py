"""End-to-end SPECRUN attack tests (the paper's §5.2 and §4.3/§4.4 claims).

These run the full pipeline — training, flush, trigger, probe — on the
Table-1 machine.  Each takes on the order of a second of host time.
"""

import pytest

from repro.attack import SpecRunAttack, run_classic_spectre, run_specrun
from repro.runahead import (NoRunahead, OriginalRunahead, PreciseRunahead,
                            VectorRunahead)
from repro.pipeline import CoreConfig


class TestPhtPoC:
    def test_recovers_planted_secret(self):
        result = run_specrun("pht", secret_value=86)
        assert result.succeeded
        assert result.recovered_secret == 86

    def test_probe_shape_matches_fig9(self):
        """One dip at the secret index; everything else near memory
        latency — the Fig. 9 curve."""
        result = run_specrun("pht", secret_value=86)
        latencies = result.latencies
        dip = latencies[86]
        others = [lat for i, lat in enumerate(latencies) if i != 86]
        assert dip < 50
        assert min(others) > 150

    def test_different_secret_values(self):
        for secret in (3, 200, 255):
            result = run_specrun("pht", secret_value=secret)
            assert result.succeeded, f"failed for secret {secret}"

    def test_attack_engages_runahead(self):
        result = run_specrun("pht")
        assert result.stats.runahead_episodes >= 1
        assert result.stats.inv_branches >= 1
        assert result.stats.runahead_prefetches >= 1

    def test_architectural_state_never_reads_secret(self):
        """The victim's bounds check holds architecturally: the attack is
        purely transient."""
        attack = SpecRunAttack("pht", secret_value=86)
        result = attack.run()
        assert result.succeeded


class TestSpectreVariants:
    """§4.4: the mixed optimization applies to PHT, BTB and RSB variants."""

    @pytest.mark.parametrize("variant", ["btb", "rsb-overwrite",
                                         "rsb-flush"])
    def test_variant_leaks_under_runahead(self, variant):
        result = run_specrun(variant)
        assert result.succeeded, result.describe()

    def test_btb_uses_poisoned_target(self):
        result = run_specrun("btb")
        assert result.stats.runahead_episodes >= 1
        assert result.succeeded


class TestRunaheadVariants:
    """§4.3: precise and vector runahead are also vulnerable."""

    @pytest.mark.parametrize("controller_cls", [PreciseRunahead,
                                                VectorRunahead])
    def test_variant_controllers_leak(self, controller_cls):
        result = run_specrun("pht", runahead=controller_cls())
        assert result.succeeded, result.describe()

    def test_precise_runahead_filters_non_slice_work(self):
        result = run_specrun("pht", runahead=PreciseRunahead())
        assert result.stats.filtered_instructions > 0


class TestPredictorAgnosticism:
    """The attack trains whatever direction predictor is configured."""

    @pytest.mark.parametrize("predictor", ["bimodal", "twolevel"])
    def test_leaks_with_predictor(self, predictor):
        config = CoreConfig.paper(predictor=predictor)
        result = run_specrun("pht", config=config)
        assert result.succeeded, result.describe()


class TestBaselines:
    def test_unpadded_gadget_also_leaks_classically(self):
        """Within the ROB window, plain speculation leaks too — SPECRUN's
        novelty is beyond-ROB reach, not the in-window leak."""
        result = run_classic_spectre("pht")
        assert result.succeeded

    def test_beyond_rob_only_runahead_leaks(self):
        """Fig. 11: with a nop sled longer than the ROB, the baseline
        machine cannot reach the gadget; the runahead machine can."""
        padding = 300   # > 256-entry ROB
        baseline = run_specrun("pht", runahead=NoRunahead(),
                               secret_value=127, nop_padding=padding)
        runahead = run_specrun("pht", runahead=OriginalRunahead(),
                               secret_value=127, nop_padding=padding)
        assert not baseline.leaked
        assert runahead.succeeded
        assert runahead.recovered_secret == 127


class TestFaithfulLimitations:
    def test_uncached_secret_does_not_leak(self):
        """Runahead loads that miss to memory return INV (Mutlu'03), so a
        secret that is not cache-resident cannot be leaked — a genuine
        SPECRUN limitation this model reproduces."""
        result = run_specrun("pht", touch_secret=False)
        assert not result.succeeded

"""Structural tests of the attack-program builders (no simulation)."""

import pytest

from repro.attack import (build_attack, build_btb_attack, build_pht_attack,
                          build_rsb_flush_attack, build_rsb_overwrite_attack)
from repro.isa import Opcode


class TestCommonLayout:
    @pytest.mark.parametrize("variant", ["pht", "btb", "rsb-overwrite",
                                         "rsb-flush"])
    def test_builder_produces_consistent_bundle(self, variant):
        attack = build_attack(variant)
        assert attack.variant == variant
        assert attack.program.fetch(0) is not None
        # The secret sits out of array1's bounds at the malicious index.
        offset = attack.secret_addr - attack.array1_addr
        assert offset == attack.malicious_index * 8
        assert attack.image.initial_words()[attack.secret_addr] == \
            attack.secret_value

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_attack("meltdown")

    def test_probe_entries_must_be_power_of_two(self):
        with pytest.raises(AssertionError):
            build_pht_attack(probe_entries=100)

    @pytest.mark.parametrize("variant", ["pht", "btb", "rsb-overwrite",
                                         "rsb-flush"])
    def test_program_contains_attack_phases(self, variant):
        attack = build_attack(variant)
        opcodes = [instr.opcode for instr in attack.program]
        assert Opcode.CLFLUSH in opcodes        # flush phase
        assert Opcode.RDTSC in opcodes          # probe timing
        assert Opcode.FENCE in opcodes          # serialization
        assert Opcode.HALT in opcodes

    def test_expected_probe_index_equals_secret(self):
        attack = build_pht_attack(secret_value=123)
        assert attack.expected_probe_index() == 123


class TestPhtSpecifics:
    def test_nop_padding_inserted(self):
        plain = build_pht_attack(nop_padding=0)
        padded = build_pht_attack(nop_padding=300)
        assert len(padded.program) == len(plain.program) + 300
        assert padded.notes == "nop_padding=300"

    def test_trigger_word_holds_array_size(self):
        attack = build_pht_attack(array1_words=16)
        trigger = attack.image.address_of("trigger_d")
        assert attack.image.initial_words()[trigger] == 16

    def test_touch_secret_flag(self):
        touched = build_pht_attack(touch_secret=True)
        untouched = build_pht_attack(touch_secret=False)
        assert len(touched.program) > len(untouched.program)


class TestBtbSpecifics:
    def test_gadget_and_benign_addresses_recorded(self):
        attack = build_btb_attack()
        gadget = attack.image.symbols["victim_gadget_addr"]
        benign = attack.image.symbols["victim_benign_addr"]
        assert gadget == attack.program.address_of("victim_gadget")
        assert benign == attack.program.address_of("victim_benign")
        assert gadget != benign

    def test_indirect_jump_present(self):
        attack = build_btb_attack()
        assert any(i.opcode is Opcode.JR for i in attack.program)


class TestRsbSpecifics:
    def test_overwrite_variant_stores_to_stack(self):
        attack = build_rsb_overwrite_attack()
        labels = attack.program.labels
        assert "rsb_gadget" in labels
        assert "benign_landing" in labels
        # The gadget sits at the call-site fall-through, before the
        # architectural landing point.
        assert labels["rsb_gadget"] < labels["benign_landing"]

    def test_flush_variant_has_trampoline_desync(self):
        attack = build_rsb_flush_attack()
        labels = attack.program.labels
        assert "tramp" in labels
        assert "victim_ret" in labels
        assert any(i.opcode is Opcode.RET for i in attack.program)


class TestLatencyExtraction:
    def test_read_latencies_pulls_results_array(self):
        from repro import Core, CoreConfig

        attack = build_pht_attack(probe_entries=256)

        class FakeMemory:
            def read_word(self, addr):
                return (addr - attack.results_addr) // 8

        class FakeCore:
            memory = FakeMemory()

        latencies = attack.read_latencies(FakeCore())
        assert latencies == list(range(256))

"""The docs reference checker stays green and actually catches rot.

``tools/check_docs.py`` is the CI ``docs-check`` gate; running it in
tier-1 keeps local edits honest too, and the negative cases pin that
the checker would really fail on a dangling reference (a checker that
passes everything protects nothing).
"""

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402  (path set up above)


def test_repo_docs_have_no_dangling_references(capsys):
    assert check_docs.main(["--root", str(ROOT)]) == 0
    assert "all references resolve" in capsys.readouterr().out


def test_checker_covers_every_doc_file():
    names = {path.name for path in check_docs.doc_files(ROOT)}
    assert "README.md" in names
    for doc in ("ARCHITECTURE.md", "CHANNELS.md", "EXPERIMENTS.md",
                "PERFORMANCE.md", "WORKLOADS.md"):
        assert doc in names


@pytest.mark.parametrize("snippet,problem", [
    ("see `repro.channel.receiver.WarpReceiver`", "dangling symbol"),
    ("run `python -m repro sweep fig9 --turbo`", "unknown CLI flag"),
    ("run `python -m repro sweep fig99`", "unknown preset"),
    ("try `python -m repro run teleport`", "unknown trial kind"),
    ("pass `workload=spec2077` to the trial", "unknown workload"),
    ("pass `receiver=quantum-probe`", "unknown receiver"),
    ("pass `runahead=vectr`", "unknown controller"),
    ("pass `contender=secrue`", "unknown controller"),
    ("pass `--executor warp` — sorry, `executor=warp`",
     "unknown executor"),
    ('set `executor="hyperspace"` in Python', "unknown executor"),
    ("run `python -m repro campaign pause`", "unknown subcommand"),
    ("run `python -m repro trace replay`", "unknown subcommand"),
])
def test_checker_flags_dangling_references(tmp_path, snippet, problem):
    bad = tmp_path / "BAD.md"
    bad.write_text(f"# Doc\n\n{snippet}\n", encoding="utf-8")
    problems = check_docs.check_file(bad)
    assert problems, snippet
    assert any(problem in entry for entry in problems), problems


def test_checker_accepts_resolvable_references(tmp_path):
    good = tmp_path / "GOOD.md"
    good.write_text(
        "# Doc\n\nUse `repro.harness.run_sweep` via "
        "`python -m repro sweep fig9 --workers 2` or "
        "`python -m repro run ipc workload=trace-mcf` with "
        "`--executor fleet` (or `executor=fleet`), files via "
        "`corunner=trace:saved.trace`, then "
        "`python -m repro campaign status campaigns/fig7`.\n",
        encoding="utf-8")
    assert check_docs.check_file(good) == []

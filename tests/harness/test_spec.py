"""Trial/Sweep spec semantics: determinism, hashing, serialization."""

import pytest

from repro.harness.spec import Sweep, Trial, canonical_json, stable_seed


class TestTrial:
    def test_seed_is_deterministic_across_instances(self):
        a = Trial("attack", {"variant": "pht", "runahead": "original"})
        b = Trial("attack", {"runahead": "original", "variant": "pht"})
        assert a.seed == b.seed
        assert a.spec_hash() == b.spec_hash()

    def test_seed_differs_with_params(self):
        a = Trial("attack", {"variant": "pht"})
        b = Trial("attack", {"variant": "btb"})
        assert a.seed != b.seed
        assert a.spec_hash() != b.spec_hash()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trial kind"):
            Trial("frobnicate", {})

    def test_non_serializable_params_rejected(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            Trial("attack", {"controller": object()})

    def test_round_trip(self):
        trial = Trial("window", {"runahead": "original", "sled": 128})
        clone = Trial.from_dict(trial.to_dict())
        assert clone == trial
        assert clone.spec_hash() == trial.spec_hash()

    def test_default_label_names_key_params(self):
        trial = Trial("attack", {"variant": "pht", "runahead": "vector"})
        assert "pht" in trial.label and "vector" in trial.label

    def test_verify_label_names_target_and_defense(self):
        trial = Trial("verify", {"target": "stale-store",
                                 "defense": "secure"})
        assert "stale-store" in trial.label and "secure" in trial.label


class TestTrialKindConsistency:
    """The spec validator and the runner dispatch must present the same
    universe of trial kinds — an unknown kind gets the same list from
    both, and every declared kind actually has a runner."""

    def test_runners_cover_exactly_the_declared_kinds(self):
        from repro.harness.runner import _RUNNERS
        from repro.harness.spec import TRIAL_KINDS
        assert set(_RUNNERS) == set(TRIAL_KINDS)

    def test_unknown_kind_messages_list_the_same_kinds(self):
        from repro.harness.runner import TrialError, run_trial
        from repro.harness.spec import TRIAL_KINDS
        with pytest.raises(ValueError) as spec_err:
            Trial("frobnicate", {})
        # Reach the runner with a kind the spec validator would reject.
        trial = Trial("taint", {})
        trial.kind = "frobnicate"
        with pytest.raises(TrialError) as runner_err:
            run_trial(trial)
        suffix = f"expected one of {TRIAL_KINDS}"
        assert str(spec_err.value).endswith(suffix)
        assert str(runner_err.value).endswith(suffix)


class TestSweep:
    def test_grid_expands_cartesian_in_order(self):
        sweep = Sweep.grid("demo", "attack",
                           variant=["pht", "btb"],
                           runahead=["original", "secure"])
        combos = [(t.params["variant"], t.params["runahead"])
                  for t in sweep]
        assert combos == [("pht", "original"), ("pht", "secure"),
                          ("btb", "original"), ("btb", "secure")]

    def test_grid_base_params_shared(self):
        sweep = Sweep.grid("demo", "attack", base={"secret_value": 42},
                           variant=["pht", "btb"])
        assert all(t.params["secret_value"] == 42 for t in sweep)

    def test_round_trip(self):
        sweep = Sweep.grid("demo", "window", sled=[64, 128])
        clone = Sweep.from_dict(sweep.to_dict())
        assert clone.name == sweep.name
        assert clone.trials == sweep.trials

    def test_add_returns_trial(self):
        sweep = Sweep("demo")
        trial = sweep.add("taint")
        assert sweep.trials == [trial]


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == \
        canonical_json({"a": {"c": 3, "d": 2}, "b": 1})


def test_stable_seed_fixed_value():
    # Pinned: a changed derivation would silently invalidate every cache.
    assert stable_seed("x", "y") == stable_seed("x", "y")
    assert stable_seed("x", "y") != stable_seed("xy", "")

"""CLI smoke tests: ``python -m repro`` subcommands, in-process."""

import json

import pytest

from repro.__main__ import _parse_assignments, main


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestParsing:
    def test_assignments_parse_literals(self):
        params = _parse_assignments(
            ["variant=pht", "secret_value=42", "flag=true",
             "config.rob_size=64"])
        assert params == {"variant": "pht", "secret_value": 42,
                         "flag": True, "config": {"rob_size": 64}}

    def test_bad_assignment_exits(self):
        with pytest.raises(SystemExit):
            _parse_assignments(["oops"])


class TestSweepCommand:
    def test_list_presets(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7", "fig9", "sec6", "ablations", "table1"):
            assert name in out

    def test_sweep_renders_report(self, capsys, cache_dir):
        assert main(["sweep", "fig12", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "Btag" in out
        assert "sweep fig12" in out

    def test_sweep_json_is_canonical(self, capsys, cache_dir):
        assert main(["sweep", "fig12", "--json",
                     "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "fig12", "--json",
                     "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["sweep"] == "fig12"
        assert len(payload["records"]) == 1

    def test_unknown_preset_errors(self, capsys, cache_dir):
        assert main(["sweep", "fig99", "--cache-dir", cache_dir]) == 1
        err = capsys.readouterr().err
        assert "unknown preset" in err and "fig7" in err

    def test_unknown_controller_errors(self, capsys, cache_dir):
        assert main(["run", "attack", "variant=pht", "runahead=warp",
                     "--no-cache"]) == 1
        assert "unknown runahead controller" in capsys.readouterr().err

    def test_missing_report_file_errors(self, capsys):
        assert main(["report", "/nonexistent/result.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestVerifyCommand:
    def test_list_targets(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("pht", "stale-store", "pht-safe"):
            assert name in out
        assert "gen:<family>:<seed>" in out

    def test_leaking_target_exits_one(self, capsys):
        assert main(["verify", "stale-store", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "LEAK" in out and "window=runahead" in out
        assert "taint=secret_word" in out

    def test_defended_target_exits_zero(self, capsys):
        assert main(["verify", "stale-store", "--defense", "secure",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "suppressed" in out

    def test_window_narrowing(self, capsys):
        assert main(["verify", "stale-store", "--windows", "speculation",
                     "--no-cache"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cross_check_agreement(self, capsys):
        assert main(["verify", "stale-store-safe", "--cross-check",
                     "--no-cache"]) == 0
        assert "agree" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        assert main(["verify", "stale-store", "--json",
                     "--no-cache"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["clean"] is False
        assert payload["result"]["reports"][0]["window"] == "runahead"

    def test_unknown_target_errors(self, capsys):
        assert main(["verify", "meltdown", "--no-cache"]) == 1
        assert "unknown verify target" in capsys.readouterr().err

    def test_defense_choices_match_the_checker(self):
        from repro.verify.engine import DEFENSES
        with pytest.raises(SystemExit):
            main(["verify", "pht", "--defense", "asbestos"])
        for defense in DEFENSES:
            # argparse accepts every checker defense name.
            from repro.__main__ import build_parser
            args = build_parser().parse_args(
                ["verify", "pht", "--defense", defense])
            assert args.defense == defense


class TestRunCommand:
    def test_run_taint_trial(self, capsys, cache_dir):
        assert main(["run", "taint", "--cache-dir", cache_dir]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["cached"] is False
        assert record["result"]["mismatches"] == []
        # Second invocation is served from the cache.
        assert main(["run", "taint", "--cache-dir", cache_dir]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["cached"] is True

    def test_run_small_config_workload(self, capsys, cache_dir):
        assert main(["run", "run", "workload=reference",
                     "config_base=small", "--no-cache"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["result"]["halted"] is True


class TestAttackCommand:
    def test_extraction_end_to_end(self, capsys, cache_dir):
        assert main(["attack", "--secret", "A", "--trials", "1",
                     "--no-noise", "--min-success", "1",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "recovered      : 'A'" in out
        assert "success rate   : 1.00" in out
        assert "bits/s" in out
        # Second invocation is a cache hit with identical results.
        assert main(["attack", "--secret", "A", "--trials", "1",
                     "--no-noise", "--min-success", "1",
                     "--cache-dir", cache_dir]) == 0
        assert "[cached]" in capsys.readouterr().out

    def test_json_output(self, capsys, cache_dir):
        assert main(["attack", "--secret", "A", "--trials", "1",
                     "--no-noise", "--json",
                     "--cache-dir", cache_dir]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["trial"]["kind"] == "extract"
        assert record["result"]["recovered"] == [65]

    def test_min_success_gates_exit_code(self, capsys, cache_dir):
        # A byte this channel cannot carry: evict+reload must ignore
        # the training-warmed probe entry (index 8), so a secret byte
        # of 8 never decodes — the --min-success gate must exit 1.
        assert main(["attack", "--secret", "\x08",
                     "--receiver", "evict-reload", "--trials", "1",
                     "--no-noise", "--min-success", "1",
                     "--cache-dir", cache_dir]) == 1
        captured = capsys.readouterr()
        assert "success rate   : 0.00" in captured.out
        assert "below --min-success" in captured.err

    def test_beyond_rob_channel_is_silent_without_runahead(self, capsys):
        # No-runahead machine with a beyond-ROB gadget never transmits.
        assert main(["run", "extract", "secret=[65]", "trials=1",
                     "runahead=none", "nop_padding=300",
                     "--no-cache"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["result"]["success_rate"] == 0.0


class TestReportCommand:
    def test_report_from_saved_json(self, capsys, tmp_path, cache_dir):
        out_file = tmp_path / "fig12.json"
        assert main(["sweep", "fig12", "--out", str(out_file),
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["report", str(out_file)]) == 0
        assert "Btag" in capsys.readouterr().out

    def test_report_preset_uses_cache(self, capsys, cache_dir):
        assert main(["sweep", "fig12", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["report", "fig12", "--cache-dir", cache_dir]) == 0
        assert "Btag" in capsys.readouterr().out


class TestCacheCommand:
    def test_cache_status_and_clear(self, capsys, cache_dir):
        main(["sweep", "fig12", "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "records      : 1" in capsys.readouterr().out
        assert main(["cache", "--clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out


class TestCampaignCommand:
    def test_run_status_resume_cycle(self, capsys, tmp_path):
        cdir = str(tmp_path / "camp")
        assert main(["campaign", "run", "fig12", "--dir", cdir,
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "campaign directory:" in out

        assert main(["campaign", "status", cdir]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "1/1 trials" in out

        # Resuming a finished campaign is a no-op served from cache.
        assert main(["campaign", "resume", cdir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweep"] == "fig12"
        assert len(payload["records"]) == 1

    def test_status_json(self, capsys, tmp_path):
        cdir = str(tmp_path / "camp")
        assert main(["campaign", "run", "fig12", "--dir", cdir,
                     "--workers", "1", "--json"]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", cdir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "finished"
        assert status["completed"] == 1

    def test_sqlite_cache_uri(self, capsys, tmp_path):
        cdir = tmp_path / "camp"
        assert main(["campaign", "run", "fig12", "--dir", str(cdir),
                     "--workers", "1", "--cache",
                     "sqlite:results.sqlite", "--json"]) == 0
        assert (cdir / "results.sqlite").is_file()
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 1

    def test_status_of_missing_campaign_errors(self, capsys, tmp_path):
        assert main(["campaign", "status",
                     str(tmp_path / "nothing")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_rerun_with_different_presets_errors(self, capsys, tmp_path):
        cdir = str(tmp_path / "camp")
        assert main(["campaign", "run", "fig12", "--dir", cdir,
                     "--workers", "1"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", "fig10", "--dir", cdir,
                     "--quick", "--workers", "1"]) == 1
        assert "different campaign" in capsys.readouterr().err

    def test_campaign_without_subcommand_prints_help(self, capsys):
        assert main(["campaign"]) == 2
        out = capsys.readouterr().out
        for sub in ("run", "resume", "status", "serve"):
            assert sub in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "sweep" in capsys.readouterr().out

"""Backend-conformance suite: every CacheBackend behaves identically.

The same battery runs against the directory and sqlite backends —
anything observable through the public surface (get/put/contains/
evict/stats/clear/count/uri) must not depend on the storage scheme.
"""

import json

import pytest

from repro.harness.cache import (CacheBackend, DirectoryCacheBackend,
                                 ResultCache, SqliteCacheBackend,
                                 resolve_cache)
from repro.harness.spec import Trial


def make_trial(sled=64) -> Trial:
    return Trial("window", {"runahead": "none", "sled": sled,
                            "config_base": "small"})


@pytest.fixture(params=["dir", "sqlite"])
def backend(request, tmp_path) -> CacheBackend:
    if request.param == "dir":
        return DirectoryCacheBackend(root=tmp_path / "cache",
                                     code_version="v1")
    return SqliteCacheBackend(path=tmp_path / "cache.sqlite",
                              code_version="v1")


class TestConformance:
    def test_round_trip(self, backend):
        trial = make_trial()
        assert backend.get(trial) is None
        backend.put(trial, {"window": 42})
        assert backend.get(trial) == {"window": 42}

    def test_contains_does_not_touch_counters(self, backend):
        trial = make_trial()
        assert not backend.contains(trial)
        backend.put(trial, {"ok": True})
        assert backend.contains(trial)
        assert backend.hits == backend.misses == 0

    def test_counters(self, backend):
        trial = make_trial()
        backend.get(trial)                      # miss
        backend.put(trial, {"ok": True})
        backend.get(trial)                      # hit
        backend.evict(trial)
        stats = backend.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["evictions"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["backend"] == backend.scheme
        assert stats["uri"] == backend.uri()

    def test_evict(self, backend):
        trial = make_trial()
        assert not backend.evict(trial)
        backend.put(trial, {"ok": True})
        assert backend.evict(trial)
        assert backend.get(trial) is None

    def test_count_and_clear(self, backend):
        for sled in (8, 16, 24):
            backend.put(make_trial(sled), {"sled": sled})
        assert backend.count() == 3
        assert backend.clear() == 3
        assert backend.count() == 0
        assert backend.get(make_trial(8)) is None

    def test_put_overwrites(self, backend):
        trial = make_trial()
        backend.put(trial, {"v": 1})
        backend.put(trial, {"v": 2})
        assert backend.get(trial) == {"v": 2}
        assert backend.count() == 1

    def test_distinct_trials_distinct_records(self, backend):
        backend.put(make_trial(8), {"sled": 8})
        backend.put(make_trial(16), {"sled": 16})
        assert backend.get(make_trial(8)) == {"sled": 8}
        assert backend.get(make_trial(16)) == {"sled": 16}

    def test_key_is_shared_across_backends(self, backend, tmp_path):
        other = DirectoryCacheBackend(root=tmp_path / "other",
                                      code_version="v1")
        assert backend.key(make_trial()) == other.key(make_trial())

    def test_code_version_partitions_keys(self, backend, tmp_path):
        other = SqliteCacheBackend(path=tmp_path / "other.sqlite",
                                   code_version="v2")
        assert backend.key(make_trial()) != other.key(make_trial())

    def test_uri_round_trips_through_resolve_cache(self, backend):
        trial = make_trial()
        backend.put(trial, {"ok": True})
        reopened = resolve_cache(backend.uri())
        reopened.code_version = "v1"
        assert reopened.get(trial) == {"ok": True}
        assert reopened.uri() == backend.uri()


class TestCorruptionResilience:
    """A broken store degrades to a miss — never an exception."""

    def test_corrupt_directory_record(self, tmp_path):
        backend = DirectoryCacheBackend(root=tmp_path, code_version="v1")
        trial = make_trial()
        backend.put(trial, {"ok": True})
        backend._path(backend.key(trial)).write_text("{garbage",
                                                     encoding="utf-8")
        assert backend.get(trial) is None

    def test_corrupt_sqlite_file(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        path.write_bytes(b"this is not a database")
        backend = SqliteCacheBackend(path=path, code_version="v1")
        trial = make_trial()
        assert backend.get(trial) is None
        backend.put(trial, {"ok": True})     # silently degrades
        assert backend.count() == 0

    def test_wrong_record_version_is_a_miss(self, tmp_path):
        backend = DirectoryCacheBackend(root=tmp_path, code_version="v1")
        trial = make_trial()
        backend.put(trial, {"ok": True})
        path = backend._path(backend.key(trial))
        record = json.loads(path.read_text())
        record["version"] = 999
        path.write_text(json.dumps(record), encoding="utf-8")
        assert backend.get(trial) is None


class TestResolveCache:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_backend_passthrough(self, tmp_path):
        backend = SqliteCacheBackend(path=tmp_path / "x.sqlite",
                                     code_version="v1")
        assert resolve_cache(backend) is backend

    def test_dir_uri(self, tmp_path):
        backend = resolve_cache(f"dir:{tmp_path / 'store'}")
        assert isinstance(backend, DirectoryCacheBackend)
        assert backend.root == tmp_path / "store"

    def test_sqlite_uri(self, tmp_path):
        backend = resolve_cache(f"sqlite:{tmp_path / 'store.sqlite'}")
        assert isinstance(backend, SqliteCacheBackend)
        assert backend.path == tmp_path / "store.sqlite"

    def test_plain_path_is_directory_backend(self, tmp_path):
        backend = resolve_cache(str(tmp_path / "legacy"))
        assert isinstance(backend, DirectoryCacheBackend)
        assert backend.root == tmp_path / "legacy"

    def test_auto_honours_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_cache("auto") is None

    def test_result_cache_alias_is_the_directory_backend(self):
        assert ResultCache is DirectoryCacheBackend


class TestDirectoryLayout:
    """The historical on-disk layout is part of the public contract
    (CI cache restores are plain directory copies)."""

    def test_record_path_shape(self, tmp_path):
        backend = DirectoryCacheBackend(root=tmp_path, code_version="v1")
        trial = make_trial()
        backend.put(trial, {"ok": True})
        key = backend.key(trial)
        path = tmp_path / key[:2] / f"{key}.json"
        assert path.is_file()
        record = json.loads(path.read_text())
        assert record["version"] == 1
        assert record["key"] == key
        assert record["result"] == {"ok": True}
        assert record["trial"] == trial.to_dict()

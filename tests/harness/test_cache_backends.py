"""Backend-conformance suite: every CacheBackend behaves identically.

The same battery runs against the directory, sqlite and http backends
— anything observable through the public surface (get/put/contains/
evict/stats/clear/count/uri) must not depend on the storage scheme.
The http backend runs in front of a real loopback cache server, so
every conformance assertion also exercises the wire protocol.
"""

import json
import threading

import pytest

from repro.harness.cache import (CacheBackend, DirectoryCacheBackend,
                                 ResultCache, SqliteCacheBackend,
                                 resolve_cache)
from repro.harness.spec import Trial


def make_trial(sled=64) -> Trial:
    return Trial("window", {"runahead": "none", "sled": sled,
                            "config_base": "small"})


@pytest.fixture(params=["dir", "sqlite", "http"])
def backend(request, tmp_path) -> CacheBackend:
    if request.param == "dir":
        yield DirectoryCacheBackend(root=tmp_path / "cache",
                                    code_version="v1")
        return
    if request.param == "sqlite":
        yield SqliteCacheBackend(path=tmp_path / "cache.sqlite",
                                 code_version="v1")
        return
    from repro.campaign.httpcache import (HttpCacheBackend,
                                          make_cache_server)
    from repro.campaign.netretry import RetryPolicy
    server = make_cache_server(
        DirectoryCacheBackend(root=tmp_path / "remote",
                              code_version="v1"))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield HttpCacheBackend(f"http://{host}:{port}", code_version="v1",
                           policy=RetryPolicy(attempts=3,
                                              base_delay=0.01,
                                              max_delay=0.05,
                                              timeout=5.0))
    server.shutdown()
    server.server_close()


class TestConformance:
    def test_round_trip(self, backend):
        trial = make_trial()
        assert backend.get(trial) is None
        backend.put(trial, {"window": 42})
        assert backend.get(trial) == {"window": 42}

    def test_contains_does_not_touch_counters(self, backend):
        trial = make_trial()
        assert not backend.contains(trial)
        backend.put(trial, {"ok": True})
        assert backend.contains(trial)
        assert backend.hits == backend.misses == 0

    def test_counters(self, backend):
        trial = make_trial()
        backend.get(trial)                      # miss
        backend.put(trial, {"ok": True})
        backend.get(trial)                      # hit
        backend.evict(trial)
        stats = backend.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["evictions"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["backend"] == backend.scheme
        assert stats["uri"] == backend.uri()

    def test_evict(self, backend):
        trial = make_trial()
        assert not backend.evict(trial)
        backend.put(trial, {"ok": True})
        assert backend.evict(trial)
        assert backend.get(trial) is None

    def test_count_and_clear(self, backend):
        for sled in (8, 16, 24):
            backend.put(make_trial(sled), {"sled": sled})
        assert backend.count() == 3
        assert backend.clear() == 3
        assert backend.count() == 0
        assert backend.get(make_trial(8)) is None

    def test_put_overwrites(self, backend):
        trial = make_trial()
        backend.put(trial, {"v": 1})
        backend.put(trial, {"v": 2})
        assert backend.get(trial) == {"v": 2}
        assert backend.count() == 1

    def test_distinct_trials_distinct_records(self, backend):
        backend.put(make_trial(8), {"sled": 8})
        backend.put(make_trial(16), {"sled": 16})
        assert backend.get(make_trial(8)) == {"sled": 8}
        assert backend.get(make_trial(16)) == {"sled": 16}

    def test_key_is_shared_across_backends(self, backend, tmp_path):
        other = DirectoryCacheBackend(root=tmp_path / "other",
                                      code_version="v1")
        assert backend.key(make_trial()) == other.key(make_trial())

    def test_code_version_partitions_keys(self, backend, tmp_path):
        other = SqliteCacheBackend(path=tmp_path / "other.sqlite",
                                   code_version="v2")
        assert backend.key(make_trial()) != other.key(make_trial())

    def test_uri_round_trips_through_resolve_cache(self, backend):
        trial = make_trial()
        backend.put(trial, {"ok": True})
        reopened = resolve_cache(backend.uri())
        reopened.code_version = "v1"
        assert reopened.get(trial) == {"ok": True}
        assert reopened.uri() == backend.uri()


class TestCorruptionResilience:
    """A broken store degrades to a miss — never an exception."""

    def test_corrupt_directory_record(self, tmp_path):
        backend = DirectoryCacheBackend(root=tmp_path, code_version="v1")
        trial = make_trial()
        backend.put(trial, {"ok": True})
        backend._path(backend.key(trial)).write_text("{garbage",
                                                     encoding="utf-8")
        assert backend.get(trial) is None

    def test_corrupt_sqlite_file(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        path.write_bytes(b"this is not a database")
        backend = SqliteCacheBackend(path=path, code_version="v1")
        trial = make_trial()
        assert backend.get(trial) is None
        backend.put(trial, {"ok": True})     # silently degrades
        assert backend.count() == 0

    def test_wrong_record_version_is_a_miss(self, tmp_path):
        backend = DirectoryCacheBackend(root=tmp_path, code_version="v1")
        trial = make_trial()
        backend.put(trial, {"ok": True})
        path = backend._path(backend.key(trial))
        record = json.loads(path.read_text())
        record["version"] = 999
        path.write_text(json.dumps(record), encoding="utf-8")
        assert backend.get(trial) is None


class TestHttpDegradation:
    """The remote backend must never change experiment outcomes: an
    unreachable or flaky server degrades to a cache miss."""

    def _offline_backend(self):
        from repro.campaign.httpcache import HttpCacheBackend
        from repro.campaign.netretry import RetryPolicy
        from tests.campaign._chaos import free_port
        return HttpCacheBackend(
            f"http://127.0.0.1:{free_port()}", code_version="v1",
            policy=RetryPolicy(attempts=2, base_delay=0.0,
                               max_delay=0.0, timeout=0.5))

    def test_unreachable_server_degrades_to_miss(self):
        backend = self._offline_backend()
        trial = make_trial()
        assert backend.get(trial) is None
        backend.put(trial, {"ok": True})        # swallowed, no raise
        assert not backend.contains(trial)
        assert not backend.evict(trial)
        assert backend.count() == 0
        assert backend.clear() == 0
        assert backend.stats()["misses"] == 1

    def test_server_restart_recovers(self, tmp_path):
        from repro.campaign.httpcache import (HttpCacheBackend,
                                              make_cache_server)
        from repro.campaign.netretry import RetryPolicy
        store = DirectoryCacheBackend(root=tmp_path / "remote",
                                      code_version="v1")
        server = make_cache_server(store)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        backend = HttpCacheBackend(
            f"http://{host}:{port}", code_version="v1",
            policy=RetryPolicy(attempts=2, base_delay=0.0,
                               max_delay=0.0, timeout=0.5))
        trial = make_trial()
        backend.put(trial, {"ok": True})
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        assert backend.get(trial) is None       # down: miss, no raise
        # Same port, same on-disk store — the record survived.
        server = make_cache_server(store, host=host, port=port)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        try:
            assert backend.get(trial) == {"ok": True}
        finally:
            server.shutdown()
            server.server_close()

    def test_server_rejects_traversal_keys(self, tmp_path):
        import urllib.error
        import urllib.request

        from repro.campaign.httpcache import make_cache_server
        server = make_cache_server(
            DirectoryCacheBackend(root=tmp_path / "remote",
                                  code_version="v1"))
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        try:
            for ugly in ("..%2f..%2fsecrets", "UPPER", "zz!", "a" * 200):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"http://{host}:{port}/cache/{ugly}", timeout=5)
                assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


_SQLITE_WRITER = """
import sys
from repro.harness.cache import SqliteCacheBackend
from repro.harness.spec import Trial

path, offset, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
backend = SqliteCacheBackend(path=path, code_version="v1")
for i in range(count):
    sled = offset + i
    trial = Trial("window", {"runahead": "none", "sled": sled,
                             "config_base": "small"})
    backend.put(trial, {"sled": sled})
    if backend.get(trial) != {"sled": sled}:
        sys.exit(1)
sys.exit(0)
"""


class TestSqliteConcurrency:
    """Several OS processes hammering one sqlite store never corrupt
    it — the property the multi-host coordinator's serialized writes
    rely on, and the reason ``sqlite:`` is safe on shared filesystems.
    """

    def test_concurrent_multiprocess_writers(self, tmp_path):
        import os
        import subprocess
        import sys
        path = tmp_path / "shared.sqlite"
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + os.environ.get("PYTHONPATH", "").split(os.pathsep))
            .rstrip(os.pathsep))
        writers, per_writer = 4, 25
        procs = [subprocess.Popen(
            [sys.executable, "-c", _SQLITE_WRITER, str(path),
             str(w * per_writer), str(per_writer)], env=env)
            for w in range(writers)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        backend = SqliteCacheBackend(path=path, code_version="v1")
        assert backend.count() == writers * per_writer
        for sled in range(writers * per_writer):
            assert backend.get(make_trial(sled)) == {"sled": sled}
        import sqlite3
        with sqlite3.connect(path) as conn:
            assert conn.execute("PRAGMA integrity_check").fetchone() \
                == ("ok",)

    def test_overlapping_writers_last_write_wins(self, tmp_path):
        """Two processes writing the SAME keys: no corruption, and
        every record is one of the written values."""
        import os
        import subprocess
        import sys
        path = tmp_path / "shared.sqlite"
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + os.environ.get("PYTHONPATH", "").split(os.pathsep))
            .rstrip(os.pathsep))
        procs = [subprocess.Popen(
            [sys.executable, "-c", _SQLITE_WRITER, str(path), "0", "20"],
            env=env) for _ in range(2)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        backend = SqliteCacheBackend(path=path, code_version="v1")
        assert backend.count() == 20
        for sled in range(20):
            assert backend.get(make_trial(sled)) == {"sled": sled}


class TestResolveCache:
    def test_none_and_false_disable(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_backend_passthrough(self, tmp_path):
        backend = SqliteCacheBackend(path=tmp_path / "x.sqlite",
                                     code_version="v1")
        assert resolve_cache(backend) is backend

    def test_dir_uri(self, tmp_path):
        backend = resolve_cache(f"dir:{tmp_path / 'store'}")
        assert isinstance(backend, DirectoryCacheBackend)
        assert backend.root == tmp_path / "store"

    def test_sqlite_uri(self, tmp_path):
        backend = resolve_cache(f"sqlite:{tmp_path / 'store.sqlite'}")
        assert isinstance(backend, SqliteCacheBackend)
        assert backend.path == tmp_path / "store.sqlite"

    def test_http_uri(self):
        from repro.campaign.httpcache import HttpCacheBackend
        backend = resolve_cache("http://127.0.0.1:9999")
        assert isinstance(backend, HttpCacheBackend)
        assert backend.uri() == "http://127.0.0.1:9999"

    def test_plain_path_is_directory_backend(self, tmp_path):
        backend = resolve_cache(str(tmp_path / "legacy"))
        assert isinstance(backend, DirectoryCacheBackend)
        assert backend.root == tmp_path / "legacy"

    def test_auto_honours_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_cache("auto") is None

    def test_result_cache_alias_is_the_directory_backend(self):
        assert ResultCache is DirectoryCacheBackend


class TestDirectoryLayout:
    """The historical on-disk layout is part of the public contract
    (CI cache restores are plain directory copies)."""

    def test_record_path_shape(self, tmp_path):
        backend = DirectoryCacheBackend(root=tmp_path, code_version="v1")
        trial = make_trial()
        backend.put(trial, {"ok": True})
        key = backend.key(trial)
        path = tmp_path / key[:2] / f"{key}.json"
        assert path.is_file()
        record = json.loads(path.read_text())
        assert record["version"] == 1
        assert record["key"] == key
        assert record["result"] == {"ok": True}
        assert record["trial"] == trial.to_dict()

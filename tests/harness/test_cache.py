"""Result-cache semantics: hit/miss, invalidation, resilience."""

import json

import pytest

from repro.harness.cache import (CACHE_DIR_ENV, CACHE_DISABLE_ENV,
                                 ResultCache, code_fingerprint,
                                 default_cache_dir, resolve_cache)
from repro.harness.spec import Trial


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache", code_version="code-v1")


TRIAL = Trial("attack", {"variant": "pht", "runahead": "original"})


class TestHitMiss:
    def test_get_on_empty_cache_misses(self, cache):
        assert cache.get(TRIAL) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_then_get_hits(self, cache):
        cache.put(TRIAL, {"leaked": True, "recovered": 86})
        assert cache.get(TRIAL) == {"leaked": True, "recovered": 86}
        assert cache.hits == 1

    def test_config_change_is_a_miss(self, cache):
        cache.put(TRIAL, {"leaked": True})
        changed = Trial("attack", {"variant": "pht", "runahead": "original",
                                   "config": {"rob_size": 64}})
        assert cache.get(changed) is None

    def test_code_version_change_is_a_miss(self, cache, tmp_path):
        cache.put(TRIAL, {"leaked": True})
        newer = ResultCache(root=cache.root, code_version="code-v2")
        assert newer.get(TRIAL) is None
        # ... and the old version still hits: keys are content-addressed.
        assert cache.get(TRIAL) is not None

    def test_keys_are_stable_across_instances(self, cache):
        twin = ResultCache(root=cache.root, code_version="code-v1")
        assert cache.key(TRIAL) == twin.key(TRIAL)


class TestResilience:
    def test_corrupt_record_degrades_to_miss(self, cache):
        cache.put(TRIAL, {"leaked": True})
        path = cache._path(cache.key(TRIAL))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(TRIAL) is None

    def test_wrong_record_version_degrades_to_miss(self, cache):
        cache.put(TRIAL, {"leaked": True})
        path = cache._path(cache.key(TRIAL))
        record = json.loads(path.read_text())
        record["version"] = 999
        path.write_text(json.dumps(record), encoding="utf-8")
        assert cache.get(TRIAL) is None

    def test_clear_removes_records(self, cache):
        cache.put(TRIAL, {"leaked": True})
        assert cache.clear() == 1
        assert cache.get(TRIAL) is None


class TestResolve:
    def test_none_disables(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_passthrough(self, cache):
        assert resolve_cache(cache) is cache

    def test_path_builds_cache_there(self, tmp_path):
        store = resolve_cache(tmp_path / "elsewhere")
        assert store.root == tmp_path / "elsewhere"

    def test_auto_honours_disable_env(self, monkeypatch):
        monkeypatch.setenv(CACHE_DISABLE_ENV, "1")
        assert resolve_cache("auto") is None

    def test_auto_honours_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_DISABLE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        assert resolve_cache("auto").root == tmp_path / "envcache"


def test_code_fingerprint_is_stable_hex():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0

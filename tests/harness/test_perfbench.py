"""perfbench history/delta bookkeeping (no actual benchmarking)."""

from repro.harness import perfbench


def payload(cps=1000, wall=2.0, scenarios=("a", "b")):
    return {
        "bench": "core_throughput",
        "repeats": 1,
        "scenarios": {
            label: {"workload": label, "controller": "none",
                    "simulated_cycles": 100, "committed": 50,
                    "wall_seconds": wall, "cycles_per_second": cps}
            for label in scenarios},
        "total_simulated_cycles": 100 * len(scenarios),
        "total_wall_seconds": wall * len(scenarios),
        "cycles_per_second": cps,
    }


class TestHistory:
    def test_append_records_the_essentials(self):
        fresh = payload()
        fresh["fig7_quick_sweep"] = {"preset": "fig7 --quick",
                                     "trials": 4, "workers": 1,
                                     "wall_seconds": 3.5}
        entry = perfbench.append_history(fresh)
        assert fresh["history"] == [entry]
        assert entry["cycles_per_second"] == 1000
        assert entry["fig7_quick_seconds"] == 3.5
        assert entry["scenarios"]["a"] == {"cycles_per_second": 1000,
                                           "wall_seconds": 2.0}
        assert "T" in entry["recorded_at"]          # ISO-8601 stamp

    def test_append_accumulates_and_caps(self):
        fresh = payload()
        for _ in range(perfbench.HISTORY_LIMIT + 10):
            perfbench.append_history(fresh)
        assert len(fresh["history"]) == perfbench.HISTORY_LIMIT

    def test_history_survives_dump_load(self, tmp_path):
        fresh = payload()
        perfbench.append_history(fresh)
        path = tmp_path / "bench.json"
        perfbench.dump_payload(fresh, path)
        loaded = perfbench.load_payload(path)
        assert loaded["history"] == fresh["history"]


class TestRenderDelta:
    def test_relative_change_per_scenario(self):
        base = payload(cps=1000)
        fresh = payload(cps=1100)
        table = perfbench.render_delta(fresh, base)
        assert "+10.0%" in table
        assert "total" in table

    def test_new_and_gone_scenarios_are_flagged(self):
        base = payload(scenarios=("a", "gone"))
        fresh = payload(scenarios=("a", "new"))
        table = perfbench.render_delta(fresh, base)
        assert "new" in table
        assert "gone" in table

    def test_zero_baseline_does_not_divide(self):
        table = perfbench.render_delta(payload(cps=500), payload(cps=0))
        assert "+0.0%" in table

"""Executor semantics: deterministic sharding, ordering, cache wiring.

The sweeps here use cheap trials (the taint table and small-config
reference runs) so the multi-worker paths are exercised without paying
for paper-scale simulations.
"""

import pytest

from repro.harness.cache import ResultCache
from repro.harness.executor import (Executor, ProcessPoolExecutor,
                                    SerialExecutor, SweepResult,
                                    default_workers, run_sweep)
from repro.harness.runner import TrialError, run_trial
from repro.harness.spec import Sweep, Trial


def cheap_sweep(name="cheap") -> Sweep:
    sweep = Sweep(name)
    sweep.add("taint")
    sweep.add("run", workload="reference", runahead="none",
              config_base="small")
    sweep.add("run", workload="reference", runahead="original",
              config_base="small")
    sweep.add("window", runahead="none", sled=64, config_base="small")
    return sweep


class TestDeterministicSharding:
    @pytest.mark.slow
    def test_worker_count_does_not_change_bytes(self):
        serial = run_sweep(cheap_sweep(), workers=1, cache=None)
        sharded = run_sweep(cheap_sweep(), workers=3, cache=None)
        assert serial.to_json() == sharded.to_json()
        assert sharded.workers == 3

    def test_records_come_back_in_trial_order(self):
        sweep = cheap_sweep()
        result = run_sweep(sweep, workers=2, cache=None)
        assert [r["kind"] for r in result.records] == \
            [t.kind for t in sweep.trials]
        assert [r["label"] for r in result.records] == \
            [t.label for t in sweep.trials]

    def test_same_sweep_same_results_across_runs(self):
        first = run_sweep(cheap_sweep(), workers=1, cache=None)
        second = run_sweep(cheap_sweep(), workers=1, cache=None)
        assert first.to_json() == second.to_json()


class TestCacheWiring:
    def test_second_run_hits_cache(self, tmp_path):
        store = ResultCache(root=tmp_path, code_version="v1")
        cold = run_sweep(cheap_sweep(), workers=1, cache=store)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(cold)
        warm = run_sweep(cheap_sweep(), workers=1, cache=store)
        assert warm.cache_hits == len(warm)
        assert warm.cache_misses == 0
        assert all(warm.cached)
        assert cold.to_json() == warm.to_json()

    def test_force_recomputes_despite_cache(self, tmp_path):
        store = ResultCache(root=tmp_path, code_version="v1")
        run_sweep(cheap_sweep(), workers=1, cache=store)
        forced = run_sweep(cheap_sweep(), workers=1, cache=store,
                           force=True)
        assert forced.cache_misses == len(forced)

    def test_trial_shared_between_sweeps(self, tmp_path):
        store = ResultCache(root=tmp_path, code_version="v1")
        run_sweep(cheap_sweep("first"), workers=1, cache=store)
        other = Sweep("second")
        other.add("taint")
        warm = run_sweep(other, workers=1, cache=store)
        assert warm.cache_hits == 1


class TestFailures:
    def test_unknown_workload_raises_trial_error_inline(self):
        sweep = Sweep("bad")
        sweep.add("run", workload="does-not-exist")
        with pytest.raises(TrialError, match="does-not-exist"):
            run_sweep(sweep, workers=1, cache=None)

    @pytest.mark.slow
    def test_worker_failure_surfaces_as_trial_error(self):
        sweep = cheap_sweep()
        sweep.add("run", workload="does-not-exist")
        sweep.add("taint")
        with pytest.raises(TrialError, match="does-not-exist"):
            run_sweep(sweep, workers=3, cache=None)

    def test_run_trial_rejects_unknown_kind(self):
        trial = Trial("attack", {"variant": "pht"})
        trial.kind = "bogus"   # bypass validation to hit the runner guard
        with pytest.raises(TrialError, match="no runner"):
            run_trial(trial)


class TestExecutorProtocol:
    def test_executors_are_executors(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ProcessPoolExecutor(), Executor)

    def test_serial_and_pool_are_byte_identical(self):
        sweep = cheap_sweep()
        serial = SerialExecutor().execute(sweep, cache=None)
        pooled = ProcessPoolExecutor(workers=3).execute(sweep, cache=None)
        assert serial.to_json() == pooled.to_json()
        assert serial.workers == 1
        assert pooled.workers == 3

    def test_run_sweep_picks_executor_from_workers(self):
        sweep = cheap_sweep()
        via_wrapper = run_sweep(sweep, workers=1, cache=None)
        via_serial = SerialExecutor().execute(sweep, cache=None)
        assert via_wrapper.to_json() == via_serial.to_json()

    def test_pool_runs_inline_for_single_pending_trial(self, tmp_path):
        store = ResultCache(root=tmp_path, code_version="v1")
        sweep = cheap_sweep()
        run_sweep(Sweep("seed", sweep.trials[:-1]), workers=1,
                  cache=store)
        # 3 of 4 trials cached: one pending trial must not spawn a pool.
        result = ProcessPoolExecutor(workers=4).execute(sweep,
                                                        cache=store)
        assert result.cached == [True, True, True, False]
        assert result.to_json() == \
            SerialExecutor().execute(sweep, cache=store).to_json()

    def test_executor_progress_callback(self):
        lines = []
        sweep = Sweep("tiny")
        sweep.add("taint")
        SerialExecutor().execute(sweep, cache=None,
                                 progress=lines.append)
        assert lines == ["[1/1] taint: done"]


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "9")
        assert default_workers() == 9

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        assert default_workers() == 1

    def test_malformed_env_warns_once_and_falls_back(self, monkeypatch):
        import warnings

        import repro.harness.executor as executor_mod
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        monkeypatch.setattr(executor_mod, "_warned_bad_workers", False)
        with pytest.warns(RuntimeWarning, match="malformed REPRO_WORKERS"):
            workers = default_workers()
        assert workers >= 1            # the sane default, not a crash
        # Second call in the same process stays silent (warn once).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_workers() == workers


class TestSweepResult:
    def test_select_with_dotted_filters(self):
        result = run_sweep(cheap_sweep(), workers=1, cache=None)
        runs = result.select("run", config_base="small")
        assert len(runs) == 2
        original = result.one("run", runahead="original")
        assert original["result"]["workload"] == "reference"

    def test_one_raises_on_ambiguity(self):
        result = run_sweep(cheap_sweep(), workers=1, cache=None)
        with pytest.raises(LookupError):
            result.one("run")

    def test_json_round_trip(self):
        result = run_sweep(cheap_sweep(), workers=1, cache=None)
        clone = SweepResult.from_json(result.to_json())
        assert clone.name == result.name
        assert clone.records == result.records
        assert clone.to_json() == result.to_json()

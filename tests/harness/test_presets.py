"""Preset integrity: every paper experiment builds a valid sweep."""

import json

import pytest

from repro.harness import presets
from repro.harness.registry import (CONTROLLERS, get_workload, make_config,
                                    make_controller, make_noise,
                                    resolve_receiver)
from repro.multicore.scenario import Topology

ALL = sorted(presets.PRESETS)


@pytest.mark.parametrize("name", ALL)
def test_full_tier_builds_nonempty_serializable_sweep(name):
    sweep = presets.get(name).build()
    assert len(sweep) > 0
    assert sweep.name == name
    json.dumps(sweep.to_dict())   # trials must be pure data


@pytest.mark.parametrize("name", ALL)
def test_quick_tier_is_no_bigger(name):
    preset = presets.get(name)
    assert 0 < len(preset.build(quick=True)) <= len(preset.build())


def test_expected_presets_exist():
    for name in ("table1", "fig4", "fig7", "fig9", "fig10", "fig11",
                 "fig12", "sec43", "sec6", "ablations",
                 "fig9_noise_sweep", "channel_bandwidth",
                 "fig10_cross_core", "cross_core_bandwidth",
                 "smt_corunner_sweep"):
        assert name in presets.PRESETS


def test_channel_presets_share_noise_seed():
    """Every fig9_noise_sweep trials point must reuse one seed, so a
    larger trial count extends (not re-rolls) the noise stream and the
    success-rate curve is monotone by construction."""
    sweep = presets.get("fig9_noise_sweep").build()
    seeds = {t.params["seed"] for t in sweep}
    assert len(seeds) == 1
    trials = [t.params["trials"] for t in sweep]
    assert trials == sorted(trials)
    for trial in sweep:
        assert resolve_receiver(trial.params["receiver"]) is not None
        assert make_noise(trial.params["noise"]).is_noisy


def test_preset_trials_resolve_through_registry():
    """Every name a preset references must exist in the registry."""
    for name in ALL:
        for trial in presets.get(name).build():
            runahead = trial.params.get("runahead")
            if runahead is not None:
                make_controller(runahead,
                                **trial.params.get("runahead_kwargs", {}))
            for key in ("baseline", "contender"):
                if key in trial.params:
                    make_controller(trial.params[key])
            if "workload" in trial.params:
                get_workload(trial.params["workload"])
            if trial.params.get("corunner") is not None:
                get_workload(trial.params["corunner"])
                make_controller(trial.params.get("corunner_runahead",
                                                 "none"))
            Topology.from_params({k: trial.params[k]
                                  for k in ("cores", "corunner", "smt",
                                            "corunner_runahead")
                                  if k in trial.params})
            resolve_receiver(trial.params.get("receiver"))
            make_noise(trial.params.get("noise"))
            make_config(trial.params.get("config_base", "paper"),
                        trial.params.get("config"))


def test_cross_core_presets_place_the_receiver_on_another_core():
    """The cross-core scenario family measures through a multi-core
    topology in every trial that claims to."""
    for trial in presets.get("fig10_cross_core").build():
        assert trial.params["cores"] >= 2
    placements = {trial.params.get("cores", 1)
                  for trial in presets.get("cross_core_bandwidth").build()}
    assert placements == {1, 2}
    scenarios = presets.get("smt_corunner_sweep").build()
    assert any(t.params.get("smt") for t in scenarios)
    assert any(t.params.get("cores") == 3 for t in scenarios)
    assert any(t.params.get("corunner") is None and t.params.get("noise")
               for t in scenarios)          # the overlay comparison row


class TestRegistry:
    def test_unknown_controller(self):
        with pytest.raises(KeyError, match="unknown runahead controller"):
            make_controller("warp-drive")

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("spec2077")

    def test_controllers_are_fresh_instances(self):
        assert make_controller("original") is not \
            make_controller("original")

    def test_none_maps_to_no_runahead(self):
        assert make_controller(None).name == "no-runahead"
        assert make_controller("none").name == "no-runahead"

    def test_make_config_routes_mem_latency(self):
        config = make_config("paper", {"mem_latency": 400,
                                       "rob_size": 64})
        assert config.hierarchy.mem_latency == 400
        assert config.rob_size == 64

    def test_make_config_routes_runahead_tunables(self):
        config = make_config("small", {"sl_cache_entries": 8})
        assert config.runahead.sl_cache_entries == 8

    def test_make_config_rejects_unknown_base(self):
        with pytest.raises(ValueError, match="unknown config base"):
            make_config("huge")

    def test_registry_covers_all_variant_controllers(self):
        for name in ("original", "precise", "vector", "secure",
                     "branch-skip"):
            assert name in CONTROLLERS

"""Multi-trial statistical decoding tests."""

import pytest

from repro.analysis import analyze_probe
from repro.channel import (ProbeVector, decode_trials, dip_space,
                           signal_indices)


def vec(latencies, signal_low=True, trial=0):
    return ProbeVector(latencies=tuple(latencies), signal_low=signal_low,
                       trial=trial)


def clean(dip_at, n=32, hit=2, miss=242):
    lats = [miss] * n
    lats[dip_at] = hit
    return lats


class TestDipSpace:
    def test_signal_low_is_identity(self):
        assert dip_space(vec([5, 9, 1])) == [5, 9, 1]

    def test_signal_high_inverts_preserving_range(self):
        inverted = dip_space(vec([42, 242, 42], signal_low=False))
        assert inverted == [242, 42, 242]

    def test_signal_indices_both_polarities(self):
        assert signal_indices(vec(clean(7))) == [7]
        slow = [42] * 32
        slow[7] = 242
        assert signal_indices(vec(slow, signal_low=False)) == [7]

    def test_signal_indices_ignore(self):
        lats = clean(7)
        lats[3] = 2
        assert signal_indices(vec(lats), ignore_indices=(3,)) == [7]


class TestSingleTrial:
    def test_reduces_to_analyze_probe(self):
        lats = clean(11)
        decoded = decode_trials([vec(lats)])
        single = analyze_probe(lats)
        assert decoded.recovered == single.recovered == 11
        assert decoded.report.hits == single.hits
        assert decoded.report.threshold == single.threshold
        assert decoded.aggregated == lats
        assert decoded.confidence == 1.0

    def test_unimodal_no_decode(self):
        decoded = decode_trials([vec([242] * 32)])
        assert decoded.recovered is None
        assert decoded.confidence == 0.0
        assert "no value" in decoded.describe()

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError):
            decode_trials([])


class TestAggregation:
    def test_median_kills_single_trial_pollution(self):
        """A false dip present in only one of three trials disappears
        from the per-index median, so the primary path decodes."""
        polluted = clean(11)
        polluted[29] = 2                       # one-trial false dip
        decoded = decode_trials([vec(polluted), vec(clean(11)),
                                 vec(clean(11))])
        assert decoded.recovered == 11
        assert decoded.report.hits == [11]     # median is clean
        assert decoded.votes[11] == 3
        assert decoded.votes[29] == 1

    def test_vote_fallback_breaks_persistent_ambiguity(self):
        """A false dip surviving the median -> the vote majority decides."""
        both = clean(11)
        both[29] = 2                           # dips at 11 and 29
        only_11 = clean(11)
        decoded = decode_trials([vec(both), vec(both), vec(both),
                                 vec(only_11), vec(only_11)])
        # 29 dips in 3/5 trials, so the median keeps it: the primary
        # single-dip criterion fails and the 5-vs-3 vote decides.
        assert 29 in decoded.report.hits
        assert decoded.recovered == 11
        assert decoded.confidence == 1.0
        # The vote verdict propagates into the report (the surface
        # AttackResult.succeeded and the renderers read).
        assert decoded.report.recovered == 11

    def test_majority_required(self):
        """Votes below a strict majority never decode (scattered noise
        across trials stays undecoded instead of guessing)."""
        a, b, c = clean(3), clean(17), clean(29)
        # Persistent three-way ambiguity in the median too.
        decoded = decode_trials([vec(a), vec(b), vec(c)])
        assert decoded.recovered is None

    def test_eviction_dropout_survives(self):
        """The signal missing from a minority of trials still decodes."""
        dropped = [242] * 32                   # trial where signal evicted
        decoded = decode_trials([vec(dropped), vec(clean(11)),
                                 vec(clean(11))])
        assert decoded.recovered == 11
        assert decoded.confidence == pytest.approx(2 / 3)

    def test_ignore_indices_excluded_everywhere(self):
        warmed = clean(11)
        warmed[5] = 2                          # stale training-warmed hit
        decoded = decode_trials([vec(warmed)] * 3, ignore_indices=(5,))
        assert decoded.recovered == 11
        assert 5 not in decoded.votes
        assert decoded.ignore_indices == (5,)

    def test_signal_high_decoding(self):
        slow = [42] * 32
        slow[9] = 242
        decoded = decode_trials([vec(slow, signal_low=False)] * 3)
        assert decoded.recovered == 9
        # The report keeps raw-polarity medians for rendering.
        assert decoded.report.latencies[9] == 242

    def test_latency_summary(self):
        decoded = decode_trials([vec(clean(4, hit=2)),
                                 vec(clean(4, hit=6)),
                                 vec(clean(4, hit=4))])
        assert decoded.latency_summary(4) == (2, 4, 6)

    def test_median_only_decode_has_positive_confidence(self):
        """Per-trial spread can defeat every trial's own threshold
        while the median still dips: the decoded index then has zero
        votes, but confidence floors at one trial's worth rather than
        reporting 0.0 beside a recovered value."""
        trials = [
            vec([2, 242, 242, 100, 242]),
            vec([2, 100, 242, 242, 242]),
            vec([2, 242, 100, 242, 242]),
        ]
        # Each trial's low cluster spans [2, 100]: the noise guard
        # rejects a threshold, so no trial casts a ballot...
        assert all(signal_indices(v) == [] for v in trials)
        decoded = decode_trials(trials)
        # ...but the per-index median [2, 242, 242, 242, 242] decodes.
        assert decoded.recovered == 0
        assert decoded.votes == {}
        assert decoded.confidence == pytest.approx(1 / 3)

    def test_tie_break_deterministic(self):
        """Equal votes + equal medians -> lowest index wins, always."""
        both = clean(11)
        both[7] = 2
        runs = [decode_trials([vec(both)] * 4) for _ in range(3)]
        assert {d.recovered for d in runs} == {7}

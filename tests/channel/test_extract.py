"""End-to-end multi-byte extraction tests (simulator-backed)."""

import pytest

from repro.channel import ExtractionResult, extract_secret
from repro.channel.extract import _as_values
from repro.runahead import NoRunahead, OriginalRunahead

NOISE = {"jitter": 24, "evict_rate": 0.04, "pollute_rate": 0.04}


class TestSecretParsing:
    def test_str_bytes_and_list(self):
        assert _as_values("AB") == [65, 66]
        assert _as_values(b"\x01\xff") == [1, 255]
        assert _as_values([3, 250]) == [3, 250]

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            _as_values("")
        with pytest.raises(ValueError):
            _as_values([256])
        with pytest.raises(ValueError):
            _as_values([-1])

    def test_rejects_controller_instances(self):
        with pytest.raises(TypeError, match="factory"):
            extract_secret("A", runahead=OriginalRunahead())


class TestCleanExtraction:
    def test_single_trial_no_noise_recovers_exactly(self):
        result = extract_secret("Hi", trials=1)
        assert result.recovered == [72, 105]
        assert result.success_rate == 1.0
        assert result.recovered_text() == "Hi"
        assert result.bits_recovered == 16
        assert all(b.confidence == 1.0 for b in result.bytes_)
        assert all(b.trials_to_recover == 1 for b in result.bytes_)

    def test_bandwidth_metrics(self):
        result = extract_secret("Hi", trials=1)
        assert result.total_cycles > 0
        assert result.bits_per_kcycle > 0
        assert result.bandwidth_bits_per_s() == pytest.approx(
            16 * result.clock_hz / result.total_cycles)
        assert result.bandwidth_bits_per_s(clock_hz=1_000_000_000) == \
            pytest.approx(result.bandwidth_bits_per_s() / 2)

    def test_to_dict_is_json_pure(self):
        import json
        payload = extract_secret("A", trials=1).to_dict()
        json.dumps(payload)
        assert payload["success_rate"] == 1.0
        assert payload["recovered"] == [65]


@pytest.mark.slow
class TestNoisyExtraction:
    def test_trials_beat_noise(self):
        one = extract_secret("OK", trials=1, noise=NOISE, seed=7)
        five = extract_secret("OK", trials=5, noise=NOISE, seed=7)
        assert five.success_rate == 1.0
        assert five.success_rate >= one.success_rate
        assert five.recovered_text() == "OK"

    def test_deterministic_across_runs(self):
        a = extract_secret("OK", trials=3, noise=NOISE, seed=9)
        b = extract_secret("OK", trials=3, noise=NOISE, seed=9)
        assert a.to_dict() == b.to_dict()
        c = extract_secret("OK", trials=3, noise=NOISE, seed=10)
        assert a.to_dict() != c.to_dict()

    def test_no_runahead_machine_cannot_transmit(self):
        """On the baseline machine the transmit line is never prefetched
        (the padded-gadget property is separate; here even the plain
        gadget's runahead footprint is the channel input): with the
        Fig. 11 nop sled the channel receives nothing."""
        result = extract_secret("A", trials=1, runahead=NoRunahead,
                                nop_padding=300)
        assert result.success_rate == 0.0
        assert result.bits_recovered == 0
        assert result.bandwidth_bits_per_s() == 0.0

    def test_prime_probe_extraction_with_calibration(self):
        result = extract_secret("OK", receiver="prime-probe", trials=1)
        assert result.success_rate == 1.0
        assert result.calibration_cycles > 0
        assert result.total_cycles > result.calibration_cycles

    def test_evict_reload_extraction(self):
        result = extract_secret("OK", receiver="evict-reload", trials=1)
        assert result.success_rate == 1.0

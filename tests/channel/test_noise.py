"""Unit tests for the deterministic noise layer."""

import pytest

from repro.channel import NO_NOISE, NoiseModel, SplitMix64, derive_seed


class TestSplitMix64:
    def test_known_stream(self):
        """Pin the first outputs of the reference SplitMix64 stream for
        seed 0 — cross-version / cross-platform reproducibility is the
        whole point of not using the stdlib ``random``."""
        rng = SplitMix64(0)
        assert rng.next_u64() == 0xE220A8397B1DCDAF
        assert rng.next_u64() == 0x6E789E6AA1B965F4
        assert rng.next_u64() == 0x06C45D188009454F

    def test_same_seed_same_stream(self):
        a, b = SplitMix64(1234), SplitMix64(1234)
        assert [a.next_u64() for _ in range(10)] == \
            [b.next_u64() for _ in range(10)]

    def test_random_in_unit_interval(self):
        rng = SplitMix64(99)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_randint_bounds_and_coverage(self):
        rng = SplitMix64(5)
        seen = {rng.randint(-2, 2) for _ in range(200)}
        assert seen == {-2, -1, 0, 1, 2}

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            SplitMix64(0).randint(3, 2)


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed("a", 1, 2) == derive_seed("a", 1, 2)
        assert derive_seed("a", 1, 2) != derive_seed("a", 1, 3)
        assert derive_seed("a", 1, 2) != derive_seed("a", 12)

    def test_64_bit(self):
        assert 0 <= derive_seed("x") < 2 ** 64


class TestNoiseModel:
    def test_from_spec_none_and_silent(self):
        assert NoiseModel.from_spec(None) is None
        assert NoiseModel.from_spec({}) is None
        assert NoiseModel.from_spec(
            {"jitter": 0, "evict_rate": 0.0}) is None

    def test_from_spec_roundtrip(self):
        spec = {"jitter": 8, "evict_rate": 0.1, "pollute_rate": 0.2}
        model = NoiseModel.from_spec(spec)
        assert model.to_spec() == spec
        assert NoiseModel.from_spec(model) is model

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown noise spec"):
            NoiseModel.from_spec({"jitterz": 1})
        with pytest.raises(ValueError, match="jitter"):
            NoiseModel(jitter=-1)
        with pytest.raises(ValueError, match="evict_rate"):
            NoiseModel(evict_rate=1.5)
        with pytest.raises(ValueError, match="exceed 1"):
            NoiseModel(evict_rate=0.6, pollute_rate=0.6)

    def test_draw_deterministic(self):
        model = NoiseModel(jitter=10, evict_rate=0.3, pollute_rate=0.3)
        lines = list(range(0, 6400, 64))
        a = model.draw(SplitMix64(42), lines, 100)
        b = model.draw(SplitMix64(42), lines, 100)
        assert a == b
        c = model.draw(SplitMix64(43), lines, 100)
        assert a != c

    def test_draw_respects_rates(self):
        lines = list(range(0, 64000, 64))
        all_evict = NoiseModel(evict_rate=1.0).draw(
            SplitMix64(1), lines, 10)
        assert all_evict.evicted == frozenset(lines)
        assert not all_evict.polluted
        all_pollute = NoiseModel(pollute_rate=1.0).draw(
            SplitMix64(1), lines, 10)
        assert all_pollute.polluted == frozenset(lines)
        clean = NoiseModel(jitter=3).draw(SplitMix64(1), lines, 10)
        assert not clean.evicted and not clean.polluted
        assert len(clean.jitters) == 10
        assert all(-3 <= j <= 3 for j in clean.jitters)

    def test_evict_and_pollute_disjoint(self):
        model = NoiseModel(evict_rate=0.5, pollute_rate=0.5)
        draw = model.draw(SplitMix64(2), list(range(0, 6400, 64)), 0)
        assert not (draw.evicted & draw.polluted)

    def test_no_noise_sentinel(self):
        assert NO_NOISE.jitter(0) == 0
        assert not NO_NOISE.evicted and not NO_NOISE.polluted

"""Receiver unit tests (hierarchy-level) and Fig. 9 equivalence."""

import pytest

from repro.attack import run_specrun
from repro.attack.gadgets import build_attack
from repro.channel import (NO_NOISE, EvictReloadReceiver,
                           FlushReloadReceiver, NoiseModel,
                           PrimeProbeReceiver, ProbeLayout, SplitMix64,
                           eviction_set, make_receiver, receiver_class)
from repro.memory.hierarchy import (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_MEM,
                                    LEVEL_PENDING, HierarchyConfig,
                                    MemoryHierarchy)

LAYOUT = ProbeLayout(base=1 << 20, entries=16, stride=512)


def paper_hierarchy():
    return MemoryHierarchy(HierarchyConfig.paper())


class TestProbeLatency:
    """The read-only timing walk the receivers are built on."""

    def test_levels_and_latencies(self):
        h = paper_hierarchy()
        addr = LAYOUT.line(3)
        assert h.probe_latency(addr, 0) == (242, LEVEL_MEM)
        h.warm(addr, level="l3")
        assert h.probe_latency(addr, 0) == (42, LEVEL_L3)
        h.warm(addr, level="l2")
        assert h.probe_latency(addr, 0) == (10, LEVEL_L2)
        h.warm(addr)
        assert h.probe_latency(addr, 0) == (2, LEVEL_L1)
        assert h.config.data_hit_latency == 2
        assert h.config.data_miss_latency == 242

    def test_read_only(self):
        h = paper_hierarchy()
        addr = LAYOUT.line(0)
        before = h.l1d.stats.accesses
        for _ in range(5):
            h.probe_latency(addr, 0)
        assert not h.l1d.probe(addr)            # probe did not fill
        assert h.l1d.stats.accesses == before   # nor count stats

    def test_pending_fill_visibility(self):
        h = paper_hierarchy()
        addr = LAYOUT.line(1)
        result = h.access_data(addr, 0)         # miss -> pending fill
        latency, level = h.probe_latency(addr, 10)
        assert level == LEVEL_PENDING
        assert latency == result.completion - 10
        # After completion the fill is installed and the line is an L1 hit.
        assert h.probe_latency(addr, result.completion) == (2, LEVEL_L1)


class TestEvictionSets:
    def test_maps_to_same_set(self):
        h = paper_hierarchy()
        for cache in (h.l1d, h.l2, h.l3):
            line = LAYOUT.line(5)
            ev = eviction_set(cache.config, line)
            assert len(ev) == cache.config.assoc
            assert len(set(ev)) == cache.config.assoc
            target_set, _ = cache._set_and_tag(line)
            for ev_line in ev:
                ways, _ = cache._set_and_tag(ev_line)
                assert ways is target_set

    def test_walk_evicts_target(self):
        h = paper_hierarchy()
        line = LAYOUT.line(5)
        h.l2.fill(line)
        for ev_line in eviction_set(h.l2.config, line):
            h.l2.fill(ev_line)
        assert not h.l2.probe(line)

    def test_disjoint_from_low_addresses(self):
        ev = eviction_set(paper_hierarchy().l1d.config, LAYOUT.line(0))
        assert min(ev) > (1 << 24)

    def test_salt_separates(self):
        config = paper_hierarchy().l3.config
        a = eviction_set(config, LAYOUT.line(0), salt=0)
        b = eviction_set(config, LAYOUT.line(0), salt=1)
        assert not set(a) & set(b)


class TestReloadReceivers:
    def test_flush_reload_detects_planted_line(self):
        h = paper_hierarchy()
        receiver = make_receiver("flush-reload", LAYOUT, h)
        receiver.prepare()
        h.warm(LAYOUT.line(7))                  # the "transmit"
        vector = receiver.measure(0)
        assert vector.signal_low
        assert vector.latencies[7] == 2
        assert all(lat == 242 for i, lat in enumerate(vector.latencies)
                   if i != 7)

    def test_flush_reload_prepare_flushes_stale_lines(self):
        h = paper_hierarchy()
        h.warm(LAYOUT.line(2))
        receiver = make_receiver("flush-reload", LAYOUT, h)
        receiver.prepare()
        assert receiver.measure(0).latencies[2] == 242

    def test_evict_reload_prepare_evicts_via_sets(self):
        h = paper_hierarchy()
        h.warm(LAYOUT.line(2))                  # resident everywhere
        receiver = make_receiver("evict-reload", LAYOUT, h)
        receiver.prepare()                      # no clflush involved
        assert h.stats.flushes == 0
        assert receiver.measure(0).latencies[2] == 242

    def test_measure_is_repeatable(self):
        h = paper_hierarchy()
        receiver = make_receiver("flush-reload", LAYOUT, h)
        receiver.prepare()
        h.warm(LAYOUT.line(3))
        first = receiver.measure(0)
        second = receiver.measure(0)
        assert first.latencies == second.latencies

    def test_noise_overlay(self):
        h = paper_hierarchy()
        receiver = make_receiver("flush-reload", LAYOUT, h)
        receiver.prepare()
        h.warm(LAYOUT.line(3))
        model = NoiseModel(evict_rate=1.0)
        draw = model.draw(SplitMix64(1), receiver.noise_lines(),
                          LAYOUT.entries)
        noisy = receiver.measure(0, draw)
        assert all(lat == 242 for lat in noisy.latencies)  # signal erased
        pollute = NoiseModel(pollute_rate=1.0).draw(
            SplitMix64(1), receiver.noise_lines(), LAYOUT.entries)
        assert all(lat == 2
                   for lat in receiver.measure(0, pollute).latencies)

    def test_jitter_keeps_latency_positive(self):
        h = paper_hierarchy()
        receiver = make_receiver("flush-reload", LAYOUT, h)
        receiver.prepare()
        draw = NoiseModel(jitter=500).draw(
            SplitMix64(3), receiver.noise_lines(), LAYOUT.entries)
        assert all(lat >= 1 for lat in receiver.measure(0, draw).latencies)


class TestPrimeProbe:
    def test_detects_victim_fill(self):
        h = paper_hierarchy()
        receiver = make_receiver("prime-probe", LAYOUT, h)
        receiver.prepare()
        # Victim fills its transmit line into L3, evicting a primed way.
        h.l3.fill(LAYOUT.line(9))
        vector = receiver.measure(0)
        assert not vector.signal_low
        assert vector.latencies[9] == 242       # one primed way missing
        assert all(lat == 42 for i, lat in enumerate(vector.latencies)
                   if i != 9)

    def test_never_touches_victim_lines(self):
        h = paper_hierarchy()
        receiver = make_receiver("prime-probe", LAYOUT, h)
        receiver.prepare()
        receiver.measure(0)
        assert all(not h.l3.probe(LAYOUT.line(i))
                   for i in range(LAYOUT.entries))
        assert h.stats.flushes == 0

    def test_paper_geometry_distinct_l3_sets(self):
        """512-byte stride x 256 entries -> 256 distinct L3 sets (full
        byte resolution), the property the receiver relies on."""
        h = paper_hierarchy()
        layout = ProbeLayout(base=1 << 20, entries=256, stride=512)
        shift = (h.l3.config.line_bytes - 1).bit_length()
        mask = h.l3.config.n_sets - 1
        sets = {(layout.line(i) >> shift) & mask
                for i in range(layout.entries)}
        assert len(sets) == layout.entries


class TestRegistry:
    def test_known_receivers(self):
        assert receiver_class("flush-reload") is FlushReloadReceiver
        assert receiver_class("evict-reload") is EvictReloadReceiver
        assert receiver_class("prime-probe") is PrimeProbeReceiver

    def test_unknown_receiver(self):
        with pytest.raises(KeyError, match="unknown receiver"):
            receiver_class("rowhammer")

    def test_flags(self):
        assert FlushReloadReceiver.uses_clflush
        assert not EvictReloadReceiver.uses_clflush
        assert not PrimeProbeReceiver.uses_clflush
        assert PrimeProbeReceiver.needs_calibration
        assert not PrimeProbeReceiver.signal_low


class TestFig9Equivalence:
    """Acceptance: noise off, trials=1 -> the exact Fig. 9 result."""

    def test_flush_reload_matches_in_program_probe(self):
        legacy = run_specrun("pht", secret_value=86)
        channel = run_specrun("pht", secret_value=86,
                              receiver="flush-reload")
        assert legacy.succeeded and channel.succeeded
        assert channel.recovered_secret == legacy.recovered_secret == 86
        assert channel.report.hits == legacy.report.hits == [86]
        assert channel.channel.confidence == 1.0

    @pytest.mark.parametrize("receiver", ["evict-reload", "prime-probe"])
    def test_other_receivers_recover_cleanly(self, receiver):
        result = run_specrun("pht", secret_value=86, receiver=receiver)
        assert result.succeeded, result.describe()
        assert result.channel.confidence == 1.0

    def test_external_probe_program_has_no_latencies(self):
        attack = build_attack("pht", external_probe=True)
        assert attack.external_probe
        with pytest.raises(RuntimeError, match="external-probe"):
            attack.read_latencies(core=None)


class TestCrossCoreBinding:
    """``cross_core()`` rebases the fast reference to the shared LLC."""

    def test_reload_receiver_rebases_hit_latency(self):
        hierarchy = paper_hierarchy()
        layout = ProbeLayout(base=1 << 20, entries=4, stride=512)
        receiver = FlushReloadReceiver(layout, hierarchy)
        assert receiver.hit_latency == hierarchy.config.data_hit_latency
        assert receiver.cross_core() is receiver
        assert receiver.hit_latency == hierarchy.config.llc_hit_latency

    def test_prime_probe_is_already_llc_referenced(self):
        hierarchy = paper_hierarchy()
        layout = ProbeLayout(base=1 << 20, entries=4, stride=512)
        receiver = PrimeProbeReceiver(layout, hierarchy)
        before = receiver.hit_latency
        receiver.cross_core()
        assert receiver.hit_latency == before == \
            hierarchy.config.llc_hit_latency

"""The metrics registry: series semantics and Prometheus rendering."""

import threading

import pytest

from repro.obs.metrics import (MetricsRegistry, get_registry,
                               set_registry)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments(self, registry):
        counter = registry.counter("jobs_total", "Jobs")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("jobs_total").inc(-1)

    def test_same_name_and_labels_is_the_same_series(self, registry):
        registry.counter("hits", labels={"kind": "a"}).inc()
        registry.counter("hits", labels={"kind": "a"}).inc()
        registry.counter("hits", labels={"kind": "b"}).inc()
        text = registry.render()
        assert 'hits{kind="a"} 2' in text
        assert 'hits{kind="b"} 1' in text


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_buckets_are_cumulative(self, registry):
        hist = registry.histogram("t_seconds", "T",
                                  buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = registry.render()
        assert 't_seconds_bucket{le="0.1"} 1' in text
        assert 't_seconds_bucket{le="1"} 3' in text
        assert 't_seconds_bucket{le="10"} 4' in text
        assert 't_seconds_bucket{le="+Inf"} 5' in text
        assert "t_seconds_count 5" in text
        assert "t_seconds_sum 56.05" in text

    def test_boundary_value_lands_in_its_bucket(self, registry):
        hist = registry.histogram("b_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)             # le="1" is inclusive
        assert 'b_seconds_bucket{le="1"} 1' in registry.render()


class TestRegistry:
    def test_type_mismatch_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_render_is_sorted_and_typed(self, registry):
        registry.gauge("zz", "Last").set(1)
        registry.counter("aa_total", "First").inc()
        text = registry.render()
        assert text.index("aa_total") < text.index("zz")
        assert "# HELP aa_total First" in text
        assert "# TYPE aa_total counter" in text
        assert "# TYPE zz gauge" in text
        assert text.endswith("\n")

    def test_render_empty_registry(self, registry):
        assert registry.render() == "\n"

    def test_concurrent_increments_are_not_lost(self, registry):
        counter = registry.counter("c_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGlobalRegistry:
    def test_set_registry_swaps_and_restores(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
            get_registry().counter("swap_test_total").inc()
            assert "swap_test_total 1" in fresh.render()
        finally:
            set_registry(previous)
        assert get_registry() is previous

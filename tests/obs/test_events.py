"""The .evt codec: schema sanity and round-trip properties."""

import random

import pytest

from repro.obs.events import (EVENT_NAMES, EVENT_SCHEMA, LEVEL_IDS,
                              LEVEL_NAMES, MAGIC, decode_events,
                              encode_events, event_name, load_events,
                              save_events)


class TestSchema:
    def test_kinds_are_contiguous_small_ints(self):
        kinds = sorted(EVENT_SCHEMA)
        assert kinds == list(range(1, len(kinds) + 1))

    def test_names_are_unique(self):
        names = list(EVENT_NAMES.values())
        assert len(names) == len(set(names))

    def test_event_name_falls_back_for_unknown_kinds(self):
        assert event_name(1) == "fetch"
        assert event_name(999) == "unknown_999"

    def test_level_ids_round_trip(self):
        for name, ident in LEVEL_IDS.items():
            assert LEVEL_NAMES[ident] == name


def random_stream(seed, n=2000):
    """A stream with the awkward shapes real traces have: bursts at
    one cycle, large jumps, *backwards* cycles (receiver probes replay
    recorded timestamps), and full-range payload values."""
    rng = random.Random(seed)
    cycle = 0
    events = []
    for _ in range(n):
        step = rng.choice((0, 0, 1, 1, 3, 17, 40_000, -5, -1200))
        cycle += step
        kind = rng.randint(1, 15)
        a = rng.choice((0, 1, rng.getrandbits(20), rng.getrandbits(48)))
        b = rng.choice((0, rng.getrandbits(16), rng.getrandbits(40)))
        events.append((cycle, kind, a, b))
    return events


class TestCodec:
    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_property(self, seed):
        events = random_stream(seed)
        assert decode_events(encode_events(events)) == events

    def test_round_trip_with_nonzero_prev_cycle(self):
        events = random_stream(99, n=50)
        blob = encode_events(events, prev_cycle=123)
        assert decode_events(blob, prev_cycle=123) == events

    def test_chunked_encoding_concatenates(self):
        """FileSink writes in chunks, each delta'd against the last
        cycle of the previous chunk — concatenation must decode to
        the whole stream."""
        events = random_stream(7, n=100)
        head, tail = events[:60], events[60:]
        blob = encode_events(head) + \
            encode_events(tail, prev_cycle=head[-1][0])
        assert decode_events(blob) == events

    def test_empty_stream(self):
        assert encode_events([]) == b""
        assert decode_events(b"") == []

    def test_truncated_stream_raises(self):
        blob = encode_events(random_stream(3, n=10))
        with pytest.raises(ValueError, match="truncated"):
            decode_events(blob[:-1])


class TestFile:
    def test_save_load_round_trip(self, tmp_path):
        events = random_stream(11, n=500)
        path = tmp_path / "t.evt"
        assert save_events(path, events) == 500
        assert load_events(path) == events
        assert path.read_bytes().startswith(MAGIC)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bogus.evt"
        path.write_bytes(b"NOPE\x00" + b"\x00" * 16)
        with pytest.raises(ValueError, match="bad magic"):
            load_events(path)

    def test_compactness(self, tmp_path):
        """The point of the format: a small-delta stream costs a few
        bytes per event, not the 32 of a naive struct."""
        events = [(i, 1 + i % 15, i % 64, 0) for i in range(10_000)]
        path = tmp_path / "dense.evt"
        save_events(path, events)
        assert path.stat().st_size < 6 * len(events)

"""``repro obs view`` edge cases: zero-event and single-cycle traces.

Both used to be easy to hit (record with ``--max-cycles`` small enough
that nothing retires, or trace a workload that halts in its first
cycle) and must render a clean notice / a well-formed one-bin timeline
rather than a traceback.
"""

import pytest

from repro.__main__ import main
from repro.obs import FileSink, load_events
from repro.obs.events import EV_COMMIT, EV_DISPATCH, MAGIC
from repro.obs.view import render_html, render_text, summarize_events


@pytest.fixture
def empty_trace(tmp_path):
    path = tmp_path / "empty.evt"
    FileSink(path).close()
    return path


@pytest.fixture
def single_cycle_trace(tmp_path):
    """Every event on one cycle: span is zero before clamping."""
    path = tmp_path / "one.evt"
    with FileSink(path) as sink:
        sink.emit(5, EV_DISPATCH, 1, 0x10)
        sink.emit(5, EV_DISPATCH, 2, 0x14)
        sink.emit(5, EV_COMMIT, 1, 0x10)
    return path


class TestZeroEvents:
    def test_summary_is_well_formed(self, empty_trace):
        summary = summarize_events(load_events(empty_trace))
        assert summary["events"] == 0
        assert summary["first_cycle"] == summary["last_cycle"] == 0

    def test_text_renders_notice(self, empty_trace):
        text = render_text(summarize_events(load_events(empty_trace)))
        assert "0 events" in text
        assert "no events" in text
        assert "repro obs record" in text

    def test_html_renders_notice(self, empty_trace):
        html = render_html(summarize_events(load_events(empty_trace)),
                           title="empty.evt")
        assert html.startswith("<!doctype html>")
        assert "no events" in html
        assert "<polyline" not in html

    def test_cli_view_exits_zero(self, empty_trace, tmp_path, capsys):
        out_html = tmp_path / "empty.html"
        assert main(["obs", "view", str(empty_trace),
                     "--html", str(out_html)]) == 0
        assert "no events" in capsys.readouterr().out
        assert "no events" in out_html.read_text(encoding="utf-8")


class TestSingleCycle:
    def test_summary_survives_zero_span(self, single_cycle_trace):
        summary = summarize_events(load_events(single_cycle_trace))
        assert summary["events"] == 3
        assert summary["first_cycle"] == summary["last_cycle"] == 5
        assert summary["max_occupancy"] == 2
        assert sum(summary["occupancy_bins"]) > 0

    def test_bins_clamped_to_at_least_one(self, single_cycle_trace):
        summary = summarize_events(load_events(single_cycle_trace),
                                   bins=0)
        assert summary["bins"] == 1
        assert len(summary["occupancy_bins"]) == 1

    def test_cli_view_renders_timeline(self, single_cycle_trace,
                                       capsys):
        assert main(["obs", "view", str(single_cycle_trace)]) == 0
        out = capsys.readouterr().out
        assert "3 events" in out
        assert "cycles 5..5" in out

    def test_html_still_draws(self, single_cycle_trace):
        html = render_html(
            summarize_events(load_events(single_cycle_trace)))
        assert "<polyline" in html


def test_bare_magic_file_counts_as_empty(tmp_path):
    """A file holding only the magic header is a legal empty trace."""
    path = tmp_path / "bare.evt"
    path.write_bytes(MAGIC)
    assert load_events(path) == []
    assert "no events" in render_text(
        summarize_events(load_events(path)))

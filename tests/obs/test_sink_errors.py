"""FileSink lifecycle errors: flush-on-error, closed-sink misuse.

Regression suite for the sink bugfix sweep — a sink abandoned by an
exception used to drop its buffered tail (truncated ``.evt``), and a
closed sink silently accepted further ``emit``/``close`` calls.
"""

import pytest

from repro.obs import FileSink, load_events
from repro.obs.events import EV_COMMIT, EV_DISPATCH


def fill(sink, n, start=0):
    for cycle in range(start, start + n):
        sink.emit(cycle, EV_DISPATCH if cycle % 2 else EV_COMMIT,
                  cycle, 0)


class TestFlushOnError:
    def test_exception_inside_with_block_still_seals_the_file(self,
                                                              tmp_path):
        path = tmp_path / "crash.evt"
        with pytest.raises(RuntimeError, match="boom"):
            with FileSink(path) as sink:
                fill(sink, 100)          # < 8192: all still buffered
                raise RuntimeError("boom")
        events = load_events(path)       # loadable => flushed + sealed
        assert len(events) == 100
        assert events[0][0] == 0 and events[-1][0] == 99

    def test_explicit_close_inside_with_block_is_fine(self, tmp_path):
        path = tmp_path / "early.evt"
        with FileSink(path) as sink:
            fill(sink, 10)
            sink.close()                 # __exit__ must not re-close
        assert len(load_events(path)) == 10


class TestClosedSinkMisuse:
    def test_emit_after_close_raises(self, tmp_path):
        sink = FileSink(tmp_path / "t.evt")
        fill(sink, 5)
        sink.close()
        assert sink.closed
        with pytest.raises(ValueError, match="closed"):
            sink.emit(6, EV_COMMIT, 6, 0)
        # The sealed file is untouched by the failed emit.
        assert len(load_events(tmp_path / "t.evt")) == 5

    def test_double_close_raises(self, tmp_path):
        sink = FileSink(tmp_path / "t.evt")
        sink.close()
        with pytest.raises(ValueError, match="already closed"):
            sink.close()

    def test_closed_property_tracks_lifecycle(self, tmp_path):
        sink = FileSink(tmp_path / "t.evt")
        assert not sink.closed
        sink.close()
        assert sink.closed

"""The tracing determinism contract.

Attaching any sink must not change simulated behaviour by one bit:
``CoreStats`` with tracing on equals ``CoreStats`` with tracing off,
for every machine the golden-stats suite pins.  This is what keeps the
golden fixtures and the 1-vs-N byte-identity gate valid with
observability enabled.
"""

import dataclasses

import pytest

from repro.harness.registry import get_workload, make_controller
from repro.obs import (EV_COMMIT, EV_RA_ENTER, EV_RA_EXIT, FileSink,
                       MemorySink, attach_sink, load_events)
from repro.obs.events import EVENT_SCHEMA

MACHINES = ("none", "original", "secure")


def run_stats(workload_name, controller_name, trace=None):
    workload = get_workload(workload_name)
    controller = make_controller(controller_name) \
        if controller_name != "none" else None
    core = workload.run(runahead=controller, trace=trace)
    return dataclasses.asdict(core.stats)


class TestDeterminism:
    @pytest.mark.parametrize("controller", MACHINES)
    def test_stats_identical_with_and_without_sink(self, controller):
        baseline = run_stats("mcf", controller)
        sink = MemorySink()
        traced = run_stats("mcf", controller, trace=sink)
        assert traced == baseline
        assert len(sink) > 0

    def test_streaming_workload_too(self):
        baseline = run_stats("gems", "original")
        traced = run_stats("gems", "original", trace=MemorySink())
        assert traced == baseline

    def test_ring_sink_does_not_change_stats_either(self):
        baseline = run_stats("mcf", "original")
        traced = run_stats("mcf", "original",
                           trace=MemorySink(capacity=64))
        assert traced == baseline


class TestSinks:
    def test_ring_capacity_bounds_memory(self):
        sink = MemorySink(capacity=100)
        for cycle in range(1000):
            sink.emit(cycle, EV_COMMIT, cycle, 0)
        assert len(sink) == 100
        # Flight-recorder semantics: the *last* events survive.
        assert sink.events[0][0] == 900
        assert sink.events[-1][0] == 999

    def test_file_sink_round_trips_the_memory_stream(self, tmp_path):
        workload = get_workload("mcf")
        memory = MemorySink()
        workload.run(runahead=make_controller("original"), trace=memory)
        path = tmp_path / "mcf.evt"
        with FileSink(path) as file_sink:
            workload.run(runahead=make_controller("original"),
                         trace=file_sink)
        assert file_sink.count == len(memory)
        assert load_events(path) == memory.events

    def test_attach_sink_covers_core_and_hierarchy(self):
        workload = get_workload("mcf")
        core = workload.run(runahead=make_controller("original"))
        sink = MemorySink()
        attach_sink(core, sink)
        assert core.trace is sink
        assert core.hierarchy.trace is sink
        attach_sink(core, None)
        assert core.trace is None
        assert core.hierarchy.trace is None


class TestEventContent:
    def test_traced_run_emits_every_pipeline_stage(self):
        sink = MemorySink()
        stats = run_stats("mcf", "original", trace=sink)
        kinds = {event[1] for event in sink.events}
        names = {EVENT_SCHEMA[k][0] for k in kinds}
        for expected in ("fetch", "dispatch", "issue", "commit",
                         "pseudo_retire", "runahead_enter",
                         "runahead_exit", "inv", "mem_access",
                         "cache_fill"):
            assert expected in names, f"no {expected} events emitted"
        # Counted events agree with the stats the simulator reports.
        commits = sum(1 for e in sink.events if e[1] == EV_COMMIT)
        assert commits == stats["committed"]
        enters = sum(1 for e in sink.events if e[1] == EV_RA_ENTER)
        exits = sum(1 for e in sink.events if e[1] == EV_RA_EXIT)
        assert enters == exits == stats["runahead_episodes"]

    def test_cycles_are_monotonic_for_simulator_traces(self):
        sink = MemorySink()
        run_stats("mcf", "original", trace=sink)
        cycles = [event[0] for event in sink.events]
        assert cycles == sorted(cycles)

"""Timeline derivation and rendering of .evt traces."""

from repro.obs.events import (EV_CACHE_PROBE, EV_COMMIT, EV_DISPATCH,
                              EV_MEM_ACCESS, EV_RA_ENTER, EV_RA_EXIT,
                              EV_SQUASH, LEVEL_IDS)
from repro.obs.view import render_html, render_text, summarize_events


def synthetic_stream():
    """A tiny hand-checkable trace: dispatch 3, commit 1, squash 2,
    one runahead episode, two memory accesses."""
    return [
        (0, EV_DISPATCH, 1, 0x10),
        (1, EV_DISPATCH, 2, 0x14),
        (2, EV_DISPATCH, 3, 0x18),
        (3, EV_COMMIT, 1, 0x10),
        (4, EV_RA_ENTER, 2, 0x14),
        (5, EV_MEM_ACCESS, 0x40, LEVEL_IDS["mem"]),
        (6, EV_MEM_ACCESS, 0x80, LEVEL_IDS["l1"]),
        (10, EV_RA_EXIT, 6, 0x14),
        (10, EV_SQUASH, 2, 0x14),
        (12, EV_CACHE_PROBE, 0x40, LEVEL_IDS["l3"]),
    ]


class TestSummarize:
    def test_counts_and_span(self):
        summary = summarize_events(synthetic_stream())
        assert summary["events"] == 10
        assert summary["first_cycle"] == 0
        assert summary["last_cycle"] == 12
        assert summary["counts"]["dispatch"] == 3
        assert summary["counts"]["commit"] == 1

    def test_occupancy_tracks_dispatch_commit_squash(self):
        summary = summarize_events(synthetic_stream())
        # 3 dispatched, 1 committed -> peak 3, squash of 2 drains it.
        assert summary["max_occupancy"] == 3
        assert max(summary["occupancy_bins"]) == 3
        assert summary["occupancy_bins"][-1] == 0 or \
            summary["occupancy_bins"][-1] <= 3

    def test_episode_pairing(self):
        summary = summarize_events(synthetic_stream())
        assert len(summary["episodes"]) == 1
        episode = summary["episodes"][0]
        assert episode["enter"] == 4
        assert episode["exit"] == 10
        assert episode["cycles"] == 6
        assert "open" not in episode

    def test_unterminated_episode_is_flagged(self):
        events = [(0, EV_DISPATCH, 1, 0), (5, EV_RA_ENTER, 1, 0x20),
                  (9, EV_COMMIT, 1, 0)]
        summary = summarize_events(events)
        assert summary["episodes"][-1]["open"] is True
        assert summary["episodes"][-1]["exit"] == 9

    def test_levels_breakdown(self):
        summary = summarize_events(synthetic_stream())
        assert summary["levels"] == {"mem": 1, "l1": 1, "l3": 1}

    def test_empty_stream(self):
        summary = summarize_events([])
        assert summary["events"] == 0
        assert summary["episodes"] == []
        assert summary["max_occupancy"] == 0

    def test_bins_parameter(self):
        summary = summarize_events(synthetic_stream(), bins=8)
        assert len(summary["occupancy_bins"]) == 8
        assert len(summary["runahead_bins"]) == 8


class TestRender:
    def test_text_mentions_the_load_bearing_figures(self):
        text = render_text(summarize_events(synthetic_stream()))
        assert "10 events" in text
        assert "peak 3" in text
        assert "runahead episodes: 1" in text
        assert "dispatch" in text
        assert "R" in text                 # the runahead band row

    def test_text_on_empty_trace(self):
        text = render_text(summarize_events([]))
        assert "0 events" in text

    def test_html_is_self_contained(self):
        html = render_html(summarize_events(synthetic_stream()),
                           title="demo.evt")
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "polyline" in html
        assert "demo.evt" in html
        assert "http" not in html          # no external assets

"""The /metrics, /timeline, and /dashboard HTTP surface."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import Campaign, make_server
from repro.campaign.coordinator import make_coordinator
from repro.harness.spec import Sweep
from repro.obs.campaign import (dashboard_html, journal_timeline,
                                status_metrics)
from repro.obs.metrics import get_registry


def small_sweep(name="demo", n=4) -> Sweep:
    sweep = Sweep(name)
    for i in range(n):
        sweep.add("window", runahead="none", sled=8 + 8 * i,
                  config_base="small")
    return sweep


@pytest.fixture
def campaign_dir(tmp_path):
    campaign = Campaign.create(tmp_path / "camp", small_sweep())
    campaign.run(workers=2)
    return tmp_path / "camp"


@pytest.fixture
def dashboard_server(campaign_dir):
    server = make_server(campaign_dir, dashboard=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def fetch_raw(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


class TestMetricsEndpoint:
    def test_prometheus_text_with_campaign_gauges(self,
                                                  dashboard_server):
        code, ctype, body = fetch_raw(dashboard_server + "/metrics")
        assert code == 200
        assert ctype.startswith("text/plain")
        assert "# TYPE repro_campaign_trials_completed gauge" in body
        assert "repro_campaign_trials_completed 4" in body
        assert "repro_campaign_progress_ratio 1" in body
        assert "repro_campaign_finished 1" in body

    def test_includes_the_process_registry(self, dashboard_server):
        """Executor/engine series recorded in this process show up on
        the same scrape as the journal-derived gauges."""
        get_registry().counter(
            "repro_obs_test_probe_total", "Test probe").inc(7)
        _, _, body = fetch_raw(dashboard_server + "/metrics")
        assert "repro_obs_test_probe_total 7" in body

    def test_metrics_available_without_dashboard_flag(self,
                                                      campaign_dir):
        server = make_server(campaign_dir)    # dashboard defaults off
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            code, ctype, _ = fetch_raw(f"http://{host}:{port}/metrics")
            assert code == 200
            assert ctype.startswith("text/plain")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch_raw(f"http://{host}:{port}/dashboard")
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestTimelineEndpoint:
    def test_trial_rows_from_the_journal(self, dashboard_server):
        code, ctype, body = fetch_raw(dashboard_server + "/timeline")
        assert code == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["campaign"] == "demo"
        assert payload["total_trials"] == 4
        assert len(payload["trials"]) == 4
        for trial in payload["trials"]:
            assert trial["status"] == "done"
            assert trial["elapsed"] >= 0
            assert trial["start"] <= trial["end"]

    def test_matches_the_library_view(self, dashboard_server,
                                      campaign_dir):
        _, _, body = fetch_raw(dashboard_server + "/timeline")
        assert json.loads(body) == json.loads(
            json.dumps(journal_timeline(campaign_dir)))


class TestDashboardEndpoint:
    def test_single_file_html(self, dashboard_server):
        code, ctype, body = fetch_raw(dashboard_server + "/dashboard")
        assert code == 200
        assert ctype.startswith("text/html")
        assert body.startswith("<!doctype html>")
        assert "repro campaign: demo" in body
        # Self-contained: polls its own endpoints, loads nothing else.
        assert "/status" in body and "/timeline" in body
        assert "src=" not in body and "href=" not in body

    def test_index_advertises_dashboard_routes(self, dashboard_server):
        _, _, body = fetch_raw(dashboard_server + "/")
        endpoints = json.loads(body)["endpoints"]
        assert "/dashboard" in endpoints
        assert "/timeline" in endpoints
        assert "/metrics" in endpoints


class TestLibraryAdapters:
    def test_status_metrics_skips_rate_when_unknown(self, campaign_dir):
        from repro.campaign import campaign_status
        status = campaign_status(campaign_dir)
        status["trials_per_second"] = None
        status["eta_seconds"] = None
        text = status_metrics(status)
        assert "repro_campaign_trials_per_second" not in text
        assert "repro_campaign_eta_seconds" not in text

    def test_dashboard_html_injects_title(self):
        html = dashboard_html("my title")
        assert "my title" in html
        assert "__TITLE__" not in html


class TestCoordinatorMetrics:
    def test_coordinator_serves_metrics_and_dashboard(self,
                                                      campaign_dir):
        server, state, loop = make_coordinator(campaign_dir,
                                               dashboard=True)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            code, ctype, body = fetch_raw(
                f"http://{host}:{port}/metrics")
            assert code == 200
            assert ctype.startswith("text/plain")
            assert "repro_coordinator_queued" in body
            assert "repro_coordinator_claims_total" in body
            code, ctype, _ = fetch_raw(
                f"http://{host}:{port}/dashboard")
            assert code == 200
            assert ctype.startswith("text/html")
        finally:
            loop.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

"""Cross-core covert channels end to end, and the defense negative sweep.

The ROADMAP's negative sweep is pinned here as CI fact: ``extract``
trials on the ``secure`` and ``branch-skip`` machines decode *nothing*
(success rate 0.0) for every receiver — same-core and cross-core — while
the baseline machine leaks the full secret cross-core.
"""

import pytest

from repro.attack.gadgets import build_attack
from repro.channel.extract import extract_secret
from repro.channel.receiver import RECEIVERS
from repro.harness.registry import make_controller
from repro.multicore.scenario import Topology, run_topology_attack
from repro.pipeline.config import CoreConfig

SECRET = "S"                       # one byte keeps the sweep fast
DEFENSES = ("secure", "branch-skip")


class TestTopologySpec:
    def test_single_core_defaults_resolve_to_none(self):
        assert Topology.from_params({"cores": 1}) is None
        assert Topology.from_params(None) is None
        assert Topology.from_params(Topology()) is None

    def test_multicore_round_trips(self):
        topology = Topology.from_params({"cores": 3, "corunner": "lbm"})
        assert topology.cross_core
        assert Topology.from_params(topology.to_spec()) == topology

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown topology keys"):
            Topology.from_params({"cores": 2, "threads": 4})

    def test_corunner_needs_a_slot(self):
        with pytest.raises(ValueError, match="cores >= 3"):
            Topology(cores=2, corunner="lbm")

    def test_smt_needs_a_corunner(self):
        with pytest.raises(ValueError, match="smt=True"):
            Topology(cores=2, smt=True)


class TestCrossCoreRecovery:
    @pytest.mark.parametrize("receiver", sorted(RECEIVERS))
    def test_every_receiver_recovers_cross_core(self, receiver):
        result = extract_secret(SECRET, receiver=receiver, trials=1,
                                cores=2)
        assert result.success_rate == 1.0
        assert result.topology == Topology(cores=2).to_spec()

    def test_outcome_records_topology_and_is_deterministic(self):
        kwargs = dict(receiver="flush-reload", trials=3,
                      noise={"jitter": 12, "evict_rate": 0.01}, seed=7,
                      cores=2)
        first = extract_secret(SECRET, **kwargs)
        second = extract_secret(SECRET, **kwargs)
        assert first.to_dict() == second.to_dict()
        assert first.to_dict()["topology"]["cores"] == 2

    def test_smt_corunner_still_leaks(self):
        result = extract_secret(SECRET, receiver="flush-reload", trials=1,
                                cores=2, corunner="lbm", smt=True)
        assert result.success_rate == 1.0
        assert result.topology["smt"] is True

    def test_cross_core_corunner_still_leaks(self):
        result = extract_secret(SECRET, receiver="flush-reload", trials=1,
                                cores=3, corunner="lbm")
        assert result.success_rate == 1.0

    def test_corunner_charges_the_shared_channel(self):
        """The co-runner is a real stream: the victim's run must get
        slower (channel contention), not just noisier to measure."""
        clean = extract_secret(SECRET, receiver="flush-reload", trials=1,
                               cores=2)
        noisy = extract_secret(SECRET, receiver="flush-reload", trials=1,
                               cores=3, corunner="lbm")
        assert noisy.bytes_[0].cycles > clean.bytes_[0].cycles

    def test_topology_requires_external_probe(self):
        attack = build_attack("pht", secret_value=83)   # in-program probe
        with pytest.raises(ValueError, match="external-probe"):
            run_topology_attack(attack, make_controller("original"),
                                CoreConfig.paper(), "flush-reload",
                                Topology(cores=2))


class TestDefenseNegativeSweep:
    """Defenses close the channel — cross-core included (ROADMAP pin)."""

    @pytest.mark.parametrize("machine", DEFENSES)
    @pytest.mark.parametrize("receiver", sorted(RECEIVERS))
    def test_cross_core_decodes_nothing(self, machine, receiver):
        result = extract_secret(SECRET, receiver=receiver, trials=2,
                                runahead=lambda: make_controller(machine),
                                cores=2)
        assert result.success_rate == 0.0, \
            f"{machine}/{receiver} leaked {result.recovered!r} cross-core"

    @pytest.mark.slow
    @pytest.mark.parametrize("machine", DEFENSES)
    @pytest.mark.parametrize("receiver", sorted(RECEIVERS))
    def test_same_core_decodes_nothing(self, machine, receiver):
        result = extract_secret(SECRET, receiver=receiver, trials=2,
                                runahead=lambda: make_controller(machine))
        assert result.success_rate == 0.0, \
            f"{machine}/{receiver} leaked {result.recovered!r} same-core"

    @pytest.mark.slow
    @pytest.mark.parametrize("machine", DEFENSES)
    def test_corunner_does_not_reopen_the_channel(self, machine):
        result = extract_secret(SECRET, receiver="prime-probe", trials=2,
                                runahead=lambda: make_controller(machine),
                                cores=3, corunner="lbm")
        assert result.success_rate == 0.0


@pytest.mark.slow
def test_cross_core_sweep_is_worker_count_invariant():
    """The fig10_cross_core preset is byte-identical at 1 and 4 workers
    (multi-core trials are pure functions of their spec, like every
    other trial kind)."""
    from repro.harness import presets, run_sweep

    sweep = presets.get("fig10_cross_core").build(quick=True)
    serial = run_sweep(sweep, workers=1, cache=None)
    sharded = run_sweep(presets.get("fig10_cross_core").build(quick=True),
                        workers=4, cache=None)
    assert serial.to_json() == sharded.to_json()

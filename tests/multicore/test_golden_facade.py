"""Golden-stats differential coverage for the hierarchy refactor.

PR 2's fixture (``tests/golden/golden_stats.json``) was recorded before
the hierarchy split into ``SharedHierarchy`` + per-core ``CoreView``s.
Two layers of coverage prove the refactor is byte-identical for
single-core runs:

* the *implicit* facade — every existing golden test already runs
  through the refactored ``MemoryHierarchy`` (which now IS a core view
  over its own single-view shared level), so
  ``tests/pipeline/test_golden_stats.py`` re-validates all 18
  workload × controller records and all 10 quick-tier presets
  unmodified;
* the *explicit* facade — these tests build the shared level by hand
  (``SharedHierarchy(cores=1)``), hand its view to
  ``Core(hierarchy=...)``, and assert the exact same fixture records,
  proving the multi-core construction path itself introduces no drift.
"""

import pytest

from repro.harness.registry import get_workload, make_controller
from repro.memory.hierarchy import SharedHierarchy
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core

from tests.golden import recorder

GOLDEN = recorder.load_golden()
CORE_KEYS = sorted(GOLDEN["cores"])


def facade_core_record(workload_name, controller_name):
    """The recorder's core_record, but through an explicit CoreView."""
    workload = get_workload(workload_name)
    config = CoreConfig.paper()
    shared = SharedHierarchy(config.hierarchy, cores=1)
    program, image, sp = workload.materialize()
    core = Core(program, memory_image=image, config=config,
                runahead=make_controller(controller_name), initial_sp=sp,
                warm_icache=True, hierarchy=shared.core(0))
    core.run(max_cycles=5_000_000)
    assert core.halted, f"{workload_name} did not halt"
    return recorder.distill_core(core)


def test_explicit_facade_matches_golden_smoke():
    """Fast witness (full grid below is marked slow)."""
    key = "mcf/original"
    fresh = recorder.normalize(facade_core_record(*key.split("/")))
    assert fresh == GOLDEN["cores"][key]


@pytest.mark.slow
@pytest.mark.parametrize("key", CORE_KEYS)
def test_explicit_facade_matches_golden(key):
    workload, controller = key.split("/")
    fresh = recorder.normalize(facade_core_record(workload, controller))
    want = GOLDEN["cores"][key]
    assert fresh.keys() == want.keys()
    for field in want:
        assert fresh[field] == want[field], \
            f"{key}: {field} diverged through the explicit " \
            f"SharedHierarchy/CoreView facade"

"""Lockstep scheduler: determinism, co-runner restarts, quiescence."""

import dataclasses

import pytest

from repro.harness.registry import get_workload, make_controller
from repro.isa.assembler import assemble
from repro.memory.hierarchy import PHYS_WINDOW_STRIDE, SharedHierarchy
from repro.multicore.system import MultiCoreSystem
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core

CONFIG = CoreConfig.small()


def make_system(n_workloads, restart=False, max_runs=None):
    shared = SharedHierarchy(CONFIG.hierarchy, cores=0)
    system = MultiCoreSystem(shared)
    for index, name in enumerate(n_workloads):
        workload = get_workload(name)
        view = shared.add_core(phys_base=index * PHYS_WINDOW_STRIDE)

        def factory(workload=workload, view=view):
            program, image, sp = workload.materialize()
            return Core(program, memory_image=image, config=CONFIG,
                        runahead=make_controller("none"), initial_sp=sp,
                        warm_icache=True, hierarchy=view)

        system.add_core(factory, name=name,
                        restart=restart and index > 0)
    return system


def test_single_core_system_matches_plain_run():
    """One core in the scheduler == the core's own run loop, cycle for
    cycle (the lockstep loop preserves single-core cycle skipping)."""
    workload = get_workload("gems")
    solo = workload.run(runahead=make_controller("none"), config=CONFIG)
    system = make_system(["gems"])
    primary = system.run(max_cycles=5_000_000)
    assert primary.halted
    assert dataclasses.asdict(primary.stats) == \
        dataclasses.asdict(solo.stats)


def test_lockstep_is_deterministic():
    first = make_system(["gems", "lbm"]).run(max_cycles=5_000_000)
    second = make_system(["gems", "lbm"]).run(max_cycles=5_000_000)
    assert first.halted and second.halted
    assert dataclasses.asdict(first.stats) == \
        dataclasses.asdict(second.stats)


def test_corunner_contention_perturbs_the_primary():
    solo = make_system(["gems"]).run(max_cycles=5_000_000)
    paired = make_system(["gems", "lbm"]).run(max_cycles=5_000_000)
    assert paired.halted
    # The shared memory channel queues both cores' misses; a streaming
    # co-runner must cost the primary real cycles.
    assert paired.stats.cycles > solo.stats.cycles


def test_corunner_restarts_until_primary_halts():
    # zeusmp (primary, long compute) vs the short reference kernel: the
    # co-runner must halt and respawn at least once.
    system = make_system(["zeusmp", "reference"], restart=True)
    primary = system.run(max_cycles=5_000_000)
    assert primary.halted
    assert system.slots[1].respawns >= 1


def test_secondary_without_restart_stays_halted():
    system = make_system(["zeusmp", "reference"], restart=False)
    primary = system.run(max_cycles=5_000_000)
    assert primary.halted
    assert system.slots[1].core.halted
    assert system.slots[1].respawns == 0


def test_primary_cannot_be_a_restart_slot():
    system = make_system(["gems", "lbm"], restart=True)
    system.slots[0].restart = True
    with pytest.raises(ValueError, match="primary"):
        system.run()


def test_foreign_core_rejected():
    system = make_system(["gems"])
    workload = get_workload("lbm")

    def foreign():
        program, image, sp = workload.materialize()
        return Core(program, memory_image=image, config=CONFIG,
                    initial_sp=sp)          # its own private hierarchy

    with pytest.raises(ValueError, match="shared hierarchy"):
        system.add_core(foreign)


def test_empty_system_rejected():
    shared = SharedHierarchy(CONFIG.hierarchy, cores=0)
    with pytest.raises(ValueError, match="no cores"):
        MultiCoreSystem(shared).run()


def test_max_cycles_bounds_a_spinning_system():
    shared = SharedHierarchy(CONFIG.hierarchy, cores=0)
    view = shared.add_core()
    program = assemble("""
    loop:
        addi r1, r1, 1
        jmp loop
    """)
    system = MultiCoreSystem(shared)
    system.add_core(lambda: Core(program, config=CONFIG, warm_icache=True,
                                 hierarchy=view))
    primary = system.run(max_cycles=2_000)
    assert not primary.halted
    assert system.cycle >= 2_000

"""Shared-L3 hierarchy semantics: inclusion, back-invalidation, flushes.

The multi-core refactor's contracts, pinned as tests:

* with two or more views the L3 is **inclusive** — every line resident
  in any core's L1/L2 is L3-resident — and evicting a line from L3
  **back-invalidates** every private copy on every core;
* a single-view hierarchy keeps the historical *non*-inclusive
  behaviour (bit-identical single-core runs — the golden-stats
  fixtures depend on it);
* ``flush_line`` from any core is a coherence-domain flush: it clears
  the shared L3 copy, every other core's private copies, and drops
  in-flight fills on any core (whose stalled loads still complete);
* ``probe_latency`` is read-only — stats, residency and LRU state are
  unchanged — under arbitrary multi-core state.

The invariant checks run under randomized multi-core access sequences
driven by the repo's own SplitMix64 (deterministic across platforms).
"""

import dataclasses

import pytest

from repro.channel.noise import SplitMix64
from repro.memory import (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_MEM,
                          PHYS_WINDOW_STRIDE, HierarchyConfig,
                          MemoryHierarchy, SharedHierarchy)


def make_shared(cores=2, config=None):
    return SharedHierarchy(config or HierarchyConfig.small(), cores=cores)


def private_lines(view):
    """Every line resident in the view's private caches."""
    lines = set()
    for cache in (view.l1i, view.l1d, view.l2):
        lines.update(cache.resident_lines())
    return lines


def assert_inclusive(shared):
    l3_lines = set(shared.l3.resident_lines())
    for view in shared.views:
        missing = private_lines(view) - l3_lines
        assert not missing, \
            f"core {view.view_id}: private lines not in L3: {sorted(missing)}"


def random_walk(shared, rng, steps, addr_space=1 << 15):
    """Drive a randomized multi-core access sequence; returns final time."""
    now = 0
    for _ in range(steps):
        view = shared.views[rng.next_u64() % len(shared.views)]
        addr = rng.next_u64() % addr_space
        op = rng.next_u64() % 8
        if op < 4:
            view.access_data(addr, now)
        elif op < 6:
            view.access_inst(addr, now)
        elif op == 6:
            view.warm(addr)
        else:
            view.flush_line(addr)
        now += 1 + rng.next_u64() % 40
    shared.apply_completed(now + 10_000)
    return now + 10_000


class TestInclusion:
    @pytest.mark.parametrize("cores", [2, 3])
    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_inclusive_under_random_multicore_traffic(self, cores, seed):
        shared = make_shared(cores=cores)
        rng = SplitMix64(seed)
        now = 0
        for round_ in range(8):
            view = shared.views[rng.next_u64() % cores]
            for _ in range(80):
                addr = rng.next_u64() % (1 << 15)
                view.access_data(addr, now)
                now += 1 + rng.next_u64() % 25
            shared.apply_completed(now + 5_000)
            now += 5_000
            assert_inclusive(shared)
        random_walk(shared, rng, steps=200)
        assert_inclusive(shared)

    def test_l3_eviction_back_invalidates_every_core(self):
        shared = make_shared(cores=2)
        a, b = shared.views
        config = shared.l3.config
        set_span = config.n_sets * config.line_bytes
        target = 0x1000
        a.warm(target)                     # resident in a's L1D, L2, L3
        b.warm(target)                     # and in b's private caches
        # Fill the target's L3 set with `assoc` fresh conflicting lines,
        # evicting the target from L3.
        for way in range(config.assoc):
            shared.l3.fill(target + (way + 1) * set_span)
        assert not shared.l3.probe(target)
        for view in (a, b):
            assert not view.present_in(target, LEVEL_L1)
            assert not view.present_in(target, LEVEL_L2)
            assert not view.l1i.probe(target)

    def test_single_view_stays_non_inclusive(self):
        """Legacy single-core behaviour: no back-invalidation (pinned by
        the golden-stats fixtures; this is the unit-level witness)."""
        hierarchy = MemoryHierarchy(HierarchyConfig.small())
        config = hierarchy.l3.config
        set_span = config.n_sets * config.line_bytes
        target = 0x1000
        hierarchy.warm(target)
        for way in range(config.assoc):
            hierarchy.l3.fill(target + (way + 1) * set_span)
        assert not hierarchy.l3.probe(target)
        assert hierarchy.present_in(target, LEVEL_L1)   # survives

    def test_inclusive_override_flag(self):
        shared = SharedHierarchy(HierarchyConfig.small(), cores=1,
                                 inclusive=True)
        assert shared.inclusive
        shared = SharedHierarchy(HierarchyConfig.small(), cores=3,
                                 inclusive=False)
        assert not shared.inclusive


class TestCrossCoreFlush:
    def test_flush_from_one_core_clears_all_copies(self):
        shared = make_shared(cores=3)
        a, b, c = shared.views
        for view in (a, b):
            view.warm(0x2000)
        c.flush_line(0x2000)
        assert not shared.l3.probe(0x2000)
        for view in (a, b, c):
            for level in (LEVEL_L1, LEVEL_L2):
                assert not view.present_in(0x2000, level)
        assert c.stats.flushes == 1
        assert a.stats.flushes == 0      # charged to the flushing core

    def test_flush_drops_other_cores_pending_fill(self):
        """Fig. 10 case ③ across cores: B flushes while A's fill is in
        flight — the fill is dropped, A's waiter still completes, and a
        later access restarts a real memory request."""
        shared = make_shared(cores=2)
        a, b = shared.views
        first = a.access_data(0x3000, now=0)
        assert first.level == LEVEL_MEM
        b.flush_line(0x3000)
        assert a.stats.dropped_fills == 1
        assert b.stats.dropped_fills == 0
        shared.apply_completed(first.completion + 1)
        assert not shared.l3.probe(0x3000)
        assert not a.present_in(0x3000, LEVEL_L1)
        again = a.access_data(0x3000, now=first.completion + 2)
        assert again.level == LEVEL_MEM
        assert a.stats.mem_requests == 2

    def test_flush_mid_pending_does_not_drop_twice(self):
        shared = make_shared(cores=2)
        a, b = shared.views
        a.access_data(0x3000, now=0)
        b.flush_line(0x3000)
        a.flush_line(0x3000)             # second flush: already dropped
        assert a.stats.dropped_fills == 1
        assert a.stats.flushes == 1
        assert b.stats.flushes == 1

    def test_new_fill_after_drop_installs_normally(self):
        shared = make_shared(cores=2)
        a, b = shared.views
        first = a.access_data(0x4000, now=0)
        b.flush_line(0x4000)
        second = a.access_data(0x4000, now=first.completion + 1)
        assert second.level == LEVEL_MEM
        shared.apply_completed(second.completion + 1)
        assert a.present_in(0x4000, LEVEL_L1)
        assert shared.l3.probe(0x4000)


class TestCrossCoreVisibility:
    def test_fill_by_one_core_is_llc_visible_to_another(self):
        shared = make_shared(cores=2)
        victim, attacker = shared.views
        result = victim.access_data(0x5000, now=0)
        shared.apply_completed(result.completion + 1)
        assert attacker.present_in(0x5000, LEVEL_L3)
        assert not attacker.present_in(0x5000, LEVEL_L1)
        latency, level = attacker.probe_latency(0x5000,
                                                result.completion + 1)
        assert level == LEVEL_L3
        assert latency == shared.config.llc_hit_latency

    def test_probe_applies_other_views_completed_fills(self):
        """A cross-core receiver probing at ``now`` must observe the
        victim's fills whose completion has passed, even if the victim
        never accessed the hierarchy again."""
        shared = make_shared(cores=2)
        victim, attacker = shared.views
        result = victim.access_data(0x6000, now=0)
        latency, level = attacker.probe_latency(0x6000,
                                                result.completion + 1)
        assert level == LEVEL_L3

    def test_phys_windows_do_not_alias(self):
        shared = SharedHierarchy(HierarchyConfig.small(), cores=0)
        victim = shared.add_core(phys_base=0)
        corunner = shared.add_core(phys_base=PHYS_WINDOW_STRIDE)
        result = corunner.access_data(0x7000, now=0)
        assert result.line == PHYS_WINDOW_STRIDE + 0x7000
        shared.apply_completed(result.completion + 1)
        # The victim's view of virtual 0x7000 is a *different* line.
        assert not victim.present_in(0x7000, LEVEL_L3)
        assert victim.probe_latency(0x7000, result.completion + 1)[1] \
            == LEVEL_MEM

    def test_smt_thread_shares_private_caches(self):
        shared = SharedHierarchy(HierarchyConfig.small(), cores=0)
        victim = shared.add_core()
        smt = shared.add_smt_thread(victim, phys_base=PHYS_WINDOW_STRIDE)
        assert smt.l1d is victim.l1d and smt.l2 is victim.l2
        result = smt.access_data(0x100, now=0)
        shared.apply_completed(result.completion + 1)
        # The fill landed in the *shared* L1D (at the SMT thread's
        # physical window) — the victim's L1 now holds the line too.
        assert victim.l1d.probe(PHYS_WINDOW_STRIDE + 0x100)
        # Pending-fill bookkeeping and stats stay per thread.
        assert smt.stats.mem_requests == 1
        assert victim.stats.mem_requests == 0

    def test_smt_thread_rejects_foreign_sibling(self):
        shared = make_shared(cores=1)
        other = make_shared(cores=1)
        with pytest.raises(ValueError, match="another hierarchy"):
            shared.add_smt_thread(other.views[0])

    def test_view_config_mismatch_rejected(self):
        shared = make_shared(cores=0)
        with pytest.raises(ValueError, match="config disagrees"):
            MemoryHierarchy(HierarchyConfig.paper(), shared=shared)


def hierarchy_snapshot(shared):
    """Full observable state: residency *and* recency order and stats."""
    state = []
    for view in shared.views:
        for cache in (view.l1i, view.l1d, view.l2):
            state.append([list(ways) for ways in cache._sets])
            state.append(dataclasses.asdict(cache.stats))
        state.append(dict(view._pending))
        state.append(dataclasses.asdict(view.stats))
    state.append([list(ways) for ways in shared.l3._sets])
    state.append(dataclasses.asdict(shared.l3.stats))
    return repr(state)


class TestProbeReadOnly:
    @pytest.mark.parametrize("seed", [3, 99])
    def test_probe_latency_has_no_side_effects(self, seed):
        shared = make_shared(cores=2)
        rng = SplitMix64(seed)
        now = random_walk(shared, rng, steps=150)
        before = hierarchy_snapshot(shared)
        for view in shared.views:
            for _ in range(200):
                view.probe_latency(rng.next_u64() % (1 << 15), now)
        assert hierarchy_snapshot(shared) == before

    def test_present_in_has_no_side_effects(self):
        shared = make_shared(cores=2)
        rng = SplitMix64(11)
        random_walk(shared, rng, steps=100)
        before = hierarchy_snapshot(shared)
        for view in shared.views:
            for level in (LEVEL_L1, LEVEL_L2, LEVEL_L3):
                for _ in range(50):
                    view.present_in(rng.next_u64() % (1 << 15), level)
        assert hierarchy_snapshot(shared) == before


class TestSharedReset:
    def test_shared_reset_clears_every_view(self):
        shared = make_shared(cores=2)
        rng = SplitMix64(5)
        random_walk(shared, rng, steps=60)
        shared.reset()
        assert shared.l3.occupancy() == 0
        for view in shared.views:
            assert not view._pending
            assert view.l1d.occupancy() == 0
            assert view.stats.data_accesses == 0

"""Unit tests for direction predictors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import (BimodalPredictor, GSharePredictor,
                          TwoLevelPredictor, TwoBitCounter,
                          make_direction_predictor)


class TestTwoBitCounter:
    def test_saturation(self):
        state = TwoBitCounter.STRONG_TAKEN
        assert TwoBitCounter.update(state, True) == 3
        state = TwoBitCounter.STRONG_NOT_TAKEN
        assert TwoBitCounter.update(state, False) == 0

    def test_hysteresis(self):
        # From strong-taken one not-taken outcome keeps predicting taken.
        state = TwoBitCounter.STRONG_TAKEN
        state = TwoBitCounter.update(state, False)
        assert TwoBitCounter.predict(state)
        state = TwoBitCounter.update(state, False)
        assert not TwoBitCounter.predict(state)


@pytest.mark.parametrize("name", ["bimodal", "gshare", "twolevel"])
class TestCommonBehaviour:
    def test_initially_predicts_not_taken(self, name):
        predictor = make_direction_predictor(name)
        taken, _ = predictor.predict(0x100)
        assert not taken

    def test_training_flips_prediction(self, name):
        """Attack step ① (poisoning) must work on every predictor.

        The speculative history is updated with the *actual* outcome, as
        the pipeline does after misprediction recovery."""
        predictor = make_direction_predictor(name)
        pc = 0x100
        for _ in range(20):
            taken, meta = predictor.predict(pc)
            predictor.spec_update(pc, True)
            predictor.update(pc, True, meta)
        taken, _ = predictor.predict(pc)
        assert taken

    def test_reset_forgets_training(self, name):
        predictor = make_direction_predictor(name)
        pc = 0x100
        for _ in range(8):
            _, meta = predictor.predict(pc)
            predictor.update(pc, True, meta)
        predictor.reset()
        taken, _ = predictor.predict(pc)
        assert not taken

    def test_retraining_flips_back(self, name):
        predictor = make_direction_predictor(name)
        pc = 0x40
        for _ in range(20):
            _, meta = predictor.predict(pc)
            predictor.spec_update(pc, True)
            predictor.update(pc, True, meta)
        for _ in range(20):
            _, meta = predictor.predict(pc)
            predictor.spec_update(pc, False)
            predictor.update(pc, False, meta)
        taken, _ = predictor.predict(pc)
        assert not taken


class TestGShareHistory:
    def test_spec_update_changes_index(self):
        predictor = GSharePredictor(table_bits=8, history_bits=8)
        _, index_before = predictor.predict(0x100)
        predictor.spec_update(0x100, True)
        _, index_after = predictor.predict(0x100)
        assert index_before != index_after

    def test_snapshot_restore_round_trip(self):
        predictor = GSharePredictor()
        snap = predictor.snapshot()
        predictor.spec_update(0x0, True)
        predictor.spec_update(0x4, False)
        assert predictor.ghr != snap
        predictor.restore(snap)
        assert predictor.ghr == snap

    def test_history_distinguishes_paths(self):
        """gshare learns a pattern bimodal cannot: alternating outcomes
        become predictable once history is in the index."""
        predictor = GSharePredictor(table_bits=10, history_bits=4)
        pc = 0x200
        outcome = True
        for _ in range(64):
            _, meta = predictor.predict(pc)
            predictor.update(pc, outcome, meta)
            predictor.spec_update(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(16):
            taken, meta = predictor.predict(pc)
            correct += taken == outcome
            predictor.update(pc, outcome, meta)
            predictor.spec_update(pc, outcome)
            outcome = not outcome
        assert correct >= 14


class TestTwoLevelLocalHistory:
    def test_learns_periodic_pattern(self):
        predictor = TwoLevelPredictor(history_bits=6)
        pc = 0x300
        pattern = [True, True, False]
        for i in range(90):
            outcome = pattern[i % 3]
            _, meta = predictor.predict(pc)
            predictor.update(pc, outcome, meta)
        correct = 0
        for i in range(90, 120):
            outcome = pattern[i % 3]
            taken, meta = predictor.predict(pc)
            correct += taken == outcome
            predictor.update(pc, outcome, meta)
        assert correct >= 27

    def test_distinct_branches_do_not_interfere(self):
        predictor = TwoLevelPredictor(bht_bits=10, pc_bits=6)
        # Train pc_a taken, pc_b not-taken; ensure no cross-talk.
        pc_a, pc_b = 0x100, 0x104
        for _ in range(8):
            _, meta = predictor.predict(pc_a)
            predictor.update(pc_a, True, meta)
            _, meta = predictor.predict(pc_b)
            predictor.update(pc_b, False, meta)
        assert predictor.predict(pc_a)[0]
        assert not predictor.predict(pc_b)[0]


class TestFactory:
    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_direction_predictor("neural")

    def test_kwargs_forwarded(self):
        predictor = make_direction_predictor("bimodal", table_bits=4)
        assert predictor.table_bits == 4


class TestPredictorProperties:
    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    max_size=300),
           st.sampled_from(["bimodal", "gshare", "twolevel"]))
    @settings(max_examples=40, deadline=None)
    def test_predict_update_never_crashes_and_stays_binary(self, ops, name):
        predictor = make_direction_predictor(name)
        for pc_slot, outcome in ops:
            pc = pc_slot * 4
            taken, meta = predictor.predict(pc)
            assert isinstance(taken, bool)
            predictor.spec_update(pc, taken)
            predictor.update(pc, outcome, meta)

"""Unit tests for the combined branch unit."""

import pytest

from repro.branch import BranchUnit
from repro.isa import Instruction, Opcode, int_reg


def cond_branch(target=0x40):
    return Instruction(Opcode.BNE, srcs=(int_reg(1), int_reg(0)),
                       target=target)


class TestConditional:
    def test_not_taken_prediction_falls_through(self):
        unit = BranchUnit()
        pred = unit.predict(0x10, cond_branch(0x40))
        assert not pred.taken
        assert pred.target == 0x14

    def test_trained_prediction_follows_target(self):
        unit = BranchUnit()
        instr = cond_branch(0x40)
        for _ in range(8):
            pred = unit.predict(0x10, instr)
            unit.resolve(0x10, instr, True, 0x40, pred)
        pred = unit.predict(0x10, instr)
        assert pred.taken
        assert pred.target == 0x40

    def test_resolve_reports_direction_mispredict(self):
        unit = BranchUnit()
        instr = cond_branch()
        pred = unit.predict(0x10, instr)
        assert unit.resolve(0x10, instr, True, instr.target, pred)
        assert unit.stats.direction_mispredicts == 1

    def test_resolve_without_training(self):
        unit = BranchUnit()
        instr = cond_branch()
        for _ in range(8):
            pred = unit.predict(0x10, instr)
            unit.resolve(0x10, instr, True, instr.target, pred, train=False)
        pred = unit.predict(0x10, instr)
        assert not pred.taken


class TestCallRet:
    def test_call_pushes_then_ret_predicts(self):
        unit = BranchUnit()
        call = Instruction(Opcode.CALL, dest=29, srcs=(29,), target=0x100)
        ret = Instruction(Opcode.RET, dest=29, srcs=(29,))
        unit.predict(0x10, call)
        pred = unit.predict(0x100, ret)
        assert pred.target == 0x14

    def test_ret_underflow_falls_back(self):
        unit = BranchUnit()
        ret = Instruction(Opcode.RET, dest=29, srcs=(29,))
        pred = unit.predict(0x100, ret)
        assert pred.target == 0x104   # fallthrough fallback

    def test_rsb_mispredict_counted(self):
        unit = BranchUnit()
        call = Instruction(Opcode.CALL, dest=29, srcs=(29,), target=0x100)
        ret = Instruction(Opcode.RET, dest=29, srcs=(29,))
        unit.predict(0x10, call)
        pred = unit.predict(0x100, ret)
        # Architectural return goes elsewhere (stack overwritten).
        assert unit.resolve(0x100, ret, True, 0x900, pred)
        assert unit.stats.rsb_mispredicts == 1


class TestIndirect:
    def test_jr_uses_btb(self):
        unit = BranchUnit()
        jr = Instruction(Opcode.JR, srcs=(int_reg(5),))
        pred = unit.predict(0x20, jr)
        assert pred.target == 0x24   # cold BTB falls through
        unit.resolve(0x20, jr, True, 0x800, pred)
        pred = unit.predict(0x20, jr)
        assert pred.target == 0x800

    def test_jmp_is_always_taken(self):
        unit = BranchUnit()
        jmp = Instruction(Opcode.JMP, target=0x60)
        pred = unit.predict(0x20, jmp)
        assert pred.taken and pred.target == 0x60

    def test_non_branch_rejected(self):
        unit = BranchUnit()
        with pytest.raises(ValueError):
            unit.predict(0x0, Instruction(Opcode.NOP))


class TestRecovery:
    def test_snapshot_restores_rsb_and_history(self):
        unit = BranchUnit.with_predictor("gshare")
        call = Instruction(Opcode.CALL, dest=29, srcs=(29,), target=0x100)
        pred = unit.predict(0x10, cond_branch())
        snap = pred.snapshot
        unit.predict(0x20, call)             # speculative push
        unit.predict(0x30, cond_branch())    # speculative history shift
        unit.restore(snap)
        assert unit.rsb.depth == 0
        ret = Instruction(Opcode.RET, dest=29, srcs=(29,))
        assert unit.predict(0x50, ret).target == 0x54  # nothing to pop

    def test_reapply_actual_outcome(self):
        unit = BranchUnit()
        call = Instruction(Opcode.CALL, dest=29, srcs=(29,), target=0x100)
        pred = unit.predict(0x10, call)
        unit.restore(pred.snapshot)
        unit.reapply(0x10, call, True)
        assert unit.rsb.peek() == 0x14

    def test_predictor_swapping(self):
        for name in ("bimodal", "gshare", "twolevel"):
            unit = BranchUnit.with_predictor(name)
            assert unit.direction.name == name

"""Unit tests for the BTB and the return stack buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch import BranchTargetBuffer, ReturnStackBuffer


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_aliasing_without_tags(self):
        """With zero tag bits, congruent PCs share an entry — the
        SpectreBTB training primitive (Fig. 4a)."""
        btb = BranchTargetBuffer(index_bits=8, tag_bits=0)
        victim_pc = 0x100
        attacker_pc = btb.congruent_pc(victim_pc)
        assert attacker_pc != victim_pc
        assert btb.aliases(victim_pc, attacker_pc)
        btb.update(attacker_pc, 0xBAD)
        assert btb.lookup(victim_pc) == 0xBAD

    def test_tags_prevent_aliasing(self):
        btb = BranchTargetBuffer(index_bits=8, tag_bits=8)
        pc = 0x100
        other = pc + (1 << 10)   # same index, different tag
        btb.update(other, 0xBAD)
        assert btb.lookup(pc) is None

    def test_congruent_pc_respects_tags(self):
        btb = BranchTargetBuffer(index_bits=8, tag_bits=4)
        pc = 0x200
        congruent = btb.congruent_pc(pc)
        assert btb.aliases(pc, congruent)

    def test_reset(self):
        btb = BranchTargetBuffer()
        btb.update(0x100, 0x500)
        btb.reset()
        assert btb.lookup(0x100) is None


class TestRsb:
    def test_push_pop_lifo(self):
        rsb = ReturnStackBuffer(capacity=4)
        rsb.push(0x10)
        rsb.push(0x20)
        assert rsb.pop() == 0x20
        assert rsb.pop() == 0x10

    def test_underflow_returns_none(self):
        rsb = ReturnStackBuffer(capacity=4)
        assert rsb.pop() is None
        assert rsb.underflows == 1

    def test_overflow_wraps_and_clobbers_oldest(self):
        rsb = ReturnStackBuffer(capacity=2)
        rsb.push(1)
        rsb.push(2)
        rsb.push(3)        # clobbers 1
        assert rsb.pop() == 3
        assert rsb.pop() == 2
        # Entry 1 was clobbered; deeper returns underflow to the fallback.
        assert rsb.pop() is None

    def test_peek_does_not_pop(self):
        rsb = ReturnStackBuffer()
        rsb.push(0x44)
        assert rsb.peek() == 0x44
        assert rsb.depth == 1

    def test_snapshot_restore(self):
        rsb = ReturnStackBuffer(capacity=4)
        rsb.push(1)
        rsb.push(2)
        snap = rsb.snapshot()
        rsb.pop()
        rsb.push(99)
        rsb.restore(snap)
        assert rsb.pop() == 2
        assert rsb.pop() == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ReturnStackBuffer(capacity=0)

    @given(st.lists(st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1 << 32)),
        st.tuples(st.just("pop"), st.none())), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_behaves_like_bounded_stack(self, ops):
        """Within capacity, the RSB is exactly a LIFO stack."""
        capacity = 8
        rsb = ReturnStackBuffer(capacity=capacity)
        model = []
        for op, value in ops:
            if op == "push":
                rsb.push(value)
                model.append(value)
                if len(model) > capacity:
                    model.pop(0)
            else:
                predicted = rsb.pop()
                expected = model.pop() if model else None
                assert predicted == expected

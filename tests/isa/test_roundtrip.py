"""Property tests: assembler round-trips and branch-predicate semantics."""

from hypothesis import given, settings, strategies as st

from repro.isa import Opcode, assemble, to_signed64, to_unsigned64
from repro.isa.instructions import eval_branch, eval_int_alu

_ALU3 = ["add", "sub", "and", "or", "xor", "slt", "sltu", "mul", "div",
         "rem"]
_ALUI = ["addi", "andi", "ori", "xori", "slti", "muli"]
_BRANCH = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]


@st.composite
def instruction_line(draw):
    kind = draw(st.sampled_from(["alu3", "alui", "li", "mem", "misc"]))
    reg = lambda: f"r{draw(st.integers(0, 31))}"
    if kind == "alu3":
        return f"{draw(st.sampled_from(_ALU3))} {reg()}, {reg()}, {reg()}"
    if kind == "alui":
        return (f"{draw(st.sampled_from(_ALUI))} {reg()}, {reg()}, "
                f"{draw(st.integers(-(2**31), 2**31))}")
    if kind == "li":
        return f"li {reg()}, {draw(st.integers(-(2**62), 2**62))}"
    if kind == "mem":
        op = draw(st.sampled_from(["load", "store"]))
        offset = draw(st.integers(0, 4096)) * 8
        if op == "load":
            return f"load {reg()}, {reg()}, {offset}"
        return f"store {reg()}, {reg()}, {offset}"
    return draw(st.sampled_from(["nop", "fence", "halt", f"rdtsc {reg()}"]))


class TestAssemblerRoundTrip:
    @given(st.lists(instruction_line(), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_assemble_is_stable(self, lines):
        """Assembling the same source twice yields identical programs."""
        source = "\n".join(lines)
        a = assemble(source)
        b = assemble(source)
        assert len(a) == len(b)
        for ia, ib in zip(a, b):
            assert ia == ib

    @given(st.lists(instruction_line(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_every_instruction_renders(self, lines):
        """str() never raises and names the mnemonic."""
        program = assemble("\n".join(lines))
        for instr in program:
            assert instr.opcode.mnemonic in str(instr)


class TestBranchSemantics:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=150, deadline=None)
    def test_predicates_partition(self, a, b):
        """For any pair: eq/ne partition, lt/ge partition (both
        signednesses), and signed comparison matches Python ints."""
        assert eval_branch(Opcode.BEQ, a, b) != eval_branch(Opcode.BNE, a, b)
        assert eval_branch(Opcode.BLT, a, b) != eval_branch(Opcode.BGE, a, b)
        assert eval_branch(Opcode.BLTU, a, b) != \
            eval_branch(Opcode.BGEU, a, b)
        assert eval_branch(Opcode.BLT, a, b) == \
            (to_signed64(a) < to_signed64(b))
        assert eval_branch(Opcode.BLTU, a, b) == (a < b)


class TestAluSemantics:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=150, deadline=None)
    def test_results_stay_in_64_bits(self, a, b):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                   Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
                   Opcode.DIV, Opcode.REM):
            result = eval_int_alu(op, a, b, None)
            assert 0 <= result < 2**64

    @given(st.integers(-(2**63), 2**63 - 1), st.integers(-(2**63), 2**63 - 1))
    @settings(max_examples=100, deadline=None)
    def test_add_sub_match_wrapped_python(self, a, b):
        ua, ub = to_unsigned64(a), to_unsigned64(b)
        assert eval_int_alu(Opcode.ADD, ua, ub, None) == to_unsigned64(a + b)
        assert eval_int_alu(Opcode.SUB, ua, ub, None) == to_unsigned64(a - b)

    @given(st.integers(-(2**31), 2**31), st.integers(1, 2**31))
    @settings(max_examples=100, deadline=None)
    def test_div_rem_identity(self, a, b):
        """quotient * divisor + remainder == dividend (truncated division)."""
        ua, ub = to_unsigned64(a), to_unsigned64(b)
        q = to_signed64(eval_int_alu(Opcode.DIV, ua, ub, None))
        r = to_signed64(eval_int_alu(Opcode.REM, ua, ub, None))
        assert q * b + r == a
        assert abs(r) < b

"""MemoryImage layout tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import MemoryImage, WORD_BYTES


class TestAllocation:
    def test_alignment_default_is_line(self):
        image = MemoryImage()
        a = image.alloc("a", 10)
        b = image.alloc("b", 10)
        assert a % 64 == 0
        assert b % 64 == 0
        assert b >= a + 10

    def test_custom_alignment(self):
        image = MemoryImage()
        addr = image.alloc("x", 8, align=8)
        assert addr % 8 == 0

    def test_duplicate_symbol_rejected(self):
        image = MemoryImage()
        image.alloc("x", 8)
        with pytest.raises(ValueError, match="already"):
            image.alloc("x", 8)

    def test_bad_sizes_and_alignment(self):
        image = MemoryImage()
        with pytest.raises(ValueError):
            image.alloc("x", 0)
        with pytest.raises(ValueError):
            image.alloc("y", 8, align=3)

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            MemoryImage(base=0x1001)

    def test_size_of(self):
        image = MemoryImage()
        image.alloc("x", 24)
        assert image.size_of("x") == 24

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        image = MemoryImage()
        spans = []
        for i, words in enumerate(sizes):
            addr = image.alloc_array(f"s{i}", words)
            spans.append((addr, addr + words * WORD_BYTES))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b


class TestContents:
    def test_fill_and_element_access(self):
        image = MemoryImage()
        addr = image.alloc_array("arr", 4, fill=9)
        image.set_element("arr", 2, 42)
        words = image.initial_words()
        assert words[addr] == 9
        assert words[addr + 16] == 42

    def test_write_words(self):
        image = MemoryImage()
        addr = image.alloc_array("arr", 3)
        image.write_words(addr, [1, 2, 3])
        assert image.initial_words()[addr + 8] == 2

    def test_misaligned_write_rejected(self):
        image = MemoryImage()
        with pytest.raises(ValueError):
            image.write_word(0x100001, 1)

    def test_initial_words_is_a_copy(self):
        image = MemoryImage()
        addr = image.alloc_array("arr", 1, fill=5)
        snapshot = image.initial_words()
        image.write_word(addr, 6)
        assert snapshot[addr] == 5


class TestStackAndResolve:
    def test_stack_grows_down_from_top(self):
        image = MemoryImage()
        sp = image.alloc_stack(16)
        base = image.address_of("stack")
        assert sp == base + 16 * WORD_BYTES

    def test_resolve_expressions(self):
        image = MemoryImage()
        addr = image.alloc_array("buf", 4)
        assert image.resolve("@buf") == addr
        assert image.resolve("@buf+8") == addr + 8
        assert image.resolve("@buf-8") == addr - 8

    def test_resolve_errors(self):
        image = MemoryImage()
        with pytest.raises(ValueError):
            image.resolve("buf")
        with pytest.raises(KeyError):
            image.resolve("@nope")

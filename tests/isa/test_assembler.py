"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import (AssemblyError, MemoryImage, Opcode, assemble, int_reg,
                       REG_SP)


class TestBasicParsing:
    def test_empty_source(self):
        program = assemble("")
        assert len(program) == 0

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("""
        # a comment

            nop   # trailing comment
        """)
        assert len(program) == 1
        assert program.instructions[0].opcode is Opcode.NOP

    def test_li_immediate_forms(self):
        program = assemble("""
            li r1, 42
            li r2, 0x10
            li r3, -7
        """)
        assert [i.imm for i in program] == [42, 16, -7]

    def test_three_reg_op(self):
        program = assemble("add r3, r1, r2")
        instr = program.instructions[0]
        assert instr.opcode is Opcode.ADD
        assert instr.dest == int_reg(3)
        assert instr.srcs == (int_reg(1), int_reg(2))

    def test_load_offset_defaults_to_zero(self):
        program = assemble("load r1, r2")
        assert program.instructions[0].imm == 0

    def test_store_has_no_dest(self):
        program = assemble("store r1, r2, 8")
        instr = program.instructions[0]
        assert instr.dest is None
        assert instr.srcs == (int_reg(1), int_reg(2))
        assert instr.imm == 8

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2")


class TestLabels:
    def test_forward_and_backward_targets(self):
        program = assemble("""
        top:
            beq r1, r0, done
            jmp top
        done:
            halt
        """)
        beq, jmp, halt = program.instructions
        assert beq.target == program.address_of("done") == 8
        assert jmp.target == program.address_of("top") == 0
        assert halt.opcode is Opcode.HALT

    def test_label_on_same_line_as_instruction(self):
        program = assemble("start: nop")
        assert program.address_of("start") == 0
        assert len(program) == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a:\na:\nnop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError, match="unknown label"):
            assemble("jmp nowhere")


class TestSymbols:
    def test_symbol_resolution(self):
        image = MemoryImage()
        addr = image.alloc_array("array1", 4)
        program = assemble("li r1, @array1", memory_image=image)
        assert program.instructions[0].imm == addr

    def test_symbol_with_offset(self):
        image = MemoryImage()
        addr = image.alloc_array("buf", 4)
        program = assemble("li r1, @buf+16", memory_image=image)
        assert program.instructions[0].imm == addr + 16

    def test_unknown_symbol(self):
        with pytest.raises(AssemblyError, match="unknown symbol"):
            assemble("li r1, @missing", symbols={})

    def test_symbols_and_image_are_exclusive(self):
        with pytest.raises(ValueError):
            assemble("nop", symbols={}, memory_image=MemoryImage())


class TestDirectives:
    def test_repeat_expands(self):
        program = assemble(".repeat 5, nop\nhalt")
        assert len(program) == 6
        assert all(i.opcode is Opcode.NOP for i in program.instructions[:5])

    def test_repeat_zero(self):
        program = assemble(".repeat 0, nop\nhalt")
        assert len(program) == 1

    def test_repeat_preserves_label_addresses(self):
        program = assemble("""
            .repeat 3, nop
        after:
            halt
        """)
        assert program.address_of("after") == 12

    def test_bad_repeat_count(self):
        with pytest.raises(AssemblyError):
            assemble(".repeat x, nop")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".align 8")


class TestCallRet:
    def test_call_and_ret_use_stack_pointer(self):
        program = assemble("call f\nf: ret")
        call, ret = program.instructions
        assert call.dest == REG_SP
        assert call.srcs == (REG_SP,)
        assert call.target == 4
        assert ret.dest == REG_SP
        assert ret.srcs == (REG_SP,)


class TestScopeMetadata:
    def test_forward_branch_scope_is_fallthrough_body(self):
        program = assemble("""
            bge r1, r2, end
            nop
            nop
        end:
            halt
        """)
        assert program.scope_end(0) == program.address_of("end")

    def test_backward_branch_has_no_scope(self):
        program = assemble("""
        top:
            nop
            bne r1, r0, top
            halt
        """)
        assert program.scope_end(4) is None

    def test_non_branch_has_no_scope(self):
        program = assemble("nop")
        assert program.scope_end(0) is None

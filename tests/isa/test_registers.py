"""Unit tests for the register-file layout."""

import pytest

from repro.isa import registers as R


class TestLayout:
    def test_flat_space_is_contiguous(self):
        assert R.INT_BASE == 0
        assert R.FP_BASE == R.NUM_INT_REGS
        assert R.VEC_BASE == R.NUM_INT_REGS + R.NUM_FP_REGS
        assert R.NUM_ARCH_REGS == 56

    def test_int_reg_range(self):
        assert R.int_reg(0) == 0
        assert R.int_reg(31) == 31
        with pytest.raises(ValueError):
            R.int_reg(32)
        with pytest.raises(ValueError):
            R.int_reg(-1)

    def test_fp_and_vec_offsets(self):
        assert R.fp_reg(0) == R.FP_BASE
        assert R.vec_reg(7) == R.NUM_ARCH_REGS - 1
        with pytest.raises(ValueError):
            R.fp_reg(16)
        with pytest.raises(ValueError):
            R.vec_reg(8)


class TestClassification:
    def test_reg_class_by_range(self):
        assert R.reg_class(R.int_reg(5)) == R.INT_CLASS
        assert R.reg_class(R.fp_reg(5)) == R.FP_CLASS
        assert R.reg_class(R.vec_reg(5)) == R.VEC_CLASS

    def test_reg_class_out_of_range(self):
        with pytest.raises(ValueError):
            R.reg_class(R.NUM_ARCH_REGS)

    def test_zero_values_match_class(self):
        assert R.zero_value(R.int_reg(1)) == 0
        assert R.zero_value(R.fp_reg(1)) == 0.0
        assert R.zero_value(R.vec_reg(1)) == (0, 0)


class TestNames:
    def test_round_trip_every_register(self):
        for reg in range(R.NUM_ARCH_REGS):
            assert R.parse_reg(R.reg_name(reg)) == reg

    def test_aliases(self):
        assert R.parse_reg("sp") == R.REG_SP
        assert R.parse_reg("lr") == R.REG_LINK

    def test_case_insensitive(self):
        assert R.parse_reg("R5") == R.int_reg(5)
        assert R.parse_reg("F3") == R.fp_reg(3)

    @pytest.mark.parametrize("bad", ["", "q1", "r", "r99", "rx", "f16", "x8"])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ValueError):
            R.parse_reg(bad)

    def test_register_file_reset(self):
        regs = R.make_register_file()
        assert len(regs) == R.NUM_ARCH_REGS
        assert regs[R.int_reg(3)] == 0
        assert regs[R.vec_reg(0)] == (0, 0)

"""Unit tests for the functional reference interpreter."""

import pytest

from repro.isa import (MemoryImage, assemble, int_reg, fp_reg, vec_reg,
                       run_program, to_unsigned64)
from repro.isa.interpreter import InterpreterError


def run_source(source, image=None, **kwargs):
    program = assemble(source, memory_image=image)
    return run_program(program, memory_image=image, **kwargs)


class TestArithmetic:
    def test_li_add(self):
        result = run_source("""
            li r1, 5
            li r2, 7
            add r3, r1, r2
            halt
        """)
        assert result.reg(int_reg(3)) == 12

    def test_sub_wraps_unsigned(self):
        result = run_source("""
            li r1, 0
            li r2, 1
            sub r3, r1, r2
            halt
        """)
        assert result.reg(int_reg(3)) == to_unsigned64(-1)

    def test_signed_comparison(self):
        result = run_source("""
            li r1, -5
            li r2, 3
            slt r3, r1, r2
            sltu r4, r1, r2
            halt
        """)
        assert result.reg(int_reg(3)) == 1   # -5 < 3 signed
        assert result.reg(int_reg(4)) == 0   # huge unsigned vs 3

    def test_mul_div_rem(self):
        result = run_source("""
            li r1, 17
            li r2, 5
            mul r3, r1, r2
            div r4, r1, r2
            rem r5, r1, r2
            halt
        """)
        assert result.reg(int_reg(3)) == 85
        assert result.reg(int_reg(4)) == 3
        assert result.reg(int_reg(5)) == 2

    def test_div_by_zero_saturates(self):
        result = run_source("""
            li r1, 9
            div r2, r1, r0
            rem r3, r1, r0
            halt
        """)
        assert result.reg(int_reg(2)) == to_unsigned64(-1)
        assert result.reg(int_reg(3)) == 9

    def test_shifts(self):
        result = run_source("""
            li r1, 1
            slli r2, r1, 10
            srli r3, r2, 3
            halt
        """)
        assert result.reg(int_reg(2)) == 1024
        assert result.reg(int_reg(3)) == 128

    def test_zero_register_is_immutable(self):
        result = run_source("""
            li r0, 99
            mov r1, r0
            halt
        """)
        assert result.reg(int_reg(0)) == 0
        assert result.reg(int_reg(1)) == 0


class TestFloatingPoint:
    def test_fp_pipeline(self):
        result = run_source("""
            li r1, 3
            fcvt f1, r1
            fcvt f2, r1
            fadd f3, f1, f2
            fmul f4, f3, f1
            fdiv f5, f4, f2
            halt
        """)
        assert result.reg(fp_reg(3)) == 6.0
        assert result.reg(fp_reg(4)) == 18.0
        assert result.reg(fp_reg(5)) == 6.0

    def test_fp_memory(self):
        image = MemoryImage()
        image.alloc_array("buf", 2)
        result = run_source("""
            li r1, 7
            fcvt f1, r1
            li r2, @buf
            fstore f1, r2, 0
            fload f2, r2, 0
            halt
        """, image)
        assert result.reg(fp_reg(2)) == 7.0


class TestVector:
    def test_splat_add_extract(self):
        result = run_source("""
            li r1, 4
            vsplat x1, r1
            vadd x2, x1, x1
            vextract r2, x2, 0
            vextract r3, x2, 1
            halt
        """)
        assert result.reg(int_reg(2)) == 8
        assert result.reg(int_reg(3)) == 8

    def test_vector_memory_round_trip(self):
        image = MemoryImage()
        addr = image.alloc_array("v", 4)
        image.write_words(addr, [10, 20])
        result = run_source("""
            li r1, @v
            vload x1, r1, 0
            vstore x1, r1, 16
            load r2, r1, 16
            load r3, r1, 24
            halt
        """, image)
        assert result.reg(int_reg(2)) == 10
        assert result.reg(int_reg(3)) == 20


class TestMemory:
    def test_load_uses_image_values(self):
        image = MemoryImage()
        addr = image.alloc_array("data", 2)
        image.write_word(addr + 8, 123)
        result = run_source("""
            li r1, @data
            load r2, r1, 8
            halt
        """, image)
        assert result.reg(int_reg(2)) == 123

    def test_uninitialized_memory_reads_zero(self):
        result = run_source("""
            li r1, 0x200000
            load r2, r1, 0
            halt
        """)
        assert result.reg(int_reg(2)) == 0

    def test_store_then_load(self):
        result = run_source("""
            li r1, 0x200000
            li r2, 55
            store r2, r1, 0
            load r3, r1, 0
            halt
        """)
        assert result.reg(int_reg(3)) == 55

    def test_misaligned_access_raises(self):
        with pytest.raises(InterpreterError, match="misaligned"):
            run_source("""
                li r1, 3
                load r2, r1, 0
                halt
            """)


class TestControlFlow:
    def test_loop_sums(self):
        result = run_source("""
            li r1, 0      # sum
            li r2, 5      # counter
        loop:
            add r1, r1, r2
            addi r2, r2, -1
            bne r2, r0, loop
            halt
        """)
        assert result.reg(int_reg(1)) == 15

    def test_branch_not_taken_falls_through(self):
        result = run_source("""
            li r1, 1
            beq r1, r0, skip
            li r2, 42
        skip:
            halt
        """)
        assert result.reg(int_reg(2)) == 42

    def test_jr_indirect(self):
        result = run_source("""
            li r1, 12
            jr r1
            li r2, 1     # skipped
            li r3, 2
            halt
        """)
        assert result.reg(int_reg(2)) == 0
        assert result.reg(int_reg(3)) == 2

    def test_call_ret_through_stack(self):
        image = MemoryImage()
        sp = image.alloc_stack(16)
        result = run_source("""
            call fn
            li r2, 2
            halt
        fn:
            li r1, 1
            ret
        """, image, initial_sp=sp)
        assert result.reg(int_reg(1)) == 1
        assert result.reg(int_reg(2)) == 2
        assert result.reg(int_reg(29)) == sp  # balanced stack

    def test_ret_follows_overwritten_stack_slot(self):
        # The architectural behaviour the SpectreRSB "direct overwrite"
        # variant relies on: ret jumps wherever the stack says.
        image = MemoryImage()
        sp = image.alloc_stack(16)
        result = run_source("""
            call fn
            li r2, 2       # the "expected" return point, must be skipped
            halt
        fn:
            li r1, @gadget_pc   # placeholder, patched below
            store r1, sp, 0
            ret
        gadget:
            li r3, 3
            halt
        """, _image_with_gadget(image), initial_sp=sp)
        assert result.reg(int_reg(2)) == 0
        assert result.reg(int_reg(3)) == 3

    def test_runs_off_end_without_halt(self):
        result = run_source("nop")
        assert not result.halted or result.pc == 4


def _image_with_gadget(image):
    # The gadget label address is 6 instructions in: 6 * 4 = 24.
    image.symbols["gadget_pc"] = 24
    return image


class TestLimits:
    def test_runaway_raises(self):
        with pytest.raises(InterpreterError, match="did not halt"):
            run_source("""
            spin:
                jmp spin
            """, max_steps=100)

    def test_rdtsc_monotone(self):
        result = run_source("""
            rdtsc r1
            rdtsc r2
            sltu r3, r1, r2
            halt
        """)
        assert result.reg(int_reg(3)) == 1

"""Program container tests."""

import pytest

from repro.isa import INSTR_BYTES, Opcode, assemble


@pytest.fixture
def program():
    return assemble("""
    start:
        li r1, 1
        bge r1, r0, end
        nop
    end:
        halt
    """)


class TestFetch:
    def test_fetch_by_address(self, program):
        assert program.fetch(0).opcode is Opcode.LI
        assert program.fetch(12).opcode is Opcode.HALT

    def test_fetch_past_end_returns_none(self, program):
        assert program.fetch(program.end_pc) is None
        assert program.fetch(0x1000) is None

    def test_misaligned_fetch_rejected(self, program):
        with pytest.raises(ValueError):
            program.fetch(2)

    def test_end_pc(self, program):
        assert program.end_pc == 4 * INSTR_BYTES

    def test_iteration_and_len(self, program):
        assert len(program) == 4
        assert len(list(program)) == 4


class TestMetadata:
    def test_address_of(self, program):
        assert program.address_of("start") == 0
        assert program.address_of("end") == 12

    def test_scope_end_of_forward_branch(self, program):
        assert program.scope_end(4) == 12

    def test_scope_end_none_for_non_branch(self, program):
        assert program.scope_end(0) is None
        assert program.scope_end(program.end_pc) is None

    def test_disassemble_includes_labels_and_targets(self, program):
        text = program.disassemble()
        assert "start:" in text
        assert "end:" in text
        assert "bge" in text
        assert "0x000c" in text

    def test_instruction_str_renders_operands(self, program):
        text = str(program.fetch(0))
        assert text.startswith("li")
        assert "r1" in text

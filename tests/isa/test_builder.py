"""ProgramBuilder tests: the fluent API shares the assembler path."""

import pytest

from repro.isa import MemoryImage, Opcode, ProgramBuilder, run_program


class TestEmission:
    def test_mnemonic_methods(self):
        b = ProgramBuilder()
        b.li("r1", 5)
        b.addi("r2", "r1", 3)
        b.halt()
        program = b.build()
        assert [i.opcode for i in program] == \
            [Opcode.LI, Opcode.ADDI, Opcode.HALT]

    def test_keyword_shadowing_wrappers(self):
        b = ProgramBuilder()
        b.li("r1", 6)
        b.li("r2", 3)
        b.and_("r3", "r1", "r2")
        b.or_("r4", "r1", "r2")
        b.halt()
        result = run_program(b.build())
        assert result.reg(3) == 2
        assert result.reg(4) == 7

    def test_unknown_mnemonic_fails_fast(self):
        b = ProgramBuilder()
        with pytest.raises(AttributeError):
            b.frobnicate("r1")
        with pytest.raises(AttributeError):
            b.emit("frobnicate", "r1")

    def test_raw_and_comment_lines(self):
        b = ProgramBuilder()
        b.comment("a note")
        b.raw("    nop")
        b.halt()
        assert len(b.build()) == 2

    def test_source_is_reassemblable(self):
        from repro.isa import assemble
        b = ProgramBuilder()
        b.li("r1", 9)
        b.halt()
        text = b.source()
        assert len(assemble(text)) == 2


class TestLabels:
    def test_mark_and_branch(self):
        b = ProgramBuilder()
        b.li("r1", 3)
        b.mark("loop")
        b.addi("r1", "r1", -1)
        b.bne("r1", "r0", "loop")
        b.halt()
        result = run_program(b.build())
        assert result.reg(1) == 0

    def test_label_context_manager(self):
        b = ProgramBuilder()
        b.li("r1", 2)
        with b.label("top"):
            b.addi("r1", "r1", -1)
            b.bne("r1", "r0", "top")
        b.halt()
        result = run_program(b.build())
        assert result.reg(1) == 0

    def test_fresh_labels_are_unique(self):
        b = ProgramBuilder()
        names = {b.fresh_label() for _ in range(100)}
        assert len(names) == 100


class TestHelpers:
    def test_nops_sled(self):
        b = ProgramBuilder()
        b.nops(25)
        b.halt()
        assert len(b.build()) == 26

    def test_repeat_arbitrary_instruction(self):
        b = ProgramBuilder()
        b.li("r1", 0)
        b.repeat(5, "addi r1, r1, 2")
        b.halt()
        result = run_program(b.build())
        assert result.reg(1) == 10

    def test_symbols_resolve_through_image(self):
        image = MemoryImage()
        addr = image.alloc_array("buf", 2)
        image.write_word(addr, 77)
        b = ProgramBuilder(image)
        b.li("r1", "@buf")
        b.load("r2", "r1", 0)
        b.halt()
        result = run_program(b.build(), memory_image=image)
        assert result.reg(2) == 77

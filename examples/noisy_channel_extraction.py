#!/usr/bin/env python
"""Multi-byte secret extraction through a noisy covert channel.

The Fig. 9 PoC reads one planted byte from a perfect, noise-free probe.
This demo runs the realistic version (see docs/CHANNELS.md): the
transmit gadget loops over a secret buffer, a flush+reload receiver
measures the simulated cache hierarchy under injected noise (timing
jitter, co-runner evictions, prefetch pollution), and multi-trial
statistical decoding — per-index latency medians plus majority voting —
reassembles the secret.  A single noisy trial usually fails; a handful
of trials recovers every byte, and the effective channel bandwidth is
reported from simulated cycle counts.

Everything is deterministic under the fixed seed, including the noise.
"""

from repro.channel import extract_secret

SECRET = "SPECRUN!"
NOISE = {"jitter": 24, "evict_rate": 0.04, "pollute_rate": 0.04}
SEED = 7


def show(result):
    print(f"  {result.describe()}")
    marks = "".join("+" if b.correct else "x" for b in result.bytes_)
    print(f"  per-byte outcome : {marks}   "
          f"(confidence {', '.join(f'{b.confidence:.2f}' for b in result.bytes_)})")
    print()


def main():
    print("noisy covert-channel extraction "
          f"(secret {SECRET!r}, noise {NOISE})")
    print()

    print("one trial per byte — the single-shot Fig. 9 criterion "
          "mostly drowns:")
    show(extract_secret(SECRET, receiver="flush-reload", trials=1,
                        noise=NOISE, seed=SEED))

    print("five trials per byte — medians + majority vote recover it:")
    five = extract_secret(SECRET, receiver="flush-reload", trials=5,
                          noise=NOISE, seed=SEED)
    show(five)

    print("evict+reload (no clflush available) under the same noise:")
    show(extract_secret(SECRET, receiver="evict-reload", trials=5,
                        noise=NOISE, seed=SEED))

    print(f"recovered secret: {five.recovered_text()!r} "
          f"(success rate {five.success_rate:.0%}, "
          f"{five.bandwidth_bits_per_s():,.0f} bits/s at 2 GHz)")


if __name__ == "__main__":
    main()

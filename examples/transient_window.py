#!/usr/bin/env python
"""Transient-window measurement (paper Fig. 10 / §5.3).

How many instructions can execute transiently behind a flushed load?

* N1: normal machine            — bounded by the ROB (256 entries);
* N2: runahead machine          — pseudo-retirement breaks the bound;
* N3: runahead + an attacker thread re-flushing the stalling line just
  before its fill returns — the runahead interval is prolonged.

Also demonstrates Fig. 11: a gadget padded beyond the ROB leaks only on
the runahead machine.
"""

from repro.analysis import format_table
from repro.attack import measure_fig10, rob_limit_comparison


def main():
    print("=== Fig. 10: transient window size ===")
    n1, n2, n3 = measure_fig10()
    rows = [
        ("N1 (normal, flush once)", n1.window, n1.pseudo_retired, n1.cycles),
        ("N2 (runahead, flush once)", n2.window, n2.pseudo_retired,
         n2.cycles),
        ("N3 (runahead, flush repeatedly)", n3.window, n3.pseudo_retired,
         n3.cycles),
    ]
    print(format_table(["scenario", "window", "pseudo-retired", "cycles"],
                       rows))
    print(f"paper: N1=255, N2=480, N3=840 (ROB = 256)")
    print(f"ours reproduces the ordering: {n1.window} < {n2.window} < "
          f"{n3.window}")

    print()
    print("=== Fig. 11: leaking beyond the ROB ===")
    padding = 300
    print(f"gadget padded with {padding} nops (> 256-entry ROB) ...")
    baseline, runahead = rob_limit_comparison(nop_padding=padding)
    print(f"  no-runahead machine: "
          f"{'LEAKED' if baseline.leaked else 'no leak'}")
    print(f"  runahead machine   : "
          f"{'LEAKED, secret=' + str(runahead.recovered_secret) if runahead.leaked else 'no leak'}")
    print()
    print("runahead-based speculation reaches gadgets classic Spectre")
    print("cannot — 'introducing the risk of data leakage to initially")
    print("secure code' (paper §5.3).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Transient-window measurement (paper Fig. 10 / §5.3 and Fig. 11).

How many instructions can execute transiently behind a flushed load?

* N1: normal machine            — bounded by the ROB (256 entries);
* N2: runahead machine          — pseudo-retirement breaks the bound;
* N3: runahead + an attacker thread re-flushing the stalling line just
  before its fill returns — the runahead interval is prolonged.

Both figures run as harness presets (``fig10``, ``fig11``), so repeated
invocations hit the result cache and each scenario can execute in its
own worker process.
"""

from repro.harness import ProcessPoolExecutor, presets


def main():
    executor = ProcessPoolExecutor()
    fig10 = presets.get("fig10")
    result = executor.execute(fig10.build())
    print("=== Fig. 10: transient window size ===")
    print(fig10.render(result))
    n_windows = [rec["result"]["window"] for rec in result.select("window")]
    print(f"ours reproduces the ordering: "
          f"{' < '.join(str(w) for w in n_windows)}")

    print()
    print("=== Fig. 11: leaking beyond the ROB ===")
    fig11 = presets.get("fig11")
    result11 = executor.execute(fig11.build())
    baseline = result11.one("attack", runahead="none")["result"]
    runahead = result11.one("attack", runahead="original")["result"]
    print(f"  no-runahead machine: "
          f"{'LEAKED' if baseline['leaked'] else 'no leak'}")
    print(f"  runahead machine   : "
          f"{'LEAKED, secret=' + str(runahead['recovered']) if runahead['leaked'] else 'no leak'}")
    print()
    print("runahead-based speculation reaches gadgets classic Spectre")
    print("cannot — 'introducing the risk of data leakage to initially")
    print("secure code' (paper §5.3).")


if __name__ == "__main__":
    main()

"""Cross-core SPECRUN: leak a secret through the shared L3.

The victim runs the transmit gadget on core 0; the attacker never shares
a core with it — a Prime+Probe receiver primes the shared, inclusive L3
from core 1 and times its own eviction sets after the victim's transient
fill disturbed one of them.  A second scenario adds a *real* co-running
instruction stream (the lbm-shaped streaming kernel) next to the victim,
first as an SMT thread sharing the victim's private caches, then on a
dedicated third core, and compares the measured channel against PR 3's
overlay noise model.

Run with::

    PYTHONPATH=src python examples/cross_core_attack.py
"""

from repro.channel.extract import extract_secret

SECRET = "SPECRUN"
NOISE = {"jitter": 12, "evict_rate": 0.01, "pollute_rate": 0.01}


def show(label, result):
    print(f"{label:34s} {result.recovered_text()!r:12s} "
          f"success {result.success_rate:.2f}  "
          f"{result.bits_per_kcycle:.3f} bits/kcycle "
          f"({result.bandwidth_bits_per_s():,.0f} bits/s @2GHz)")


def main():
    print(f"planted secret: {SECRET!r}\n")

    print("== receiver on another core (shared inclusive L3) ==")
    for receiver in ("flush-reload", "evict-reload", "prime-probe"):
        result = extract_secret(SECRET, receiver=receiver, trials=5,
                                noise=NOISE, seed=7, cores=2)
        show(f"cross-core {receiver}", result)

    print("\n== real co-runner streams vs the overlay noise model ==")
    overlay = extract_secret(SECRET, receiver="flush-reload", trials=5,
                             noise={"jitter": 12, "evict_rate": 0.04},
                             seed=7, cores=2)
    show("overlay co-runner (NoiseModel)", overlay)
    smt = extract_secret(SECRET, receiver="flush-reload", trials=5,
                         seed=7, cores=2, corunner="lbm", smt=True)
    show("SMT co-runner (real lbm stream)", smt)
    dedicated = extract_secret(SECRET, receiver="flush-reload", trials=5,
                               seed=7, cores=3, corunner="lbm")
    show("cross-core co-runner (real lbm)", dedicated)

    print("\nthe overlay draws i.i.d. noise per trial; the real streams "
          "contend on the\nshared memory channel and L3 sets — "
          "structured interference the receiver's\ncalibration and "
          "voting must handle, at real bandwidth cost.")


if __name__ == "__main__":
    main()

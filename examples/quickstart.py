#!/usr/bin/env python
"""Quickstart: assemble a program, run it on the Table-1 machine.

Demonstrates the three-layer API most users need:

* ``MemoryImage`` lays out data symbols,
* ``assemble`` turns assembly text (with ``@symbol`` references) into a
  ``Program``,
* ``Core`` executes it cycle by cycle — here once on the plain
  out-of-order machine and once with runahead execution, showing the
  speedup on a memory-bound loop.
"""

from repro import Core, CoreConfig, MemoryImage, assemble
from repro.runahead import NoRunahead, OriginalRunahead

SOURCE = """
    # Sum an array that is cold in the cache: every 8th element starts
    # a new 64-byte line and misses all the way to memory.
    li   r1, @numbers        # cursor
    li   r2, 512             # element count
    li   r3, 0               # accumulator
loop:
    load r4, r1, 0
    add  r3, r3, r4
    addi r1, r1, 8
    addi r2, r2, -1
    bne  r2, r0, loop
    halt
"""


def run(runahead):
    image = MemoryImage()
    numbers = image.alloc_array("numbers", 512)
    image.write_words(numbers, list(range(512)))
    program = assemble(SOURCE, memory_image=image)
    core = Core(program, memory_image=image, config=CoreConfig.paper(),
                runahead=runahead, warm_icache=True)
    core.run()
    assert core.halted
    assert core.arch_regs[3] == sum(range(512))   # r3
    return core


def main():
    baseline = run(NoRunahead())
    runahead = run(OriginalRunahead())

    print("memory-bound array sum, Table-1 machine")
    print(f"  no-runahead : {baseline.stats.cycles:6d} cycles  "
          f"IPC {baseline.stats.ipc:.3f}")
    print(f"  runahead    : {runahead.stats.cycles:6d} cycles  "
          f"IPC {runahead.stats.ipc:.3f}")
    speedup = baseline.stats.cycles / runahead.stats.cycles
    print(f"  speedup     : {speedup:.2f}x  "
          f"({runahead.stats.runahead_episodes} runahead episodes, "
          f"{runahead.stats.runahead_prefetches} prefetches)")
    print()
    print("runahead run summary:")
    print(runahead.stats.summary())


if __name__ == "__main__":
    main()

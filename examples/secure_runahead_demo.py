#!/usr/bin/env python
"""The §6 defenses against the SPECRUN PoC.

Runs the identical attack program against three machines:

* original runahead            — leaks the secret;
* secure runahead (SL cache + taint tracking, Algorithm 1) — blocked;
* branch-skip restriction      — blocked.

Then shows the performance cost of each defense on a memory-bound
workload (full sweep: ``benchmarks/bench_sec6_defense.py``).
"""

from repro.attack import run_specrun
from repro.defense import BranchRestrictedRunahead, SecureRunahead
from repro.runahead import NoRunahead, OriginalRunahead
from repro.workloads import build_gems_like, ipc_comparison


def main():
    print("=== SPECRUN vs the Section-6 defenses ===")
    machines = [
        ("original runahead", OriginalRunahead),
        ("secure runahead   ", SecureRunahead),
        ("branch-skip       ", BranchRestrictedRunahead),
    ]
    for label, controller_cls in machines:
        result = run_specrun("pht", runahead=controller_cls())
        verdict = "LEAKED" if result.leaked else "blocked"
        detail = f" -> recovered {result.recovered_secret}" \
            if result.leaked else ""
        print(f"  {label}: {verdict}{detail}")

    print()
    print("=== performance retained on a memory-bound kernel (gems) ===")
    workload = build_gems_like()
    for label, controller_cls in machines:
        _, stats, speedup = ipc_comparison(workload, NoRunahead(),
                                           controller_cls())
        print(f"  {label}: IPC {stats.ipc:.3f}  "
              f"speedup over no-runahead {speedup:.3f}x")
    print()
    print("secure runahead keeps most of the prefetch benefit (quarantined")
    print("fills promote to L1 on first use); branch-skip loses the slices")
    print("behind data-dependent branches.")


if __name__ == "__main__":
    main()

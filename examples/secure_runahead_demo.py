#!/usr/bin/env python
"""The §6 defenses against the SPECRUN PoC.

Runs the identical attack program against three machines:

* original runahead            — leaks the secret;
* secure runahead (SL cache + taint tracking, Algorithm 1) — blocked;
* branch-skip restriction      — blocked.

Then shows the performance cost of each defense on a memory-bound
workload.  Both halves are one harness sweep (the quick tier of the
``sec6`` preset; full grid: ``benchmarks/bench_sec6_defense.py``).
"""

from repro.harness import ProcessPoolExecutor, presets
from repro.harness.presets import DEFENSE_MACHINES

LABELS = {"original": "original runahead", "secure": "secure runahead   ",
          "branch-skip": "branch-skip       "}


def main():
    preset = presets.get("sec6")
    result = ProcessPoolExecutor().execute(preset.build(quick=True))

    print("=== SPECRUN vs the Section-6 defenses ===")
    for machine in DEFENSE_MACHINES:
        res = result.one("attack", variant="pht", runahead=machine)["result"]
        verdict = "LEAKED" if res["leaked"] else "blocked"
        detail = f" -> recovered {res['recovered']}" if res["leaked"] else ""
        print(f"  {LABELS[machine]}: {verdict}{detail}")

    print()
    print("=== performance retained on a memory-bound kernel (gems) ===")
    for machine in DEFENSE_MACHINES:
        res = result.one("ipc", workload="gems",
                         contender=machine)["result"]
        print(f"  {LABELS[machine]}: IPC {res['ipc_contender']:.3f}  "
              f"speedup over no-runahead {res['speedup']:.3f}x")
    print()
    print("secure runahead keeps most of the prefetch benefit (quarantined")
    print("fills promote to L1 on first use); branch-skip loses the slices")
    print("behind data-dependent branches.")
    print()
    print(result.describe())


if __name__ == "__main__":
    main()

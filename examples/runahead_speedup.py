#!/usr/bin/env python
"""Runahead performance on the Fig. 7 benchmark suite.

Drives the six SPEC2006-shaped kernels through the experiment harness
(``repro.harness``): the ``fig7`` preset declares the sweep, the
executor fans it out across worker processes, and the on-disk result
cache makes a second run of this script (or of
``benchmarks/bench_fig7_ipc.py`` — same trials) near-instant.

Try::

    python examples/runahead_speedup.py            # full grid
    python examples/runahead_speedup.py --quick    # CI smoke grid
"""

import sys

from repro.harness import ProcessPoolExecutor, presets


def main():
    quick = "--quick" in sys.argv[1:]
    preset = presets.get("fig7")
    sweep = preset.build(quick=quick)
    print(f"Fig. 7: normalized IPC, no-runahead vs runahead "
          f"({len(sweep)} trials)")
    result = ProcessPoolExecutor().execute(
        sweep, progress=lambda line: print(f"  {line}"))
    print()
    print(preset.render(result))
    print()
    print(result.describe())
    if result.cache_hits:
        print("(cached — delete the cache dir or pass force=True to "
              "recompute)")


if __name__ == "__main__":
    main()

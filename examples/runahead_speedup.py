#!/usr/bin/env python
"""Runahead performance on the Fig. 7 benchmark suite.

Runs the six SPEC2006-shaped kernels on the Table-1 machine with and
without runahead execution and prints the normalized-IPC comparison the
paper reports in Fig. 7 (full sweep: ``benchmarks/bench_fig7_ipc.py``).
"""

from repro.analysis import format_bars, format_table
from repro.workloads import geometric_mean_speedup, run_fig7


def main():
    print("Fig. 7: normalized IPC, no-runahead vs runahead (Table-1 core)")
    print("running 6 kernels x 2 machines ...")
    results = run_fig7()

    rows = [(row["name"],
             f"{row['ipc_base']:.3f}",
             f"{row['ipc_runahead']:.3f}",
             f"{row['speedup']:.3f}",
             row["episodes"],
             row["prefetches"]) for row in results]
    print()
    print(format_table(
        ["benchmark", "IPC base", "IPC runahead", "speedup", "episodes",
         "prefetches"], rows))
    print()
    print(format_bars([row["name"] for row in results],
                      [row["speedup"] for row in results],
                      unit="x"))
    print()
    mean = geometric_mean_speedup(results)
    print(f"geometric-mean speedup: {mean:.3f}x "
          f"(paper reports ~11% average improvement)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""SPECRUN across Spectre variants (paper Fig. 4 / §4.4) and runahead
variants (§4.3).

Every cell of the matrix runs the full attack pipeline; the paper's
claim is that the mixed optimization (runahead + any branch predictor
structure) is exploitable for each combination.
"""

from repro.analysis import format_table
from repro.attack import run_specrun
from repro.runahead import OriginalRunahead, PreciseRunahead, VectorRunahead

VARIANTS = ["pht", "btb", "rsb-overwrite", "rsb-flush"]
CONTROLLERS = [OriginalRunahead, PreciseRunahead, VectorRunahead]


def main():
    print("attack variant x runahead variant matrix "
          "(cell = recovered secret or 'no leak')")
    rows = []
    for variant in VARIANTS:
        row = [variant]
        for controller_cls in CONTROLLERS:
            result = run_specrun(variant, runahead=controller_cls())
            row.append(str(result.recovered_secret)
                       if result.leaked else "no leak")
        rows.append(row)
    print()
    print(format_table(
        ["variant"] + [cls.name for cls in CONTROLLERS], rows))
    print()
    print("planted secret is 86 everywhere: every combination leaks.")


if __name__ == "__main__":
    main()

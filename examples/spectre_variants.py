#!/usr/bin/env python
"""SPECRUN across Spectre variants (paper Fig. 4 / §4.4) and runahead
variants (§4.3).

Every cell of the matrix runs the full attack pipeline; the paper's
claim is that the mixed optimization (runahead + any branch predictor
structure) is exploitable for each combination.

This example builds the 4x3 matrix as a *custom* harness sweep — a
cartesian :meth:`Sweep.grid` over attack variant and runahead
controller — rather than using a canned preset, showing how to declare
your own experiment and still get sharded execution and result caching.
"""

from repro.harness import ProcessPoolExecutor, Sweep, attack_matrix

VARIANTS = ["pht", "btb", "rsb-overwrite", "rsb-flush"]
CONTROLLERS = ["original", "precise", "vector"]


def main():
    sweep = Sweep.grid("spectre-matrix", "attack",
                       variant=VARIANTS, runahead=CONTROLLERS)
    print(f"attack variant x runahead variant matrix "
          f"({len(sweep)} attack runs; cell = outcome)")
    result = ProcessPoolExecutor().execute(
        sweep, progress=lambda line: print(f"  {line}"))
    print()
    print(attack_matrix(result.results("attack"),
                        rows=VARIANTS, cols=CONTROLLERS))
    print()
    leaks = sum(res["leaked"] for res in result.results("attack"))
    print(f"planted secret is 86 everywhere: {leaks}/{len(sweep)} "
          "combinations leak.")
    print(result.describe())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The SPECRUN proof of concept (paper Figs. 8 and 9).

Plants a secret byte out of bounds of ``array1``, trains the victim's
bounds check, flushes the trigger word D, calls the victim with a
malicious index — the victim's ``array1_size = f(D)`` load misses to
memory, runahead begins, the poisoned (and unresolvable) branch steers
transient execution into the gadget, and the transmit load deposits the
secret in the cache.  A flush+reload probe then recovers it.
"""

from repro.analysis import format_latency_plot
from repro.attack import run_specrun

SECRET = 86   # the Fig. 9 dip index


def main():
    print("SPECRUN PoC: leaking a secret via runahead execution")
    print(f"planted secret value: {SECRET}")
    print()

    result = run_specrun("pht", secret_value=SECRET)

    print(f"runahead episodes    : {result.stats.runahead_episodes}")
    print(f"unresolved branches  : {result.stats.inv_branches}")
    print(f"runahead prefetches  : {result.stats.runahead_prefetches}")
    print(f"probe threshold      : {result.report.threshold} cycles")
    print()
    print(format_latency_plot(
        result.latencies,
        title="probe access time per index (Fig. 9 shape):"))
    print()
    print(result.describe())
    if result.succeeded:
        dip = result.latencies[SECRET]
        rest = sorted(result.latencies)[len(result.latencies) // 2]
        print(f"secret index latency {dip} cycles vs median {rest} cycles")


if __name__ == "__main__":
    main()

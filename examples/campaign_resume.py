#!/usr/bin/env python
"""Kill a running campaign, resume it, and verify byte-identity.

A campaign (``repro.campaign``) is a sweep run as a journaled job in a
self-contained directory: a work-stealing worker pool computes trials,
every completion is written to the content-addressed cache before it
is journaled, and ``resume`` re-runs only what is missing.  This
walkthrough demonstrates the headline guarantee end to end:

1. build a sweep of transient-window trials,
2. start it as a campaign in a child process and SIGKILL the child
   at roughly 50% completion,
3. resume the campaign in this process,
4. compare the result byte-for-byte against a plain uninterrupted
   ``run_sweep`` of the same sweep.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import Campaign, campaign_status, render_status
from repro.harness import run_sweep
from repro.harness.spec import Sweep, Trial

TRIALS = 60

# The child just opens the directory and runs it; everything it needs
# to know (trial specs, cache, retry policy) lives in the manifest.
CHILD = (
    "import sys\n"
    "from repro.campaign import Campaign\n"
    "Campaign.open(sys.argv[1]).run(workers=2)\n"
)


def build_sweep() -> Sweep:
    return Sweep(
        name="window_scan",
        description="transient window vs sled length",
        trials=[Trial(kind="window",
                      params={"sled": 512 + 6 * i, "config_base": "small"})
                for i in range(TRIALS)],
    )


def kill_at_halfway(proc: subprocess.Popen, directory: Path) -> bool:
    """Poll the journal; SIGKILL the child's process group at ~50%."""
    journal = directory / "journal.jsonl"
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return False        # finished before we could kill it
        try:
            done = journal.read_text().count('"status": "done"')
        except OSError:
            done = 0
        if done >= TRIALS // 2:
            # Kill the whole group: SIGKILL gives the pool no chance
            # to clean up its workers, which is exactly the point.
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
            return True
        time.sleep(0.002)
    raise RuntimeError("campaign never reached 50%")


def main():
    sweep = build_sweep()
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "campaign"
        Campaign.create(directory, [sweep], workers=2)

        print(f"launching campaign of {TRIALS} trials, "
              "SIGKILL at ~50% ...")
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.Popen(
            [sys.executable, "-c", CHILD, str(directory)],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        killed = kill_at_halfway(proc, directory)

        status = campaign_status(directory)
        print()
        print(render_status(status))
        print()
        if not killed:
            print("(campaign finished before the kill landed — "
                  "resume below is then a pure cache replay)")

        print("resuming ...")
        result = Campaign.open(directory).run(workers=2)[0]

        reference = run_sweep(sweep, workers=1, cache=None)
        assert result.to_json() == reference.to_json()
        cached = sum(result.cached)
        print(f"resume recomputed {TRIALS - cached} trials, "
              f"reused {cached} from the cache")
        print("resumed result is byte-identical to an "
              "uninterrupted run_sweep")


if __name__ == "__main__":
    main()

"""Fig. 4 / §4.4: SPECRUN across Spectre attack variants.

Paper: once runahead opens the speculative window, PHT, BTB and RSB
mispredictions can all be nested inside it — SpectreBTB via an aliased/
poisoned target buffer entry, SpectreRSB via a direct stack overwrite
(Fig. 4b) and via flushing the victim's stack (Fig. 4c).
"""

import pytest

from repro.analysis import format_table
from repro.attack import run_specrun

from _common import emit, once

VARIANTS = ["pht", "btb", "rsb-overwrite", "rsb-flush"]


def run_matrix():
    results = {}
    for variant in VARIANTS:
        results[variant] = run_specrun(variant)
    return results


def test_fig4_spectre_variants(benchmark):
    results = once(benchmark, run_matrix)

    for variant, result in results.items():
        assert result.succeeded, f"{variant}: {result.describe()}"

    rows = []
    for variant in VARIANTS:
        result = results[variant]
        rows.append((variant,
                     result.recovered_secret,
                     result.stats.runahead_episodes,
                     result.stats.inv_branches,
                     result.stats.runahead_prefetches))
    table = format_table(
        ["variant", "recovered secret", "episodes", "unresolved branches",
         "prefetches"], rows)
    emit("fig4_spectre_variants",
         f"{table}\n\nplanted secret: 86 — every Fig. 4 variant leaks "
         "under runahead.\n"
         "rsb-flush models ret2spec-style RSB/stack desync; the stalling\n"
         "load is the victim's own return-address read (Fig. 4c).")

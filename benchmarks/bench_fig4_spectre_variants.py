"""Fig. 4 / §4.4: SPECRUN across Spectre attack variants.

Paper: once runahead opens the speculative window, PHT, BTB and RSB
mispredictions can all be nested inside it — SpectreBTB via an aliased/
poisoned target buffer entry, SpectreRSB via a direct stack overwrite
(Fig. 4b) and via flushing the victim's stack (Fig. 4c).

The sweep grid lives in the ``fig4`` harness preset; the quick tier
covers pht + rsb-flush.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

PRESET = presets.get("fig4")


def test_fig4_spectre_variants(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    attacks = result.results("attack")
    assert attacks, "sweep produced no attack records"
    for res in attacks:
        assert res["succeeded"], \
            f"{res['variant']}: recovered {res['recovered']}"

    emit("fig4_spectre_variants", PRESET.render(result) + footer(result))

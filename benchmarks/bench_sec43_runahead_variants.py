"""§4.3: applicability on runahead execution variants.

Paper: precise runahead (HPCA'20) still resolves front-end branches from
the predictor, and vector runahead (ISCA'21) takes branch directions
from the first vector lane — both inherit the unresolved-INV-branch
window, so SPECRUN applies to all of them.

The controller axis is the ``sec43`` harness preset; the quick tier
covers original + precise.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

PRESET = presets.get("sec43")


def test_sec43_runahead_variants(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    attacks = result.results("attack")
    assert attacks, "sweep produced no attack records"
    by_machine = {res["runahead"]: res for res in attacks}
    for name, res in by_machine.items():
        assert res["succeeded"], f"{name}: recovered {res['recovered']}"

    assert by_machine["precise"]["stats"]["filtered_instructions"] > 0, \
        "precise runahead must actually filter non-slice work"
    if not sweep_opts["quick"]:
        assert set(by_machine) == {"original", "precise", "vector"}

    emit("sec43_runahead_variants", PRESET.render(result) + footer(result))

"""§4.3: applicability on runahead execution variants.

Paper: precise runahead (HPCA'20) still resolves front-end branches from
the predictor, and vector runahead (ISCA'21) takes branch directions
from the first vector lane — both inherit the unresolved-INV-branch
window, so SPECRUN applies to all of them.
"""

from repro.analysis import format_table
from repro.attack import run_specrun
from repro.runahead import OriginalRunahead, PreciseRunahead, VectorRunahead

from _common import emit, once

CONTROLLERS = [OriginalRunahead, PreciseRunahead, VectorRunahead]


def run_matrix():
    results = {}
    for cls in CONTROLLERS:
        controller = cls()
        results[controller.name] = (controller,
                                    run_specrun("pht", runahead=controller))
    return results


def test_sec43_runahead_variants(benchmark):
    results = once(benchmark, run_matrix)

    for name, (controller, result) in results.items():
        assert result.succeeded, f"{name}: {result.describe()}"

    precise_ctrl, precise_result = results["precise"]
    assert precise_result.stats.filtered_instructions > 0, \
        "precise runahead must actually filter non-slice work"

    rows = []
    for name, (controller, result) in results.items():
        extra = ""
        if name == "precise":
            extra = f"filtered={result.stats.filtered_instructions}"
        elif name == "vector":
            extra = f"vector-prefetches={result.stats.vector_prefetches}"
        rows.append((name, result.recovered_secret,
                     result.stats.runahead_episodes,
                     result.stats.runahead_prefetches, extra))
    table = format_table(
        ["runahead variant", "recovered secret", "episodes", "prefetches",
         "variant-specific"], rows)
    emit("sec43_runahead_variants",
         f"{table}\n\nall three runahead designs leak the planted secret "
         "(paper §4.3).\n"
         "note: the attack probe walks the array in a permuted order — \n"
         "the standard real-PoC defence against stride prefetching, which\n"
         "vector runahead would otherwise trigger on the attacker's own\n"
         "probe loads.")

"""Fig. 12: the Btag / IS tagging table.

Runs the figure's machine-code example through the taint tracker (the
library-side worked example in :mod:`repro.defense.taint_demo`, wired up
as the ``fig12`` harness preset) and checks every Btag and IS cell
against the values printed in the paper's figure.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

PRESET = presets.get("fig12")


def test_fig12_taint_table(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    res = result.one("taint")["result"]
    assert res["rows"], "taint trial produced no rows"
    assert not res["mismatches"], \
        f"Fig. 12 cells differ: {res['mismatches']}"

    emit("fig12_taint", PRESET.render(result) + footer(result))

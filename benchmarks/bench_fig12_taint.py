"""Fig. 12: the Btag / IS tagging table.

Reproduces the figure's machine-code example through the taint tracker
and checks every Btag and IS cell against the values printed in the
paper's figure.
"""

from repro.analysis import format_table
from repro.defense import TaintTracker
from repro.isa import Instruction, Opcode, int_reg

from _common import emit, once

# Figure register assignment: rA..rH = r1..r8, rX = r9, rY = r10,
# figure's r0..r14 = our r11..r25.
_REG_BASE = 11


def _load(dest, addr_reg):
    return Instruction(Opcode.LOAD, dest=int_reg(dest),
                       srcs=(int_reg(addr_reg),), imm=0)


def _alu(op, dest, a, b):
    return Instruction(op, dest=int_reg(dest),
                       srcs=(int_reg(a), int_reg(b)))


def out(n):
    return n + _REG_BASE


#: (label, instruction, expected Btag, expected IS) per Fig. 12 row.
def fig12_rows():
    rA, rB, rC, rD, rE, rF, rG, rH, rX, rY = range(1, 11)
    return [
        ("load r0 (rA)", _load(out(0), rA), "B1,0", "0"),
        ("r1 = rB + rX", _alu(Opcode.ADD, out(1), rB, rX), None, None),
        ("load r2 (r1)", _load(out(2), out(1)), "B1,1", "B1"),
        ("r3 = rC * r2", _alu(Opcode.MUL, out(3), rC, out(2)), None, None),
        ("r4 = rD - rY", _alu(Opcode.SUB, out(4), rD, rY), None, None),
        ("load r5 (r4)", _load(out(5), out(4)), "B2,1", "B2"),
        ("r6 = r5 + r2", _alu(Opcode.ADD, out(6), out(5), out(2)),
         None, None),
        ("load r7 (r6)", _load(out(7), out(6)), "B2,2", "B1, B2"),
        ("r8 = r3 - rE", _alu(Opcode.SUB, out(8), out(3), rE), None, None),
        ("load r9 (r8)", _load(out(9), out(8)), "B1,2", "B1"),
        ("r10 = rF + r9", _alu(Opcode.ADD, out(10), rF, out(9)),
         None, None),
        ("load r11 (r10)", _load(out(11), out(10)), "0", "B1"),
        ("r12 = rG * r7", _alu(Opcode.MUL, out(12), rG, out(7)),
         None, None),
        ("load r13 (r12)", _load(out(13), out(12)), "0", "B1, B2"),
        ("load r14 (rH)", _load(out(14), rH), "0", "0"),
    ]


def run_fig12():
    rX, rY = 9, 10
    tracker = TaintTracker(untrusted_regs=(int_reg(rX), int_reg(rY)))
    rows = fig12_rows()
    # Scope layout mirrors the figure: B1 wraps rows 0-9 (ends before
    # "r10 = ..."), B2 wraps rows 4-7.
    b1 = tracker.open_scope(0, end_pc=10 * 4, predicted_taken=False)
    names = {b1.scope_id: "B1"}
    table_rows = []
    for index, (label, instr, want_btag, want_is) in enumerate(rows):
        if index == 4:
            b2 = tracker.open_scope(index * 4, end_pc=8 * 4,
                                    predicted_taken=False)
            names[b2.scope_id] = "B2"
        info = tracker.on_instruction(index * 4, instr)
        got_btag = info.render_btag(names)
        got_is = info.render_is(names)
        table_rows.append((label, want_btag, got_btag, want_is, got_is))
    return table_rows


def test_fig12_taint_table(benchmark):
    table_rows = once(benchmark, run_fig12)

    mismatches = []
    display = []
    for label, want_btag, got_btag, want_is, got_is in table_rows:
        is_load = want_btag is not None
        if is_load:
            if got_btag != want_btag or got_is != want_is:
                mismatches.append(label)
            display.append((label, want_btag, got_btag, want_is, got_is,
                            "ok" if label not in mismatches else "MISMATCH"))
        else:
            display.append((label, "-", "-", "-", "-", ""))
    assert not mismatches, f"Fig. 12 cells differ: {mismatches}"

    table = format_table(
        ["instr", "Btag (paper)", "Btag (ours)", "IS (paper)", "IS (ours)",
         ""], display)
    emit("fig12_taint",
         f"{table}\n\nevery Btag and IS cell matches Fig. 12.")

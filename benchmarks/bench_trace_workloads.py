"""Trace-driven workloads: Fig. 7 replays and co-runner trace pressure.

Two sweeps from the :mod:`repro.trace` engine:

* ``fig7_traces`` — normalized IPC (no-runahead vs runahead) over the
  synthetic trace suite.  Replays are pure access streams, so gains run
  higher than the compute-bearing Fig. 7 kernels; the shape assertion
  is the structural one: every memory-bound trace family must gain.
* ``trace_pressure_sweep`` — extraction success under trace-replay
  co-runners.  The pinned finding: the mcf-style chase trace (arc
  arrays aliasing the probe entries' set range, densified by the
  co-runner's runahead prefetching) defeats prime+probe's benign-run
  calibration outright, the streaming trace calibrates away, and
  reload channels only lose bandwidth.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

FIG7_TRACES = presets.get("fig7_traces")
PRESSURE = presets.get("trace_pressure_sweep")


def test_fig7_traces(benchmark, sweep_opts):
    result = run_preset(FIG7_TRACES, benchmark, sweep_opts)

    rows = {res["workload"]: res for res in result.results("ipc")}
    for name, res in rows.items():
        assert res["ipc_base"] > 0, name
    # Memory-bound replays gain from runahead; the chase gains *through
    # its arc streams* even though the chase itself is unprefetchable.
    assert rows["trace-mcf"]["speedup"] > 1.3
    assert rows["trace-stream"]["speedup"] > 1.2
    assert rows["trace-mcf"]["prefetches"] > 0

    emit("fig7_traces", FIG7_TRACES.render(result) + footer(result))


def test_trace_pressure_sweep(benchmark, sweep_opts):
    result = run_preset(PRESSURE, benchmark, sweep_opts)

    table = {}
    for record in result.select("extract"):
        res = record["result"]
        key = (res["receiver"], record["params"].get("corunner"))
        table[key] = res

    # The structured-interference finding: the mcf-style trace degrades
    # prime+probe below the streaming-trace row (here: defeats the
    # benign-run calibration outright), while flush+reload survives any
    # trace pressure (a co-runner cannot fake a reload hit).
    assert table[("prime-probe", "trace-mcf")]["success_rate"] < \
        table[("prime-probe", "trace-stream")]["success_rate"]
    assert table[("prime-probe", "trace-mcf")]["success_rate"] == 0.0
    assert table[("prime-probe", "trace-stream")]["success_rate"] == 1.0
    assert table[("prime-probe", None)]["success_rate"] == 1.0
    for corunner in (None, "trace-stream", "trace-mcf"):
        assert table[("flush-reload", corunner)]["success_rate"] == 1.0
    # Real trace pressure costs bandwidth (contention), never silence.
    assert table[("flush-reload", "trace-mcf")]["bandwidth_bits_per_s"] < \
        table[("flush-reload", None)]["bandwidth_bits_per_s"]

    emit("trace_pressure_sweep", PRESSURE.render(result) + footer(result))

"""Ablations on the design parameters DESIGN.md calls out.

Not a paper figure — these sweeps validate that the reproduced effects
scale the way the paper's mechanism arguments predict:

* N1 tracks the ROB size exactly (the Fig. 5a bound);
* N2 grows with memory latency (longer stall = longer runahead);
* the PoC leaks under every direction predictor (§4.4's generality);
* the SL cache blocks the PoC at any capacity that can hold the
  transmit line, and its capacity bounds quarantine storage.

All four axes are one ``ablations`` harness sweep; the quick tier keeps
the endpoints of each axis.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

PRESET = presets.get("ablations")


def test_ablations(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    # N1 == ROB - 1 at every ROB size.
    rob_records = result.select("window", runahead="none")
    assert rob_records
    for record in rob_records:
        rob = record["params"]["config"]["rob_size"]
        assert record["result"]["window"] == rob - 1, rob

    # Window grows monotonically with memory latency.
    lat_records = sorted(
        result.select("window", runahead="original"),
        key=lambda r: r["params"]["config"]["mem_latency"])
    windows = [r["result"]["window"] for r in lat_records]
    assert windows == sorted(windows) and windows[0] < windows[-1]

    # The PoC leaks under every predictor we require (gshare may need
    # path-exact training; report rather than require).
    for record in result.select("attack", runahead="original"):
        predictor = (record["params"].get("config") or {}).get("predictor")
        if predictor and predictor != "gshare":
            assert record["result"]["recovered"] == 86, predictor

    # The SL cache blocks the leak at every capacity.
    sl_records = result.select("attack", runahead="secure")
    assert sl_records
    for record in sl_records:
        capacity = record["params"]["runahead_kwargs"]["sl_capacity"]
        assert not record["result"]["leaked"], \
            f"SL capacity {capacity} leaked"

    emit("ablations", PRESET.render(result) + footer(result))

"""Ablations on the design parameters DESIGN.md calls out.

Not a paper figure — these sweeps validate that the reproduced effects
scale the way the paper's mechanism arguments predict:

* N1 tracks the ROB size exactly (the Fig. 5a bound);
* N2 grows with memory latency (longer stall = longer runahead);
* the PoC leaks under every direction predictor (§4.4's generality);
* the SL cache blocks the PoC at any capacity that can hold the
  transmit line, and its capacity bounds quarantine storage.
"""

import pytest

from repro.analysis import format_table
from repro.attack import measure_window, run_specrun
from repro.defense import SecureRunahead
from repro.memory import HierarchyConfig
from repro.pipeline import CoreConfig
from repro.runahead import NoRunahead, OriginalRunahead

from _common import emit, once


def sweep_rob():
    rows = []
    for rob in (64, 128, 256, 512):
        config = CoreConfig.paper(rob_size=rob)
        m = measure_window(NoRunahead(), sled=1024, config=config)
        rows.append((rob, m.window))
    return rows


def sweep_latency():
    rows = []
    for latency in (100, 200, 400):
        h = HierarchyConfig.paper()
        config = CoreConfig.paper(hierarchy=HierarchyConfig(
            l1i=h.l1i, l1d=h.l1d, l2=h.l2, l3=h.l3,
            mem_latency=latency, mem_occupancy=h.mem_occupancy))
        m = measure_window(OriginalRunahead(), sled=8192, config=config)
        rows.append((latency, m.window))
    return rows


def sweep_predictors():
    rows = []
    for predictor in ("bimodal", "gshare", "twolevel"):
        config = CoreConfig.paper(predictor=predictor)
        result = run_specrun("pht", config=config)
        rows.append((predictor,
                     result.recovered_secret if result.leaked else None))
    return rows


def sweep_sl_capacity():
    rows = []
    for capacity in (4, 16, 64):
        result = run_specrun("pht",
                             runahead=SecureRunahead(sl_capacity=capacity))
        rows.append((capacity, result.leaked))
    return rows


def test_ablations(benchmark):
    rob_rows, lat_rows, pred_rows, sl_rows = once(
        benchmark, lambda: (sweep_rob(), sweep_latency(),
                            sweep_predictors(), sweep_sl_capacity()))

    for rob, window in rob_rows:
        assert window == rob - 1
    windows = [w for _, w in lat_rows]
    assert windows == sorted(windows) and windows[0] < windows[-1]
    for predictor, recovered in pred_rows:
        if predictor == "gshare":
            # Global-history predictors may need path-exact training;
            # report rather than require.
            continue
        assert recovered == 86, predictor
    for capacity, leaked in sl_rows:
        assert not leaked, f"SL capacity {capacity} leaked"

    text = []
    text.append("ROB sweep (no runahead) — transient window == ROB-1:")
    text.append(format_table(["ROB", "window"], rob_rows))
    text.append("")
    text.append("memory-latency sweep (runahead) — window grows with "
                "stall length:")
    text.append(format_table(["mem latency", "window"], lat_rows))
    text.append("")
    text.append("direction-predictor sweep — recovered secret per "
                "predictor:")
    text.append(format_table(
        ["predictor", "recovered"],
        [(p, r if r is not None else "no leak") for p, r in pred_rows]))
    text.append("")
    text.append("SL-cache capacity sweep (secure runahead) — leak blocked "
                "at every size:")
    text.append(format_table(
        ["capacity (lines)", "leaked"],
        [(c, "yes" if l else "no") for c, l in sl_rows]))
    emit("ablations", "\n".join(text))

"""Fig. 9: the probe-array access times after running SPECRUN.

Paper: a significant latency drop at index 86 identifies the secret.
The reproduction must recover the planted secret with a single
unambiguous dip; absolute cycle counts differ (our memory path is
242 cycles end to end), the shape must match.

The trial lives in the ``fig9`` harness preset.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

PRESET = presets.get("fig9")
SECRET = 86


def test_fig9_probe_timing(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    res = result.one("attack", variant="pht")["result"]
    assert res["succeeded"]
    assert res["recovered"] == SECRET
    dip = res["latencies"][SECRET]
    others = [lat for i, lat in enumerate(res["latencies"]) if i != SECRET]
    assert dip < 50
    assert min(others) > 150

    emit("fig9_poc", PRESET.render(result) + footer(result))

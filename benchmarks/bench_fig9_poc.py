"""Fig. 9: the probe-array access times after running SPECRUN.

Paper: a significant latency drop at index 86 identifies the secret.
The reproduction must recover the planted secret with a single
unambiguous dip; absolute cycle counts differ (our memory path is
242 cycles end to end), the shape must match.
"""

from repro.analysis import format_latency_plot
from repro.attack import run_specrun

from _common import emit, once

SECRET = 86


def test_fig9_probe_timing(benchmark):
    result = once(benchmark, lambda: run_specrun("pht", secret_value=SECRET))

    assert result.succeeded
    assert result.recovered_secret == SECRET
    dip = result.latencies[SECRET]
    others = [lat for i, lat in enumerate(result.latencies) if i != SECRET]
    assert dip < 50
    assert min(others) > 150

    plot = format_latency_plot(
        result.latencies, title="probe access time (cycles) per index:")
    emit("fig9_poc",
         f"{plot}\n\n"
         f"planted secret       : {SECRET}\n"
         f"recovered            : {result.recovered_secret}\n"
         f"dip latency          : {dip} cycles\n"
         f"median probe latency : "
         f"{sorted(result.latencies)[len(result.latencies) // 2]} cycles\n"
         f"runahead episodes    : {result.stats.runahead_episodes}\n"
         f"unresolved branches  : {result.stats.inv_branches}\n"
         f"(paper: drop at index 86, ~100 vs ~350 cycles)")

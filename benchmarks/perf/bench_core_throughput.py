"""Core-throughput benchmark: simulated cycles per wall-clock second.

Thin wrapper around :mod:`repro.harness.perfbench` (the measurement
lives in the package so ``python -m repro bench-perf`` can emit
``BENCH_core.json`` without importing the benchmark tree).  Run
standalone for a quick local reading, or through pytest for the suite's
report artifact::

    PYTHONPATH=src python benchmarks/perf/bench_core_throughput.py
    pytest benchmarks/perf -q
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from repro.harness import perfbench

from _common import emit


def test_core_throughput():
    """Every scenario halts and yields a positive throughput reading."""
    payload = perfbench.run_benchmark(repeats=1)
    assert set(payload["scenarios"]) == {
        label for label, _, _ in perfbench.SCENARIOS}
    for label, record in payload["scenarios"].items():
        assert record["simulated_cycles"] > 0, label
        assert record["cycles_per_second"] > 0, label
    # Runahead must simulate *fewer or equal* cycles than no-runahead on
    # memory-bound kernels — a cheap behavioural sanity check that the
    # throughput rig is running the machines it claims to run.
    scenarios = payload["scenarios"]
    for kernel in ("mcf", "gems"):
        assert scenarios[f"runahead/{kernel}"]["simulated_cycles"] <= \
            scenarios[f"normal/{kernel}"]["simulated_cycles"], kernel
    emit("core_throughput", perfbench.render(payload))


def main() -> int:
    payload = perfbench.run_benchmark()
    print(perfbench.render(payload))
    print(json.dumps(payload, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark-suite options: the smoke tier and the worker count.

``pytest benchmarks --quick`` runs every bench on its reduced CI grid
(same code paths, fewer axis points); ``--workers N`` sets the harness
worker-process count (default: $REPRO_WORKERS or min(4, cpus)).
"""

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("repro harness")
    group.addoption("--quick", action="store_true", default=False,
                    help="run the reduced smoke-tier sweep grids")
    group.addoption("--workers", type=int, default=None,
                    help="harness worker processes per sweep")


@pytest.fixture
def sweep_opts(request):
    return {"quick": request.config.getoption("--quick"),
            "workers": request.config.getoption("--workers")}

"""Covert-channel scenarios: noisy receivers and per-receiver bandwidth.

Two sweeps from the :mod:`repro.channel` subsystem:

* ``fig9_noise_sweep`` — the Fig. 9 extraction through a *noisy*
  flush+reload receiver.  One trial rarely decodes; median aggregation
  plus majority vote across trials must recover the full secret, and
  the success-rate-vs-trials curve must be monotone (the trials points
  share a seed, so more trials strictly extend the same noise stream).
* ``channel_bandwidth`` — the three receiver strategies (flush+reload,
  evict+reload, prime+probe) extracting the same secret under mild
  noise, reporting effective bandwidth in bits/kcycle and bits/s.

Both are fully deterministic at any worker count: noise streams derive
from the per-trial seed, never from global randomness.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

NOISE_PRESET = presets.get("fig9_noise_sweep")
BW_PRESET = presets.get("channel_bandwidth")


def test_fig9_noise_sweep(benchmark, sweep_opts):
    result = run_preset(NOISE_PRESET, benchmark, sweep_opts)

    records = result.select("extract")
    rates = [r["result"]["success_rate"] for r in records]
    trials = [r["result"]["trials"] for r in records]
    assert trials == sorted(trials)
    # Monotone under the committed constants: the shared seed makes a
    # larger trial count extend the smaller one's noise stream, and the
    # preset's noise/trials grid was tuned so the vote never regresses.
    assert all(a <= b for a, b in zip(rates, rates[1:])), rates
    # The largest trial count fully recovers the secret.
    final = records[-1]["result"]
    assert rates[-1] == 1.0
    assert final["recovered"] == final["secret"]
    # The bandwidth metric is reported and positive once bytes decode.
    assert final["bandwidth_bits_per_s"] > 0
    assert final["bits_per_kcycle"] > 0

    emit("fig9_noise_sweep", NOISE_PRESET.render(result) + footer(result))


def test_channel_bandwidth(benchmark, sweep_opts):
    result = run_preset(BW_PRESET, benchmark, sweep_opts)

    by_receiver = {r["result"]["receiver"]: r["result"]
                   for r in result.select("extract")}
    assert set(by_receiver) == set(presets.CHANNEL_RECEIVERS)
    # The paper's own channel is clean under mild noise at 3 trials.
    assert by_receiver["flush-reload"]["success_rate"] == 1.0
    # Every strategy extracts most of the secret and reports bandwidth.
    for name, res in by_receiver.items():
        assert res["success_rate"] >= 0.5, (name, res["recovered"])
        assert res["bandwidth_bits_per_s"] > 0, name
    # Prime+probe pays its calibration run.
    assert by_receiver["prime-probe"]["calibration_cycles"] > 0

    emit("channel_bandwidth", BW_PRESET.render(result) + footer(result))

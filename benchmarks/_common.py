"""Shared benchmark plumbing.

Every bench regenerates one table or figure of the paper and both prints
it (visible with ``pytest -s``) and writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name, text):
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"===== {name} ====="
    block = f"{banner}\n{text}\n"
    print()
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(block)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

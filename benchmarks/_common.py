"""Shared benchmark plumbing.

Every bench regenerates one table or figure of the paper by driving its
sweep through :mod:`repro.harness` (declarative trials, sharded
execution, on-disk result cache), asserts the paper's shape on the
result, and both prints the rendered report (visible with ``pytest -s``)
and writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
reference stable artifacts.
"""

from __future__ import annotations

import pathlib

from repro.harness import ProcessPoolExecutor, SerialExecutor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name, text):
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"===== {name} ====="
    block = f"{banner}\n{text}\n"
    print()
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(block)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def run_preset(preset, benchmark, sweep_opts):
    """Build a preset's sweep for the selected tier and execute it.

    The sweep runs under pytest-benchmark timing with the result cache
    enabled ("auto"), so a second identical run reports cache hits and
    finishes near-instantly.
    """
    sweep = preset.build(quick=sweep_opts["quick"])
    workers = sweep_opts["workers"]
    executor = SerialExecutor() if workers == 1 \
        else ProcessPoolExecutor(workers=workers)
    result = once(benchmark, lambda: executor.execute(sweep))
    return result


def footer(result):
    """Cache/shard summary appended to every emitted report."""
    return f"\n\n[{result.describe()}]"

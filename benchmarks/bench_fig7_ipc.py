"""Fig. 7: normalized IPC, no-runahead vs runahead, six benchmarks.

Paper: runahead brings an average ~11 % IPC improvement on the six
SPEC2006 benchmarks, with memory-bound ones gaining most.  Our kernels
are SPEC-shaped synthetics (see DESIGN.md), so the expected reproduction
is the *shape*: compute-bound ~1.05, memory-bound 1.15-1.25, positive
geometric mean near the paper's range.

The sweep grid lives in the ``fig7`` harness preset; the quick tier
runs zeusmp + mcf + gems.
"""

from repro.harness import geometric_mean_speedup, presets

from _common import emit, footer, run_preset

PRESET = presets.get("fig7")


def test_fig7_normalized_ipc(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    rows = result.results("ipc")
    by_name = {row["workload"]: row for row in rows}
    assert "zeusmp" in by_name and "mcf" in by_name

    # Shape assertions on whatever kernels the tier ran.
    assert 0.95 < by_name["zeusmp"]["speedup"] < 1.15   # compute bound
    for name in ("bwaves", "lbm", "mcf", "gems"):
        if name in by_name:
            assert by_name[name]["speedup"] > 1.05, name  # memory bound
    mean = geometric_mean_speedup(rows)
    if sweep_opts["quick"]:
        assert mean > 1.0
    else:
        assert 1.05 < mean < 1.30                         # paper: ~1.11

    emit("fig7_ipc", PRESET.render(result) + footer(result))

"""Fig. 7: normalized IPC, no-runahead vs runahead, six benchmarks.

Paper: runahead brings an average ~11 % IPC improvement on the six
SPEC2006 benchmarks, with memory-bound ones gaining most.  Our kernels
are SPEC-shaped synthetics (see DESIGN.md), so the expected reproduction
is the *shape*: compute-bound ~1.05, memory-bound 1.15-1.25, positive
geometric mean near the paper's range.
"""

from repro.analysis import format_bars, format_table
from repro.workloads import geometric_mean_speedup, run_fig7

from _common import emit, once


def test_fig7_normalized_ipc(benchmark):
    results = once(benchmark, run_fig7)

    # Shape assertions.
    by_name = {row["name"]: row for row in results}
    assert 0.95 < by_name["zeusmp"]["speedup"] < 1.15   # compute bound
    for name in ("bwaves", "lbm", "mcf", "gems"):
        assert by_name[name]["speedup"] > 1.05, name    # memory bound gain
    mean = geometric_mean_speedup(results)
    assert 1.05 < mean < 1.30                            # paper: ~1.11

    rows = [(row["name"], "1.000", f"{row['speedup']:.3f}",
             f"{row['ipc_base']:.3f}", f"{row['ipc_runahead']:.3f}",
             row["episodes"], row["prefetches"]) for row in results]
    table = format_table(
        ["benchmark", "no-runahead", "runahead", "IPC base", "IPC runahead",
         "episodes", "prefetches"], rows)
    bars = format_bars([row["name"] for row in results],
                       [row["speedup"] for row in results], unit="x")
    emit("fig7_ipc",
         f"{table}\n\nnormalized IPC (runahead / no-runahead):\n{bars}\n\n"
         f"geometric mean speedup: {mean:.3f}x (paper: ~1.11x average)")

"""Fig. 11: probe timing on a no-runahead vs a runahead machine when the
gadget sits beyond the reach of the ROB.

Paper: with nops inserted so the secret access lies outside the original
ROB window, the no-runahead machine shows no latency drop (no leak)
while the runahead machine still leaks (drop at index 127).
"""

from repro.analysis import format_latency_plot
from repro.attack import rob_limit_comparison

from _common import emit, once

SECRET = 127     # the paper's Fig. 11 dip index
PADDING = 300    # nops between the branch and the access (> 256 ROB)


def test_fig11_beyond_rob(benchmark):
    baseline, runahead = once(
        benchmark,
        lambda: rob_limit_comparison(nop_padding=PADDING,
                                     secret_value=SECRET))

    assert not baseline.leaked            # paper: no drop without runahead
    assert runahead.succeeded             # paper: drop at 127 with runahead
    assert runahead.recovered_secret == SECRET

    base_plot = format_latency_plot(
        baseline.latencies, height=8,
        title=f"no-runahead machine ({PADDING}-nop padded gadget):")
    ra_plot = format_latency_plot(
        runahead.latencies, height=8,
        title="runahead machine (same gadget):")
    emit("fig11_beyond_rob",
         f"{base_plot}\n\n{ra_plot}\n\n"
         f"no-runahead: {'leak' if baseline.leaked else 'NO leak'} | "
         f"runahead: leak at {runahead.recovered_secret} "
         f"(planted {SECRET})\n"
         "(paper: leakage only on the runahead machine, index 127)")

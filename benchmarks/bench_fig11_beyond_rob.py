"""Fig. 11: probe timing on a no-runahead vs a runahead machine when the
gadget sits beyond the reach of the ROB.

Paper: with nops inserted so the secret access lies outside the original
ROB window, the no-runahead machine shows no latency drop (no leak)
while the runahead machine still leaks (drop at index 127).

Both machines are one grid axis of the ``fig11`` harness preset.
"""

from repro.harness import presets
from repro.harness.presets import FIG11_SECRET

from _common import emit, footer, run_preset

PRESET = presets.get("fig11")


def test_fig11_beyond_rob(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    baseline = result.one("attack", runahead="none")["result"]
    runahead = result.one("attack", runahead="original")["result"]

    assert not baseline["leaked"]        # paper: no drop without runahead
    assert runahead["succeeded"]         # paper: drop at 127 with runahead
    assert runahead["recovered"] == FIG11_SECRET

    emit("fig11_beyond_rob", PRESET.render(result) + footer(result))

"""Table 1: the processor configuration.

Verifies that ``CoreConfig.paper()`` instantiates exactly the machine of
Table 1 and times a reference run on it (the PoC's victim warm path).
"""

from repro.analysis import format_table
from repro.isa.instructions import FuKind
from repro.pipeline import Core, CoreConfig
from repro import MemoryImage, assemble

from _common import emit, once


def build_reference_run():
    image = MemoryImage()
    image.alloc_array("data", 64)
    program = assemble("""
        li r1, @data
        li r2, 64
    loop:
        load r3, r1, 0
        addi r1, r1, 8
        addi r2, r2, -1
        bne r2, r0, loop
        halt
    """, memory_image=image)
    def run():
        core = Core(program, memory_image=image, config=CoreConfig.paper(),
                    warm_icache=True)
        core.run()
        return core
    return run


def test_table1_configuration(benchmark):
    config = CoreConfig.paper()
    h = config.hierarchy

    # Assert every Table-1 parameter.
    assert config.width == 4
    assert config.frontend_depth == 6
    assert config.predictor == "twolevel"
    assert config.functional_units[FuKind.INT_ALU] == (4, 1)
    assert config.functional_units[FuKind.INT_MUL] == (2, 2)
    assert config.functional_units[FuKind.INT_DIV] == (1, 5)
    assert config.functional_units[FuKind.FP_ADD] == (2, 5)
    assert config.functional_units[FuKind.FP_MUL] == (1, 10)
    assert config.functional_units[FuKind.FP_DIV] == (1, 15)
    assert (config.int_regs, config.fp_regs, config.vec_regs) == (80, 40, 40)
    assert config.rob_size == 256
    assert (config.iq_size, config.lq_size, config.sq_size) == (40, 40, 40)
    assert (h.l1i.size_bytes, h.l1i.assoc, h.l1i.latency) == (16384, 4, 2)
    assert (h.l1d.size_bytes, h.l1d.assoc, h.l1d.latency) == (16384, 4, 2)
    assert (h.l2.size_bytes, h.l2.assoc, h.l2.latency) == (131072, 8, 8)
    assert (h.l3.size_bytes, h.l3.assoc, h.l3.latency) == (4194304, 8, 32)
    assert h.mem_latency == 200

    core = once(benchmark, build_reference_run())
    assert core.halted

    rows = [
        ("Core", "out-of-order (cycle model)"),
        ("Processor width", f"{config.width}-wide fetch/decode/dispatch/"
                            "commit"),
        ("Pipeline depth", f"{config.frontend_depth} front-end stages"),
        ("Branch predictor", "two-level adaptive predictor"),
        ("Functional units",
         "4 int add (1cy), 2 int mult (2cy), 1 int div (5cy), "
         "2 fp add (5cy), 1 fp mult (10cy), 1 fp div (15cy)"),
        ("Register file", "80 int, 40 fp, 40 xmm"),
        ("ROB", f"{config.rob_size} entries"),
        ("Queues", f"i ({config.iq_size}), load ({config.lq_size}), "
                   f"store ({config.sq_size})"),
        ("L1 I-cache", "16KB, 4 way, 2 cycle"),
        ("L1 D-cache", "16KB, 4 way, 2 cycle"),
        ("L2 cache", "128KB, 8 way, 8 cycle"),
        ("L3 cache", "4MB, 8 way, 32 cycle"),
        ("Memory", f"request-based contention model, {h.mem_latency} cycle"),
    ]
    emit("table1_config",
         format_table(["Component", "Parameter"], rows) +
         f"\n\nreference run: {core.stats.cycles} cycles, "
         f"IPC {core.stats.ipc:.3f}")

"""Table 1: the processor configuration.

Verifies that ``CoreConfig.paper()`` instantiates exactly the machine of
Table 1 and times a reference run on it (the PoC's victim warm path),
driven through the ``table1`` harness preset.
"""

from repro.harness import presets
from repro.isa.instructions import FuKind
from repro.pipeline import CoreConfig

from _common import emit, footer, run_preset

PRESET = presets.get("table1")


def test_table1_configuration(benchmark, sweep_opts):
    config = CoreConfig.paper()
    h = config.hierarchy

    # Assert every Table-1 parameter.
    assert config.width == 4
    assert config.frontend_depth == 6
    assert config.predictor == "twolevel"
    assert config.functional_units[FuKind.INT_ALU] == (4, 1)
    assert config.functional_units[FuKind.INT_MUL] == (2, 2)
    assert config.functional_units[FuKind.INT_DIV] == (1, 5)
    assert config.functional_units[FuKind.FP_ADD] == (2, 5)
    assert config.functional_units[FuKind.FP_MUL] == (1, 10)
    assert config.functional_units[FuKind.FP_DIV] == (1, 15)
    assert (config.int_regs, config.fp_regs, config.vec_regs) == (80, 40, 40)
    assert config.rob_size == 256
    assert (config.iq_size, config.lq_size, config.sq_size) == (40, 40, 40)
    assert (h.l1i.size_bytes, h.l1i.assoc, h.l1i.latency) == (16384, 4, 2)
    assert (h.l1d.size_bytes, h.l1d.assoc, h.l1d.latency) == (16384, 4, 2)
    assert (h.l2.size_bytes, h.l2.assoc, h.l2.latency) == (131072, 8, 8)
    assert (h.l3.size_bytes, h.l3.assoc, h.l3.latency) == (4194304, 8, 32)
    assert h.mem_latency == 200

    result = run_preset(PRESET, benchmark, sweep_opts)
    ref = result.one("run", workload="reference")["result"]
    assert ref["halted"]
    assert ref["cycles"] > 0

    emit("table1_config", PRESET.render(result) + footer(result))

"""Fig. 10 / §5.3: the transient window in three scenarios.

Paper (ROB = 256): N1 = 255, N2 = 480, N3 = 840 — runahead logically
extends the ROB, repeated flushing extends it further.  Expected
reproduction: N1 = ROB - 1 exactly; N2 and N3 larger with the same
ordering (absolute values depend on runahead entry timing and memory
latency; the paper's ratios are N2/N1 = 1.9, N3/N2 = 1.75).

The three scenarios are the ``fig10`` harness preset (the quick tier
shortens the nop sled, which leaves all three windows intact).
"""

from repro.harness import presets
from repro.pipeline import CoreConfig

from _common import emit, footer, run_preset

PRESET = presets.get("fig10")


def test_fig10_window_sizes(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    n1 = result.one("window", runahead="none")["result"]
    n2 = result.one("window", runahead="original",
                    async_flushes=None)["result"]
    n3 = result.one("window", runahead="original",
                    async_flushes=1)["result"]

    rob = CoreConfig.paper().rob_size
    assert n1["window"] == rob - 1           # paper: 255
    assert n2["window"] > rob                # beyond the ROB
    assert n3["window"] > n2["window"]       # repeated flush goes further

    emit("fig10_window", PRESET.render(result) + footer(result))

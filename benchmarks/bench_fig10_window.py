"""Fig. 10 / §5.3: the transient window in three scenarios.

Paper (ROB = 256): N1 = 255, N2 = 480, N3 = 840 — runahead logically
extends the ROB, repeated flushing extends it further.  Expected
reproduction: N1 = ROB - 1 exactly; N2 and N3 larger with the same
ordering (absolute values depend on runahead entry timing and memory
latency; the paper's ratios are N2/N1 = 1.9, N3/N2 = 1.75).
"""

from repro.analysis import format_table
from repro.attack import measure_fig10
from repro.pipeline import CoreConfig

from _common import emit, once


def test_fig10_window_sizes(benchmark):
    n1, n2, n3 = once(benchmark, measure_fig10)

    rob = CoreConfig.paper().rob_size
    assert n1.window == rob - 1          # paper: 255
    assert n2.window > rob               # beyond the ROB
    assert n3.window > n2.window         # repeated flush goes further

    rows = [
        ("1 normal: flush once (N1)", n1.window, n1.pseudo_retired,
         n1.runahead_episodes, n1.cycles, 255),
        ("2 runahead: flush once (N2)", n2.window, n2.pseudo_retired,
         n2.runahead_episodes, n2.cycles, 480),
        ("3 runahead: flush repeatedly (N3)", n3.window, n3.pseudo_retired,
         n3.runahead_episodes, n3.cycles, 840),
    ]
    table = format_table(
        ["scenario", "window", "pseudo-retired", "episodes", "cycles",
         "paper"], rows)
    emit("fig10_window",
         f"{table}\n\n"
         f"ratios: N2/N1 = {n2.window / n1.window:.2f} "
         f"(paper 1.88), N3/N2 = {n3.window / n2.window:.2f} "
         f"(paper 1.75)\n"
         "N1 matches the paper exactly (ROB-bound); N2/N3 exceed the ROB\n"
         "with the paper's ordering. Scenario 3 is driven by an async\n"
         "flusher modeling the co-resident attacker thread (see\n"
         "repro/attack/window.py).")

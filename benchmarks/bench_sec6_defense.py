"""§6: the secure runahead scheme — security and performance.

Security: the SL-cache + taint-tracking defense (and the branch-skip
restriction) must block every attack variant that leaks on insecure
runahead.  Performance: the paper warns the countermeasures "may lead to
increased overhead"; this bench quantifies it on the Fig. 7 suite as the
fraction of runahead's speedup each defense retains.
"""

from repro.analysis import format_table
from repro.attack import run_specrun
from repro.defense import BranchRestrictedRunahead, SecureRunahead
from repro.runahead import NoRunahead, OriginalRunahead
from repro.workloads import ipc_comparison, spec_like_suite

from _common import emit, once

ATTACKS = ["pht", "btb", "rsb-overwrite", "rsb-flush"]
MACHINES = [("original", OriginalRunahead),
            ("secure", SecureRunahead),
            ("branch-skip", BranchRestrictedRunahead)]
PERF_KERNELS = ("lbm", "mcf", "gems")


def run_security_matrix():
    matrix = {}
    for label, cls in MACHINES:
        for variant in ATTACKS:
            matrix[(label, variant)] = run_specrun(variant, runahead=cls())
    return matrix


def run_perf():
    suite = spec_like_suite()
    perf = {}
    for label, cls in MACHINES:
        for name in PERF_KERNELS:
            _, stats, speedup = ipc_comparison(
                suite[name], NoRunahead(), cls())
            perf[(label, name)] = (stats.ipc, speedup)
    return perf


def test_sec6_defense(benchmark):
    matrix, perf = once(benchmark, lambda: (run_security_matrix(),
                                            run_perf()))

    # Security: insecure leaks everywhere, defenses leak nowhere.
    for variant in ATTACKS:
        assert matrix[("original", variant)].succeeded, variant
        assert not matrix[("secure", variant)].leaked, variant
        assert not matrix[("branch-skip", variant)].leaked, variant

    # Performance: both defenses must retain a benefit over no-runahead
    # on at least the streaming kernels (they may lose some of it).
    for label, _ in MACHINES:
        assert perf[(label, "gems")][1] > 1.0

    sec_rows = []
    for variant in ATTACKS:
        sec_rows.append(
            (variant,
             *(("LEAK " + str(matrix[(label, variant)].recovered_secret))
               if matrix[(label, variant)].leaked else "blocked"
               for label, _ in MACHINES)))
    sec_table = format_table(
        ["attack variant"] + [label for label, _ in MACHINES], sec_rows)

    perf_rows = []
    for name in PERF_KERNELS:
        row = [name]
        for label, _ in MACHINES:
            ipc, speedup = perf[(label, name)]
            row.append(f"{speedup:.3f}x")
        perf_rows.append(row)
    perf_table = format_table(
        ["kernel"] + [f"{label} speedup" for label, _ in MACHINES],
        perf_rows)

    emit("sec6_defense",
         "security (attack outcome per machine):\n" + sec_table +
         "\n\nperformance (speedup over no-runahead, higher = more of the"
         "\nrunahead benefit retained):\n" + perf_table +
         "\n\nsecure runahead quarantines fills in the SL cache and"
         "\npromotes them on first use after the guarding branches"
         "\nresolve; branch-skip refuses to speculate past INV branches.")

"""§6: the secure runahead scheme — security and performance.

Security: the SL-cache + taint-tracking defense (and the branch-skip
restriction) must block every attack variant that leaks on insecure
runahead.  Performance: the paper warns the countermeasures "may lead to
increased overhead"; this bench quantifies it on the Fig. 7 suite as the
fraction of runahead's speedup each defense retains.

Both the attack matrix and the perf comparison are one ``sec6`` harness
sweep; the quick tier covers pht + rsb-flush and the gems kernel.
"""

from repro.harness import presets
from repro.harness.presets import DEFENSE_MACHINES

from _common import emit, footer, run_preset

PRESET = presets.get("sec6")


def test_sec6_defense(benchmark, sweep_opts):
    result = run_preset(PRESET, benchmark, sweep_opts)

    # Security: insecure leaks everywhere, defenses leak nowhere.
    attacks = result.results("attack")
    assert attacks, "sweep produced no attack records"
    variants = sorted({res["variant"] for res in attacks})
    by_cell = {(res["runahead"], res["variant"]): res for res in attacks}
    for variant in variants:
        assert by_cell[("original", variant)]["succeeded"], variant
        assert not by_cell[("secure", variant)]["leaked"], variant
        assert not by_cell[("branch-skip", variant)]["leaked"], variant

    # Performance: both defenses must retain a benefit over no-runahead
    # on at least the streaming kernels (they may lose some of it).
    for machine in DEFENSE_MACHINES:
        gems = result.one("ipc", workload="gems",
                          contender=machine)["result"]
        assert gems["speedup"] > 1.0, machine

    emit("sec6_defense", PRESET.render(result) + footer(result))

"""Cross-core covert channels: defense matrix, capacity, co-runners.

Three sweeps from the :mod:`repro.multicore` scenario family:

* ``fig10_cross_core`` — the transmitter gadget on core 0 leaks to a
  receiver probing the shared inclusive L3 from core 1; the baseline
  machine must recover the secret cross-core (success rate >= 0.9 under
  mild noise) while the ``secure`` and ``branch-skip`` defenses decode
  *nothing* — the negative sweep the ROADMAP pins.
* ``cross_core_bandwidth`` — same-core vs cross-core channel capacity
  per receiver strategy (cross-core reload hits land at LLC latency, so
  the timing margin shrinks but every strategy keeps working).
* ``smt_corunner_sweep`` — PR 3's overlay ``NoiseModel`` co-runner
  versus *real* interfering instruction streams (SMT thread sharing the
  victim's L1/L2, or a dedicated core sharing only the L3), measuring
  how structured real interference compares to the i.i.d. overlay.
"""

from repro.harness import presets

from _common import emit, footer, run_preset

CROSS_PRESET = presets.get("fig10_cross_core")
BW_PRESET = presets.get("cross_core_bandwidth")
SMT_PRESET = presets.get("smt_corunner_sweep")


def test_fig10_cross_core(benchmark, sweep_opts):
    result = run_preset(CROSS_PRESET, benchmark, sweep_opts)

    by_machine = {}
    for record in result.select("extract"):
        res = record["result"]
        by_machine.setdefault(record["params"]["runahead"],
                              []).append(res)
    # Every trial ran a 2-core topology.
    for records in by_machine.values():
        for res in records:
            assert res["topology"]["cores"] == 2
    # The baseline machine leaks cross-core under mild noise.
    for res in by_machine["original"]:
        assert res["success_rate"] >= 0.9, (res["receiver"],
                                            res["recovered"])
    # The defenses close the channel for every receiver.
    for machine in ("secure", "branch-skip"):
        for res in by_machine[machine]:
            assert res["success_rate"] == 0.0, (machine, res["receiver"],
                                                res["recovered"])

    emit("fig10_cross_core", CROSS_PRESET.render(result) + footer(result))


def test_cross_core_bandwidth(benchmark, sweep_opts):
    result = run_preset(BW_PRESET, benchmark, sweep_opts)

    pairs = {}
    for record in result.select("extract"):
        res = record["result"]
        cores = record["params"].get("cores", 1)
        pairs.setdefault(res["receiver"], {})[cores] = res
    assert set(pairs) == set(presets.CHANNEL_RECEIVERS)
    for receiver, by_cores in pairs.items():
        same, cross = by_cores[1], by_cores[2]
        # The channel survives the move to another core...
        assert cross["success_rate"] >= 0.5, (receiver,
                                              cross["recovered"])
        assert cross["bandwidth_bits_per_s"] > 0
        # ...and same-core capacity is never *worse* than cross-core
        # for reload channels (cross-core pays LLC-latency probes).
        if receiver != "prime-probe":
            assert same["bits_per_kcycle"] >= \
                0.9 * cross["bits_per_kcycle"], receiver

    emit("cross_core_bandwidth", BW_PRESET.render(result) + footer(result))


def test_smt_corunner_sweep(benchmark, sweep_opts):
    result = run_preset(SMT_PRESET, benchmark, sweep_opts)

    records = result.select("extract")
    # Overlay and real co-runner rows both exist for each receiver.
    overlay = [r for r in records if r["params"].get("noise")
               and r["params"].get("corunner") is None]
    real = [r for r in records if r["params"].get("corunner")]
    assert overlay and real
    # A real co-runner stream perturbs the victim run itself: its
    # cycles exceed the clean cross-core run's for the same receiver.
    clean = {r["result"]["receiver"]: r["result"] for r in records
             if not r["params"].get("noise")
             and r["params"].get("corunner") is None}
    for record in real:
        res = record["result"]
        assert res["total_cycles"] > 0
        assert res["topology"]["corunner"] == record["params"]["corunner"]
    # Reload channels survive every co-runner (a co-runner in its own
    # physical window cannot fake a reload hit on victim lines).
    for record in real:
        res = record["result"]
        if res["receiver"] == "flush-reload":
            assert res["success_rate"] == 1.0, record["params"]
    # The clean cross-core channel decodes perfectly for all receivers.
    for res in clean.values():
        assert res["success_rate"] == 1.0

    emit("smt_corunner_sweep", SMT_PRESET.render(result) + footer(result))

"""The Fig. 12 worked example of the Btag / IS tagging scheme.

The paper's figure walks a 15-instruction machine-code fragment through
the taint tracker and prints the branch tag (Btag) and
influence-set (IS) cell for every load.  This module reproduces that
fragment as library code so the benchmark, the harness and the CLI all
run the same table.

Figure register assignment: rA..rH = r1..r8, rX = r9, rY = r10, the
figure's r0..r14 = our r11..r25.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instructions import Instruction, Opcode
from ..isa.registers import int_reg
from .taint import TaintTracker

_REG_BASE = 11


def _load(dest, addr_reg):
    return Instruction(Opcode.LOAD, dest=int_reg(dest),
                       srcs=(int_reg(addr_reg),), imm=0)


def _alu(op, dest, a, b):
    return Instruction(op, dest=int_reg(dest),
                       srcs=(int_reg(a), int_reg(b)))


def _out(n):
    return n + _REG_BASE


def fig12_program() -> List[Tuple[str, Instruction,
                                  Optional[str], Optional[str]]]:
    """(label, instruction, expected Btag, expected IS) per Fig. 12 row.

    Expected cells are ``None`` for non-load rows (the figure only tags
    loads).
    """
    rA, rB, rC, rD, rE, rF, rG, rH, rX, rY = range(1, 11)
    return [
        ("load r0 (rA)", _load(_out(0), rA), "B1,0", "0"),
        ("r1 = rB + rX", _alu(Opcode.ADD, _out(1), rB, rX), None, None),
        ("load r2 (r1)", _load(_out(2), _out(1)), "B1,1", "B1"),
        ("r3 = rC * r2", _alu(Opcode.MUL, _out(3), rC, _out(2)), None, None),
        ("r4 = rD - rY", _alu(Opcode.SUB, _out(4), rD, rY), None, None),
        ("load r5 (r4)", _load(_out(5), _out(4)), "B2,1", "B2"),
        ("r6 = r5 + r2", _alu(Opcode.ADD, _out(6), _out(5), _out(2)),
         None, None),
        ("load r7 (r6)", _load(_out(7), _out(6)), "B2,2", "B1, B2"),
        ("r8 = r3 - rE", _alu(Opcode.SUB, _out(8), _out(3), rE), None, None),
        ("load r9 (r8)", _load(_out(9), _out(8)), "B1,2", "B1"),
        ("r10 = rF + r9", _alu(Opcode.ADD, _out(10), rF, _out(9)),
         None, None),
        ("load r11 (r10)", _load(_out(11), _out(10)), "0", "B1"),
        ("r12 = rG * r7", _alu(Opcode.MUL, _out(12), rG, _out(7)),
         None, None),
        ("load r13 (r12)", _load(_out(13), _out(12)), "0", "B1, B2"),
        ("load r14 (rH)", _load(_out(14), rH), "0", "0"),
    ]


def run_fig12() -> List[Tuple[str, Optional[str], str,
                              Optional[str], str]]:
    """Run the figure's fragment; returns
    ``(label, want_btag, got_btag, want_is, got_is)`` per row.

    ``want_*`` are ``None`` on non-load rows.  Scope layout mirrors the
    figure: B1 wraps rows 0-9 (ends before "r10 = ..."), B2 wraps rows
    4-7.
    """
    rX, rY = 9, 10
    tracker = TaintTracker(untrusted_regs=(int_reg(rX), int_reg(rY)))
    rows = fig12_program()
    b1 = tracker.open_scope(0, end_pc=10 * 4, predicted_taken=False)
    names = {b1.scope_id: "B1"}
    table_rows = []
    for index, (label, instr, want_btag, want_is) in enumerate(rows):
        if index == 4:
            b2 = tracker.open_scope(index * 4, end_pc=8 * 4,
                                    predicted_taken=False)
            names[b2.scope_id] = "B2"
        info = tracker.on_instruction(index * 4, instr)
        table_rows.append((label, want_btag, info.render_btag(names),
                           want_is, info.render_is(names)))
    return table_rows

"""The paper's alternative mitigation: skip INV-source branches.

§6, last paragraph: "we can nullify the impact of branches on
instruction execution within the runahead interval.  Once a branch
predicate is identified as associated with a stalling load, the branch
is skipped rather than unresolved."

For a forward conditional branch with an INV predicate, *skipping* means
control goes straight to the branch target (the bounds-check body never
executes transiently — killing the SPECRUN gadget).  Unresolved indirect
branches (``jr``/``ret`` with INV targets) have no skippable body, so
runahead fetch simply stops for the rest of the interval.

The cost: runahead cannot prefetch through data-dependent branches, which
the defense benchmark quantifies against the SL-cache scheme.
"""

from __future__ import annotations

from ..runahead.original import OriginalRunahead


class BranchRestrictedRunahead(OriginalRunahead):
    """Original runahead with INV-source branches skipped, not predicted."""

    name = "branch-skip"

    def __init__(self, min_stall_latency=0):
        super().__init__(min_stall_latency=min_stall_latency)
        self.skipped_branches = 0
        self.stopped_fetches = 0

    def on_inv_branch(self, core, entry):
        instr = entry.instr
        if instr.is_conditional_branch() and instr.target is not None and \
                instr.target > entry.pc:
            self.skipped_branches += 1
            core.force_branch_outcome(entry, taken=True,
                                      target=instr.target)
        else:
            # No static join point: kill the predicted path and stop
            # runahead fetch for the rest of this interval.
            self.stopped_fetches += 1
            core.stop_runahead_fetch(entry)

"""Taint tracking with Btag / IS tags (§6, Fig. 12).

The tracker consumes the *pseudo-retired instruction stream* of a
runahead episode in (speculative) program order and assigns to every
load:

* ``Btag = (n, m)`` — the load is the m-th *tainted* load within the
  scope of branch ``Bn`` (``m = 0`` for untainted loads inside a scope,
  ``Btag = None`` outside any scope);
* ``IS`` — the set of branch scopes whose tainted data feeds the load's
  address (possibly empty; non-empty IS outside any scope covers the
  "taint-related loads outside the branch scope" case of the paper).

Taint sources are *untrusted input registers* (the attacker-controlled
``rX``/``rY`` of Fig. 12, or a victim argument register).  An untrusted
value that feeds a load address inside scope ``Bn`` binds the taint to
``Bn``; load results propagate their scope set to dependents through ALU
operations.

Scopes are the fall-through bodies of unresolved forward conditional
branches (the compiler-provided ``Bns``/``Bne`` of the paper, which our
assembler exposes as :meth:`repro.isa.program.Program.scope_end`).
Unresolved *indirect* branches (``jr``/``ret`` with INV targets — the
Fig. 4 variants) get an episode-long scope with no end address: a
conservative generalization beyond the paper's conditional-branch
scheme, needed to cover SpectreBTB/RSB under the same defense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: Taint label for raw untrusted inputs not yet bound to a branch scope.
UNTRUSTED = -1


@dataclass
class Scope:
    """One unresolved-branch scope."""

    scope_id: int
    branch_pc: int
    end_pc: Optional[int]        # None = open until episode end (indirect)
    predicted_taken: bool
    predicted_target: Optional[int]
    parent: Optional[int]        # enclosing scope id (nesting)
    tainted_loads: int = 0       # the per-scope m counter


@dataclass(frozen=True)
class TaintInfo:
    """Tags assigned to one instruction (meaningful for loads)."""

    btag: Optional[Tuple[int, int]]      # (scope id, m) or None
    is_set: FrozenSet[int]               # scope ids feeding the address

    @property
    def is_usl(self):
        """Unsafe speculative load: taint-related (paper's restriction)."""
        return bool(self.is_set)

    def render_btag(self, names=None):
        if self.btag is None:
            return "0"
        n, m = self.btag
        label = names.get(n, f"B{n}") if names else f"B{n}"
        return f"{label},{m}"

    def render_is(self, names=None):
        if not self.is_set:
            return "0"
        labels = sorted(self.names(names))
        return ", ".join(labels)

    def names(self, names=None):
        return [(names.get(n, f"B{n}") if names else f"B{n}")
                for n in sorted(self.is_set)]


class TaintTracker:
    """Tracks register taint and branch scopes over one speculative stream.

    ``conservative=True`` treats *every* load inside an unresolved-branch
    scope as a USL (no untrusted-input annotations needed); the default
    matches the paper's restriction of USLs to secret-related loads.
    """

    def __init__(self, untrusted_regs=(), conservative=False):
        self._initial_untrusted = frozenset(untrusted_regs)
        self.conservative = conservative
        self.reg_taint: Dict[int, FrozenSet[int]] = {}
        self.scope_stack: List[Scope] = []
        self.scopes: Dict[int, Scope] = {}
        self._next_scope = 1
        self.reset()

    def reset(self):
        """Start a fresh episode: clear register taint and open scopes."""
        self.reg_taint = {reg: frozenset((UNTRUSTED,))
                          for reg in self._initial_untrusted}
        self.scope_stack = []

    def mark_untrusted(self, reg):
        self.reg_taint[reg] = self.reg_taint.get(reg, frozenset()) | \
            {UNTRUSTED}

    # -- scope management ---------------------------------------------------------

    def open_scope(self, branch_pc, end_pc, predicted_taken,
                   predicted_target=None) -> Scope:
        """Push a scope for an unresolved branch."""
        parent = self.scope_stack[-1].scope_id if self.scope_stack else None
        scope = Scope(scope_id=self._next_scope, branch_pc=branch_pc,
                      end_pc=end_pc, predicted_taken=predicted_taken,
                      predicted_target=predicted_target, parent=parent)
        self._next_scope += 1
        self.scopes[scope.scope_id] = scope
        self.scope_stack.append(scope)
        return scope

    def _pop_ended_scopes(self, pc):
        while self.scope_stack:
            top = self.scope_stack[-1]
            if top.end_pc is not None and pc >= top.end_pc:
                self.scope_stack.pop()
            else:
                break

    def innermost(self) -> Optional[Scope]:
        return self.scope_stack[-1] if self.scope_stack else None

    def descendants(self, scope_id) -> Set[int]:
        """``scope_id`` plus every scope nested (transitively) inside it."""
        result = {scope_id}
        changed = True
        while changed:
            changed = False
            for scope in self.scopes.values():
                if scope.parent in result and scope.scope_id not in result:
                    result.add(scope.scope_id)
                    changed = True
        return result

    # -- instruction processing ------------------------------------------------------

    def on_instruction(self, pc, instr) -> TaintInfo:
        """Process one pseudo-retired instruction; returns its tags."""
        self._pop_ended_scopes(pc)
        srcs_taint = frozenset().union(
            *(self.reg_taint.get(src, frozenset()) for src in instr.srcs)) \
            if instr.srcs else frozenset()

        if instr.is_load():
            return self._on_load(instr, srcs_taint)

        # ALU and friends: propagate the union of input taints.
        if instr.dest is not None:
            if srcs_taint:
                self.reg_taint[instr.dest] = srcs_taint
            else:
                self.reg_taint.pop(instr.dest, None)
        return TaintInfo(btag=None, is_set=frozenset(
            label for label in srcs_taint if label != UNTRUSTED))

    def _on_load(self, instr, addr_taint):
        scope = self.innermost()
        scope_part = frozenset(l for l in addr_taint if l != UNTRUSTED)
        if UNTRUSTED in addr_taint and scope is not None:
            scope_part |= {scope.scope_id}
        if self.conservative and scope is not None:
            scope_part |= {scope.scope_id}
        tainted = bool(scope_part)

        if scope is not None:
            if tainted:
                scope.tainted_loads += 1
                btag = (scope.scope_id, scope.tainted_loads)
            else:
                btag = (scope.scope_id, 0)
        else:
            btag = None

        if instr.dest is not None:
            if scope_part:
                self.reg_taint[instr.dest] = scope_part
            else:
                self.reg_taint.pop(instr.dest, None)
        return TaintInfo(btag=btag, is_set=scope_part)

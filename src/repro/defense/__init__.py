"""The §6 defenses: SL cache + taint tracking, and branch-skip restriction."""

from .restrictions import BranchRestrictedRunahead
from .secure import SecureRunahead
from .sl_cache import SLCache, SLCacheStats, SLEntry
from .taint import UNTRUSTED, Scope, TaintInfo, TaintTracker

__all__ = [
    "BranchRestrictedRunahead", "SecureRunahead", "SLCache", "SLCacheStats",
    "SLEntry", "UNTRUSTED", "Scope", "TaintInfo", "TaintTracker",
]

"""Speculative-Load cache (§6).

An "L0" structure that quarantines the lines runahead execution fetched
from memory.  Entries carry the Btag/IS tags of the load that fetched
them and a data-ready cycle (the memory fill still takes its full
latency).  After runahead exits, Algorithm 1 consults the SL cache first:
safe entries promote to L1 on first use; USL entries wait for their
guarding branch; entries of mispredicted scopes are deleted without ever
becoming architecturally visible in the cache hierarchy.

The counter ``C`` from the paper tracks live entries so the processor
stops consulting the SL cache once it has drained.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


@dataclass
class SLEntry:
    line: int
    btag: Optional[Tuple[int, int]]
    is_set: FrozenSet[int]
    ready_cycle: int
    first_wait_cycle: Optional[int] = None

    @property
    def scope_ids(self):
        ids = set(self.is_set)
        if self.btag is not None:
            ids.add(self.btag[0])
        return ids

    @property
    def is_usl(self):
        return bool(self.is_set)


@dataclass
class SLCacheStats:
    inserts: int = 0
    promotions: int = 0
    deletions: int = 0
    usl_waits: int = 0
    evictions: int = 0
    timeouts: int = 0


class SLCache:
    """FIFO-evicting line-granular quarantine buffer."""

    def __init__(self, capacity=64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, SLEntry]" = OrderedDict()
        self.stats = SLCacheStats()

    @property
    def counter(self):
        """The paper's C: number of resident entries."""
        return len(self._entries)

    def insert(self, line, btag, is_set, ready_cycle):
        """Quarantine a runahead fill (replaces an existing entry)."""
        if line in self._entries:
            del self._entries[line]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[line] = SLEntry(line=line, btag=btag,
                                      is_set=frozenset(is_set),
                                      ready_cycle=ready_cycle)
        self.stats.inserts += 1

    def lookup(self, line) -> Optional[SLEntry]:
        return self._entries.get(line)

    def remove(self, line) -> bool:
        if line in self._entries:
            del self._entries[line]
            return True
        return False

    def promote(self, line) -> Optional[SLEntry]:
        """Take an entry out for promotion into L1 (C decrements)."""
        entry = self._entries.pop(line, None)
        if entry is not None:
            self.stats.promotions += 1
        return entry

    def delete_scopes(self, scope_ids) -> int:
        """Delete every entry tagged by any of ``scope_ids`` (Algorithm 1
        line 16: the mispredicted branch and its inner branches)."""
        scope_ids = set(scope_ids)
        doomed = [line for line, entry in self._entries.items()
                  if entry.scope_ids & scope_ids]
        for line in doomed:
            del self._entries[line]
        self.stats.deletions += len(doomed)
        return len(doomed)

    def lines(self):
        return list(self._entries)

    def clear(self):
        self._entries.clear()

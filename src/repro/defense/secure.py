"""Secure runahead execution (§6): SL cache + taint tracking + Algorithm 1.

The controller changes exactly three behaviours of original runahead:

1. **Fill redirection** — runahead-mode misses do not install lines into
   the cache hierarchy; the data lands in the SL cache, tagged with the
   fetching load's Btag/IS from the taint tracker.
2. **Scope bookkeeping** — every unresolved (INV-source) branch opens a
   taint scope recording the runahead-time prediction; the scope's
   correctness is judged when the same branch re-executes and resolves
   after exit.
3. **Algorithm 1 on the post-exit load path** — while the SL counter C
   is non-zero, loads consult the SL cache first: safe entries promote
   to L1; USL entries wait for their guarding branch; entries of
   mispredicted scopes (and their nested scopes) are deleted, so the
   secret-dependent line of SPECRUN never becomes probe-visible.

A USL whose guarding branch never re-executes would wait forever;
``usl_wait_limit`` bounds the wait, after which the entry is deleted and
the load refetches from memory — the safe direction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..isa.instructions import Opcode
from ..pipeline import core as core_mod
from ..runahead.original import OriginalRunahead
from .sl_cache import SLCache
from .taint import TaintTracker


class SecureRunahead(OriginalRunahead):
    """The paper's §6 defense as a drop-in runahead controller."""

    name = "secure"

    def __init__(self, untrusted_regs=(), conservative=True,
                 min_stall_latency=0, sl_capacity=None,
                 usl_wait_limit=5000):
        super().__init__(min_stall_latency=min_stall_latency)
        self.tracker = TaintTracker(untrusted_regs=untrusted_regs,
                                    conservative=conservative)
        self._sl_capacity = sl_capacity
        self.sl: Optional[SLCache] = None
        self.usl_wait_limit = usl_wait_limit
        #: Scopes judged correctly predicted (the paper's S[]).
        self.correct_scopes: Set[int] = set()
        #: scope id -> Scope awaiting post-exit resolution, keyed by pc.
        self._pending_scopes: Dict[int, List[int]] = {}
        #: in-flight runahead fills: entry seq -> (line, completion).
        self._inflight: Dict[int, tuple] = {}

    def attach(self, core):
        super().attach(core)
        capacity = self._sl_capacity or \
            core.config.runahead.sl_cache_entries
        self.sl = SLCache(capacity=capacity)
        self._sl_latency = core.config.runahead.sl_cache_latency

    # -- runahead-mode behaviour -----------------------------------------------------

    def on_enter(self, core):
        self.tracker.reset()

    def runahead_load_fill(self, core, entry) -> bool:
        return False    # fills are quarantined, never installed

    def runahead_load_override(self, core, entry, addr, now):
        """Serve runahead loads from already-quarantined lines.

        Without this, every re-entered episode re-requests the same
        lines from memory (the SL cache never feeds the hierarchy) and
        the resulting channel contention makes the defense slower than
        no runahead at all on re-entrant pointer-chase code — measured
        in EXPERIMENTS.md.
        """
        if self.sl is None or self.sl.counter == 0:
            return None
        line = core.hierarchy.line_of(addr)
        sl_entry = self.sl.lookup(line)
        if sl_entry is None:
            return None
        wait = max(sl_entry.ready_cycle - now, 0)
        return self._sl_latency + wait

    def on_runahead_load(self, core, entry, result):
        if result.is_memory_level:
            self._inflight[entry.seq] = (result.line, result.completion)

    def on_pseudo_retire(self, core, entry):
        instr = entry.instr
        pc = entry.pc
        if instr.is_branch() and not entry.resolved and \
                (entry.inv or entry.actual_target is None):
            self._open_scope_for(core, entry)
            return
        info = self.tracker.on_instruction(pc, instr)
        entry.taint = info.is_set
        entry.btag = info.btag
        inflight = self._inflight.pop(entry.seq, None)
        if inflight is not None:
            line, completion = inflight
            self.sl.insert(line, info.btag, info.is_set, completion)

    def _open_scope_for(self, core, entry):
        instr = entry.instr
        prediction = entry.prediction
        if instr.is_conditional_branch():
            if prediction is not None and not prediction.taken:
                end = core.program.scope_end(entry.pc)
                if end is not None:
                    scope = self.tracker.open_scope(
                        entry.pc, end, predicted_taken=False)
                    self._pending_scopes.setdefault(entry.pc, []).append(
                        scope.scope_id)
            # Predicted-taken INV branches skip their body: no scope.
            return
        # Unresolved indirect branch (jr/ret): episode-long scope.
        target = prediction.target if prediction is not None else None
        scope = self.tracker.open_scope(entry.pc, None, predicted_taken=True,
                                        predicted_target=target)
        self._pending_scopes.setdefault(entry.pc, []).append(scope.scope_id)

    # -- post-exit behaviour (Algorithm 1) ----------------------------------------------

    def on_exit(self, core):
        self._inflight.clear()

    def normal_load_override(self, core, entry, addr, now):
        if self.sl is None or self.sl.counter == 0:
            return None
        line = core.hierarchy.line_of(addr)
        sl_entry = self.sl.lookup(line)
        if sl_entry is None:
            return None
        if not sl_entry.is_usl:
            return self._promote(core, line, sl_entry, now)
        scopes = sl_entry.scope_ids
        unresolved = [s for s in scopes if s not in self.correct_scopes]
        if not unresolved:
            return self._promote(core, line, sl_entry, now)
        # Algorithm 1 line 10: wait for the resolution of Bn.
        self.sl.stats.usl_waits += 1
        if sl_entry.first_wait_cycle is None:
            sl_entry.first_wait_cycle = now
        elif now - sl_entry.first_wait_cycle > self.usl_wait_limit:
            # The guarding branch never re-executed: drop the entry and
            # refetch from memory (safe direction).
            self.sl.remove(line)
            self.sl.stats.timeouts += 1
            return None
        return core_mod.BLOCKED

    def _promote(self, core, line, sl_entry, now):
        ready = max(sl_entry.ready_cycle - now, 0)
        self.sl.promote(line)
        core.hierarchy.l1d.fill(line)
        return self._sl_latency + ready

    def on_branch_resolved(self, core, entry, mispredicted):
        """Judge pending scopes when their branch re-executes (post-exit)."""
        pending = self._pending_scopes.get(entry.pc)
        if not pending:
            return
        scope_ids = list(pending)
        pending.clear()
        for scope_id in scope_ids:
            scope = self.tracker.scopes[scope_id]
            if entry.instr.is_conditional_branch():
                correct = entry.actual_taken == scope.predicted_taken
            else:
                correct = entry.actual_target == scope.predicted_target
            if correct:
                self.correct_scopes.add(scope_id)   # the paper's S[]
            else:
                doomed = self.tracker.descendants(scope_id)
                self.sl.delete_scopes(doomed)

"""The taint lattice: concrete values annotated with provenance.

Every register and memory word in the abstract machine holds an
:class:`AbsValue` — a concrete value (the checker is a *concrete* taint
interpreter, not a symbolic one: addresses in our gadget programs are
data-independent except where the leak itself flows) plus three
orthogonal annotations:

``taint``
    Frozenset of secret labels.  Introduced when a load reads a word
    designated secret; propagated through every ALU op as the union of
    the source taints.  A *load address* carrying taint inside a
    transient window is the leak condition.
``inv``
    The value is unavailable in this window — the runahead INV bit
    (Mutlu'03), also reused in speculation windows for "the fill will
    not arrive before the squash".  INV propagates like taint;
    INV-address loads and INV-source stores are dropped, exactly as the
    pipeline drops them.
``slow``
    The value derives from a memory-level miss, so a branch sourcing it
    resolves only after hundreds of cycles — the attacker's lever for
    holding a wrong path open.  Only ``slow``-sourced branches open
    speculation windows; a warm-operand branch resolves (and squashes)
    far too fast to steer a leak, so exploring it would flag gadgets the
    cycle simulator cannot reproduce.

``chain`` carries the provenance pc trail from the tainting load toward
the current value, capped so golden fixtures stay small.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

_NO_TAINT: FrozenSet[str] = frozenset()
_NO_CHAIN: Tuple[int, ...] = ()

#: Provenance chains keep at most this many pcs (ends preserved).
CHAIN_CAP = 12


class AbsValue:
    """One lattice point: concrete value + taint/INV/slow annotations."""

    __slots__ = ("val", "taint", "inv", "slow", "chain")

    def __init__(self, val, taint=_NO_TAINT, inv=False, slow=False,
                 chain=_NO_CHAIN):
        self.val = val
        self.taint = taint
        self.inv = inv
        self.slow = slow
        self.chain = chain

    def __repr__(self):
        bits = []
        if self.taint:
            bits.append("taint=" + ",".join(sorted(self.taint)))
        if self.inv:
            bits.append("INV")
        if self.slow:
            bits.append("slow")
        suffix = (" " + " ".join(bits)) if bits else ""
        return f"<{self.val!r}{suffix}>"


#: The constant zero register / untainted default.
ZERO = AbsValue(0)


def clean(val) -> AbsValue:
    """A concrete, untainted, available value."""
    return AbsValue(val)


def cap_chain(chain: Tuple[int, ...]) -> Tuple[int, ...]:
    """Bound a provenance chain, preserving both ends."""
    if len(chain) <= CHAIN_CAP:
        return chain
    keep = CHAIN_CAP - 2
    return chain[:2] + chain[-keep:]


def combine(val, sources, pc) -> AbsValue:
    """Lattice join for an ALU result at ``pc`` over ``sources``.

    Taint and INV are unions; the chain extends the (merged) source
    chains with ``pc`` only while taint is flowing — untainted values
    carry no history.
    """
    taint = _NO_TAINT
    inv = False
    slow = False
    chain = _NO_CHAIN
    for src in sources:
        if src.taint:
            taint = taint | src.taint
            chain = chain + src.chain
        inv = inv or src.inv
        slow = slow or src.slow
    if taint:
        chain = cap_chain(chain + (pc,))
    else:
        chain = _NO_CHAIN
    return AbsValue(val, taint, inv, slow, chain)

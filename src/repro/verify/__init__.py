"""repro.verify — static speculative/runahead leak checker.

A taint-tracking abstract interpreter over :mod:`repro.isa` programs
that explores architectural execution plus bounded transient windows
(speculation past slow-resolving control, runahead past memory-level
misses) and reports every load whose address carries secret taint
inside a window.  Differentially cross-checked against the cycle
simulator by :mod:`repro.verify.crosscheck`: flagged gadgets must leak
empirically; defense-clean verdicts must extract nothing.
"""

from .engine import (DEFENSES, Checker, VerifyError, VerifyOptions,
                     check_program)
from .report import (WINDOW_RUNAHEAD, WINDOW_SPECULATION, WINDOWS,
                     LeakReport, VerifyResult, merge_reports)
from .targets import (ATTACK_TARGETS, GadgetCase, build_target,
                      target_names)

__all__ = [
    "ATTACK_TARGETS",
    "Checker",
    "DEFENSES",
    "GadgetCase",
    "LeakReport",
    "VerifyError",
    "VerifyOptions",
    "VerifyResult",
    "WINDOWS",
    "WINDOW_RUNAHEAD",
    "WINDOW_SPECULATION",
    "build_target",
    "check_program",
    "merge_reports",
    "target_names",
]


def check_target(name, **kwargs):
    """Build a registered target and run :func:`check_program` on it."""
    case = build_target(name)
    return case, check_program(case.program, case.image,
                               secret_addrs=case.secret_addrs,
                               initial_sp=case.initial_sp, **kwargs)

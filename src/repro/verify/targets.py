"""Checkable gadget targets: the attack workloads plus custom gadgets.

Every entry pairs an assembled program with the metadata both sides of
the differential harness need: the checker wants the secret addresses;
the empirical side (:mod:`repro.verify.crosscheck`) wants either the
attack variant to replay through :class:`repro.attack.SpecRunAttack`
(in-program probe oracle) or the probe-array geometry for the
footprint-diff oracle (probe-free gadgets, whose cache state after the
run *is* the transmission).

The custom ``stale-store`` gadget is the registry's reason to exist: a
straight-line (branch-free) runahead-only leak.  An INV-data store is
dropped by runahead, so a following load reads the *stale* pointer the
architectural plant left in memory — the secret's address — and the
dependent load chain transmits the secret, with no prediction anywhere
for branch restrictions to pin down.  Only the secure (SL-cache)
defense stops it.  Its ``*-safe`` twin plants a benign pointer instead,
so the stale value leads nowhere: the checker must stay quiet and the
simulator's probe footprint must match the architectural one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..attack.gadgets import (DEFAULT_SECRET, DEFAULT_STRIDE, PROBE_ENTRIES,
                              TRAIN_INDEX, build_attack)
from ..isa.assembler import assemble
from ..isa.memory_image import MemoryImage

#: Safe word value for the stale-store twins (≠ DEFAULT_SECRET so the
#: probe footprints of the leaking and benign paths are distinct).
SAFE_VALUE = 7

_DELAY_ITERS = 900
_SETTLE_NOPS = 1500


@dataclass
class GadgetCase:
    """One target: a program plus what each oracle needs to judge it."""

    name: str
    program: object
    image: MemoryImage
    initial_sp: int
    #: Word addresses the checker treats as secret sources.
    secret_addrs: Tuple[int, ...]
    secret_value: int
    #: Probe-array geometry (footprint oracle / receiver decoding).
    probe_base: int
    probe_stride: int
    probe_entries: int
    #: Registered attack variant, when the case wraps one — the
    #: empirical oracle replays it through SpecRunAttack.
    attack_variant: Optional[str] = None
    attack_kwargs: Dict = field(default_factory=dict)
    #: True when the program has no in-program probe loop, so the
    #: footprint-diff oracle applies (a probe loop architecturally
    #: touches every probe line, blinding the diff).
    probe_free: bool = False
    #: Whether the gadget leaks on the undefended ("original") machine.
    expect_leak: bool = True
    notes: str = ""


def _attack_case(name: str, variant: str, expect_leak: bool = True,
                 notes: str = "", **kwargs) -> GadgetCase:
    attack = build_attack(variant, **kwargs)
    return GadgetCase(
        name=name, program=attack.program, image=attack.image,
        initial_sp=attack.initial_sp, secret_addrs=(attack.secret_addr,),
        secret_value=attack.secret_value, probe_base=attack.array2_addr,
        probe_stride=attack.probe_stride, probe_entries=attack.probe_entries,
        attack_variant=variant, attack_kwargs=dict(kwargs),
        probe_free=False, expect_leak=expect_leak,
        notes=notes or attack.notes)


def _build_stale_store(plant_secret: bool) -> GadgetCase:
    """The straight-line stale-store gadget (or its benign twin)."""
    image = MemoryImage()
    secret = image.alloc("secret_word", 8, align=64)
    image.write_word(secret, DEFAULT_SECRET)
    safe = image.alloc("safe_word", 8, align=64)
    image.write_word(safe, SAFE_VALUE)
    ptr_slot = image.alloc("ptr_slot", 8, align=64)
    array2 = image.alloc("array2", PROBE_ENTRIES * DEFAULT_STRIDE)
    trigger = image.alloc_array("trigger_d", 2)
    image.write_word(trigger, 1)
    sp = image.alloc_stack(64)
    plant = "@secret_word" if plant_secret else "@safe_word"

    source = f"""
    # ---- warm-up: the victim legitimately touches its data --------------
        li   r27, @array2
        li   r4, @secret_word
        load r15, r4, 0         # warm the secret line
        li   r5, @safe_word
        load r16, r5, 0         # warm the safe line
        li   r6, @ptr_slot
        load r8, r6, 0          # warm ptr_slot's line before planting
        fence
    # ---- settle: branch-free sled outlasting the warm-up fills ----------
        .repeat {_SETTLE_NOPS}, nop
    # ---- plant the pointer the dropped store will fail to overwrite -----
        li   r7, {plant}
        store r7, r6, 0         # ptr_slot = plant (write-allocate hits)
        fence
        li   r9, @trigger_d
        clflush r9, 0           # the stalling load's line
        fence
    # ---- gadget: straight line, no branches -----------------------------
        load r21, r9, 0         # stalling load -> INV in runahead
        andi r22, r21, 0        # arch 0; INV in runahead
        li   r23, @safe_word
        add  r24, r23, r22      # data: arch &safe_word; INV in runahead
        store r24, r6, 0        # arch: ptr_slot = &safe; runahead: DROPPED
        load r25, r6, 0         # p: arch &safe; runahead: stale plant
        load r26, r25, 0        # v = [p]
        muli r28, r26, {DEFAULT_STRIDE}
        add  r28, r28, r27
        load r29, r28, 0        # transmit v into the probe array
        fence
    # ---- wait out the runahead interval, then stop ----------------------
        li   r1, {_DELAY_ITERS}
    delay:
        addi r1, r1, -1
        bne  r1, r0, delay
        halt
    """
    program = assemble(source, memory_image=image)
    name = "stale-store" if plant_secret else "stale-store-safe"
    return GadgetCase(
        name=name, program=program, image=image, initial_sp=sp,
        secret_addrs=(secret,), secret_value=DEFAULT_SECRET,
        probe_base=array2, probe_stride=DEFAULT_STRIDE,
        probe_entries=PROBE_ENTRIES, probe_free=True,
        expect_leak=plant_secret,
        notes="straight-line stale-store gadget; runahead-only, immune "
              "to branch restrictions" if plant_secret else
              "benign twin: the stale pointer is the safe word")


#: name -> builder.  Built lazily: assembling every target up front
#: would tax importers that want a single case.
TARGET_BUILDERS: Dict[str, Callable[[], GadgetCase]] = {
    "pht": lambda: _attack_case("pht", "pht"),
    "pht-padded": lambda: _attack_case(
        "pht-padded", "pht", nop_padding=300,
        notes="Fig. 11: gadget pushed beyond the reorder buffer — "
              "reachable only through runahead"),
    "pht-safe": lambda: _attack_case(
        "pht-safe", "pht", expect_leak=False, trigger_index=TRAIN_INDEX,
        notes="benign calibration twin: in-bounds trigger index"),
    "btb": lambda: _attack_case("btb", "btb"),
    "rsb-overwrite": lambda: _attack_case("rsb-overwrite", "rsb-overwrite"),
    "rsb-flush": lambda: _attack_case("rsb-flush", "rsb-flush"),
    "stale-store": lambda: _build_stale_store(True),
    "stale-store-safe": lambda: _build_stale_store(False),
}

#: Targets wrapping registered attack variants (AttackResult oracle).
ATTACK_TARGETS = ("pht", "pht-padded", "pht-safe", "btb",
                  "rsb-overwrite", "rsb-flush")


def target_names() -> Tuple[str, ...]:
    return tuple(TARGET_BUILDERS)


def build_target(name: str) -> GadgetCase:
    try:
        builder = TARGET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown verify target {name!r}; expected one of "
            f"{', '.join(TARGET_BUILDERS)}") from None
    return builder()

"""Seeded random gadget generator for the differential cross-check.

Hand-written targets (:mod:`repro.verify.targets`) pin the known attack
shapes; this module generates *families* of variations around them so
the checker and the simulator are compared on programs neither was
tuned for.  Everything is deterministic from an integer seed, and every
drawn parameter can be overridden by keyword — which is what the
property test's shrinker uses: on a disagreement it re-draws the same
seed with parameters forced toward the benign values until the
disagreement disappears, and reports the last failing (minimal)
program.

Families
--------
``spec``
    A pht-shaped victim behind a trained bounds check on a flushed
    size word.  Drawn knobs: nop padding between check and gadget
    (0 / in-ROB / beyond-ROB), whether the victim architecturally warms
    the secret line, whether the final call passes the out-of-bounds
    index, and extra taint-propagation hops in the disclosure chain.
    Leaks on the undefended machine iff the secret line is warm *and*
    the trigger index is malicious.
``stale``
    The straight-line stale-store shape: an INV-data store is dropped
    by runahead so a later load sees the stale planted pointer.  Drawn
    knobs: whether the plant is the secret's address or a benign one,
    and extra chain hops.  Leaks iff the plant is the secret.
``straight``
    Straight-line loads/stores/ALU over scratch data with a flushed
    trigger load thrown in — runahead windows open, but no secret is
    ever read.  Never leaks; guards against phantom flags.

All generated programs are **probe-free** (no in-program probe loop):
the cross-check judges them with the footprint oracle, so the generator
guarantees the architectural path never touches the secret's probe
entry (transmitted benign values are drawn ``!= secret_value``).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..attack.gadgets import DEFAULT_STRIDE, PROBE_ENTRIES, TRAIN_INDEX
from ..isa.assembler import assemble
from ..isa.memory_image import MemoryImage
from .targets import GadgetCase

FAMILIES = ("spec", "stale", "straight")

_ARRAY1_WORDS = 16
_TRAIN_ITERS = 96
_DELAY_ITERS = 900
_SETTLE_NOPS = 1500

#: Padding choices for the ``spec`` family: none, well inside the ROB,
#: and beyond it (the Fig. 11 regime — runahead-only reach).
_PADDINGS = (0, 40, 300)


def _hops(reg: str, count: int, rng: random.Random) -> str:
    """Value-preserving taint-propagation hops through ``reg``."""
    ops = []
    for _ in range(count):
        ops.append(rng.choice((f"addi {reg}, {reg}, 0",
                               f"ori  {reg}, {reg}, 0",
                               f"xori {reg}, {reg}, 0")))
    return "\n        ".join(ops) if ops else "nop"


def _draw(params: Dict, key: str, rng: random.Random, choices):
    """Drawn-unless-overridden parameter (the shrinker's hook)."""
    if params.get(key) is None:
        params[key] = rng.choice(choices)
    return params[key]


def generate_case(seed: int, family: Optional[str] = None,
                  **overrides) -> GadgetCase:
    """Build one generated gadget, deterministically from ``seed``.

    ``overrides`` force drawn parameters (see each family builder); the
    shrinker uses them to minimize failing cases.
    """
    rng = random.Random(seed)
    if family is None:
        family = rng.choice(FAMILIES)
    if family == "spec":
        return _gen_spec(seed, rng, overrides)
    if family == "stale":
        return _gen_stale(seed, rng, overrides)
    if family == "straight":
        return _gen_straight(seed, rng, overrides)
    raise KeyError(f"unknown generator family {family!r}; expected one "
                   f"of {', '.join(FAMILIES)}")


def gen_target(name: str) -> GadgetCase:
    """Resolve a ``gen:<family>:<seed>`` target name."""
    parts = name.split(":")
    if len(parts) != 3 or parts[0] != "gen":
        raise KeyError(f"bad generated-target name {name!r}; expected "
                       f"gen:<family>:<seed>")
    return generate_case(int(parts[2]), family=parts[1])


def _base_image(rng: random.Random):
    """Shared layout: array1, secret, probe array, trigger, stack."""
    image = MemoryImage()
    array1 = image.alloc_array("array1", _ARRAY1_WORDS)
    secret_value = rng.randrange(1, PROBE_ENTRIES)
    # Benign values the architectural path may transmit must differ
    # from the secret, or the footprint oracle goes blind.
    values = [rng.choice([v for v in range(PROBE_ENTRIES)
                          if v != secret_value])
              for _ in range(_ARRAY1_WORDS)]
    image.write_words(array1, values)
    secret = image.alloc("secret_word", 8, align=64)
    image.write_word(secret, secret_value)
    array2 = image.alloc("array2", PROBE_ENTRIES * DEFAULT_STRIDE)
    trigger = image.alloc_array("trigger_d", 2)
    image.write_word(trigger, _ARRAY1_WORDS)
    sp = image.alloc_stack(64)
    return image, array1, secret, secret_value, array2, sp


def _gen_spec(seed: int, rng: random.Random, params: Dict) -> GadgetCase:
    padding = _draw(params, "padding", rng, _PADDINGS)
    touch_secret = _draw(params, "touch_secret", rng, (True, True, False))
    malicious = _draw(params, "malicious", rng, (True, True, False))
    hops = _draw(params, "hops", rng, (0, 1, 2, 3))

    image, array1, secret, secret_value, array2, sp = _base_image(rng)
    malicious_index = (secret - array1) // 8
    attack_index = malicious_index if malicious else TRAIN_INDEX
    touch = """
        li   r4, @secret_word
        load r15, r4, 0
        fence
    """ if touch_secret else ""
    pad = f"        .repeat {padding}, nop\n" if padding else ""

    source = f"""
        jmp  main
    victim:
        li   r21, @trigger_d
        load r21, r21, 0         # size = f(D): the stalling load
        bge  r20, r21, victim_end
{pad}        slli r22, r20, 3
        add  r22, r22, r26
        load r23, r22, 0         # array1[x] — the secret access
        {_hops("r23", hops, rng)}
        muli r24, r23, {DEFAULT_STRIDE}
        add  r24, r24, r27
        load r25, r24, 0         # transmit
    victim_end:
        ret
    main:
        li   r26, @array1
        li   r27, @array2
        {touch}
        li   r1, {_TRAIN_ITERS}
    train:
        li   r20, {TRAIN_INDEX}
        call victim
        addi r1, r1, -1
        bne  r1, r0, train
        li   r9, @trigger_d
        clflush r9, 0
        fence
        li   r20, {attack_index}
        call victim
        li   r1, {_DELAY_ITERS}
    delay_loop:
        addi r1, r1, -1
        bne  r1, r0, delay_loop
        halt
    """
    program = assemble(source, memory_image=image)
    return GadgetCase(
        name=f"gen:spec:{seed}", program=program, image=image,
        initial_sp=sp, secret_addrs=(secret,), secret_value=secret_value,
        probe_base=array2, probe_stride=DEFAULT_STRIDE,
        probe_entries=PROBE_ENTRIES, probe_free=True,
        expect_leak=bool(touch_secret and malicious),
        notes=f"padding={padding} touch_secret={touch_secret} "
              f"malicious={malicious} hops={hops}")


def _gen_stale(seed: int, rng: random.Random, params: Dict) -> GadgetCase:
    plant_secret = _draw(params, "plant_secret", rng, (True, True, False))
    hops = _draw(params, "hops", rng, (0, 1, 2, 3))

    image = MemoryImage()
    secret = image.alloc("secret_word", 8, align=64)
    secret_value = rng.randrange(1, PROBE_ENTRIES)
    image.write_word(secret, secret_value)
    safe = image.alloc("safe_word", 8, align=64)
    safe_value = rng.choice([v for v in range(PROBE_ENTRIES)
                             if v != secret_value])
    image.write_word(safe, safe_value)
    ptr_slot = image.alloc("ptr_slot", 8, align=64)
    array2 = image.alloc("array2", PROBE_ENTRIES * DEFAULT_STRIDE)
    trigger = image.alloc_array("trigger_d", 2)
    image.write_word(trigger, 1)
    sp = image.alloc_stack(64)
    plant = "@secret_word" if plant_secret else "@safe_word"

    source = f"""
        li   r27, @array2
        li   r4, @secret_word
        load r15, r4, 0
        li   r5, @safe_word
        load r16, r5, 0
        li   r6, @ptr_slot
        load r8, r6, 0
        fence
        .repeat {_SETTLE_NOPS}, nop
        li   r7, {plant}
        store r7, r6, 0
        fence
        li   r9, @trigger_d
        clflush r9, 0
        fence
        load r21, r9, 0          # stalling load -> INV in runahead
        andi r22, r21, 0
        li   r23, @safe_word
        add  r24, r23, r22
        store r24, r6, 0         # INV data in runahead: dropped
        load r25, r6, 0          # stale plant inside runahead
        load r26, r25, 0
        {_hops("r26", hops, rng)}
        muli r28, r26, {DEFAULT_STRIDE}
        add  r28, r28, r27
        load r29, r28, 0         # transmit
        fence
        li   r1, {_DELAY_ITERS}
    delay:
        addi r1, r1, -1
        bne  r1, r0, delay
        halt
    """
    program = assemble(source, memory_image=image)
    return GadgetCase(
        name=f"gen:stale:{seed}", program=program, image=image,
        initial_sp=sp, secret_addrs=(secret,), secret_value=secret_value,
        probe_base=array2, probe_stride=DEFAULT_STRIDE,
        probe_entries=PROBE_ENTRIES, probe_free=True,
        expect_leak=bool(plant_secret),
        notes=f"plant_secret={plant_secret} hops={hops}")


def _gen_straight(seed: int, rng: random.Random, params: Dict) -> GadgetCase:
    ops = _draw(params, "ops", rng, (2, 4, 6))

    image = MemoryImage()
    secret = image.alloc("secret_word", 8, align=64)
    secret_value = rng.randrange(1, PROBE_ENTRIES)
    image.write_word(secret, secret_value)
    scratch = image.alloc_array("scratch", 8, align=64)
    image.write_words(scratch, [rng.randrange(64) for _ in range(8)])
    array2 = image.alloc("array2", PROBE_ENTRIES * DEFAULT_STRIDE)
    trigger = image.alloc_array("trigger_d", 2)
    image.write_word(trigger, 3)
    sp = image.alloc_stack(64)

    body = []
    for i in range(ops):
        body.append(rng.choice((
            f"addi r1{i % 4 + 1}, r11, {rng.randrange(8)}",
            f"xori r1{i % 4 + 1}, r12, {rng.randrange(8)}",
            f"slli r1{i % 4 + 1}, r13, {rng.randrange(3)}",
        )))
    alu = "\n        ".join(body)

    source = f"""
        li   r2, @scratch
        load r11, r2, 0
        load r12, r2, 8
        load r13, r2, 16
        {alu}
        store r11, r2, 24
        li   r9, @trigger_d
        clflush r9, 0
        fence
        load r21, r9, 0          # stalling load: opens runahead
        add  r22, r21, r11
        load r23, r2, 32         # scratch load on a clean address
        li   r1, {_DELAY_ITERS}
    delay:
        addi r1, r1, -1
        bne  r1, r0, delay
        halt
    """
    program = assemble(source, memory_image=image)
    return GadgetCase(
        name=f"gen:straight:{seed}", program=program, image=image,
        initial_sp=sp, secret_addrs=(secret,), secret_value=secret_value,
        probe_base=array2, probe_stride=DEFAULT_STRIDE,
        probe_entries=PROBE_ENTRIES, probe_free=True,
        expect_leak=False,
        notes=f"ops={ops}; no secret access anywhere")

"""The leak checker: architectural walk plus bounded transient windows.

The engine interprets a program concretely (the *architectural walk*,
mirroring :mod:`repro.isa.interpreter`) while tracking taint, cache
warmth and predictor state, and at each point where the pipeline would
execute transiently it forks a bounded *window* and keeps interpreting
under that window's semantics:

**Speculation windows** open at control decisions whose resolution is
delayed by a memory-level miss — a conditional branch with a ``slow``
source, an indirect jump with a trained BTB target that differs from
the actual one, a return whose stack slot disagrees with the RSB.  The
window follows the *not-architecturally-taken* path for at most
``spec_depth`` instructions (the reorder-buffer bound: once the miss
resolves, everything younger is squashed).  Warm-operand branches do
not fork: they resolve within a few cycles, far too fast for a
dependent transmit load to issue, and flagging them would accuse the
simulator of leaks it cannot reproduce.

**Runahead windows** open at every load from a cold line — the Fig. 6
trigger (memory-level miss at the head of the ROB).  The stalled load's
result goes INV and pseudo-execution continues for up to
``runahead_len`` instructions with the pipeline's runahead semantics:
INV propagates through the ALU, INV-source stores are dropped (the
stale-store gadget lives here), clean stores forward through a window-
local buffer (the runahead cache), in-window misses return INV, and an
INV-source branch falls back to its prediction — which the checker
explores in *both* directions, because the attacker trains the
predictor.  A leak found beyond such a predicted branch is attributed
to the ``speculation`` window (branch restrictions suppress it); a leak
on the un-predicted pseudo-execution path is attributed to
``runahead`` — SPECRUN's novel surface.

Defense models mirror :mod:`repro.defense` by name:

========== =========================================================
defense     model
========== =========================================================
original    both windows, nothing suppressed (also precise/vector)
none        runahead disabled — a no-runahead machine (no-runahead)
secure      runahead-window reports quarantined (SL-cache: runahead
            fills never become architecturally visible)
branch-skip speculation suppressed; INV forward conditionals are
            forced to skip their body, INV indirect control stops
            fetch (the restricted controller's two rules)
========== =========================================================

The checker is deliberately *conservative under defenses*: ``secure``
still reports speculation-window leaks it cannot always reproduce
empirically (on the secure machine, runahead entry preempts the normal-
mode wrong path).  The cross-check contract therefore runs one
direction per verdict: a flag under ``original`` must leak in the
simulator; a *clean* verdict under any defense must extract nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import INSTR_BYTES, WORD_BYTES, Opcode
from ..isa.registers import REG_SP
from .machine import (LINE_BYTES, PathState, alu_result, as_int,
                      branch_taken, line_of, mem_addr)
from .report import (WINDOW_RUNAHEAD, WINDOW_SPECULATION, WINDOWS,
                     LeakReport, VerifyResult, merge_reports)
from .taint import AbsValue, cap_chain, clean

#: Defense models, mirroring the controller names in
#: :data:`repro.harness.registry.CONTROLLERS` (validated by test).
DEFENSES = ("none", "no-runahead", "original", "precise", "vector",
            "secure", "branch-skip")

#: Defenses under which the runahead machinery never runs.
_NO_RUNAHEAD = ("none", "no-runahead")


class VerifyError(ValueError):
    """Bad checker configuration (unknown defense/window names...)."""


@dataclass
class VerifyOptions:
    """Exploration bounds (defaults mirror the paper core's geometry)."""

    #: Max instructions per speculation window (the 256-entry ROB).
    spec_depth: int = 256
    #: Max pseudo-executed instructions per runahead window — well
    #: under the real interval (a ~250-cycle memory stall at 4-wide
    #: pseudo-retire), so every flagged leak fits in the actual window.
    runahead_len: int = 512
    #: Architectural walk budget.
    max_arch_steps: int = 250_000
    #: Max predicted-branch forks inside one window (both-direction
    #: exploration of INV branches is exponential without this).
    max_window_forks: int = 6


_STORES = (Opcode.STORE, Opcode.FSTORE, Opcode.VSTORE)
_LOADS = (Opcode.LOAD, Opcode.FLOAD, Opcode.VLOAD)


class Checker:
    """One check run over one program.  Use :func:`check_program`."""

    def __init__(self, program, image=None, *,
                 secret_addrs: Sequence[int],
                 initial_sp: Optional[int] = None,
                 defense: Optional[str] = None,
                 windows: Sequence[str] = WINDOWS,
                 options: Optional[VerifyOptions] = None,
                 fork_filter: Optional[Callable[[int], bool]] = None):
        self.program = program
        self.image = image
        if not secret_addrs:
            raise VerifyError("secret_addrs must name at least one "
                              "secret word")
        self.secrets: Dict[int, str] = {}
        for addr in secret_addrs:
            self.secrets[int(addr)] = self._secret_label(int(addr))
        self.initial_sp = initial_sp
        defense = defense or "original"
        if defense not in DEFENSES:
            raise VerifyError(
                f"unknown defense {defense!r}; expected one of "
                f"{', '.join(DEFENSES)}")
        self.defense = defense
        for window in windows:
            if window not in WINDOWS:
                raise VerifyError(
                    f"unknown window {window!r}; expected one of "
                    f"{', '.join(WINDOWS)}")
        self.explore_spec = WINDOW_SPECULATION in windows and \
            defense != "branch-skip"
        self.explore_runahead = WINDOW_RUNAHEAD in windows and \
            defense not in _NO_RUNAHEAD
        self.windows = tuple(w for w in WINDOWS if w in windows)
        self.options = options or VerifyOptions()
        self.fork_filter = fork_filter
        # Predictor state, trained by the architectural walk only.
        self.bhist: Dict[int, bool] = {}
        self.btb: Dict[int, int] = {}
        # Results.
        self.reports: List[LeakReport] = []
        self.suppressed = 0
        self.arch_steps = 0
        self.window_steps = 0
        self.spec_forks = 0
        self.runahead_forks = 0
        self._fork_index = 0

    def _secret_label(self, addr: int) -> str:
        image = self.image
        if image is not None:
            for name, value in getattr(image, "symbols", {}).items():
                if value == addr:
                    return name
        return f"{addr:#x}"

    # -- fork bookkeeping --------------------------------------------------

    def _next_fork(self) -> Tuple[int, bool]:
        """Allocate a deterministic fork ordinal; second element tells
        whether this shard explores it (fork indices are stable across
        any sharding, so merged shard results are byte-identical)."""
        index = self._fork_index
        self._fork_index += 1
        explore = self.fork_filter is None or self.fork_filter(index)
        return index, explore

    # -- architectural walk ------------------------------------------------

    def run(self) -> VerifyResult:
        state = PathState.initial(self.image, self.initial_sp)
        program = self.program
        limit = self.options.max_arch_steps
        while not state.halted and self.arch_steps < limit:
            instr = program.fetch(state.pc)
            if instr is None:
                break
            self.arch_steps += 1
            opcode = instr.opcode
            if opcode is Opcode.HALT:
                break
            if instr.cond_branch:
                self._arch_cond_branch(state, instr)
            elif opcode is Opcode.JMP:
                state.pc = instr.target
            elif opcode is Opcode.JR:
                self._arch_jr(state, instr)
            elif opcode is Opcode.CALL:
                self._arch_call(state, instr)
            elif opcode is Opcode.RET:
                self._arch_ret(state, instr)
            elif opcode in _LOADS:
                self._arch_load(state, instr)
            elif opcode in _STORES:
                self._arch_store(state, instr)
            elif opcode is Opcode.CLFLUSH:
                addr = mem_addr(instr, state)
                state.flush(as_int(addr.val))
                state.pc += INSTR_BYTES
            else:
                value = alu_result(instr, state, self.arch_steps)
                if instr.dest is not None:
                    state.write_reg(instr.dest, value)
                state.pc += INSTR_BYTES
        reports = merge_reports(self.reports)
        return VerifyResult(
            reports=reports, defense=self.defense, windows=self.windows,
            arch_steps=self.arch_steps, window_steps=self.window_steps,
            spec_forks=self.spec_forks, runahead_forks=self.runahead_forks,
            suppressed=self.suppressed)

    def _arch_cond_branch(self, state: PathState, instr) -> None:
        a = state.read_reg(instr.srcs[0])
        b = state.read_reg(instr.srcs[1])
        taken = branch_taken(instr, a, b)
        if self.explore_spec and (a.slow or b.slow):
            # Resolution waits on a memory-level miss: the wrong path
            # runs for the stall.  The attacker trains the predictor, so
            # the non-architectural direction is the reachable one.
            index, explore = self._next_fork()
            self.spec_forks += 1
            if explore:
                wrong = state.fork()
                wrong.pc = (state.pc + INSTR_BYTES) if taken \
                    else instr.target
                self._explore(wrong, mode="spec", fork_pc=state.pc,
                              fork_index=index, crossed=True)
        self.bhist[state.pc] = taken
        state.pc = instr.target if taken else state.pc + INSTR_BYTES
        if instr.dest is not None:
            state.write_reg(instr.dest, clean(0))

    def _arch_jr(self, state: PathState, instr) -> None:
        src = state.read_reg(instr.srcs[0])
        target = as_int(src.val) & ~3
        if self.explore_spec and src.slow:
            predicted = self.btb.get(state.pc)
            if predicted is not None and predicted != target:
                index, explore = self._next_fork()
                self.spec_forks += 1
                if explore:
                    wrong = state.fork()
                    wrong.pc = predicted
                    self._explore(wrong, mode="spec", fork_pc=state.pc,
                                  fork_index=index, crossed=True)
        self.btb[state.pc] = target
        state.pc = target

    def _arch_call(self, state: PathState, instr) -> None:
        sp = state.read_reg(REG_SP)
        new_sp = (as_int(sp.val) - WORD_BYTES) & ~(WORD_BYTES - 1)
        state.write_word(new_sp, clean(state.pc + INSTR_BYTES))
        state.touch(new_sp, self.arch_steps)
        state.write_reg(REG_SP, clean(new_sp))
        state.rsb.append(state.pc + INSTR_BYTES)
        state.pc = instr.target

    def _arch_ret(self, state: PathState, instr) -> None:
        sp = state.read_reg(REG_SP)
        addr = as_int(sp.val) & ~(WORD_BYTES - 1)
        cold = not state.is_warm(addr, self.arch_steps)
        if self.explore_runahead and cold:
            # Fig. 4c: the ret itself is the stalling load — runahead
            # enters with the return target unresolvable.
            index, explore = self._next_fork()
            self.runahead_forks += 1
            if explore:
                self._runahead_window(state, fork_pc=state.pc,
                                      fork_index=index)
        slot = state.read_word(addr)
        target = as_int(slot.val) & ~3
        predicted = state.rsb[-1] if state.rsb else None
        if self.explore_spec and predicted is not None and \
                predicted != target and (slot.slow or cold):
            index, explore = self._next_fork()
            self.spec_forks += 1
            if explore:
                wrong = state.fork()
                wrong.pc = predicted
                self._explore(wrong, mode="spec", fork_pc=state.pc,
                              fork_index=index, crossed=True)
        if state.rsb:
            state.rsb.pop()
        state.touch(addr, self.arch_steps)
        state.write_reg(REG_SP, clean(as_int(sp.val) + WORD_BYTES))
        state.pc = target

    def _arch_load(self, state: PathState, instr) -> None:
        addr_v = mem_addr(instr, state)
        addr = as_int(addr_v.val)
        cold = not state.is_warm(addr, self.arch_steps)
        if self.explore_runahead and cold:
            index, explore = self._next_fork()
            self.runahead_forks += 1
            if explore:
                self._runahead_window(state, fork_pc=state.pc,
                                      fork_index=index)
        value = self._load_word(state, instr, addr, slow=cold)
        state.touch(addr, self.arch_steps)
        if instr.opcode is Opcode.VLOAD:
            state.touch(addr + WORD_BYTES, self.arch_steps)
        if instr.dest is not None:
            state.write_reg(instr.dest, value)
        state.pc += INSTR_BYTES

    def _load_word(self, state: PathState, instr, addr: int,
                   slow: bool) -> AbsValue:
        """Read memory, applying secret taint at the source address."""
        if instr.opcode is Opcode.VLOAD:
            lane0 = state.read_word(addr)
            lane1 = state.read_word(addr + WORD_BYTES)
            taint = lane0.taint | lane1.taint
            chain = cap_chain(lane0.chain + lane1.chain)
            value = AbsValue((as_int(lane0.val), as_int(lane1.val)), taint,
                             False, slow, chain)
            for word in (addr, addr + WORD_BYTES):
                value = self._apply_secret(value, word, state.pc)
            return value
        stored = state.read_word(addr)
        val = stored.val
        if instr.opcode is Opcode.FLOAD:
            val = float(val or 0)
        else:
            val = as_int(val)
        value = AbsValue(val, stored.taint, stored.inv,
                         slow or stored.slow, stored.chain)
        return self._apply_secret(value, addr, state.pc)

    def _apply_secret(self, value: AbsValue, addr: int, pc: int) -> AbsValue:
        label = self.secrets.get(addr)
        if label is None:
            return value
        return AbsValue(value.val, value.taint | {label}, value.inv,
                        value.slow, cap_chain(value.chain + (pc,)))

    def _arch_store(self, state: PathState, instr) -> None:
        addr_v = mem_addr(instr, state)
        addr = as_int(addr_v.val)
        data = state.read_reg(instr.srcs[0])
        if instr.opcode is Opcode.VSTORE:
            lanes = data.val if isinstance(data.val, tuple) \
                else (as_int(data.val), as_int(data.val))
            for off, lane in zip((0, WORD_BYTES), lanes):
                state.write_word(addr + off,
                                 AbsValue(as_int(lane), data.taint, False,
                                          data.slow, data.chain))
                state.touch(addr + off, self.arch_steps)
        else:
            val = float(data.val or 0) if instr.opcode is Opcode.FSTORE \
                else as_int(data.val)
            state.write_word(addr, AbsValue(val, data.taint, False,
                                            data.slow, data.chain))
            state.touch(addr, self.arch_steps)
        state.pc += INSTR_BYTES

    # -- transient windows -------------------------------------------------

    def _runahead_window(self, state: PathState, fork_pc: int,
                         fork_index: int) -> None:
        """Fork pseudo-execution at a stalling load (Fig. 6 entry)."""
        window = state.fork()
        # The stalling load executes first under window semantics: its
        # line is pending for the whole interval, so its result is INV
        # (or, for a ret, its target is unresolvable).
        self._explore(window, mode="runahead", fork_pc=fork_pc,
                      fork_index=fork_index, crossed=False)

    def _explore(self, state: PathState, mode: str, fork_pc: int,
                 fork_index: int, crossed: bool) -> None:
        """Interpret one window path; recurses on INV-branch forks."""
        # Fills do not settle inside a window: warmth is judged at the
        # clock the window opened on (a real fill outlasts the window).
        now = self.arch_steps
        budget = self.options.runahead_len if mode == "runahead" \
            else self.options.spec_depth
        # Predicted-branch fork allowance, shared by every path in this
        # window (per-path budgets compound exponentially).
        forks = {"left": self.options.max_window_forks}
        # Window-local store buffer: addresses written by non-dropped
        # in-window stores are readable even on cold lines (the
        # runahead cache / store-queue forwarding).
        stored = set()
        work = [(state, crossed)]
        program = self.program
        while work:
            state, crossed = work.pop()
            while state.steps < budget and not state.halted:
                instr = program.fetch(state.pc)
                if instr is None:
                    break
                state.steps += 1
                self.window_steps += 1
                opcode = instr.opcode
                if opcode is Opcode.HALT:
                    break
                if instr.cond_branch:
                    outcome = self._window_cond_branch(
                        state, instr, forks, work)
                    if outcome is None:
                        break
                    crossed = crossed or outcome
                elif opcode is Opcode.JMP:
                    state.pc = instr.target
                elif opcode is Opcode.JR:
                    src = state.read_reg(instr.srcs[0])
                    if src.inv:
                        if self.defense == "branch-skip":
                            break   # stop fetch on INV indirect control
                        predicted = self.btb.get(state.pc)
                        if predicted is None:
                            break
                        crossed = True
                        state.pc = predicted
                    else:
                        state.pc = as_int(src.val) & ~3
                elif opcode is Opcode.CALL:
                    # The return-address store forwards through the
                    # store queue in-window — no cache fill involved.
                    sp = state.read_reg(REG_SP)
                    new_sp = (as_int(sp.val) - WORD_BYTES) & \
                        ~(WORD_BYTES - 1)
                    state.write_word(new_sp, clean(state.pc + INSTR_BYTES))
                    stored.add(new_sp)
                    state.write_reg(REG_SP, clean(new_sp))
                    state.rsb.append(state.pc + INSTR_BYTES)
                    state.pc = instr.target
                elif opcode is Opcode.RET:
                    outcome = self._window_ret(state, instr, mode,
                                               fork_pc, fork_index, crossed,
                                               stored, now)
                    if outcome is None:
                        break
                    crossed = crossed or outcome
                elif opcode in _LOADS:
                    self._window_load(state, instr, mode, fork_pc,
                                      fork_index, crossed, stored, now)
                elif opcode in _STORES:
                    self._window_store(state, instr, stored)
                elif opcode is Opcode.CLFLUSH:
                    addr_v = mem_addr(instr, state)
                    if not addr_v.inv:
                        state.flush(as_int(addr_v.val))
                    state.pc += INSTR_BYTES
                else:
                    value = alu_result(instr, state, state.steps)
                    if instr.dest is not None:
                        state.write_reg(instr.dest, value)
                    state.pc += INSTR_BYTES

    def _window_cond_branch(self, state, instr, forks, work):
        """Returns True if a prediction was crossed, None to stop."""
        a = state.read_reg(instr.srcs[0])
        b = state.read_reg(instr.srcs[1])
        if not (a.inv or b.inv):
            taken = branch_taken(instr, a, b)
            state.pc = instr.target if taken else state.pc + INSTR_BYTES
            return False
        # INV-source branch: never resolves inside the window.
        if self.defense == "branch-skip":
            if instr.target > state.pc:
                # Forward conditional: forced to skip its body.
                state.pc = instr.target
                return False
            return None     # backward INV conditional: stop fetch
        # The prediction stands for the whole interval and the attacker
        # trains it — explore both directions.
        pc = state.pc
        if forks["left"] > 0:
            forks["left"] -= 1
            other = state.fork()
            other.steps = state.steps
            other.pc = instr.target
            work.append((other, True))
            state.pc = pc + INSTR_BYTES
            return True
        predicted = self.bhist.get(pc, False)
        state.pc = instr.target if predicted else pc + INSTR_BYTES
        return True

    def _window_ret(self, state, instr, mode, fork_pc, fork_index,
                    crossed, stored, now):
        sp = state.read_reg(REG_SP)
        if sp.inv:
            return None
        addr = as_int(sp.val) & ~(WORD_BYTES - 1)
        self._check_leak(state, sp, instr, mode, fork_pc, fork_index,
                         crossed)
        available = addr in stored or \
            (state.is_warm(addr, now) and line_of(addr) not in state.pending)
        state.write_reg(REG_SP, clean(as_int(sp.val) + WORD_BYTES))
        if available:
            slot = state.read_word(addr)
            target = as_int(slot.val) & ~3
            if state.rsb:
                state.rsb.pop()
            state.pc = target
            return False
        # Unresolvable return: the target is INV — branch restrictions
        # stop fetch; otherwise the RSB prediction stands (Fig. 4c).
        state.pending.add(line_of(addr))
        if self.defense == "branch-skip" or not state.rsb:
            return None
        state.pc = state.rsb.pop()
        return True

    def _window_load(self, state, instr, mode, fork_pc, fork_index,
                     crossed, stored, now):
        addr_v = mem_addr(instr, state)
        if addr_v.inv:
            # INV address: the access is dropped entirely — no fill, no
            # footprint, no leak (the pipeline's _issue_inv path).
            if instr.dest is not None:
                state.write_reg(instr.dest,
                                AbsValue(0, addr_v.taint, True, False,
                                         addr_v.chain))
            state.pc += INSTR_BYTES
            return
        addr = as_int(addr_v.val)
        self._check_leak(state, addr_v, instr, mode, fork_pc, fork_index,
                         crossed)
        available = addr in stored or \
            (state.is_warm(addr, now) and line_of(addr) not in state.pending)
        if available:
            value = self._load_word(state, instr, addr, slow=False)
        else:
            # In-window miss: the fill will not return inside the
            # window; the access still warms the line (prefetch), which
            # is exactly the footprint the leak check just examined.
            state.pending.add(line_of(addr))
            value = AbsValue(0, frozenset(), True, False, ())
        if instr.dest is not None:
            state.write_reg(instr.dest, value)
        state.pc += INSTR_BYTES

    def _window_store(self, state, instr, stored):
        addr_v = mem_addr(instr, state)
        data = state.read_reg(instr.srcs[0])
        if addr_v.inv or data.inv:
            # Dropped: never reaches the runahead cache / store queue.
            # A later load sees the *stale* memory value — the
            # stale-store gadget's enabling semantics.
            state.pc += INSTR_BYTES
            return
        addr = as_int(addr_v.val)
        if instr.opcode is Opcode.VSTORE:
            lanes = data.val if isinstance(data.val, tuple) \
                else (as_int(data.val), as_int(data.val))
            for off, lane in zip((0, WORD_BYTES), lanes):
                state.write_word(addr + off,
                                 AbsValue(as_int(lane), data.taint, False,
                                          False, data.chain))
                stored.add(addr + off)
        else:
            val = float(data.val or 0) if instr.opcode is Opcode.FSTORE \
                else as_int(data.val)
            state.write_word(addr, AbsValue(val, data.taint, False, False,
                                            data.chain))
            stored.add(addr)
        state.pc += INSTR_BYTES

    def _check_leak(self, state, addr_v: AbsValue, instr, mode,
                    fork_pc, fork_index, crossed) -> None:
        if not addr_v.taint:
            return
        window = WINDOW_SPECULATION if (mode == "spec" or crossed) \
            else WINDOW_RUNAHEAD
        if self.defense == "secure" and window == WINDOW_RUNAHEAD:
            # SL-cache quarantine: the fill never becomes visible.
            self.suppressed += 1
            return
        addr = None if addr_v.val is None else as_int(addr_v.val)
        self.reports.append(LeakReport(
            pc=state.pc, window=window,
            taint=tuple(sorted(addr_v.taint)),
            chain=cap_chain(addr_v.chain + (state.pc,)),
            fork_pc=fork_pc, fork_index=fork_index,
            depth=state.steps, addr=addr))


def check_program(program, image=None, *, secret_addrs,
                  initial_sp=None, defense=None, windows=WINDOWS,
                  options=None, fork_filter=None) -> VerifyResult:
    """Statically check one program for transient secret leaks.

    Returns a :class:`~repro.verify.report.VerifyResult` whose
    ``reports`` name every load address that carries secret taint
    inside a speculation or runahead window, under the given defense
    model.  See the module docstring for window and defense semantics.
    """
    checker = Checker(program, image, secret_addrs=secret_addrs,
                      initial_sp=initial_sp, defense=defense,
                      windows=windows, options=options,
                      fork_filter=fork_filter)
    return checker.run()

"""Leak reports: what the checker found, where, and why.

A :class:`LeakReport` names one load whose *address* carried secret
taint inside a transient window.  ``window`` records which machine
feature makes the load reachable:

``"speculation"``
    The load sits beyond a *predicted* control decision — a wrong-path
    excursion in normal mode (classic Spectre, bounded by the ROB) or a
    branch whose sources were INV during runahead, where the prediction
    stands unresolved for the whole interval (the paper's Fig. 4).
``"runahead"``
    The load sits on the post-miss pseudo-execution path itself, with
    no predicted decision in between — reachable purely because runahead
    keeps executing past a memory-level miss (SPECRUN's novel window;
    the stale-store gadget is the canonical member).

The split mirrors the two defenses: the secure controller quarantines
runahead fills (kills ``runahead`` reports), branch restrictions pin
down unresolvable branches (kill ``speculation`` reports).

Reports are plain data — JSON round-trippable, stably ordered, and
deduplicated on ``(pc, window, taint)`` — so they can be pinned as
golden fixtures and diffed across checker refactors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

WINDOW_SPECULATION = "speculation"
WINDOW_RUNAHEAD = "runahead"
WINDOWS = (WINDOW_SPECULATION, WINDOW_RUNAHEAD)


@dataclass(frozen=True)
class LeakReport:
    """One secret-tainted load address inside a transient window."""

    #: Address of the leaking load instruction.
    pc: int
    #: ``"speculation"`` or ``"runahead"`` (see module docstring).
    window: str
    #: Sorted taint labels carried by the load address.
    taint: Tuple[str, ...]
    #: Taint provenance: pcs from the tainting load to the leaking load
    #: (capped; first and last entries are always preserved).
    chain: Tuple[int, ...]
    #: Where the window opened: the stalling/mispredicted instruction.
    fork_pc: int
    #: Deterministic ordinal of the window (sharding key).
    fork_index: int
    #: Instructions executed inside the window before the leak.
    depth: int
    #: Concrete leak address when the checker resolved one, else None.
    addr: Optional[int] = None

    def key(self) -> Tuple:
        """Dedup identity: one report per (pc, window, taint)."""
        return (self.pc, self.window, self.taint)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pc": self.pc,
            "window": self.window,
            "taint": list(self.taint),
            "chain": list(self.chain),
            "fork_pc": self.fork_pc,
            "fork_index": self.fork_index,
            "depth": self.depth,
            "addr": self.addr,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LeakReport":
        return cls(pc=data["pc"], window=data["window"],
                   taint=tuple(data["taint"]), chain=tuple(data["chain"]),
                   fork_pc=data["fork_pc"], fork_index=data["fork_index"],
                   depth=data["depth"], addr=data.get("addr"))


@dataclass
class VerifyResult:
    """Outcome of one :func:`~repro.verify.engine.check_program` run."""

    reports: List[LeakReport] = field(default_factory=list)
    #: Defense model the check ran under ("original" when undefended).
    defense: str = "original"
    #: Window kinds that were explored.
    windows: Tuple[str, ...] = WINDOWS
    arch_steps: int = 0
    window_steps: int = 0
    #: Windows opened, by kind (filtered-out shards still count forks).
    spec_forks: int = 0
    runahead_forks: int = 0
    #: Reports dropped by the defense model (e.g. secure quarantine).
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.reports

    def by_window(self, window: str) -> List[LeakReport]:
        return [r for r in self.reports if r.window == window]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "defense": self.defense,
            "windows": list(self.windows),
            "clean": self.clean,
            "reports": [r.to_dict() for r in self.reports],
            "arch_steps": self.arch_steps,
            "window_steps": self.window_steps,
            "spec_forks": self.spec_forks,
            "runahead_forks": self.runahead_forks,
            "suppressed": self.suppressed,
        }


def merge_reports(*groups) -> List[LeakReport]:
    """Union report lists (e.g. from shards) into canonical order.

    Deduplicates on :meth:`LeakReport.key`, keeping the report from the
    earliest window (lowest ``(fork_index, depth)``), then sorts — the
    same report set in the same order no matter how exploration was
    split across executors.
    """
    best: Dict[Tuple, LeakReport] = {}
    for group in groups:
        for report in group:
            key = report.key()
            prior = best.get(key)
            if prior is None or (report.fork_index, report.depth) < \
                    (prior.fork_index, prior.depth):
                best[key] = report
    return sorted(best.values(),
                  key=lambda r: (r.pc, r.window, r.taint, r.fork_index))

"""Abstract machine state for the leak checker.

A :class:`PathState` is everything one execution path owns: the
register file (of :class:`~repro.verify.taint.AbsValue`), a concrete
memory overlay, the warm-line set standing in for the cache hierarchy,
and the return-stack. Forking a window copies the state, so windows
never perturb the architectural walk — the same isolation the pipeline
gets from its checkpoint/squash machinery, for the price of a dict copy.

The cache model is three-state per line: *cold* (never filled, or
evicted), *pending* (an access started the fill fewer than
:data:`FILL_SETTLE_STEPS` architectural steps ago — the memory latency,
in instruction-count units), and *warm* (fill settled; loads hit).  A
load from a cold or pending line is a memory-level miss: it stalls —
opening a runahead window and making its result ``slow`` — and its
value is unavailable (INV) inside a transient window.  The pending
state matters: a flushed line written by a store (write-allocate) and
read moments later is still a miss — exactly how the rsb-flush gadget
turns a ``ret`` into the stalling load even though the ``call`` just
wrote the line.  ``clflush`` evicts.  The model has no sets, ways, or
inclusion — the cycle simulator owns that fidelity, and the cross-check
harness (:mod:`repro.verify.crosscheck`) keeps the two honest against
each other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import (ALU_EVAL, INSTR_BYTES, WORD_BYTES, Opcode,
                                eval_branch, to_signed64, to_unsigned64)
from ..isa.registers import NUM_ARCH_REGS, REG_SP, REG_ZERO
from .taint import AbsValue, ZERO, cap_chain, clean, combine

#: Cache-line granularity of the warm/cold model (the hierarchy's line).
LINE_BYTES = 64

#: Architectural steps a fill stays *pending* before the line is warm —
#: the memory latency in instruction-count units.  Any value above the
#: few-instruction flush/store/ret gaps the gadgets use and below the
#: shortest settle sled (the attacks' delay loops run ~1800 steps)
#: reproduces the simulator's hit/miss decisions.
FILL_SETTLE_STEPS = 100


def line_of(addr: int) -> int:
    return addr & ~(LINE_BYTES - 1)


class PathState:
    """Register file, memory overlay, fill map and RSB for one path."""

    __slots__ = ("regs", "mem", "fills", "pending", "rsb", "pc", "halted",
                 "steps")

    def __init__(self, regs: List[AbsValue], mem: Dict[int, AbsValue],
                 fills: Dict[int, int], rsb: List[int], pc: int = 0):
        self.regs = regs
        self.mem = mem
        #: line -> architectural step its fill started (see module doc).
        self.fills = fills
        #: Lines whose fill is in flight inside this window — reads stay
        #: INV for the remainder of the window (the stalling line and
        #: every runahead prefetch it shadows).
        self.pending: Set[int] = set()
        self.rsb = rsb
        self.pc = pc
        self.halted = False
        self.steps = 0

    @classmethod
    def initial(cls, image=None, initial_sp: Optional[int] = None,
                secret_addrs: Tuple[int, ...] = ()) -> "PathState":
        regs = [ZERO] * NUM_ARCH_REGS
        if initial_sp is not None:
            regs[REG_SP] = clean(to_unsigned64(initial_sp))
        mem: Dict[int, AbsValue] = {}
        if image is not None:
            for addr, value in image.initial_words().items():
                mem[addr] = clean(value)
        return cls(regs=regs, mem=mem, fills={}, rsb=[], pc=0)

    def fork(self) -> "PathState":
        """Copy-on-fork snapshot for a transient window."""
        child = PathState(regs=list(self.regs), mem=dict(self.mem),
                          fills=dict(self.fills), rsb=list(self.rsb),
                          pc=self.pc)
        child.pending = set(self.pending)
        return child

    # -- registers ---------------------------------------------------------

    def read_reg(self, reg: int) -> AbsValue:
        if reg == REG_ZERO:
            return ZERO
        return self.regs[reg]

    def write_reg(self, reg: int, value: AbsValue) -> None:
        if reg != REG_ZERO:
            self.regs[reg] = value

    # -- memory ------------------------------------------------------------

    def read_word(self, addr: int) -> AbsValue:
        value = self.mem.get(addr)
        return value if value is not None else ZERO

    def write_word(self, addr: int, value: AbsValue) -> None:
        self.mem[addr] = value

    def is_warm(self, addr: int, now: int) -> bool:
        """Fill settled: a load at arch step ``now`` hits."""
        started = self.fills.get(line_of(addr))
        return started is not None and now - started >= FILL_SETTLE_STEPS

    def touch(self, addr: int, now: int) -> None:
        """Record an access: starts a fill on a cold line (re-touching
        a pending or warm line does not restart its fill)."""
        self.fills.setdefault(line_of(addr), now)

    def flush(self, addr: int) -> None:
        self.fills.pop(line_of(addr), None)


def as_int(value) -> int:
    if type(value) is int:
        return to_unsigned64(value)
    if isinstance(value, float):
        return to_unsigned64(int(value))
    if isinstance(value, tuple):
        return to_unsigned64(int(value[0]))
    return to_unsigned64(int(value or 0))


def alu_result(instr, state: PathState, step_count: int) -> AbsValue:
    """Evaluate a non-memory, non-branch instruction with taint join."""
    op = instr.op
    fn = ALU_EVAL[op]
    srcs = instr.srcs
    sources = [state.read_reg(r) for r in srcs]
    if fn is not None:
        n = instr.n_srcs
        a = as_int(sources[0].val) if n else 0
        b = as_int(sources[1].val) if n > 1 else None
        return combine(fn(a, b, instr.imm), sources, instr_pc(instr, state))
    opcode = instr.opcode
    if opcode is Opcode.RDTSC:
        return clean(step_count)
    if opcode in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
        a, b = float(sources[0].val or 0), float(sources[1].val or 0)
        if opcode is Opcode.FADD:
            val = a + b
        elif opcode is Opcode.FSUB:
            val = a - b
        elif opcode is Opcode.FMUL:
            val = a * b
        else:
            val = a / b if b else float("inf")
        return combine(val, sources, instr_pc(instr, state))
    if opcode is Opcode.FCVT:
        return combine(float(to_signed64(as_int(sources[0].val))), sources,
                       instr_pc(instr, state))
    if opcode is Opcode.FMOV:
        return combine(float(sources[0].val or 0), sources,
                       instr_pc(instr, state))
    if opcode in (Opcode.VADD, Opcode.VMUL):
        a = _as_vec(sources[0].val)
        b = _as_vec(sources[1].val)
        if opcode is Opcode.VADD:
            val = (to_unsigned64(a[0] + b[0]), to_unsigned64(a[1] + b[1]))
        else:
            val = (to_unsigned64(a[0] * b[0]), to_unsigned64(a[1] * b[1]))
        return combine(val, sources, instr_pc(instr, state))
    if opcode is Opcode.VSPLAT:
        lane = as_int(sources[0].val)
        return combine((lane, lane), sources, instr_pc(instr, state))
    if opcode is Opcode.VEXTRACT:
        return combine(_as_vec(sources[0].val)[instr.imm & 1], sources,
                       instr_pc(instr, state))
    # nop / fence / halt produce nothing.
    return ZERO


def _as_vec(value):
    if isinstance(value, tuple):
        return value
    return (as_int(value), as_int(value))


def instr_pc(instr, state: PathState) -> int:
    # The current pc is tracked on the state; instructions are
    # position-independent objects.
    return state.pc


def mem_addr(instr, state: PathState) -> AbsValue:
    """Effective address value (base + imm) with annotations joined."""
    if instr.opcode in (Opcode.STORE, Opcode.FSTORE, Opcode.VSTORE):
        base = state.read_reg(instr.srcs[1])
    else:
        base = state.read_reg(instr.srcs[0])
    val = to_unsigned64(as_int(base.val) + instr.imm) & ~(WORD_BYTES - 1)
    return AbsValue(val, base.taint, base.inv, base.slow, base.chain)


def branch_taken(instr, a: AbsValue, b: AbsValue) -> bool:
    return eval_branch(instr.opcode, as_int(a.val), as_int(b.val))


NEXT = INSTR_BYTES

"""Differential cross-check: checker verdicts against the simulator.

The static checker (:mod:`repro.verify.engine`) and the cycle simulator
(:mod:`repro.pipeline`) model the same transient-execution semantics at
very different fidelities; this module keeps them honest against each
other.  For every target and defense the contract has two directions:

**Direction A (no phantom flags).**  A gadget the checker flags on the
undefended machine (``defense="original"``) must *empirically* leak the
secret when run under :class:`~repro.runahead.original.OriginalRunahead`.

**Direction B (no missed leaks).**  A ``clean`` verdict under any
defense means the corresponding controller must extract nothing when
the program actually runs.  (A *flag* under a defense is allowed to be
conservative: e.g. the secure machine's runahead entry preempts some
normal-mode wrong paths the checker still reports.)

Two empirical oracles decide "did it leak":

* **attack oracle** — targets wrapping a registered attack variant
  replay through :class:`~repro.attack.specrun.SpecRunAttack`; the
  in-program probe's verdict (``succeeded``: the recovered value *is*
  the planted secret) is the ground truth.
* **footprint oracle** — probe-free gadgets (stale-store, generated
  programs) have no probe loop; instead the reference interpreter
  replays the program recording its architectural accesses, and any
  probe line warm in the simulator's hierarchy that the architectural
  run never touched is a transient transmission.  The leak predicate is
  the *secret's* probe entry showing up in that difference.  (This
  oracle cannot see through an in-program probe loop, which
  architecturally touches every probe line — hence the split.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..defense.restrictions import BranchRestrictedRunahead
from ..defense.secure import SecureRunahead
from ..isa.interpreter import run_program
from ..pipeline.config import CoreConfig
from ..pipeline.core import Core
from ..runahead.base import NoRunahead
from ..runahead.original import OriginalRunahead
from ..runahead.precise import PreciseRunahead
from ..runahead.vector import VectorRunahead
from .engine import VerifyOptions, check_program
from .report import VerifyResult
from .targets import GadgetCase, build_target, target_names

#: Defense name -> controller factory (mirrors harness CONTROLLERS;
#: instantiated fresh per run — controllers carry per-run state).
_CONTROLLER_FACTORIES = {
    "none": NoRunahead,
    "no-runahead": NoRunahead,
    "original": OriginalRunahead,
    "precise": PreciseRunahead,
    "vector": VectorRunahead,
    "secure": SecureRunahead,
    "branch-skip": BranchRestrictedRunahead,
}

#: The defense sweep the cross-check preset exercises by default.
DEFAULT_DEFENSES = ("original", "no-runahead", "secure", "branch-skip")

#: Hierarchy levels counted as a warm (hit-latency) line.
_WARM_LEVELS = ("l1", "l2", "l3")

_DEFAULT_MAX_CYCLES = 3_000_000


@dataclass
class CellOutcome:
    """One (target, defense) cell of the differential matrix."""

    target: str
    defense: str
    #: Checker verdict: any reports under this defense model?
    flagged: bool
    n_reports: int
    #: Window kinds among the reports ("speculation"/"runahead").
    windows: Tuple[str, ...]
    #: Empirical verdict: did the simulator extract the secret?
    leaked: bool
    #: Which oracle produced ``leaked``: "attack" or "footprint".
    oracle: str
    #: Contract satisfied for this cell?
    ok: bool
    detail: str = ""

    def to_dict(self) -> Dict:
        return {
            "target": self.target, "defense": self.defense,
            "flagged": self.flagged, "n_reports": self.n_reports,
            "windows": list(self.windows), "leaked": self.leaked,
            "oracle": self.oracle, "ok": self.ok, "detail": self.detail,
        }


@dataclass
class CrossCheckResult:
    """All cells for one target (or one whole sweep)."""

    cells: List[CellOutcome] = field(default_factory=list)
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def extend(self, other: "CrossCheckResult") -> None:
        self.cells.extend(other.cells)
        self.disagreements.extend(other.disagreements)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "cells": [c.to_dict() for c in self.cells],
            "disagreements": list(self.disagreements),
        }


def make_defense_controller(defense: str):
    """Fresh controller instance for a defense name."""
    try:
        factory = _CONTROLLER_FACTORIES[defense]
    except KeyError:
        raise KeyError(
            f"unknown defense {defense!r}; known: "
            f"{sorted(set(_CONTROLLER_FACTORIES))}") from None
    return factory()


def empirical_secret_leak(case: GadgetCase, defense: str,
                          max_cycles: int = _DEFAULT_MAX_CYCLES,
                          config: Optional[CoreConfig] = None
                          ) -> Tuple[bool, str, str]:
    """Run the target on the simulator; did the secret get out?

    Returns ``(leaked, oracle, detail)``.
    """
    if case.attack_variant is not None:
        from ..attack.specrun import SpecRunAttack
        attack = SpecRunAttack(variant=case.attack_variant,
                               runahead=make_defense_controller(defense),
                               config=config, **case.attack_kwargs)
        result = attack.run(max_cycles=max_cycles)
        return (result.succeeded, "attack",
                f"recovered={result.recovered_secret}")
    return _footprint_leak(case, defense, max_cycles, config)


def _footprint_leak(case: GadgetCase, defense: str, max_cycles: int,
                    config: Optional[CoreConfig]) -> Tuple[bool, str, str]:
    """Footprint-diff oracle for probe-free gadgets."""
    core = Core(case.program, memory_image=case.image,
                config=config or CoreConfig.paper(),
                runahead=make_defense_controller(defense),
                initial_sp=case.initial_sp, warm_icache=True)
    core.run(max_cycles=max_cycles)
    if not core.halted:
        raise RuntimeError(f"target {case.name!r} did not finish in "
                           f"{max_cycles} cycles under {defense!r}")
    now = core.cycle
    warm = set()
    for i in range(case.probe_entries):
        addr = case.probe_base + i * case.probe_stride
        _, level = core.hierarchy.probe_latency(addr, now)
        if level in _WARM_LEVELS:
            warm.add(i)
    # The architectural footprint, from the reference interpreter.
    ref = run_program(case.program, memory_image=case.image,
                      initial_sp=case.initial_sp, record_accesses=True,
                      max_steps=max_cycles)
    probe_end = case.probe_base + case.probe_entries * case.probe_stride
    arch = set()
    for addr in ref.accesses:
        if case.probe_base <= addr < probe_end:
            arch.add((addr - case.probe_base) // case.probe_stride)
    transient = sorted(warm - arch)
    leaked = case.secret_value in transient
    return (leaked, "footprint",
            f"transient_probe_lines={transient}")


def cross_check_case(case: GadgetCase,
                     defenses: Sequence[str] = DEFAULT_DEFENSES,
                     options: Optional[VerifyOptions] = None,
                     max_cycles: int = _DEFAULT_MAX_CYCLES,
                     config: Optional[CoreConfig] = None
                     ) -> CrossCheckResult:
    """Run the full contract for one target across ``defenses``."""
    result = CrossCheckResult()
    for defense in defenses:
        verdict: VerifyResult = check_program(
            case.program, case.image, secret_addrs=case.secret_addrs,
            initial_sp=case.initial_sp, defense=defense, options=options)
        flagged = not verdict.clean
        leaked, oracle, detail = empirical_secret_leak(
            case, defense, max_cycles=max_cycles, config=config)
        problems = []
        if not flagged and leaked:
            problems.append(
                f"{case.name}/{defense}: checker said clean but the "
                f"simulator extracted the secret ({detail})")
        if flagged and defense == "original" and not leaked:
            problems.append(
                f"{case.name}/{defense}: checker flagged "
                f"{len(verdict.reports)} leak(s) but the simulator "
                f"extracted nothing ({detail})")
        if defense == "original" and case.expect_leak and not flagged:
            problems.append(
                f"{case.name}/original: known-leaking gadget not flagged")
        if defense == "original" and not case.expect_leak and flagged:
            problems.append(
                f"{case.name}/original: known-safe gadget flagged")
        windows = tuple(sorted({r.window for r in verdict.reports}))
        result.cells.append(CellOutcome(
            target=case.name, defense=defense, flagged=flagged,
            n_reports=len(verdict.reports), windows=windows,
            leaked=leaked, oracle=oracle, ok=not problems,
            detail=detail if not problems else "; ".join(problems)))
        result.disagreements.extend(problems)
    return result


def cross_check_targets(names: Optional[Sequence[str]] = None,
                        defenses: Sequence[str] = DEFAULT_DEFENSES,
                        options: Optional[VerifyOptions] = None,
                        max_cycles: int = _DEFAULT_MAX_CYCLES
                        ) -> CrossCheckResult:
    """Cross-check every named (default: all registered) target."""
    result = CrossCheckResult()
    for name in (names if names is not None else target_names()):
        result.extend(cross_check_case(build_target(name),
                                       defenses=defenses, options=options,
                                       max_cycles=max_cycles))
    return result

"""Campaign worker host: pull trials from a coordinator over HTTP.

``repro campaign worker <url>`` is the client half of the multi-host
protocol (:mod:`repro.campaign.coordinator`).  Any number of hosts run
it against the same coordinator; each loops:

1. ``POST /claim`` — receive a leased trial (or a back-off hint when
   the queue is momentarily empty, or the campaign's final state);
2. heartbeat ``POST /renew`` from a daemon thread at a third of the
   lease lifetime while the trial computes;
3. ``POST /complete`` with the result payload — the coordinator
   writes its cache *before* journaling, so the worker never touches
   shared state — or ``POST /fail`` with the failure taxonomy the
   engine already uses (``trial-error`` deterministic / abort,
   ``worker-error`` transient / bounded retry).

Every network call goes through :func:`~repro.campaign.netretry
.request_json` (timeout + capped jittered retries), so a flaky link
or a coordinator restart is survived transparently.  A coordinator
that stays unreachable past the retry budget makes the worker exit
nonzero *without corrupting anything* — it holds no campaign state,
so the lease simply expires and another host picks the trial up.

Exit codes: 0 campaign finished, 1 campaign failed (deterministic
trial error), 3 coordinator unreachable.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

from ..harness.runner import TrialError, run_trial
from ..harness.spec import Trial
from .netretry import DEFAULT_POLICY, RetryPolicy, Unreachable, request_json

#: Exit code when the coordinator cannot be reached within the retry
#: budget (distinct from campaign failure so supervisors can restart).
EXIT_UNREACHABLE = 3


class _Heartbeat(threading.Thread):
    """Renews one lease at a third of its remaining lifetime until
    stopped.

    The cadence comes from the coordinator's monotonic-relative
    ``ttl_seconds`` — how long the lease lives from the moment it was
    issued/renewed — never from a wall-clock timestamp, so NTP steps
    and wall/monotonic drift cannot mis-schedule renewals.  Each
    successful renewal re-reads ``ttl_seconds``: near a per-trial
    deadline the coordinator caps the ttl below ``lease_seconds`` and
    the heartbeat tightens to match.

    A refused renewal (unknown lease / past the per-trial timeout)
    just means the coordinator will re-enqueue the trial; the worker
    finishes anyway and uploads — completions are idempotent, so the
    worst case is one harmlessly duplicated (deterministic) result.
    """

    def __init__(self, url: str, lease_id: str, ttl_seconds: float,
                 policy: RetryPolicy):
        super().__init__(daemon=True, name=f"lease-{lease_id[:8]}")
        self.url = url
        self.lease_id = lease_id
        self.interval = max(0.05, ttl_seconds / 3.0)
        self.policy = policy
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                _, payload = request_json(
                    f"{self.url}/renew",
                    payload={"lease": self.lease_id},
                    policy=self.policy,
                    key=("renew", self.lease_id))
            except Unreachable:
                # Keep trying on the next beat: the trial is still
                # worth finishing, and the lease may outlive a brief
                # partition or coordinator restart.
                continue
            if isinstance(payload, dict):
                ttl = payload.get("ttl_seconds")
                if ttl:
                    self.interval = max(0.05, float(ttl) / 3.0)

    def stop(self) -> None:
        self._stop.set()


def default_host_id() -> str:
    """Stable-ish identity for journal/status display: host + pid."""
    import os
    return f"{socket.gethostname()}:{os.getpid()}"


def run_worker(url: str, host: Optional[str] = None,
               runner: Optional[Callable[[Trial], Dict[str, Any]]] = None,
               policy: RetryPolicy = DEFAULT_POLICY,
               poll: float = 0.5,
               announce: Optional[Callable[[str], None]] = None,
               max_trials: Optional[int] = None) -> int:
    """Pull and run trials from ``url`` until the campaign settles.

    Returns the process exit code (see module docstring).
    ``max_trials`` bounds how many trials this worker computes —
    ``None`` runs until the campaign finishes or fails (tests use
    small bounds to exercise partial progress).
    """
    base = str(url).rstrip("/")
    host = host or default_host_id()
    runner = runner or run_trial
    say = announce or (lambda line: None)
    done = 0
    while True:
        if max_trials is not None and done >= max_trials:
            say(f"worker {host}: reached --max-trials {max_trials}")
            return 0
        try:
            code, claim = request_json(
                f"{base}/claim", payload={"host": host}, policy=policy,
                key=("claim", host, done))
        except Unreachable as exc:
            say(f"worker {host}: coordinator unreachable ({exc})")
            return EXIT_UNREACHABLE
        if code != 200 or not isinstance(claim, dict):
            say(f"worker {host}: bad claim response (HTTP {code})")
            return EXIT_UNREACHABLE
        if claim.get("done"):
            say(f"worker {host}: campaign finished ({done} trial(s) "
                f"computed here)")
            return 0
        if claim.get("state") == "failed":
            say(f"worker {host}: campaign failed: {claim.get('error')}")
            return 1
        if "lease" not in claim:
            time.sleep(min(float(claim.get("retry_after", poll)),
                           max(poll, 0.05)))
            continue

        lease_id = claim["lease"]
        trial = Trial.from_dict(claim["trial"])
        ttl = claim.get("ttl_seconds") or claim.get("lease_seconds", 30.0)
        beat = _Heartbeat(base, lease_id, float(ttl), policy)
        beat.start()
        try:
            payload: Dict[str, Any] = {
                "lease": lease_id, "host": host,
                "sweep": claim["sweep"], "index": claim["index"],
                "spec_hash": claim.get("spec_hash", trial.spec_hash()),
            }
            try:
                result = runner(trial)
            except TrialError as exc:
                payload.update(kind="trial-error", reason=str(exc))
                endpoint = "fail"
            except Exception as exc:
                payload.update(kind="worker-error",
                               reason=f"{type(exc).__name__}: {exc}")
                endpoint = "fail"
            else:
                payload["result"] = result
                endpoint = "complete"
        finally:
            beat.stop()
        try:
            request_json(f"{base}/{endpoint}", payload=payload,
                         policy=policy, key=(endpoint, lease_id))
        except Unreachable as exc:
            # The lease will expire and the trial re-runs elsewhere —
            # nothing is lost but this host's work.
            say(f"worker {host}: could not report trial "
                f"{trial.label!r} ({exc})")
            return EXIT_UNREACHABLE
        if endpoint == "complete":
            done += 1
            say(f"worker {host}: {trial.label}: done")
        else:
            say(f"worker {host}: {trial.label}: "
                f"{payload['kind']}: {payload['reason']}")

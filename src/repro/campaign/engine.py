"""Fault-tolerant, resumable campaign execution.

A *campaign* is one or more :class:`~repro.harness.spec.Sweep`\\ s run
as a journaled job in a self-contained directory (see
:mod:`repro.campaign.journal`).  The engine guarantees:

* **Work stealing** — pending trials sit in one shared queue; worker
  processes pull the next trial the moment they finish the last one,
  so stragglers never idle a shard the way pre-split chunks would.
* **Fault tolerance** — a worker that dies (SIGKILL, OOM), hangs past
  the per-trial timeout, or raises a non-deterministic infrastructure
  error gets its trial re-queued with bounded exponential-backoff
  retries and a replacement worker spawned.  Deterministic
  :class:`~repro.harness.runner.TrialError`\\ s are *not* retried —
  rerunning a deterministic failure can only fail the same way — they
  abort the campaign (journaled, so ``status`` shows what broke).
* **Resumability** — results live in the campaign's content-addressed
  :class:`~repro.harness.cache.CacheBackend` and completions are
  journaled write-ahead; a campaign killed at any instant resumes by
  skipping everything cached and finishes **byte-identical** to an
  uninterrupted run at any worker count.
* **Graceful degradation** — if process spawning is unavailable the
  engine falls back to serial in-process execution with the same
  retry semantics (minus timeouts, which need a killable worker).

:class:`CampaignExecutor` adapts all of this to the
:class:`~repro.harness.executor.Executor` protocol, so a campaign can
run anywhere a plain executor does.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from queue import Empty
from typing import Any, Callable, Dict, List, Optional

from ..harness.cache import CacheBackend, resolve_cache
from ..harness.executor import (Executor, SweepResult, default_workers,
                                plan_sweep)
from ..harness.runner import TrialError, run_trial
from ..harness.spec import Sweep, Trial
from ..obs.metrics import get_registry
from .journal import CampaignDir, CampaignError
from .netretry import backoff_delay

#: Default bound on per-trial re-executions after transient failures.
DEFAULT_RETRIES = 2
#: Default first-retry backoff base; the actual delay is drawn with
#: full jitter from [0, min(cap, base * 2**(attempt-1))] — see
#: :func:`repro.campaign.netretry.backoff_delay`.
DEFAULT_BACKOFF = 0.25
#: How long the pool tolerates total silence with idle workers before
#: re-queueing unclaimed work (covers a worker killed between pulling
#: a task and acknowledging it).
_STALL_GRACE = 2.0

TrialRunner = Callable[[Trial], Dict[str, Any]]


def _campaign_worker(worker_id: int, tasks, results,
                     runner: TrialRunner) -> None:
    """Worker loop: pull (index, trial) items until the None sentinel.

    Every pulled task is acknowledged with a ``claim`` message before
    execution so the parent can re-queue it if this process dies
    mid-trial.  Deterministic failures (:class:`TrialError`) and
    infrastructure failures travel back on separate message types —
    only the latter are retried.
    """
    while True:
        item = tasks.get()
        if item is None:
            break
        index, trial_dict = item
        results.put(("claim", worker_id, index, None))
        try:
            payload = runner(Trial.from_dict(trial_dict))
        except TrialError as exc:
            results.put(("trial-error", worker_id, index, str(exc)))
        except BaseException as exc:   # pickling, MemoryError, ...
            results.put(("worker-error", worker_id, index,
                         f"{type(exc).__name__}: {exc}"))
        else:
            results.put(("done", worker_id, index, payload))


class _WorkStealingPool:
    """Parent-side driver of the shared-queue worker pool."""

    def __init__(self, trials: Dict[int, Trial], workers: int,
                 timeout: Optional[float], max_retries: int,
                 backoff: float, runner: TrialRunner,
                 on_done: Callable[[int, Dict[str, Any], int, float], None],
                 on_retry: Callable[[int, int, str], None]):
        self.trials = trials
        self.workers = workers
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.runner = runner
        self.on_done = on_done
        self.on_retry = on_retry

        self.ctx = multiprocessing.get_context()
        self.tasks = self.ctx.Queue()
        self.results = self.ctx.Queue()
        self.procs: Dict[int, Any] = {}
        self.next_worker_id = 0
        self.in_flight: Dict[int, int] = {}          # worker -> index
        self.started_at: Dict[int, float] = {}       # index -> monotonic
        self.waiting: set = set()                    # queued, unclaimed
        self.remaining = set(trials)
        self.retries: Dict[int, int] = {}
        self.delayed: List = []                      # (ready_time, index)
        self.last_activity = time.monotonic()

    # ------------------------------------------------------ plumbing

    def _spawn(self) -> None:
        worker_id = self.next_worker_id
        self.next_worker_id += 1
        proc = self.ctx.Process(
            target=_campaign_worker,
            args=(worker_id, self.tasks, self.results, self.runner),
            daemon=True)
        proc.start()
        self.procs[worker_id] = proc

    def _enqueue(self, index: int) -> None:
        self.tasks.put((index, self.trials[index].to_dict()))
        self.waiting.add(index)

    def _schedule_retry(self, index: int, reason: str) -> None:
        self.started_at.pop(index, None)
        if index not in self.remaining:
            return                      # a duplicate already finished it
        attempt = self.retries.get(index, 0) + 1
        if attempt > self.max_retries:
            raise CampaignError(
                f"trial {self.trials[index].label!r} failed "
                f"{self.max_retries + 1} times; last failure: {reason}")
        self.retries[index] = attempt
        self.on_retry(index, attempt, reason)
        # Capped full-jitter backoff, seeded per trial: simultaneous
        # failures spread out instead of retrying in lockstep, and no
        # attempt ever waits past the cap.
        delay = backoff_delay(self.backoff, attempt, key=("pool", index))
        heapq.heappush(self.delayed, (time.monotonic() + delay, index))

    def _kill_worker(self, worker_id: int) -> None:
        proc = self.procs.pop(worker_id, None)
        self.in_flight.pop(worker_id, None)
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5)

    # ------------------------------------------------------ the loop

    def run(self) -> None:
        for index in sorted(self.trials):
            self._enqueue(index)
        try:
            for _ in range(min(self.workers, len(self.trials))):
                self._spawn()
        except (OSError, MemoryError) as exc:
            raise _PoolUnavailable(str(exc)) from exc
        try:
            while self.remaining:
                self._release_delayed()
                self._drain_results()
                self._reap_dead_workers()
                self._enforce_timeouts()
                self._reconcile_stall()
        finally:
            self._shutdown()

    def _release_delayed(self) -> None:
        now = time.monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, index = heapq.heappop(self.delayed)
            if index in self.remaining:
                self._enqueue(index)

    def _drain_results(self) -> None:
        block = True
        while True:
            try:
                message = self.results.get(timeout=0.05 if block else 0)
            except Empty:
                return
            block = False
            self.last_activity = time.monotonic()
            kind, worker_id, index, payload = message
            if kind == "claim":
                self.waiting.discard(index)
                if worker_id in self.procs:
                    self.in_flight[worker_id] = index
                    self.started_at[index] = time.monotonic()
                else:                    # claimed by a worker we killed
                    self._schedule_retry(index, "worker died after claim")
            elif kind == "done":
                self.in_flight.pop(worker_id, None)
                if index in self.remaining:
                    self.remaining.discard(index)
                    elapsed = time.monotonic() - self.started_at.pop(
                        index, self.last_activity)
                    self.on_done(index, payload,
                                 self.retries.get(index, 0), elapsed)
            elif kind == "trial-error":
                self.in_flight.pop(worker_id, None)
                if index in self.remaining:
                    raise TrialError(payload)
            elif kind == "worker-error":
                self.in_flight.pop(worker_id, None)
                self._schedule_retry(index, payload)

    def _reap_dead_workers(self) -> None:
        for worker_id, proc in list(self.procs.items()):
            if proc.is_alive():
                continue
            del self.procs[worker_id]
            index = self.in_flight.pop(worker_id, None)
            if index is not None:
                self._schedule_retry(
                    index, f"worker died (exit code {proc.exitcode})")
            self.last_activity = time.monotonic()
        while self.remaining and \
                len(self.procs) < min(self.workers, len(self.remaining)):
            try:
                self._spawn()
            except (OSError, MemoryError) as exc:
                if self.procs:
                    break       # keep going with the workers we have
                raise _PoolUnavailable(str(exc)) from exc

    def _enforce_timeouts(self) -> None:
        if not self.timeout:
            return
        now = time.monotonic()
        for worker_id, index in list(self.in_flight.items()):
            started = self.started_at.get(index)
            if started is not None and now - started > self.timeout:
                self._kill_worker(worker_id)
                self._schedule_retry(
                    index, f"timeout after {self.timeout:g}s")

    def _reconcile_stall(self) -> None:
        """Re-queue tasks lost in the get→claim window of a dead worker.

        If workers are idle (nothing in flight), nothing is scheduled
        for retry, yet unclaimed work exists and the pool has been
        silent past the grace period, those queue items are gone —
        re-enqueueing is safe because duplicate completions are
        idempotent in :meth:`_drain_results`.
        """
        if self.in_flight or self.delayed or not self.remaining:
            return
        stalled = self.waiting & self.remaining
        if not stalled:
            return
        if time.monotonic() - self.last_activity < _STALL_GRACE:
            return
        for index in sorted(stalled):
            self.tasks.put((index, self.trials[index].to_dict()))
        self.last_activity = time.monotonic()

    def _shutdown(self) -> None:
        for _ in self.procs:
            try:
                self.tasks.put(None)
            except (OSError, ValueError):
                break
        deadline = time.monotonic() + 1.0
        for proc in self.procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        self.procs.clear()
        for q in (self.tasks, self.results):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass


class _PoolUnavailable(RuntimeError):
    """Worker processes could not be spawned; degrade to serial."""


def _run_serial(trials: Dict[int, Trial], max_retries: int,
                backoff: float, runner: TrialRunner,
                on_done, on_retry) -> None:
    """In-process fallback with the same retry semantics (no timeout —
    a hung trial cannot be killed without a separate process)."""
    for index in sorted(trials):
        attempt = 0
        while True:
            started = time.monotonic()
            try:
                payload = runner(trials[index])
            except TrialError:
                raise
            except Exception as exc:
                attempt += 1
                if attempt > max_retries:
                    raise CampaignError(
                        f"trial {trials[index].label!r} failed "
                        f"{max_retries + 1} times; last failure: "
                        f"{type(exc).__name__}: {exc}") from exc
                on_retry(index, attempt, f"{type(exc).__name__}: {exc}")
                time.sleep(backoff_delay(backoff, attempt,
                                         key=("serial", index)))
            else:
                on_done(index, payload, attempt,
                        time.monotonic() - started)
                break


def _resolve_campaign_cache(spec: Any, base: CampaignDir) -> CacheBackend:
    """Backend from a manifest cache URI, relative paths anchored at
    the campaign directory (so a campaign dir can be moved around).
    Remote ``http:``/``https:`` URIs pass through untouched — there is
    nothing to anchor."""
    if isinstance(spec, CacheBackend):
        return spec
    if isinstance(spec, str) and ":" in spec:
        scheme, _, location = spec.partition(":")
        if scheme in ("http", "https"):
            return resolve_cache(spec)
        path = base.path / location
        return resolve_cache(f"{scheme}:{path}") \
            if not location.startswith("/") else resolve_cache(spec)
    raise CampaignError(f"campaign cache must be a dir:/sqlite:/http: "
                        f"URI or a CacheBackend, got {spec!r}")


class Campaign:
    """One campaign directory: manifest, journal, cache, results."""

    def __init__(self, cdir: CampaignDir, manifest: Dict[str, Any]):
        self.cdir = cdir
        self.manifest = manifest

    # ---------------------------------------------------- lifecycle

    @classmethod
    def create(cls, directory, sweeps, cache=None,
               workers: Optional[int] = None,
               timeout: Optional[float] = None,
               max_retries: int = DEFAULT_RETRIES,
               backoff: float = DEFAULT_BACKOFF,
               name: Optional[str] = None) -> "Campaign":
        """Lay down a new campaign directory for these sweeps.

        ``cache`` is a ``dir:``/``sqlite:`` URI (relative paths live
        inside the campaign directory) or a :class:`CacheBackend`;
        the default is ``dir:cache`` — a directory backend inside the
        campaign dir, making the whole campaign self-contained.
        """
        if isinstance(sweeps, Sweep):
            sweeps = [sweeps]
        if not sweeps:
            raise CampaignError("a campaign needs at least one sweep")
        names = [s.name for s in sweeps]
        if len(set(names)) != len(names):
            raise CampaignError(f"sweep names must be unique, got {names}")
        cdir = CampaignDir(directory)
        if cdir.exists():
            raise CampaignError(
                f"{cdir.path} already holds a campaign — use "
                f"Campaign.open / `repro campaign resume` to continue it")
        if cache is None:
            cache_uri = "dir:cache"
        elif isinstance(cache, CacheBackend):
            cache_uri = cache.uri()
        else:
            cache_uri = str(cache)
        manifest = {
            "version": 1,
            "name": name or "+".join(names),
            "cache": cache_uri,
            "workers": workers,
            "timeout": timeout,
            "max_retries": max_retries,
            "backoff": backoff,
            "sweeps": [s.to_dict() for s in sweeps],
            "signatures": {s.name: s.signature() for s in sweeps},
            "total_trials": sum(len(s) for s in sweeps),
        }
        cdir.write_manifest(manifest)
        cdir.append_event({"event": "created", "name": manifest["name"],
                           "sweeps": names, "cache": cache_uri,
                           "total_trials": manifest["total_trials"]})
        return cls(cdir, manifest)

    @classmethod
    def open(cls, directory) -> "Campaign":
        """Open an existing campaign, verifying manifest integrity."""
        cdir = CampaignDir(directory)
        manifest = cdir.read_manifest()
        for sweep in cdir.sweeps(manifest):
            want = manifest.get("signatures", {}).get(sweep.name)
            if want is not None and sweep.signature() != want:
                raise CampaignError(
                    f"manifest signature mismatch for sweep "
                    f"{sweep.name!r} — {cdir.manifest_path} was edited "
                    f"after creation")
        return cls(cdir, manifest)

    @classmethod
    def create_or_open(cls, directory, sweeps, **kwargs) -> "Campaign":
        """Open when the directory already holds the *same* sweeps
        (resume); create otherwise."""
        cdir = CampaignDir(directory)
        if not cdir.exists():
            return cls.create(directory, sweeps, **kwargs)
        campaign = cls.open(directory)
        if isinstance(sweeps, Sweep):
            sweeps = [sweeps]
        want = {s.name: s.signature() for s in sweeps}
        if want != campaign.manifest.get("signatures"):
            raise CampaignError(
                f"{cdir.path} holds a different campaign "
                f"({sorted(campaign.manifest.get('signatures', {}))}); "
                f"pick a fresh --dir for {sorted(want)}")
        return campaign

    # --------------------------------------------------- properties

    @property
    def name(self) -> str:
        return self.manifest["name"]

    @property
    def directory(self):
        return self.cdir.path

    def sweeps(self) -> List[Sweep]:
        return self.cdir.sweeps(self.manifest)

    def backend(self) -> CacheBackend:
        return _resolve_campaign_cache(self.manifest["cache"], self.cdir)

    # ---------------------------------------------------- execution

    def run(self, workers: Optional[int] = None,
            progress: Optional[Callable[[str], None]] = None,
            force: bool = False, runner: Optional[TrialRunner] = None,
            serial: bool = False) -> List[SweepResult]:
        """Execute (or resume) every sweep; returns ordered results.

        Already-cached trials are skipped — running this on a killed
        campaign completes exactly the work that is missing, and the
        written ``<sweep>.result.json`` files are byte-identical to an
        uninterrupted run at any worker count.
        """
        workers = self.manifest.get("workers") if workers is None \
            else workers
        workers = default_workers() if workers is None else max(1, workers)
        timeout = self.manifest.get("timeout")
        max_retries = self.manifest.get("max_retries", DEFAULT_RETRIES)
        backoff = self.manifest.get("backoff", DEFAULT_BACKOFF)
        runner = runner or run_trial
        run_id = 1 + sum(1 for e in self.cdir.events()
                         if e.get("event") == "start")

        store = self.backend()
        started = time.monotonic()
        plans = [plan_sweep(sweep, cache=store, force=force,
                            progress=progress)
                 for sweep in self.sweeps()]
        self.cdir.append_event({
            "event": "start", "run": run_id, "workers": workers,
            "pending": sum(len(p.pending) for p in plans),
            "cached": sum(sum(p.cached_flags) for p in plans)})
        for plan in plans:
            for index, flag in enumerate(plan.cached_flags):
                if flag:
                    self.cdir.append_event({
                        "event": "trial", "run": run_id,
                        "sweep": plan.sweep.name, "index": index,
                        "spec_hash": plan.sweep.trials[index].spec_hash(),
                        "status": "cached", "retries": 0})

        results: List[SweepResult] = []
        for plan in plans:
            sweep_started = time.monotonic()
            self._run_plan(plan, run_id, workers, timeout, max_retries,
                           backoff, runner, serial)
            result = SweepResult(
                name=plan.sweep.name,
                records=[r for r in plan.records if r is not None],
                cached=plan.cached_flags,
                workers=workers,
                elapsed=time.monotonic() - sweep_started,
                cache_hits=store.hits,
                cache_misses=len(plan.pending))
            self.cdir.write_result(plan.sweep.name, result.to_json())
            self.cdir.append_event({
                "event": "sweep-done", "run": run_id,
                "sweep": plan.sweep.name,
                "trials": len(plan.sweep.trials),
                "computed": len(plan.pending)})
            results.append(result)
        self.cdir.append_event({
            "event": "finish", "run": run_id,
            "elapsed": time.monotonic() - started,
            "cache": store.stats()})
        return results

    def _run_plan(self, plan, run_id: int, workers: int,
                  timeout: Optional[float], max_retries: int,
                  backoff: float, runner: TrialRunner,
                  serial: bool) -> None:
        if not plan.pending:
            return
        trials = {index: trial for index, trial in plan.pending}
        sweep_name = plan.sweep.name
        registry = get_registry()
        queue_gauge = registry.gauge(
            "repro_campaign_queue_depth",
            "Pending (not yet completed) trials of the running sweep")
        trial_timer = registry.histogram(
            "repro_campaign_trial_seconds",
            "Per-trial compute wall time inside the campaign engine")
        retry_counter = registry.counter(
            "repro_campaign_retries_total",
            "Trial retries scheduled by the campaign engine")
        remaining = [len(trials)]
        queue_gauge.set(remaining[0])

        def on_done(index: int, payload: Dict[str, Any],
                    retries: int, elapsed: float) -> None:
            plan.finish(index, trials[index], payload)
            remaining[0] -= 1
            queue_gauge.set(remaining[0])
            trial_timer.observe(elapsed)
            self.cdir.append_event({
                "event": "trial", "run": run_id, "sweep": sweep_name,
                "index": index, "spec_hash": trials[index].spec_hash(),
                "status": "done", "retries": retries,
                "elapsed": round(elapsed, 6)})

        def on_retry(index: int, attempt: int, reason: str) -> None:
            retry_counter.inc()
            self.cdir.append_event({
                "event": "retry", "run": run_id, "sweep": sweep_name,
                "index": index, "attempt": attempt, "reason": reason})

        try:
            if serial or workers == 1 or len(trials) == 1:
                _run_serial(trials, max_retries, backoff, runner,
                            on_done, on_retry)
            else:
                try:
                    _WorkStealingPool(
                        trials, workers, timeout, max_retries, backoff,
                        runner, on_done, on_retry).run()
                except _PoolUnavailable as exc:
                    self.cdir.append_event({
                        "event": "degraded", "run": run_id,
                        "reason": f"worker pool unavailable ({exc}); "
                                  f"running serially"})
                    _run_serial({i: t for i, t in trials.items()
                                 if i in _unfinished(plan)},
                                max_retries, backoff, runner,
                                on_done, on_retry)
        except (TrialError, CampaignError) as exc:
            self.cdir.append_event({
                "event": "error", "run": run_id, "sweep": sweep_name,
                "message": str(exc)})
            raise


def _unfinished(plan) -> set:
    return {i for i, r in enumerate(plan.records) if r is None}


class CampaignExecutor(Executor):
    """:class:`Executor` adapter: run one sweep as a resumable campaign.

    ``execute(sweep, cache)`` creates the campaign directory on first
    use and resumes it on every later call with the same sweep.  With
    ``cache="auto"`` the campaign uses its own self-contained store
    (``<dir>/cache``) rather than the global result cache — pass an
    explicit URI or backend to share state across campaigns.
    """

    def __init__(self, directory, workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 runner: Optional[TrialRunner] = None,
                 serial: bool = False):
        self.directory = directory
        self.workers = workers
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.runner = runner
        self.serial = serial

    def execute(self, sweep: Sweep, cache="auto", force: bool = False,
                progress: Optional[Callable[[str], None]] = None) \
            -> SweepResult:
        campaign = Campaign.create_or_open(
            self.directory, [sweep],
            cache=None if cache == "auto" else cache,
            workers=self.workers, timeout=self.timeout,
            max_retries=self.max_retries, backoff=self.backoff)
        results = campaign.run(workers=self.workers, progress=progress,
                               force=force, runner=self.runner,
                               serial=self.serial)
        return results[0]

"""Campaign progress/metrics, computed from manifest + journal only.

``campaign_status`` never imports the simulator and never writes to
the campaign directory, so it is safe to run against a live campaign
(that is exactly what ``repro campaign status`` and the HTTP server
do).  All figures derive from journal events:

* ``done`` / ``cached`` / ``failed`` / ``retried`` trial counts —
  unique per (sweep, spec_hash), so replayed journal entries from
  several resume runs never double-count;
* cache hit rate — journaled ``cached`` completions over completions;
* throughput (trials/s) over the most recent run's computed trials and
  an ETA for the remainder at that rate;
* multi-host lease figures (hosts seen, leases issued / renewed /
  expired) when the campaign ran under a coordinator
  (:mod:`repro.campaign.coordinator`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .journal import CampaignDir

#: How many of the latest computed-trial events feed the rate estimate.
_RATE_WINDOW = 50


def campaign_status(directory) -> Dict[str, Any]:
    """One JSON-ready snapshot of a campaign's progress."""
    cdir = CampaignDir(directory)
    manifest = cdir.read_manifest()
    total = manifest.get("total_trials", 0)

    completed: Dict[tuple, str] = {}      # (sweep, spec_hash) -> status
    retried: set = set()
    retries = 0
    runs = 0
    errors = []
    finished = False
    hosts: set = set()
    leases = {"issued": 0, "renewed": 0, "expired": 0}
    compute_times = []                    # (wall time, elapsed) of "done"
    per_sweep: Dict[str, Dict[str, int]] = {
        s["name"]: {"trials": len(s.get("trials", [])), "done": 0,
                    "cached": 0}
        for s in manifest.get("sweeps", [])}

    for event in cdir.events():
        kind = event.get("event")
        if kind == "start":
            runs += 1
            finished = False
            compute_times = []
        elif kind == "trial":
            key = (event.get("sweep"), event.get("spec_hash"))
            status = event.get("status")
            # First completion wins: a trial computed in run 1 and
            # cache-served in run 2 stays "done" — "cached" means the
            # campaign never had to compute it.
            if key in completed:
                continue
            completed[key] = status
            sweep = per_sweep.setdefault(
                event.get("sweep"), {"trials": 0, "done": 0, "cached": 0})
            if status in ("done", "cached"):
                sweep[status] += 1
            if status == "done" and "time" in event:
                compute_times.append(
                    (event["time"], event.get("elapsed", 0.0)))
        elif kind == "retry":
            retries += 1
            retried.add((event.get("sweep"), event.get("index")))
        elif kind == "error":
            errors.append({"sweep": event.get("sweep"),
                           "message": event.get("message")})
        elif kind == "finish":
            finished = True
        elif kind == "lease":
            leases["issued"] += 1
            if event.get("host"):
                hosts.add(event["host"])
        elif kind == "renew":
            leases["renewed"] += 1
        elif kind == "lease-expired":
            leases["expired"] += 1

    done = sum(1 for s in completed.values() if s == "done")
    cached = sum(1 for s in completed.values() if s == "cached")
    complete = done + cached
    remaining = max(0, total - complete)

    rate = _throughput(compute_times)
    eta: Optional[float] = None
    if remaining and rate:
        eta = remaining / rate

    return {
        "name": manifest.get("name"),
        "directory": str(cdir.path),
        "cache": manifest.get("cache"),
        "sweeps": per_sweep,
        "total_trials": total,
        "completed": complete,
        "computed": done,
        "cached": cached,
        "remaining": remaining,
        "progress": (complete / total) if total else 0.0,
        "cache_hit_rate": (cached / complete) if complete else 0.0,
        "retries": retries,
        "trials_retried": len(retried),
        "runs": runs,
        "errors": errors,
        "state": ("finished" if finished and not remaining else
                  "failed" if errors and not finished else
                  "in-progress" if runs else "created"),
        "trials_per_second": rate,
        "eta_seconds": eta,
        "hosts": sorted(hosts),
        "leases": leases,
    }


def _throughput(compute_times) -> Optional[float]:
    """Trials/s over the tail of the latest run's computed trials."""
    window = compute_times[-_RATE_WINDOW:]
    if len(window) < 2:
        return None
    span = window[-1][0] - window[0][0]
    if span <= 0:
        return None
    # First event's own compute time is outside the span; count n-1
    # completions over it, classic open-interval rate.
    return (len(window) - 1) / span


def render_status(status: Dict[str, Any]) -> str:
    """Human-readable status block for the CLI."""
    lines = [
        f"campaign   : {status['name']}  [{status['state']}]",
        f"directory  : {status['directory']}",
        f"cache      : {status['cache']} "
        f"(hit rate {status['cache_hit_rate']:.0%})",
        f"progress   : {status['completed']}/{status['total_trials']} "
        f"trials ({status['progress']:.0%}) — {status['computed']} "
        f"computed, {status['cached']} cached, "
        f"{status['remaining']} remaining",
        f"retries    : {status['retries']} "
        f"({status['trials_retried']} trial(s) affected) over "
        f"{status['runs']} run(s)",
    ]
    if status["trials_per_second"]:
        lines.append(f"throughput : "
                     f"{status['trials_per_second']:.2f} trials/s")
    if status["eta_seconds"] is not None:
        lines.append(f"eta        : {status['eta_seconds']:.0f}s")
    if status.get("hosts"):
        leases = status["leases"]
        lines.append(f"hosts      : {len(status['hosts'])} "
                     f"({', '.join(status['hosts'])}) — "
                     f"{leases['issued']} lease(s), "
                     f"{leases['renewed']} renewed, "
                     f"{leases['expired']} expired")
    for sweep, counts in status["sweeps"].items():
        lines.append(f"  sweep {sweep}: "
                     f"{counts['done'] + counts['cached']}"
                     f"/{counts['trials']} "
                     f"({counts['cached']} cached)")
    for error in status["errors"]:
        lines.append(f"  error [{error['sweep']}]: {error['message']}")
    return "\n".join(lines)

"""Read-write campaign coordinator: one campaign, many worker hosts.

``repro campaign coordinate <dir>`` promotes the read-only status
server into the process that *owns* a campaign directory.  Worker
hosts (:mod:`repro.campaign.worker`) pull trials over HTTP; the
coordinator is the only process that ever writes the campaign
directory or its result store, which is what keeps multi-host
execution exactly as safe as PR 6's single-host pool:

* **Leases, not assignments.**  ``POST /claim`` hands a worker the
  next pending trial under a *lease* (host id, trial index, expiry)
  journaled to ``journal.jsonl``.  Workers heartbeat ``POST /renew``;
  the reconciliation loop expires leases whose host died, hung past
  the per-trial timeout, or vanished behind a partition, and
  re-enqueues the trial with the engine's bounded capped-jitter retry
  semantics — a dead host is indistinguishable from a dead pool
  worker.
* **Cache before journal.**  ``POST /complete`` writes the result to
  the campaign's real ``dir:``/``sqlite:`` store *before* appending
  the journal completion, preserving the ordering every resume proof
  relies on.  Completions are idempotent: a duplicate (expired lease,
  retried upload after a truncated response) is acknowledged and
  dropped.
* **Failure taxonomy unchanged.**  ``POST /fail`` with a
  deterministic ``trial-error`` aborts the campaign (journaled);
  transient ``worker-error``\\ s re-enqueue with bounded retries.
  Exhausting the budget fails the campaign exactly like the pool.
* **Kill-safe.**  SIGKILL the coordinator at any instant and the
  directory is resumable by the existing paths — restart the
  coordinator, or finish locally with ``repro campaign resume``.
  In-memory leases die with the process; orphaned completions are
  accepted by spec-hash, never trusted blindly.

Read endpoints (``/``, ``/status``, ``/manifest``, ``/healthz``,
``/metrics``, ``/result/<sweep>``, and with ``--dashboard`` the
``/dashboard`` + ``/timeline`` pair) are the status server's,
unchanged; ``/cache``
mounts the store for :class:`~repro.campaign.httpcache.HttpCacheBackend`
clients; ``/coordinator`` reports live queue/lease state.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
import uuid
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..harness.executor import SweepResult, plan_sweep
from ..harness.spec import Trial
from ..obs.metrics import get_registry
from .engine import Campaign
from .httpcache import CacheRoutes, read_json_body
from .netretry import backoff_delay
from .server import _routes as read_routes
from .server import install_sigterm_handler

#: Default lease lifetime; workers renew at a third of this.
DEFAULT_LEASE_SECONDS = 30.0
#: How often the background reconciliation loop wakes up.
_RECONCILE_INTERVAL = 0.25


class _Lease:
    __slots__ = ("lease_id", "host", "key", "issued", "expires",
                 "deadline")

    def __init__(self, lease_id: str, host: str, key: Tuple[str, int],
                 issued: float, expires: float,
                 deadline: Optional[float]):
        self.lease_id = lease_id
        self.host = host
        self.key = key                  # (sweep name, trial index)
        self.issued = issued            # monotonic
        self.expires = expires          # monotonic
        self.deadline = deadline        # monotonic cap (trial timeout)


class CoordinatorState:
    """All mutable campaign state, serialized under one lock.

    Mirrors ``Campaign.run``'s prologue (plan against the cache,
    journal ``start`` + ``cached`` events) and its completion path
    (``plan.finish`` → cache put → journal ``trial`` event → seal the
    sweep), but the pool is the network: trials leave via leases and
    come back via uploads.
    """

    def __init__(self, campaign: Campaign,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 progress: Optional[Callable[[str], None]] = None):
        self.campaign = campaign
        self.cdir = campaign.cdir
        self.lease_seconds = max(0.1, lease_seconds)
        self.lock = threading.RLock()
        self.store = campaign.backend()
        self.timeout = campaign.manifest.get("timeout")
        self.max_retries = campaign.manifest.get("max_retries", 2)
        self.backoff = campaign.manifest.get("backoff", 0.25)

        self.run_id = 1 + sum(1 for e in self.cdir.events()
                              if e.get("event") == "start")
        self.started = time.monotonic()
        self.plans = {}                        # sweep name -> _Plan
        self.trials: Dict[Tuple[str, int], Trial] = {}
        self.queue: deque = deque()            # ready (sweep, index)
        self.delayed: List = []                # heap (ready_time, key)
        self.unfinished: set = set()
        self.sealed: set = set()
        self.leases: Dict[str, _Lease] = {}
        self.by_key: Dict[Tuple[str, int], str] = {}   # key -> lease id
        self.retries: Dict[Tuple[str, int], int] = {}
        self.hosts: set = set()
        self.error: Optional[str] = None
        self.finished = False

        registry = get_registry()
        self._m_claims = registry.counter(
            "repro_coordinator_claims_total",
            "Claim requests by outcome", labels={"outcome": "granted"})
        self._m_claims_empty = registry.counter(
            "repro_coordinator_claims_total",
            "Claim requests by outcome", labels={"outcome": "empty"})
        self._m_renewals = registry.counter(
            "repro_coordinator_renewals_total",
            "Lease heartbeats accepted")
        self._m_completions = registry.counter(
            "repro_coordinator_completions_total",
            "Trial uploads by outcome", labels={"outcome": "ok"})
        self._m_duplicates = registry.counter(
            "repro_coordinator_completions_total",
            "Trial uploads by outcome", labels={"outcome": "duplicate"})
        self._m_failures = registry.counter(
            "repro_coordinator_failures_total",
            "Worker-reported trial failures")
        self._m_expirations = registry.counter(
            "repro_coordinator_lease_expirations_total",
            "Leases expired by the reconcile loop")
        self._g_queued = registry.gauge(
            "repro_coordinator_queued", "Trials ready to lease")
        self._g_leased = registry.gauge(
            "repro_coordinator_leased", "Trials currently leased out")
        self._g_unfinished = registry.gauge(
            "repro_coordinator_unfinished",
            "Trials not yet completed")
        self._g_hosts = registry.gauge(
            "repro_coordinator_hosts", "Distinct worker hosts seen")
        self._trial_timer = registry.histogram(
            "repro_campaign_trial_seconds",
            "Per-trial compute wall time inside the campaign engine")
        self._m_retries = registry.counter(
            "repro_campaign_retries_total",
            "Trial retries scheduled by the campaign engine")

        for sweep in campaign.sweeps():
            plan = plan_sweep(sweep, cache=self.store, progress=progress)
            self.plans[sweep.name] = plan
            for index, trial in plan.pending:
                key = (sweep.name, index)
                self.trials[key] = trial
                self.unfinished.add(key)
                self.queue.append(key)
        self.cdir.append_event({
            "event": "start", "run": self.run_id, "workers": None,
            "mode": "coordinator",
            "pending": sum(len(p.pending) for p in self.plans.values()),
            "cached": sum(sum(p.cached_flags)
                          for p in self.plans.values())})
        for name, plan in self.plans.items():
            for index, flag in enumerate(plan.cached_flags):
                if flag:
                    self.cdir.append_event({
                        "event": "trial", "run": self.run_id,
                        "sweep": name, "index": index,
                        "spec_hash": plan.sweep.trials[index].spec_hash(),
                        "status": "cached", "retries": 0})
        # Sweeps fully served from the cache seal immediately; a
        # coordinator restarted on a finished campaign just re-seals
        # and reports done.
        with self.lock:
            for name in list(self.plans):
                self._maybe_seal(name)
            self._maybe_finish()
            self._update_gauges()

    def _update_gauges(self) -> None:
        """Refresh the point-in-time metrics (caller holds the lock)."""
        self._g_queued.set(len(self.queue))
        self._g_leased.set(len(self.leases))
        self._g_unfinished.set(len(self.unfinished))
        self._g_hosts.set(len(self.hosts))

    # -------------------------------------------------- write routes

    def claim(self, host: str) -> Tuple[int, Dict[str, Any]]:
        with self.lock:
            self._reconcile_locked()
            if self.error is not None:
                return 200, {"state": "failed", "error": self.error}
            if self.finished:
                return 200, {"done": True}
            self.hosts.add(host)
            key = self._next_ready()
            if key is None:
                self._m_claims_empty.inc()
                self._update_gauges()
                return 200, {"retry_after": self._poll_hint()}
            lease_id = uuid.uuid4().hex
            now = time.monotonic()
            deadline = now + self.timeout if self.timeout else None
            lease = _Lease(lease_id, host, key, now,
                           self._expiry(now, deadline), deadline)
            self.leases[lease_id] = lease
            self.by_key[key] = lease_id
            sweep, index = key
            # ttl_seconds is monotonic-relative (how long from *now*
            # the lease lives) — never a wall-clock timestamp.  Mixing
            # time.time() into a monotonic-derived expiry made an NTP
            # step or wall/monotonic drift mis-schedule renewals.
            ttl = round(lease.expires - now, 3)
            self.cdir.append_event({
                "event": "lease", "run": self.run_id, "sweep": sweep,
                "index": index, "host": host, "lease": lease_id,
                "ttl_seconds": ttl})
            self._m_claims.inc()
            self._update_gauges()
            return 200, {
                "lease": lease_id, "sweep": sweep, "index": index,
                "trial": self.trials[key].to_dict(),
                "spec_hash": self.trials[key].spec_hash(),
                "lease_seconds": self.lease_seconds,
                "ttl_seconds": ttl,
                "attempt": self.retries.get(key, 0),
            }

    def renew(self, lease_id: str) -> Tuple[int, Dict[str, Any]]:
        with self.lock:
            lease = self.leases.get(lease_id)
            if lease is None:
                return 200, {"ok": False, "reason": "unknown-lease"}
            now = time.monotonic()
            if lease.deadline is not None and now >= lease.deadline:
                # Past the per-trial timeout: refuse — the reconcile
                # loop will expire it and re-enqueue the trial.
                return 200, {"ok": False, "reason": "timeout"}
            lease.expires = self._expiry(now, lease.deadline)
            self.cdir.append_event({
                "event": "renew", "run": self.run_id,
                "sweep": lease.key[0], "index": lease.key[1],
                "host": lease.host, "lease": lease_id})
            self._m_renewals.inc()
            return 200, {"ok": True,
                         "lease_seconds": self.lease_seconds,
                         "ttl_seconds": round(lease.expires - now, 3)}

    def complete(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        lease_id = body.get("lease")
        result = body.get("result")
        if not isinstance(result, dict):
            return 400, {"error": "completion needs a JSON `result` "
                                  "object"}
        with self.lock:
            lease = self.leases.pop(lease_id, None)
            if lease is not None:
                self.by_key.pop(lease.key, None)
                key = lease.key
                host = lease.host
                elapsed = time.monotonic() - lease.issued
            else:
                # Orphaned upload (lease expired, or a pre-restart
                # lease): accept it iff it names a known unfinished
                # trial by position AND content hash.
                key = (body.get("sweep"), body.get("index"))
                host = body.get("host", "?")
                elapsed = None
            trial = self.trials.get(key)
            if trial is None or key not in self.unfinished:
                self._m_duplicates.inc()
                return 200, {"ok": True, "duplicate": True}
            if body.get("spec_hash") not in (None, trial.spec_hash()):
                return 409, {"error": "spec hash mismatch — different "
                                      "campaign or stale worker"}
            sweep, index = key
            self.unfinished.discard(key)
            # Cache write happens inside plan.finish, BEFORE the
            # journal append below — the ordering every resume and
            # kill test relies on.
            self.plans[sweep].finish(index, trial, result)
            event = {
                "event": "trial", "run": self.run_id, "sweep": sweep,
                "index": index, "spec_hash": trial.spec_hash(),
                "status": "done", "retries": self.retries.get(key, 0),
                "host": host}
            if elapsed is not None:
                event["elapsed"] = round(elapsed, 6)
            self.cdir.append_event(event)
            self._m_completions.inc()
            if elapsed is not None:
                self._trial_timer.observe(elapsed)
            self._maybe_seal(sweep)
            self._maybe_finish()
            self._update_gauges()
            return 200, {"ok": True}

    def fail(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        lease_id = body.get("lease")
        kind = body.get("kind", "worker-error")
        reason = str(body.get("reason", "worker reported failure"))
        with self.lock:
            lease = self.leases.pop(lease_id, None)
            if lease is not None:
                self.by_key.pop(lease.key, None)
                key = lease.key
            else:
                key = (body.get("sweep"), body.get("index"))
            if key not in self.unfinished:
                return 200, {"ok": True, "duplicate": True}
            self._m_failures.inc()
            if kind == "trial-error":
                # Deterministic failure: rerunning can only fail the
                # same way — abort the campaign, exactly like the pool.
                self._abort(key[0], reason)
                return 200, {"ok": True, "state": "failed"}
            self._schedule_retry(key, reason)
            return 200, {"ok": True}

    # ------------------------------------------------- reconciliation

    def reconcile(self) -> None:
        """Expire dead hosts' leases, release delayed retries.  Runs
        from the background loop and at the top of every claim."""
        with self.lock:
            self._reconcile_locked()

    def _reconcile_locked(self) -> None:
        now = time.monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, key = heapq.heappop(self.delayed)
            if key in self.unfinished and key not in self.by_key:
                self.queue.append(key)
        for lease_id, lease in list(self.leases.items()):
            if now < lease.expires:
                continue
            del self.leases[lease_id]
            self.by_key.pop(lease.key, None)
            if lease.key not in self.unfinished:
                continue
            if lease.deadline is not None and now >= lease.deadline:
                reason = f"timeout after {self.timeout:g}s " \
                         f"(host {lease.host})"
            else:
                reason = f"lease expired (host {lease.host} dead, " \
                         f"hung, or partitioned)"
            self.cdir.append_event({
                "event": "lease-expired", "run": self.run_id,
                "sweep": lease.key[0], "index": lease.key[1],
                "host": lease.host, "lease": lease_id})
            self._m_expirations.inc()
            self._schedule_retry(lease.key, reason)
        self._update_gauges()

    def _schedule_retry(self, key: Tuple[str, int], reason: str) -> None:
        if self.error is not None or key not in self.unfinished:
            return
        attempt = self.retries.get(key, 0) + 1
        if attempt > self.max_retries:
            label = self.trials[key].label
            self._abort(key[0],
                        f"trial {label!r} failed "
                        f"{self.max_retries + 1} times; last failure: "
                        f"{reason}")
            return
        self.retries[key] = attempt
        self._m_retries.inc()
        self.cdir.append_event({
            "event": "retry", "run": self.run_id, "sweep": key[0],
            "index": key[1], "attempt": attempt, "reason": reason})
        delay = backoff_delay(self.backoff, attempt,
                              key=("coordinator",) + key)
        heapq.heappush(self.delayed, (time.monotonic() + delay, key))

    def _abort(self, sweep: str, message: str) -> None:
        self.error = message
        self.cdir.append_event({
            "event": "error", "run": self.run_id, "sweep": sweep,
            "message": message})

    # ---------------------------------------------------- completion

    def _maybe_seal(self, sweep_name: str) -> None:
        if sweep_name in self.sealed:
            return
        plan = self.plans[sweep_name]
        if any(record is None for record in plan.records):
            return
        result = SweepResult(
            name=sweep_name,
            records=[r for r in plan.records],
            cached=plan.cached_flags,
            workers=max(1, len(self.hosts)),
            elapsed=time.monotonic() - self.started,
            cache_hits=self.store.hits,
            cache_misses=len(plan.pending))
        self.cdir.write_result(sweep_name, result.to_json())
        self.cdir.append_event({
            "event": "sweep-done", "run": self.run_id,
            "sweep": sweep_name, "trials": len(plan.sweep.trials),
            "computed": len(plan.pending)})
        self.sealed.add(sweep_name)

    def _maybe_finish(self) -> None:
        if self.finished or self.unfinished or self.error is not None:
            return
        for name in self.plans:
            self._maybe_seal(name)
        if len(self.sealed) == len(self.plans):
            self.finished = True
            self.cdir.append_event({
                "event": "finish", "run": self.run_id,
                "elapsed": time.monotonic() - self.started,
                "cache": self.store.stats()})

    # ------------------------------------------------------- helpers

    def _next_ready(self) -> Optional[Tuple[str, int]]:
        while self.queue:
            key = self.queue.popleft()
            if key in self.unfinished and key not in self.by_key:
                return key
        return None

    def _poll_hint(self) -> float:
        """How long a worker should wait before asking again: until
        the earliest delayed retry, else a lease-expiry-scale pause."""
        if self.delayed:
            wait = self.delayed[0][0] - time.monotonic()
            return max(0.05, min(wait, self.lease_seconds))
        return min(1.0, self.lease_seconds / 3)

    def _expiry(self, now: float, deadline: Optional[float]) -> float:
        expires = now + self.lease_seconds
        if deadline is not None:
            expires = min(expires, deadline + self.lease_seconds / 3)
        return expires

    def snapshot(self) -> Dict[str, Any]:
        """Live in-memory view for the ``/coordinator`` endpoint."""
        with self.lock:
            return {
                "state": ("failed" if self.error is not None else
                          "finished" if self.finished else "serving"),
                "error": self.error,
                "run": self.run_id,
                "lease_seconds": self.lease_seconds,
                "queued": len(self.queue),
                "delayed": len(self.delayed),
                "leased": len(self.leases),
                "unfinished": len(self.unfinished),
                "sealed": sorted(self.sealed),
                "hosts": sorted(self.hosts),
                "leases": [
                    {"lease": lease.lease_id, "host": lease.host,
                     "sweep": lease.key[0], "index": lease.key[1],
                     "expires_in": round(
                         lease.expires - time.monotonic(), 3)}
                    for lease in self.leases.values()],
            }


class CoordinatorRequestHandler(BaseHTTPRequestHandler):
    """The status server's GET surface plus the write protocol."""

    server_version = "repro-coordinator/1"
    #: Set by make_coordinator().
    state: CoordinatorState = None
    routes = None
    cache_routes: CacheRoutes = None

    def log_message(self, fmt, *args):   # keep CLI output clean
        pass

    def _respond(self, code: int, payload) -> None:
        body = ("" if payload is None else
                payload if isinstance(payload, str)
                else json.dumps(payload, sort_keys=True, indent=2))
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type",
                         getattr(payload, "content_type",
                                 "application/json"))
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        if data and self.command != "HEAD":
            try:
                self.wfile.write(data)
            except OSError:
                pass                     # client vanished mid-response

    def _path(self) -> str:
        return self.path.split("?", 1)[0].rstrip("/") or "/"

    def do_HEAD(self):                   # noqa: N802 (stdlib naming)
        self.do_GET()

    def do_GET(self):                    # noqa: N802 (stdlib naming)
        path = self._path()
        if path == "/coordinator":
            self._respond(200, self.state.snapshot())
        elif path == "/cache" or path.startswith("/cache/"):
            self._cache("GET", path)
        elif path.startswith("/result/"):
            code, payload = self.routes["result"](path[len("/result/"):])
            self._respond(code, payload)
        elif path in self.routes:
            code, payload = self.routes[path]()
            self._respond(code, payload)
        else:
            self._respond(404, {
                "error": f"unknown path {path!r}",
                "endpoints": ["/", "/status", "/manifest", "/healthz",
                              "/metrics", "/coordinator",
                              "/result/<sweep>",
                              "/cache/<key>", "/claim", "/renew",
                              "/complete", "/fail"]})

    def do_POST(self):                   # noqa: N802 (stdlib naming)
        path = self._path()
        handlers = {"/claim": self._claim, "/renew": self._renew,
                    "/complete": self._complete, "/fail": self._fail}
        handler = handlers.get(path)
        if handler is None:
            self._respond(404, {"error": f"no POST route {path!r}"})
            return
        body = read_json_body(self)
        if body is None:
            # Truncated/garbled upload from a flaky link: reject; the
            # worker's retry layer re-sends the whole request.
            self._respond(400, {"error": "malformed JSON body"})
            return
        code, payload = handler(body)
        self._respond(code, payload)

    def do_PUT(self):                    # noqa: N802 (stdlib naming)
        path = self._path()
        if path.startswith("/cache/"):
            self._cache("PUT", path)
        else:
            self._respond(404, {"error": f"no PUT route {path!r}"})

    def do_DELETE(self):                 # noqa: N802 (stdlib naming)
        path = self._path()
        if path == "/cache" or path.startswith("/cache/"):
            self._cache("DELETE", path)
        else:
            self._respond(404, {"error": f"no DELETE route {path!r}"})

    # ------------------------------------------------------ adapters

    def _claim(self, body):
        return self.state.claim(str(body.get("host", "unknown-host")))

    def _renew(self, body):
        return self.state.renew(body.get("lease"))

    def _complete(self, body):
        return self.state.complete(body)

    def _fail(self, body):
        return self.state.fail(body)

    def _cache(self, method: str, path: str) -> None:
        key = path[len("/cache/"):] if path.startswith("/cache/") else ""
        body = read_json_body(self) if method == "PUT" else None
        if method == "PUT" and body is None:
            self._respond(400, {"error": "malformed JSON body"})
            return
        code, payload = self.cache_routes.handle(method, key, body)
        self._respond(code, payload)


class _ReconcileLoop(threading.Thread):
    """Expires leases and releases retries even when no worker calls —
    the loop that turns a vanished host into re-enqueued work."""

    def __init__(self, state: CoordinatorState,
                 interval: float = _RECONCILE_INTERVAL):
        super().__init__(daemon=True, name="campaign-reconcile")
        self.state = state
        self.interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            self.state.reconcile()
            with self.state.lock:
                self.state._maybe_finish()

    def stop(self) -> None:
        self._stop.set()


def make_coordinator(directory, host: str = "127.0.0.1", port: int = 0,
                     lease_seconds: float = DEFAULT_LEASE_SECONDS,
                     progress: Optional[Callable[[str], None]] = None,
                     dashboard: bool = False) \
        -> Tuple[ThreadingHTTPServer, CoordinatorState, _ReconcileLoop]:
    """Open the campaign, build (don't start) the coordinator server
    plus its reconciliation loop; ``port=0`` picks a free port.
    ``dashboard=True`` adds the ``/dashboard`` + ``/timeline`` pair on
    top of the status server's routes (``/metrics`` is always on)."""
    campaign = Campaign.open(directory)
    state = CoordinatorState(campaign, lease_seconds=lease_seconds,
                             progress=progress)
    handler = type("BoundCoordinatorHandler", (CoordinatorRequestHandler,),
                   {"state": state,
                    "routes": read_routes(directory,
                                          dashboard=dashboard),
                    "cache_routes": CacheRoutes(state.store, state.lock)})
    server = ThreadingHTTPServer((host, port), handler)
    loop = _ReconcileLoop(state)
    return server, state, loop


def coordinate(directory, host: str = "127.0.0.1", port: int = 8008,
               lease_seconds: float = DEFAULT_LEASE_SECONDS,
               until_done: bool = False, announce=None,
               progress: Optional[Callable[[str], None]] = None,
               dashboard: bool = False) -> int:
    """Run the coordinator until interrupted (SIGINT/SIGTERM both shut
    down cleanly) — or, with ``until_done``, until the campaign
    finishes or fails.  Returns a CLI exit code: 0 finished/stopped,
    1 campaign failed.
    """
    server, state, loop = make_coordinator(
        directory, host=host, port=port, lease_seconds=lease_seconds,
        progress=progress, dashboard=dashboard)
    install_sigterm_handler()
    bound_host, bound_port = server.server_address[:2]
    # Everything after handler installation sits inside the try: a
    # TERM landing before serve_forever() still takes the clean path.
    try:
        if announce:
            announce(f"coordinating campaign {directory} on "
                     f"http://{bound_host}:{bound_port} "
                     f"(workers: `repro campaign worker "
                     f"http://{bound_host}:{bound_port}`)")
        if until_done:
            def _watch():
                while True:
                    with state.lock:
                        settled = state.finished or \
                            state.error is not None
                    if settled:
                        server.shutdown()
                        return
                    time.sleep(_RECONCILE_INTERVAL)
            threading.Thread(target=_watch, daemon=True,
                             name="campaign-until-done").start()
        loop.start()
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        loop.stop()
        server.server_close()
    with state.lock:
        if state.error is not None:
            if announce:
                announce(f"campaign failed: {state.error}")
            return 1
        if announce and state.finished:
            announce("campaign finished")
    return 0

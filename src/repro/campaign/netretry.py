"""Capped, jittered retries — for the pool and for the network.

Two layers share one backoff law:

* :func:`backoff_delay` — **full-jitter** exponential backoff with a
  hard cap.  The classic ``base * 2**(attempt-1)`` schedule is both
  uncapped (attempt 20 waits six days) and deterministic (every trial
  that failed in the same instant retries in the same instant —
  lockstep thundering herds).  Full jitter draws the delay uniformly
  from ``[0, min(cap, base * 2**(attempt-1))]``; the draw is seeded
  from a caller-supplied ``key`` so two *different* trials (or hosts)
  desynchronize while the *same* trial retries identically across
  runs — reproducible tests, no herd.
* :func:`request_json` — one HTTP JSON exchange with a per-request
  timeout and capped, jittered retries on every transient failure
  (connection refused/reset, timeouts, truncated or garbled responses,
  5xx).  Protocol-level responses (2xx-4xx with a JSON body) are
  returned to the caller, never retried.  When the retry budget is
  exhausted, :class:`Unreachable` is raised — callers degrade
  gracefully instead of corrupting anything.

Everything in this module is stdlib-only and import-light; both the
campaign engine (:mod:`repro.campaign.engine`) and the network stack
(coordinator / worker / ``http:`` cache backend) build on it.
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.client import HTTPException
from typing import Any, Callable, Dict, Optional, Tuple

#: Hard ceiling on any single backoff delay, in seconds.
DEFAULT_MAX_DELAY = 30.0


class Unreachable(RuntimeError):
    """The peer stayed unreachable through the whole retry budget."""


def backoff_delay(base: float, attempt: int,
                  cap: float = DEFAULT_MAX_DELAY,
                  key: Any = None) -> float:
    """Full-jitter delay for retry ``attempt`` (1-based), capped.

    ``key`` seeds the jitter: pass something that identifies the
    retrying entity (``("pool", trial_index)``, a host id...) so
    distinct entities spread out while the same entity draws the same
    schedule on every run.  ``key=None`` draws from the global RNG
    (still capped, no longer reproducible).
    """
    ceiling = min(cap, base * (2 ** max(0, attempt - 1)))
    if ceiling <= 0:
        return 0.0
    if key is None:
        return random.uniform(0.0, ceiling)
    # str seeds hash stably (sha512 path) — identical across processes
    # and PYTHONHASHSEED values, unlike tuple hashes.
    rng = random.Random(f"{key!r}#{attempt}")
    return rng.uniform(0.0, ceiling)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard one logical network call tries before giving up."""

    attempts: int = 5          #: total tries (first call included)
    base_delay: float = 0.2    #: first-retry backoff base, seconds
    max_delay: float = 5.0     #: per-delay cap, seconds
    timeout: float = 10.0      #: socket timeout per request, seconds

    def delay(self, attempt: int, key: Any = None) -> float:
        return backoff_delay(self.base_delay, attempt,
                             cap=self.max_delay, key=key)


#: Default policy for coordinator/worker/cache traffic.
DEFAULT_POLICY = RetryPolicy()


def request_json(url: str, payload: Optional[Dict[str, Any]] = None,
                 method: Optional[str] = None,
                 policy: RetryPolicy = DEFAULT_POLICY,
                 key: Any = None,
                 sleep: Callable[[float], None] = None) \
        -> Tuple[int, Any]:
    """One JSON request/response with timeout + capped jittered retries.

    Returns ``(status_code, decoded_body)``.  A body that fails to
    decode as JSON on a 2xx (a truncated response, say) counts as a
    transient failure and is retried; 4xx responses are returned with
    their decoded body (or ``{}``) — they are protocol answers, not
    infrastructure faults.  Raises :class:`Unreachable` after the last
    attempt fails transiently.
    """
    import time as _time
    sleep = sleep or _time.sleep
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if method is None:
        method = "POST" if payload is not None else "GET"

    last_error: Optional[BaseException] = None
    for attempt in range(1, max(1, policy.attempts) + 1):
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=policy.timeout) as response:
                body = response.read()
                return response.status, _decode(body)
        except urllib.error.HTTPError as exc:
            if exc.code >= 500:
                last_error = exc
            else:
                try:
                    body = exc.read()
                except OSError:
                    body = b""
                try:
                    return exc.code, _decode(body)
                except ValueError:
                    return exc.code, {}
        except (urllib.error.URLError, HTTPException, OSError,
                ValueError) as exc:
            # URLError covers refused/reset/DNS; HTTPException covers
            # truncated reads and bad status lines from a flaky link;
            # ValueError is a garbled JSON body on a 2xx.
            last_error = exc
        if attempt < policy.attempts:
            sleep(policy.delay(attempt, key=key))
    raise Unreachable(
        f"{method} {url} failed after {policy.attempts} attempt(s): "
        f"{type(last_error).__name__}: {last_error}")


def _decode(body: bytes) -> Any:
    if not body:
        return {}
    return json.loads(body.decode("utf-8"))

"""Read-only HTTP view of a campaign directory (stdlib only).

``repro campaign serve <dir>`` starts a tiny
:class:`http.server.ThreadingHTTPServer` that exposes the campaign's
journal-derived status and its finished reports to any number of
concurrent readers — without ever importing the simulator or writing
a byte to the campaign directory.  Endpoints:

``GET /``          index: campaign name, state, endpoint list
``GET /status``    live status JSON (recomputed per request from the
                   journal, so it tracks a running campaign)
``GET /manifest``  the campaign manifest verbatim
``GET /result/<sweep>``
                   the canonical ``SweepResult`` JSON of a completed
                   sweep (404 until that sweep has finished once)

Every response is JSON; the server answers GET/HEAD only.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .journal import CampaignDir, CampaignError
from .status import campaign_status


def _routes(directory):
    """Route table: path -> () -> (http status, payload object/text)."""
    cdir = CampaignDir(directory)

    def index() -> Tuple[int, object]:
        try:
            status = campaign_status(directory)
        except CampaignError as exc:
            return 500, {"error": str(exc)}
        sweeps = sorted(status["sweeps"])
        return 200, {
            "campaign": status["name"],
            "state": status["state"],
            "endpoints": ["/status", "/manifest"] +
                         [f"/result/{name}" for name in sweeps],
        }

    def status() -> Tuple[int, object]:
        try:
            return 200, campaign_status(directory)
        except CampaignError as exc:
            return 500, {"error": str(exc)}

    def manifest() -> Tuple[int, object]:
        try:
            return 200, cdir.read_manifest()
        except CampaignError as exc:
            return 500, {"error": str(exc)}

    def result(sweep_name: str) -> Tuple[int, object]:
        if "/" in sweep_name or sweep_name in ("", ".", ".."):
            return 404, {"error": "no such sweep"}
        text = cdir.read_result(sweep_name)
        if text is None:
            return 404, {"error": f"sweep {sweep_name!r} has no result "
                                  f"yet — still running, or unknown"}
        return 200, text              # already-canonical JSON, verbatim

    return {"/": index, "/status": status, "/manifest": manifest,
            "result": result}


class CampaignRequestHandler(BaseHTTPRequestHandler):
    """GET/HEAD-only JSON handler over one campaign directory."""

    server_version = "repro-campaign/1"
    #: Set by make_server().
    routes = None

    def log_message(self, fmt, *args):   # keep CLI output clean
        pass

    def _respond(self, code: int, payload) -> None:
        body = (payload if isinstance(payload, str)
                else json.dumps(payload, sort_keys=True, indent=2))
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(data)

    def do_HEAD(self):                   # noqa: N802 (stdlib naming)
        self.do_GET()

    def do_GET(self):                    # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path.startswith("/result/"):
            code, payload = self.routes["result"](
                path[len("/result/"):])
        elif path in self.routes:
            code, payload = self.routes[path]()
        else:
            code, payload = 404, {"error": f"unknown path {path!r}",
                                  "endpoints": ["/", "/status",
                                                "/manifest",
                                                "/result/<sweep>"]}
        self._respond(code, payload)


def make_server(directory, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Build (but don't start) the status server; ``port=0`` picks a
    free port — read it back from ``server.server_address``."""
    handler = type("BoundCampaignHandler", (CampaignRequestHandler,),
                   {"routes": _routes(directory)})
    return ThreadingHTTPServer((host, port), handler)


def serve(directory, host: str = "127.0.0.1", port: int = 8008,
          announce=None) -> None:
    """Run the status server until interrupted (CLI entry point)."""
    server = make_server(directory, host=host, port=port)
    bound_host, bound_port = server.server_address[:2]
    if announce:
        announce(f"serving campaign {directory} on "
                 f"http://{bound_host}:{bound_port} "
                 f"(endpoints: /status /manifest /result/<sweep>)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()

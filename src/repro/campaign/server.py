"""Read-only HTTP view of a campaign directory (stdlib only).

``repro campaign serve <dir>`` starts a tiny
:class:`http.server.ThreadingHTTPServer` that exposes the campaign's
journal-derived status and its finished reports to any number of
concurrent readers — without ever importing the simulator or writing
a byte to the campaign directory.  Endpoints:

``GET /``          index: campaign name, state, endpoint list
``GET /status``    live status JSON (recomputed per request from the
                   journal, so it tracks a running campaign)
``GET /manifest``  the campaign manifest verbatim
``GET /result/<sweep>``
                   the canonical ``SweepResult`` JSON of a completed
                   sweep (404 until that sweep has finished once)
``GET /healthz``   liveness probe: 200 with manifest/journal
                   readability figures, 503 when the campaign state
                   cannot be read — what supervisors (and the chaos
                   proxy in the test suite) poll
``GET /metrics``   Prometheus text: journal-derived campaign gauges
                   plus the process metrics registry (live executor /
                   engine / coordinator series when this process is
                   also computing)
``GET /dashboard`` (``--dashboard`` only) the single-file HTML
                   dashboard — static page, all data via JSON polling
``GET /timeline``  (``--dashboard`` only) per-trial timeline rows
                   reconstructed from journal events

Responses are JSON unless the payload carries its own content type
(``/metrics`` is Prometheus text, ``/dashboard`` is HTML); the server
answers GET/HEAD only.  ``serve`` installs a SIGTERM handler so
supervisors can stop it cleanly (the read-write coordinator,
:mod:`repro.campaign.coordinator`, reuses the same routes and shutdown
path on top of its write endpoints).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..obs.campaign import dashboard_html, journal_timeline, \
    status_metrics
from .journal import CampaignDir, CampaignError
from .status import campaign_status


class PlainText(str):
    """A response body that is Prometheus text, not JSON."""

    content_type = "text/plain; version=0.0.4; charset=utf-8"


class HtmlText(str):
    """A response body that is HTML, not JSON."""

    content_type = "text/html; charset=utf-8"


def _routes(directory, dashboard: bool = False):
    """Route table: path -> () -> (http status, payload object/text)."""
    cdir = CampaignDir(directory)

    def index() -> Tuple[int, object]:
        try:
            status = campaign_status(directory)
        except CampaignError as exc:
            return 500, {"error": str(exc)}
        sweeps = sorted(status["sweeps"])
        endpoints = ["/status", "/manifest", "/healthz", "/metrics"]
        if dashboard:
            endpoints += ["/dashboard", "/timeline"]
        return 200, {
            "campaign": status["name"],
            "state": status["state"],
            "endpoints": endpoints +
                         [f"/result/{name}" for name in sweeps],
        }

    def status() -> Tuple[int, object]:
        try:
            return 200, campaign_status(directory)
        except CampaignError as exc:
            return 500, {"error": str(exc)}

    def manifest() -> Tuple[int, object]:
        try:
            return 200, cdir.read_manifest()
        except CampaignError as exc:
            return 500, {"error": str(exc)}

    def result(sweep_name: str) -> Tuple[int, object]:
        if "/" in sweep_name or sweep_name in ("", ".", ".."):
            return 404, {"error": "no such sweep"}
        text = cdir.read_result(sweep_name)
        if text is None:
            return 404, {"error": f"sweep {sweep_name!r} has no result "
                                  f"yet — still running, or unknown"}
        return 200, text              # already-canonical JSON, verbatim

    def healthz() -> Tuple[int, object]:
        """Liveness: the campaign's shared state must be *readable* —
        a parseable manifest and an openable journal.  (Journal
        readers tolerate a truncated tail, so readability is the
        strongest property worth probing.)"""
        try:
            cdir.read_manifest()
        except CampaignError as exc:
            return 503, {"status": "unhealthy", "error": str(exc)}
        try:
            with open(cdir.journal_path, encoding="utf-8") as handle:
                lines = sum(1 for _ in handle)
        except OSError as exc:
            return 503, {"status": "unhealthy",
                         "error": f"journal unreadable: {exc}"}
        events = sum(1 for _ in cdir.events())
        return 200, {"status": "ok", "journal_lines": lines,
                     "journal_events": events}

    def metrics() -> Tuple[int, object]:
        try:
            status = campaign_status(directory)
        except CampaignError as exc:
            return 500, {"error": str(exc)}
        return 200, PlainText(status_metrics(status))

    def timeline() -> Tuple[int, object]:
        try:
            return 200, journal_timeline(directory)
        except CampaignError as exc:
            return 500, {"error": str(exc)}

    routes = {"/": index, "/status": status, "/manifest": manifest,
              "/healthz": healthz, "/metrics": metrics,
              "result": result}
    if dashboard:
        try:
            name = cdir.read_manifest().get("name") or "campaign"
        except CampaignError:
            name = "campaign"
        page = HtmlText(dashboard_html(f"repro campaign: {name}"))
        routes["/dashboard"] = lambda: (200, page)
        routes["/timeline"] = timeline
    return routes


class CampaignRequestHandler(BaseHTTPRequestHandler):
    """GET/HEAD-only JSON handler over one campaign directory."""

    server_version = "repro-campaign/1"
    #: Set by make_server().
    routes = None

    def log_message(self, fmt, *args):   # keep CLI output clean
        pass

    def _respond(self, code: int, payload) -> None:
        body = (payload if isinstance(payload, str)
                else json.dumps(payload, sort_keys=True, indent=2))
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type",
                         getattr(payload, "content_type",
                                 "application/json"))
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(data)

    def do_HEAD(self):                   # noqa: N802 (stdlib naming)
        self.do_GET()

    def do_GET(self):                    # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path.startswith("/result/"):
            code, payload = self.routes["result"](
                path[len("/result/"):])
        elif path in self.routes:
            code, payload = self.routes[path]()
        else:
            code, payload = 404, {"error": f"unknown path {path!r}",
                                  "endpoints": ["/", "/status",
                                                "/manifest", "/healthz",
                                                "/metrics",
                                                "/result/<sweep>"]}
        self._respond(code, payload)


def make_server(directory, host: str = "127.0.0.1",
                port: int = 0,
                dashboard: bool = False) -> ThreadingHTTPServer:
    """Build (but don't start) the status server; ``port=0`` picks a
    free port — read it back from ``server.server_address``.
    ``dashboard=True`` adds the ``/dashboard`` + ``/timeline`` pair."""
    handler = type("BoundCampaignHandler", (CampaignRequestHandler,),
                   {"routes": _routes(directory, dashboard=dashboard)})
    return ThreadingHTTPServer((host, port), handler)


def install_sigterm_handler() -> None:
    """Route SIGTERM onto the KeyboardInterrupt clean-shutdown path.

    Without this the stdlib HTTP loop ignores a supervisor's TERM
    until the process is killed hard.  Only possible from the main
    thread — anywhere else (tests driving servers from threads) this
    is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except (ValueError, OSError):       # non-main interpreter quirks
        pass


def serve(directory, host: str = "127.0.0.1", port: int = 8008,
          announce=None, dashboard: bool = False) -> None:
    """Run the status server until interrupted — SIGINT or SIGTERM
    both shut it down cleanly (CLI entry point)."""
    server = make_server(directory, host=host, port=port,
                         dashboard=dashboard)
    install_sigterm_handler()
    bound_host, bound_port = server.server_address[:2]
    extra = " /dashboard /timeline" if dashboard else ""
    # The announce sits inside the try: a TERM landing between the
    # banner and serve_forever() must still take the clean path.
    try:
        if announce:
            announce(f"serving campaign {directory} on "
                     f"http://{bound_host}:{bound_port} "
                     f"(endpoints: /status /manifest /healthz "
                     f"/metrics{extra} /result/<sweep>)")
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()

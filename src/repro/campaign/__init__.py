"""Resumable, fault-tolerant campaign engine over the harness.

A campaign runs one or more sweeps as a journaled job in a
self-contained directory: a work-stealing process pool computes
trials (bounded retries, per-trial timeouts, serial degradation), a
write-ahead journal plus the campaign's content-addressed cache make
it resumable after any crash, and read-only ``status``/``serve``
views report live progress without touching the simulator.

Typical use::

    from repro.campaign import Campaign, CampaignExecutor
    from repro.harness import presets

    sweep = presets.get("fig7").build()
    result = CampaignExecutor("campaigns/fig7", workers=8) \
        .execute(sweep, cache="auto")
    # ... SIGKILL at any point, then the same call (or
    # `repro campaign resume campaigns/fig7`) completes it —
    # result.to_json() is byte-identical either way.

The CLI surface is ``repro campaign run|resume|status|serve``.
"""

from .engine import (DEFAULT_BACKOFF, DEFAULT_RETRIES, Campaign,
                     CampaignExecutor)
from .journal import CampaignDir, CampaignError
from .server import make_server, serve
from .status import campaign_status, render_status

__all__ = [
    "DEFAULT_BACKOFF", "DEFAULT_RETRIES", "Campaign", "CampaignExecutor",
    "CampaignDir", "CampaignError", "make_server", "serve",
    "campaign_status", "render_status",
]

"""Resumable, fault-tolerant campaign engine over the harness.

A campaign runs one or more sweeps as a journaled job in a
self-contained directory: a work-stealing process pool computes
trials (bounded retries, per-trial timeouts, serial degradation), a
write-ahead journal plus the campaign's content-addressed cache make
it resumable after any crash, and read-only ``status``/``serve``
views report live progress without touching the simulator.

Typical use::

    from repro.campaign import Campaign, CampaignExecutor
    from repro.harness import presets

    sweep = presets.get("fig7").build()
    result = CampaignExecutor("campaigns/fig7", workers=8) \
        .execute(sweep, cache="auto")
    # ... SIGKILL at any point, then the same call (or
    # `repro campaign resume campaigns/fig7`) completes it —
    # result.to_json() is byte-identical either way.

A campaign can also be *sharded across hosts*: ``repro campaign
coordinate <dir>`` runs the read-write coordinator that owns the
directory and hands trials out under journaled leases, and ``repro
campaign worker <url>`` pulls trials on any number of hosts
(:mod:`~repro.campaign.coordinator` / :mod:`~repro.campaign.worker`).
``http://host:port`` cache URIs let plain sweeps share a remote
result store the same way (:mod:`~repro.campaign.httpcache`).

The CLI surface is ``repro campaign
run|resume|status|serve|coordinate|worker``.
"""

from .coordinator import (DEFAULT_LEASE_SECONDS, coordinate,
                          make_coordinator)
from .engine import (DEFAULT_BACKOFF, DEFAULT_RETRIES, Campaign,
                     CampaignExecutor)
from .httpcache import HttpCacheBackend, make_cache_server
from .journal import CampaignDir, CampaignError
from .netretry import RetryPolicy, Unreachable, backoff_delay
from .server import make_server, serve
from .status import campaign_status, render_status
from .worker import run_worker

__all__ = [
    "DEFAULT_BACKOFF", "DEFAULT_RETRIES", "DEFAULT_LEASE_SECONDS",
    "Campaign", "CampaignExecutor", "CampaignDir", "CampaignError",
    "HttpCacheBackend", "RetryPolicy", "Unreachable", "backoff_delay",
    "campaign_status", "coordinate", "make_cache_server",
    "make_coordinator", "make_server", "render_status", "run_worker",
    "serve",
]

"""``http:<url>`` cache backend — a remote result store over HTTP.

The client half, :class:`HttpCacheBackend`, is a full
:class:`~repro.harness.cache.CacheBackend` whose record storage lives
behind the coordinator's ``/cache/<key>`` endpoints.  Keying stays
client-side (trial spec + code fingerprint, exactly like the local
backends), so identical trials hit the same record whether the store
is a directory, a SQLite file, or a URL.  Every network call carries a
timeout and capped, jittered retries (:mod:`repro.campaign.netretry`),
and — like every backend — **never raises**: an unreachable or flaky
server degrades to a cache miss, because the cache must never change
experiment outcomes.

The server half, :class:`CacheRoutes` + :func:`make_cache_server`,
maps those endpoints onto any local backend.  The campaign coordinator
mounts the same routes (serialized under its state lock, in front of
its real ``dir:``/``sqlite:`` store); ``make_cache_server`` serves
them standalone so a plain sweep run on one host can use another
host's store via ``run_sweep(..., cache="http://host:port")``.

Wire protocol (all JSON):

====================  =============================================
``GET /cache/<key>``  200 + the raw record, or 404
``PUT /cache/<key>``  store the request body as the record → 204
``DELETE /cache/<key>``  200 ``{"removed": true|false}``
``GET /cache``        200 ``{"records": N}``
``DELETE /cache``     200 ``{"removed": N}`` (clear)
====================  =============================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..harness.cache import CacheBackend
from .netretry import DEFAULT_POLICY, RetryPolicy, Unreachable, request_json

_KEY_CHARS = set("0123456789abcdef")


def _valid_key(key: str) -> bool:
    return bool(key) and len(key) <= 128 and set(key) <= _KEY_CHARS


class HttpCacheBackend(CacheBackend):
    """Cache client for a coordinator (or standalone cache server) URL.

    The URI *is* the URL (``http://host:port``), so ``resolve_cache``
    round-trips it like any other backend URI.
    """

    scheme = "http"

    def __init__(self, url: str, code_version: Optional[str] = None,
                 policy: RetryPolicy = DEFAULT_POLICY):
        super().__init__(code_version=code_version)
        self.base = str(url).rstrip("/")
        self.policy = policy

    def uri(self) -> str:
        return self.base

    def _cache_url(self, key: str = "") -> str:
        return f"{self.base}/cache/{key}" if key else f"{self.base}/cache"

    def _call(self, key: str, payload, method: str, default):
        try:
            code, body = request_json(
                self._cache_url(key), payload=payload, method=method,
                policy=self.policy, key=("httpcache", method, key))
        except Unreachable:
            return None, default
        return code, body

    # ------------------------------------------------- storage hooks

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        code, body = self._call(key, None, "GET", None)
        if code == 200 and isinstance(body, dict):
            return body
        return None

    def _store(self, key: str, record: Dict[str, Any]) -> None:
        self._call(key, record, "PUT", None)

    def _exists(self, key: str) -> bool:
        code, _ = self._call(key, None, "GET", False)
        return code == 200

    def _delete(self, key: str) -> bool:
        code, body = self._call(key, None, "DELETE", False)
        return bool(code == 200 and isinstance(body, dict)
                    and body.get("removed"))

    def count(self) -> int:
        code, body = self._call("", None, "GET", 0)
        if code == 200 and isinstance(body, dict):
            return int(body.get("records", 0))
        return 0

    def clear(self) -> int:
        code, body = self._call("", None, "DELETE", 0)
        if code == 200 and isinstance(body, dict):
            return int(body.get("removed", 0))
        return 0


class CacheRoutes:
    """Server-side ``/cache`` route logic over one local backend.

    All mutations run under ``lock`` — the coordinator shares its state
    lock here, which is what serializes concurrent writers onto the
    real store.
    """

    def __init__(self, backend: CacheBackend,
                 lock: Optional[threading.Lock] = None):
        self.backend = backend
        self.lock = lock or threading.Lock()

    def handle(self, method: str, key: str,
               body: Optional[Dict[str, Any]]) -> Tuple[int, Any]:
        if key and not _valid_key(key):
            return 404, {"error": "malformed cache key"}
        with self.lock:
            if not key:
                if method == "GET":
                    return 200, {"records": self.backend.count()}
                if method == "DELETE":
                    return 200, {"removed": self.backend.clear()}
                return 405, {"error": f"{method} not allowed on /cache"}
            if method == "GET":
                record = self.backend._load(key)
                if record is None:
                    return 404, {"error": "no such record"}
                return 200, record
            if method == "PUT":
                if not isinstance(body, dict):
                    return 400, {"error": "record body must be a JSON "
                                          "object"}
                self.backend._store(key, body)
                return 204, None
            if method == "DELETE":
                return 200, {"removed": self.backend._delete(key)}
            return 405, {"error": f"{method} not allowed on /cache/<key>"}


def read_json_body(handler: BaseHTTPRequestHandler) \
        -> Optional[Dict[str, Any]]:
    """Decode a request's JSON body; ``None`` on anything malformed
    (missing/absurd Content-Length, truncated body, bad JSON) — the
    kind of wreckage a flaky link leaves behind."""
    try:
        length = int(handler.headers.get("Content-Length", 0))
    except (TypeError, ValueError):
        return None
    if length <= 0 or length > 64 * 1024 * 1024:
        return None
    try:
        raw = handler.rfile.read(length)
    except OSError:
        return None
    if len(raw) != length:
        return None
    try:
        decoded = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return decoded if isinstance(decoded, dict) else None


class _CacheOnlyHandler(BaseHTTPRequestHandler):
    """Standalone remote-cache server handler (no campaign attached)."""

    server_version = "repro-cache/1"
    routes: CacheRoutes = None

    def log_message(self, fmt, *args):
        pass

    def _respond(self, code: int, payload) -> None:
        data = b"" if payload is None else json.dumps(
            payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        if data and self.command != "HEAD":
            self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._respond(200, {"status": "ok",
                                "records": self.routes.backend.count()})
            return
        if path == "/cache" or path.startswith("/cache/"):
            key = path[len("/cache/"):] if path.startswith("/cache/") \
                else ""
            body = read_json_body(self) if method == "PUT" else None
            if method == "PUT" and body is None:
                self._respond(400, {"error": "malformed JSON body"})
                return
            code, payload = self.routes.handle(method, key, body)
            self._respond(code, payload)
            return
        self._respond(404, {"error": f"unknown path {path!r}",
                            "endpoints": ["/cache", "/cache/<key>",
                                          "/healthz"]})

    def do_GET(self):              # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_PUT(self):              # noqa: N802 (stdlib naming)
        self._dispatch("PUT")

    def do_DELETE(self):           # noqa: N802 (stdlib naming)
        self._dispatch("DELETE")


def make_cache_server(backend: CacheBackend, host: str = "127.0.0.1",
                      port: int = 0) -> ThreadingHTTPServer:
    """Build (don't start) a standalone remote-cache server over any
    local backend; ``port=0`` picks a free port."""
    handler = type("BoundCacheHandler", (_CacheOnlyHandler,),
                   {"routes": CacheRoutes(backend)})
    return ThreadingHTTPServer((host, port), handler)

"""Campaign directory layout: manifest + write-ahead journal.

A campaign directory is fully self-describing::

    <dir>/campaign.json    manifest: the sweeps (full trial specs),
                           cache URI, engine settings, signatures
    <dir>/journal.jsonl    append-only event log, one JSON object per
                           line (trial completions, retries, run
                           start/finish markers; under a multi-host
                           coordinator also ``lease`` / ``renew`` /
                           ``lease-expired`` records carrying host
                           identities)
    <dir>/cache/ or        the campaign's result store (any
    <dir>/results.sqlite   CacheBackend URI; defaults to a directory
                           backend inside the campaign dir)
    <dir>/<sweep>.result.json
                           canonical SweepResult.to_json per completed
                           sweep — byte-identical however the campaign
                           was executed, interrupted or resumed

The journal is *write-ahead bookkeeping*, not the source of truth for
results: payloads live in the cache, keyed by trial content, so a
campaign killed between a cache write and a journal append simply
recomputes (or cache-hits) that trial on resume.  Readers therefore
tolerate a truncated final line — the tail a SIGKILL can leave behind.

Everything here is file I/O only; nothing imports the simulator, which
is what lets ``repro campaign status`` / ``serve`` run against a live
campaign without perturbing it.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Iterator, List, Optional

from ..harness.spec import Sweep

MANIFEST_NAME = "campaign.json"
JOURNAL_NAME = "journal.jsonl"

MANIFEST_VERSION = 1


class CampaignError(RuntimeError):
    """A campaign could not be created, opened, resumed or completed."""


def result_filename(sweep_name: str) -> str:
    return f"{sweep_name}.result.json"


class CampaignDir:
    """Filesystem view of one campaign directory (manifest + journal)."""

    def __init__(self, directory):
        self.path = pathlib.Path(directory)

    # ------------------------------------------------------ manifest

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.path / MANIFEST_NAME

    @property
    def journal_path(self) -> pathlib.Path:
        return self.path / JOURNAL_NAME

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2),
                       encoding="utf-8")
        tmp.replace(self.manifest_path)

    def read_manifest(self) -> Dict[str, Any]:
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignError(
                f"no campaign at {self.path} (missing {MANIFEST_NAME}): "
                f"{exc}") from exc
        except ValueError as exc:
            raise CampaignError(
                f"corrupt manifest {self.manifest_path}: {exc}") from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise CampaignError(
                f"manifest {self.manifest_path} has version "
                f"{manifest.get('version')!r}; this build understands "
                f"{MANIFEST_VERSION}")
        return manifest

    def sweeps(self, manifest: Optional[Dict[str, Any]] = None) \
            -> List[Sweep]:
        manifest = manifest or self.read_manifest()
        return [Sweep.from_dict(d) for d in manifest["sweeps"]]

    # ------------------------------------------------------- journal

    def append_event(self, event: Dict[str, Any]) -> None:
        """Append one journal line, flushed before returning."""
        event = dict(event, time=time.time())
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()

    def events(self) -> Iterator[Dict[str, Any]]:
        """Journal events in append order; skips any truncated tail."""
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue   # half-written line from a kill
                    if isinstance(event, dict):
                        yield event
        except OSError:
            return

    def completed_hashes(self, sweep_name: str) -> Dict[str, str]:
        """spec_hash -> status for every journaled completion of a sweep."""
        done: Dict[str, str] = {}
        for event in self.events():
            if event.get("event") == "trial" \
                    and event.get("sweep") == sweep_name \
                    and event.get("status") in ("done", "cached"):
                done[event["spec_hash"]] = event["status"]
        return done

    # ------------------------------------------------------- results

    def result_path(self, sweep_name: str) -> pathlib.Path:
        return self.path / result_filename(sweep_name)

    def write_result(self, sweep_name: str, text: str) -> None:
        tmp = self.result_path(sweep_name).with_suffix(".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(self.result_path(sweep_name))

    def read_result(self, sweep_name: str) -> Optional[str]:
        try:
            return self.result_path(sweep_name).read_text(encoding="utf-8")
        except OSError:
            return None

"""Cross-core and SMT co-runner covert-channel scenarios.

PR 3's receivers measured the *same* hierarchy the victim ran on — the
attacker and victim were one simulated core, and "co-runner noise" was a
measurement overlay (:class:`~repro.channel.noise.NoiseModel`).  This
module runs the real thing:

* the **victim** (the transmit gadget) executes on core 0;
* the **attacker** measures from its own core's view of the shared,
  inclusive L3 — its private L1/L2 never hold the victim's lines, so a
  reload hit is an *LLC* hit and eviction/priming work through L3
  back-invalidation, exactly the cross-core Prime+Probe/Evict+Reload
  mechanism of the Spectre literature;
* optional **co-runners** are real instruction streams (the Fig. 7
  workload generators) interleaved cycle-accurately on further cores —
  or, with ``smt=True``, as a second hardware thread sharing the
  victim's private caches — whose fills and evictions perturb the run
  itself, not just the probe.

A :class:`Topology` names the arrangement with plain data so harness
trials stay JSON-serializable; ``Topology()`` (one core, no co-runner)
is exactly the PR 3 single-core path and is never routed through this
module.

Public contract
---------------
Three docs surfaces (CHANNELS, EXPERIMENTS, WORKLOADS) and the harness
reference exactly these entry points:

* :class:`Topology` — immutable, data-only placement spec.
  ``from_params`` accepts ``None`` / a ``Topology`` / a params mapping
  and returns ``None`` whenever the arrangement is equivalent to the
  single-core path, so callers can branch on "is this multi-core at
  all" in one place; ``to_spec`` round-trips through JSON.
* :func:`run_topology_attack` — the multi-core twin of
  :func:`repro.channel.session.run_channel_attack`: same parameters,
  same seeding contract, same :class:`~repro.channel.session.
  ChannelOutcome` return type (with ``topology`` filled in).  Callers
  never construct cores or views themselves.
* :func:`build_attack_system` / :func:`calibrate_topology_receiver` —
  the assembly and calibration halves, exposed for tests and custom
  scenarios.

Invariants: runs are pure functions of ``(attack spec, receiver,
noise spec, seed, topology)`` — deterministic at any harness worker
count — and a ``corunner`` is resolved by *registry name* (including
``trace-*`` and ``trace:<path>`` trace replays), never by live object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from ..channel.decode import signal_indices
from ..channel.noise import NO_NOISE, NoiseModel
from ..channel.receiver import ProbeLayout, Receiver, make_receiver, \
    receiver_class
from ..memory.hierarchy import PHYS_WINDOW_STRIDE, SharedHierarchy
from ..pipeline.config import CoreConfig
from ..pipeline.core import Core
from .system import MultiCoreSystem

DEFAULT_MAX_CYCLES = 3_000_000


@dataclass(frozen=True)
class Topology:
    """Placement of victim, attacker and co-runners on shared hardware.

    cores:
        Physical core count.  Core 0 runs the victim; with ``cores >=
        2`` the attacker measures from the last core's view (it runs no
        instruction stream — its cost is charged as receiver probe
        cycles, as in PR 3); cores ``1 .. cores-2`` run the co-runner
        workload.
    corunner:
        Registry name of the workload run as a real interfering
        instruction stream (``None`` = no co-runner).
    smt:
        Run the co-runner as a second hardware thread of the *victim's*
        core — sharing its private L1I/L1D/L2, maximal interference —
        instead of (or in addition to) dedicated co-runner cores.
    corunner_runahead:
        Runahead controller name for co-runner cores (default: none —
        a plain out-of-order background process).
    restart_corunner:
        Respawn a co-runner whose kernel halts before the victim does
        (a background process loops; a one-shot kernel does not).
    """

    cores: int = 1
    corunner: Optional[str] = None
    smt: bool = False
    corunner_runahead: str = "none"
    restart_corunner: bool = True

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.smt and self.corunner is None:
            raise ValueError("smt=True needs a corunner workload to run "
                             "on the second thread")
        if self.corunner is not None and not self.smt and self.cores < 3:
            raise ValueError(
                "a dedicated co-runner core needs cores >= 3 (victim + "
                "co-runner + attacker); use smt=True to share the "
                "victim's core instead")

    @property
    def is_multicore(self) -> bool:
        """True when this arrangement differs from the PR 3 single-core
        same-view measurement path."""
        return self.cores > 1 or self.corunner is not None

    @property
    def cross_core(self) -> bool:
        """True when the attacker measures from a different core."""
        return self.cores > 1

    @classmethod
    def from_params(cls, params: Union[None, "Topology", Mapping]) \
            -> Optional["Topology"]:
        """Build from harness trial params; ``None``/defaults mean the
        single-core path (returns ``None``)."""
        if params is None:
            return None
        if isinstance(params, cls):
            return params if params.is_multicore else None
        known = {"cores", "corunner", "smt", "corunner_runahead",
                 "restart_corunner"}
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"unknown topology keys: {sorted(unknown)}")
        topology = cls(**dict(params))
        return topology if topology.is_multicore else None

    def to_spec(self) -> dict:
        return {"cores": self.cores, "corunner": self.corunner,
                "smt": self.smt,
                "corunner_runahead": self.corunner_runahead,
                "restart_corunner": self.restart_corunner}


def build_attack_system(attack, runahead, config: CoreConfig,
                        receiver_name: str, topology: Topology) \
        -> Tuple[MultiCoreSystem, Receiver]:
    """Assemble the shared hierarchy, cores and receiver for one run.

    The victim and the attacker's measurement view share physical
    window 0 (flush+reload's shared-memory assumption: probe lines are
    the same physical lines for both).  Each co-runner stream gets its
    own 1 GiB window so its identically-low virtual addresses occupy
    disjoint lines — set indices are preserved, so its *set pressure*
    on the shared L3 is faithful while false line sharing is not
    possible.
    """
    from ..harness.registry import get_workload, make_controller

    shared = SharedHierarchy(config.hierarchy, cores=0)
    victim_view = shared.add_core(phys_base=0)
    system = MultiCoreSystem(shared)

    def make_victim():
        return Core(attack.program, memory_image=attack.image,
                    config=config, runahead=runahead,
                    initial_sp=attack.initial_sp, warm_icache=True,
                    hierarchy=victim_view)

    system.add_core(make_victim, name="victim")

    if topology.corunner is not None:
        workload = get_workload(topology.corunner)
        views = []
        window = 1
        if topology.smt:
            views.append(("smt", shared.add_smt_thread(
                victim_view, phys_base=window * PHYS_WINDOW_STRIDE)))
            window += 1
        for index in range(topology.cores - 2):
            views.append((f"corunner{index}", shared.add_core(
                phys_base=window * PHYS_WINDOW_STRIDE)))
            window += 1
        for name, view in views:
            def make_corunner(view=view):
                program, image, sp = workload.materialize()
                return Core(program, memory_image=image, config=config,
                            runahead=make_controller(
                                topology.corunner_runahead),
                            initial_sp=sp, warm_icache=True,
                            hierarchy=view)
            system.add_core(make_corunner, name=name,
                            restart=topology.restart_corunner)

    attacker_view = victim_view if not topology.cross_core \
        else shared.add_core(phys_base=0)
    receiver = make_receiver(receiver_name,
                             ProbeLayout.from_attack(attack),
                             attacker_view)
    if attacker_view is not victim_view:
        receiver.cross_core()
    return system, receiver


def _run_system(attack, runahead, config, receiver_name, topology,
                max_cycles):
    """Build, prepare and run one multi-core scenario.

    Ordering mirrors the single-core session: cores are built (and code
    regions warmed) first, then ``receiver.prepare()`` resets the
    channel, then the system runs to the victim's halt.
    """
    system, receiver = build_attack_system(attack, runahead, config,
                                           receiver_name, topology)
    receiver.prepare()
    victim = system.run(max_cycles=max_cycles, primary=0)
    if not victim.halted:
        raise RuntimeError(
            f"victim program did not finish in {max_cycles} cycles "
            f"(topology {topology.to_spec()})")
    return system, victim, receiver


def calibrate_topology_receiver(calibration_attack, runahead,
                                config: CoreConfig, receiver_name: str,
                                topology: Topology,
                                max_cycles: int = DEFAULT_MAX_CYCLES) \
        -> Tuple[Tuple[int, ...], int]:
    """Benign-trigger calibration through the *same* topology.

    Because the co-runner stream is deterministic and the victim
    program's timing is value-independent, the sets it deterministically
    disturbs — now including real co-runner interference, not just the
    program's own footprint — are identical across secret values, so one
    calibration serves a whole multi-byte extraction, exactly as in the
    single-core session.
    """
    _, core, receiver = _run_system(calibration_attack, runahead, config,
                                    receiver_name, topology, max_cycles)
    vector = receiver.measure(core.cycle, NO_NOISE, trial=0)
    return tuple(sorted(signal_indices(vector))), core.stats.cycles


def run_topology_attack(attack, runahead, config: Optional[CoreConfig],
                        receiver: str, topology: Topology, noise=None,
                        trials: int = 1, seed: int = 0,
                        max_cycles: int = DEFAULT_MAX_CYCLES,
                        extra_ignore=(), calibration_attack=None,
                        calibration_runahead=None):
    """Multi-core twin of :func:`repro.channel.session.run_channel_attack`.

    Same contract and return type (:class:`~repro.channel.session.
    ChannelOutcome`, with ``topology`` recorded); the victim run is
    simulated once per transmitted value and ``trials`` read-only
    measurements with independent noise draws are decoded together.
    """
    from ..channel.session import (ChannelOutcome, channel_ignore_set,
                                   measure_and_decode)

    if trials < 1:
        raise ValueError("trials must be >= 1")
    config = config or CoreConfig.paper()
    model = NoiseModel.from_spec(noise)
    cls = receiver_class(receiver)
    ignore = channel_ignore_set(cls, attack, extra_ignore)
    calibration_cycles = 0
    if cls.needs_calibration and calibration_attack is not None:
        baseline, calibration_cycles = calibrate_topology_receiver(
            calibration_attack, calibration_runahead, config, receiver,
            topology, max_cycles)
        ignore.update(baseline)

    _, core, live = _run_system(attack, runahead, config, receiver,
                                topology, max_cycles)
    _, decoded, measure_cycles = measure_and_decode(
        live, core.cycle, model, trials, seed, ignore)
    return ChannelOutcome(
        receiver=receiver, trials=trials,
        noise=model.to_spec() if model is not None else None,
        decode=decoded, ignore_indices=tuple(sorted(ignore)),
        stats=core.stats, cycles=core.stats.cycles,
        measure_cycles=measure_cycles,
        calibration_cycles=calibration_cycles,
        topology=topology.to_spec())

"""Multi-core simulation: lockstep scheduling and cross-core channels."""

from .scenario import (Topology, build_attack_system,
                       calibrate_topology_receiver, run_topology_attack)
from .system import CoreSlot, MultiCoreSystem

__all__ = [
    "Topology", "build_attack_system", "calibrate_topology_receiver",
    "run_topology_attack", "CoreSlot", "MultiCoreSystem",
]

"""Round-robin lockstep execution of N cores over one shared hierarchy.

Each :class:`~repro.pipeline.core.Core` owns its private pipeline state
and its view of the :class:`~repro.memory.hierarchy.SharedHierarchy`;
this module supplies the missing piece — a global clock.  Every global
cycle the scheduler first installs all completed fills (so one core's
fill is visible to another core's L3 lookup in the same cycle,
deterministically, regardless of step order), then steps each
non-halted core once in slot order.

Cycle skipping is preserved from the single-core ``Core.run`` loop but
lifted to the system level: when *no* core reported activity, the clock
jumps to the earliest per-core next event.  A system where one core is
always busy (a streaming co-runner) therefore degrades gracefully to
true cycle-by-cycle lockstep, while a victim-plus-idle-attacker pair
runs as fast as a single core.

Co-runner slots can be marked ``restart=True``: when their program
halts, the slot's factory builds a fresh core on the *same* hierarchy
view (caches stay warm) and execution continues at the current global
cycle — a co-runner is an endless background process, not a one-shot
kernel.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..pipeline.core import Core
from ..memory.hierarchy import SharedHierarchy


class CoreSlot:
    """One scheduled core: the live instance plus its rebuild recipe."""

    __slots__ = ("factory", "name", "restart", "core", "respawns")

    def __init__(self, factory: Callable[[], Core], name: str,
                 restart: bool):
        self.factory = factory
        self.name = name
        self.restart = restart
        self.core = factory()
        self.respawns = 0

    def respawn(self, now: int) -> Core:
        """Rebuild the core (fresh pipeline, same hierarchy view) and
        join the global clock at ``now``."""
        self.core = self.factory()
        self.core.cycle = now
        self.respawns += 1
        return self.core


class MultiCoreSystem:
    """Lockstep scheduler for cores sharing one :class:`SharedHierarchy`."""

    def __init__(self, shared: SharedHierarchy):
        self.shared = shared
        self.slots: List[CoreSlot] = []
        self.cycle = 0

    def add_core(self, factory: Callable[[], Core], name: str = "",
                 restart: bool = False) -> CoreSlot:
        """Register a core built by ``factory`` (zero-arg, returns a
        :class:`Core` bound to a view of this system's hierarchy)."""
        slot = CoreSlot(factory, name or f"core{len(self.slots)}", restart)
        if slot.core.hierarchy.shared is not self.shared:
            raise ValueError(
                f"slot {slot.name!r}: core is not bound to this system's "
                "shared hierarchy")
        self.slots.append(slot)
        return slot

    def run(self, max_cycles: int = 5_000_000, primary: int = 0,
            backend: str = "lockstep") -> Core:
        """Run all cores in lockstep until the primary halts.

        Returns the primary core (statistics inside).  Secondary cores
        that halt simply stop consuming cycles (or respawn, for
        ``restart`` slots); a fully quiescent system — nothing can ever
        happen again — also ends the run, leaving the primary's
        ``halted`` flag False for the caller to inspect.

        ``backend`` selects the driver: ``"lockstep"`` (this method's
        object-walking loop) or ``"fleet"`` (the column-hoisted driver
        in :mod:`repro.batch.lockstep` — bit-identical, same step
        order, less per-cycle attribute traffic).
        """
        slots = self.slots
        if not slots:
            raise ValueError("no cores scheduled")
        primary_slot = slots[primary]
        if primary_slot.restart:
            raise ValueError("the primary core cannot be a restart slot")
        if backend == "fleet":
            from ..batch.lockstep import run_lockstep_fleet
            return run_lockstep_fleet(self, max_cycles=max_cycles,
                                      primary=primary)
        if backend != "lockstep":
            raise ValueError(f"unknown backend {backend!r} "
                             f"(known: lockstep, fleet)")
        shared = self.shared
        now = self.cycle
        while now < max_cycles:
            shared.apply_completed(now)
            active = False
            for slot in slots:
                core = slot.core
                if core.halted:
                    if slot is primary_slot or not slot.restart:
                        continue
                    core = slot.respawn(now)
                    active = True
                core.cycle = now
                core.step()
                if core._activity:
                    active = True
            if primary_slot.core.halted:
                break
            now += 1
            if active:
                continue
            # Global cycle skip: every core idle — jump to the earliest
            # cycle at which any of them can make progress.
            skip_to = None
            for slot in slots:
                core = slot.core
                if core.halted:
                    continue
                event = core._next_event()
                if event is not None and (skip_to is None or
                                          event < skip_to):
                    skip_to = event
            if skip_to is None:
                break              # system quiescent: nothing can happen
            if skip_to > now:
                now = skip_to
        self.cycle = now
        for slot in slots:
            slot.core.stats.cycles = slot.core.cycle
        return primary_slot.core

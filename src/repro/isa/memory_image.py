"""Data-memory layout helper.

The simulated machine has a flat byte-addressed memory holding 8-byte
words.  :class:`MemoryImage` plays the role of a linker's data segment: it
allocates named, aligned regions ("symbols"), lets callers write initial
word values, and hands the result to the simulator's main memory.

Symbols are referenced from assembly via ``@name`` (optionally
``@name+offset``), so gadgets read like the C in Fig. 8 of the paper::

    image = MemoryImage()
    array1 = image.alloc_array("array1", 16)
    image.write_word(array1 + 8, 42)   # array1[1] = 42
"""

from __future__ import annotations

from typing import Dict

from .instructions import WORD_BYTES

DEFAULT_BASE = 0x10_0000
DEFAULT_ALIGN = 64
STACK_SYMBOL = "stack"


class MemoryImage:
    """Initial contents and symbol table for the simulated data memory."""

    def __init__(self, base=DEFAULT_BASE):
        if base % DEFAULT_ALIGN:
            raise ValueError("base address must be cache-line aligned")
        self.symbols: Dict[str, int] = {}
        self._sizes: Dict[str, int] = {}
        self._next = base
        self._words: Dict[int, int] = {}

    def alloc(self, name, size_bytes, align=DEFAULT_ALIGN):
        """Allocate ``size_bytes`` for ``name``; returns the base address."""
        if name in self.symbols:
            raise ValueError(f"symbol already allocated: {name}")
        if size_bytes <= 0:
            raise ValueError("allocation size must be positive")
        if align <= 0 or align % WORD_BYTES:
            raise ValueError("alignment must be a positive multiple of 8")
        addr = -(-self._next // align) * align
        self.symbols[name] = addr
        self._sizes[name] = size_bytes
        self._next = addr + size_bytes
        return addr

    def alloc_array(self, name, n_words, fill=0, align=DEFAULT_ALIGN):
        """Allocate an array of ``n_words`` 8-byte words, filled with ``fill``."""
        addr = self.alloc(name, n_words * WORD_BYTES, align=align)
        if fill:
            for i in range(n_words):
                self._words[addr + i * WORD_BYTES] = fill
        return addr

    def alloc_stack(self, n_words=256):
        """Allocate a downward-growing stack; returns the initial sp.

        ``call`` pushes the return address at ``sp - 8``; the returned
        pointer is one word past the top of the allocation.
        """
        base = self.alloc(STACK_SYMBOL, n_words * WORD_BYTES)
        return base + n_words * WORD_BYTES

    def address_of(self, name):
        """Return the byte address of a symbol."""
        return self.symbols[name]

    def size_of(self, name):
        """Return the allocated size of a symbol in bytes."""
        return self._sizes[name]

    def write_word(self, addr, value):
        """Set the initial value of the aligned word at ``addr``."""
        if addr % WORD_BYTES:
            raise ValueError(f"misaligned word address: {addr:#x}")
        self._words[addr] = value

    def write_words(self, addr, values):
        """Set consecutive word values starting at ``addr``."""
        for i, value in enumerate(values):
            self.write_word(addr + i * WORD_BYTES, value)

    def set_element(self, name, index, value):
        """Set word ``index`` of array symbol ``name``."""
        self.write_word(self.address_of(name) + index * WORD_BYTES, value)

    def initial_words(self):
        """Return the mapping of word address to initial value."""
        return dict(self._words)

    def resolve(self, expr):
        """Resolve an ``@symbol`` or ``@symbol+offset`` expression."""
        if not expr.startswith("@"):
            raise ValueError(f"not a symbol expression: {expr!r}")
        body = expr[1:]
        offset = 0
        for sep in ("+", "-"):
            if sep in body:
                name, _, tail = body.partition(sep)
                offset = int(tail, 0) * (1 if sep == "+" else -1)
                body = name
                break
        if body not in self.symbols:
            raise KeyError(f"unknown symbol: {body!r}")
        return self.symbols[body] + offset

"""Two-pass text assembler.

Syntax overview (one instruction per line, ``#`` starts a comment)::

    # data symbols come from a MemoryImage and are referenced as @name
        li    r1, @array1
    loop:
        load  r2, r1, 0          # r2 = mem[r1 + 0]
        addi  r1, r1, 8
        bne   r2, r0, loop
        clflush r1, 0
        halt

Directives:

* ``label:`` — define a code label (may share a line with an instruction).
* ``.repeat N, <instruction>`` — emit N copies of one instruction (used
  for the nop sleds of Figs. 10 and 11).

Operand kinds per opcode follow the reference table in
:func:`assemble`'s implementation; immediates accept decimal, hex and
``@symbol[+offset]`` expressions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import INSTR_BYTES, Instruction, Opcode
from .program import Program
from .registers import parse_reg

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")

# Operand signatures: d = dest reg, s = src reg, i = immediate, t = target
# label, o = optional immediate (defaults to 0).
_SIGNATURES = {
    Opcode.LI: "di",
    Opcode.MOV: "ds",
    Opcode.ADD: "dss", Opcode.SUB: "dss", Opcode.AND: "dss",
    Opcode.OR: "dss", Opcode.XOR: "dss", Opcode.SLL: "dss",
    Opcode.SRL: "dss", Opcode.SLT: "dss", Opcode.SLTU: "dss",
    Opcode.MUL: "dss", Opcode.DIV: "dss", Opcode.REM: "dss",
    Opcode.ADDI: "dsi", Opcode.ANDI: "dsi", Opcode.ORI: "dsi",
    Opcode.XORI: "dsi", Opcode.SLLI: "dsi", Opcode.SRLI: "dsi",
    Opcode.SLTI: "dsi", Opcode.MULI: "dsi",
    Opcode.FADD: "dss", Opcode.FSUB: "dss", Opcode.FMUL: "dss",
    Opcode.FDIV: "dss",
    Opcode.FCVT: "ds", Opcode.FMOV: "ds",
    Opcode.VADD: "dss", Opcode.VMUL: "dss",
    Opcode.VSPLAT: "ds", Opcode.VEXTRACT: "dsi",
    Opcode.LOAD: "dso", Opcode.FLOAD: "dso", Opcode.VLOAD: "dso",
    Opcode.STORE: "sso", Opcode.FSTORE: "sso", Opcode.VSTORE: "sso",
    Opcode.CLFLUSH: "so",
    Opcode.BEQ: "sst", Opcode.BNE: "sst", Opcode.BLT: "sst",
    Opcode.BGE: "sst", Opcode.BLTU: "sst", Opcode.BGEU: "sst",
    Opcode.JMP: "t", Opcode.JR: "s",
    Opcode.CALL: "t", Opcode.RET: "",
    Opcode.RDTSC: "d", Opcode.FENCE: "", Opcode.NOP: "", Opcode.HALT: "",
}

_OPCODES_BY_NAME = {op.mnemonic: op for op in Opcode}


class AssemblyError(ValueError):
    """Raised for any syntax or resolution error, with a line number."""

    def __init__(self, lineno, message):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_imm(token, symbols, lineno):
    token = token.strip()
    if token.startswith("@"):
        if symbols is None:
            raise AssemblyError(lineno, f"no symbol table for {token!r}")
        body = token[1:]
        offset = 0
        match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)([+-].+)?$", body)
        if not match:
            raise AssemblyError(lineno, f"bad symbol expression: {token!r}")
        name, tail = match.group(1), match.group(2)
        if name not in symbols:
            raise AssemblyError(lineno, f"unknown symbol: {name!r}")
        if tail:
            try:
                offset = int(tail, 0)
            except ValueError:
                raise AssemblyError(
                    lineno, f"bad symbol offset: {token!r}") from None
        return symbols[name] + offset
    try:
        if "." in token or "e" in token.lower() and not token.lower().startswith("0x"):
            try:
                return int(token, 0)
            except ValueError:
                return float(token)
        return int(token, 0)
    except ValueError:
        raise AssemblyError(lineno, f"bad immediate: {token!r}") from None


def _split_statements(line):
    """Split a source line into (labels, instruction-text)."""
    code = line.split("#", 1)[0].strip()
    labels = []
    while ":" in code:
        head, _, rest = code.partition(":")
        head = head.strip()
        if not _LABEL_RE.match(head):
            break
        labels.append(head)
        code = rest.strip()
    return labels, code


def _parse_instruction(text, symbols, lineno):
    """Parse one instruction; branch targets stay as label strings."""
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in _OPCODES_BY_NAME:
        raise AssemblyError(lineno, f"unknown mnemonic: {mnemonic!r}")
    opcode = _OPCODES_BY_NAME[mnemonic]
    signature = _SIGNATURES[opcode]
    operands = []
    if len(parts) > 1 and parts[1].strip():
        operands = [tok.strip() for tok in parts[1].split(",")]

    min_operands = len(signature.rstrip("o"))
    max_operands = len(signature)
    if not min_operands <= len(operands) <= max_operands:
        raise AssemblyError(
            lineno,
            f"{mnemonic} expects {min_operands}"
            f"{'-' + str(max_operands) if max_operands != min_operands else ''}"
            f" operands, got {len(operands)}")

    dest = None
    srcs = []
    imm = None
    target_label = None
    for kind, token in zip(signature, operands):
        if kind == "d":
            dest = parse_reg(token)
        elif kind == "s":
            srcs.append(parse_reg(token))
        elif kind in "io":
            imm = _parse_imm(token, symbols, lineno)
        elif kind == "t":
            target_label = token
    if "o" in signature and imm is None:
        imm = 0
    return opcode, dest, tuple(srcs), imm, target_label


def assemble(source, symbols=None, memory_image=None):
    """Assemble source text into a :class:`~repro.isa.program.Program`.

    Parameters
    ----------
    source:
        Assembly text.
    symbols:
        Optional mapping of data-symbol name to address.
    memory_image:
        Convenience alternative to ``symbols``: a
        :class:`~repro.isa.memory_image.MemoryImage` whose symbol table is
        used (and whose symbols are recorded on the program).
    """
    if memory_image is not None:
        if symbols is not None:
            raise ValueError("pass either symbols or memory_image, not both")
        symbols = memory_image.symbols
    symbols = dict(symbols or {})

    # Pass 1: expand directives, collect labels and raw statements.
    statements: List[Tuple[int, str]] = []  # (lineno, instruction text)
    labels: Dict[str, int] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        line_labels, code = _split_statements(line)
        for label in line_labels:
            if label in labels:
                raise AssemblyError(lineno, f"duplicate label: {label!r}")
            labels[label] = len(statements) * INSTR_BYTES
        if not code:
            continue
        if code.startswith(".repeat"):
            body = code[len(".repeat"):].strip()
            count_text, _, instr_text = body.partition(",")
            try:
                count = int(count_text.strip(), 0)
            except ValueError:
                raise AssemblyError(
                    lineno, f"bad .repeat count: {count_text!r}") from None
            if count < 0:
                raise AssemblyError(lineno, ".repeat count must be >= 0")
            instr_text = instr_text.strip()
            if not instr_text:
                raise AssemblyError(lineno, ".repeat needs an instruction")
            statements.extend((lineno, instr_text) for _ in range(count))
        elif code.startswith("."):
            raise AssemblyError(lineno, f"unknown directive: {code.split()[0]!r}")
        else:
            statements.append((lineno, code))

    # Pass 2: parse and resolve.
    from .registers import REG_SP

    instructions = []
    for index, (lineno, text) in enumerate(statements):
        opcode, dest, srcs, imm, target_label = _parse_instruction(
            text, symbols, lineno)
        if opcode in (Opcode.CALL, Opcode.RET):
            # call/ret implicitly push/pop the return address through the
            # stack pointer (the SpectreRSB attack surface).
            dest = REG_SP
            srcs = (REG_SP,)
        target = None
        if target_label is not None:
            if target_label not in labels:
                raise AssemblyError(lineno, f"unknown label: {target_label!r}")
            target = labels[target_label]
        instructions.append(
            Instruction(opcode=opcode, dest=dest, srcs=srcs, imm=imm,
                        target=target))
    return Program(instructions, labels=labels, symbols=symbols)

"""Instruction set definition.

A deliberately small RISC-style ISA that is nonetheless rich enough to
express every gadget in the paper (Figs. 3, 8, 10 and 12):

* integer/floating/vector ALU operations with the Table-1 functional-unit
  classes,
* loads/stores on a byte-addressed memory (8-byte aligned words),
* conditional branches, direct/indirect jumps, and ``call``/``ret`` that go
  through an in-memory stack (so SpectreRSB stack-overwrite and stack-flush
  variants are expressible),
* ``clflush`` (evict a line from the whole hierarchy), ``rdtsc`` (read the
  cycle counter) and ``fence`` (drain serialization), which together form
  the flush+reload timing probe of Fig. 8 lines 17-22.

Instructions are immutable; a :class:`~repro.isa.program.Program` is a list
of them with all branch targets resolved to instruction addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

INSTR_BYTES = 4
WORD_BYTES = 8


class FuKind(enum.Enum):
    """Functional-unit classes, matching Table 1 of the paper."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mult"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mult"
    FP_DIV = "fp_div"
    MEM = "mem_port"
    BRANCH = "branch"
    NONE = "none"


class Opcode(enum.Enum):
    # Integer ALU (1 cycle).
    LI = "li"
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    SLTU = "sltu"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    # Integer multiply (2 cycles) / divide (5 cycles).
    MUL = "mul"
    MULI = "muli"
    DIV = "div"
    REM = "rem"
    # Floating point: add-class (5), mul (10), div (15).
    FADD = "fadd"
    FSUB = "fsub"
    FCVT = "fcvt"
    FMOV = "fmov"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Vector (two 64-bit lanes; mapped onto the fp units).
    VADD = "vadd"
    VMUL = "vmul"
    VSPLAT = "vsplat"
    VEXTRACT = "vextract"
    # Memory.
    LOAD = "load"
    STORE = "store"
    FLOAD = "fload"
    FSTORE = "fstore"
    VLOAD = "vload"
    VSTORE = "vstore"
    CLFLUSH = "clflush"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JMP = "jmp"
    JR = "jr"
    CALL = "call"
    RET = "ret"
    # Misc.
    RDTSC = "rdtsc"
    FENCE = "fence"
    NOP = "nop"
    HALT = "halt"


#: Opcodes computed on the integer ALU.
INT_ALU_OPS = frozenset({
    Opcode.LI, Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
    Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT, Opcode.SLTU,
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.SLTI,
})

CONDITIONAL_BRANCHES = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
})

BRANCH_OPS = CONDITIONAL_BRANCHES | {Opcode.JMP, Opcode.JR, Opcode.CALL,
                                     Opcode.RET}

MEM_OPS = frozenset({
    Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE, Opcode.VLOAD,
    Opcode.VSTORE, Opcode.CLFLUSH,
})

LOAD_OPS = frozenset({Opcode.LOAD, Opcode.FLOAD, Opcode.VLOAD})
STORE_OPS = frozenset({Opcode.STORE, Opcode.FSTORE, Opcode.VSTORE})

_FU_BY_OPCODE = {}
for _op in INT_ALU_OPS:
    _FU_BY_OPCODE[_op] = FuKind.INT_ALU
for _op in (Opcode.MUL, Opcode.MULI):
    _FU_BY_OPCODE[_op] = FuKind.INT_MUL
for _op in (Opcode.DIV, Opcode.REM):
    _FU_BY_OPCODE[_op] = FuKind.INT_DIV
for _op in (Opcode.FADD, Opcode.FSUB, Opcode.FCVT, Opcode.FMOV, Opcode.VADD,
            Opcode.VSPLAT, Opcode.VEXTRACT):
    _FU_BY_OPCODE[_op] = FuKind.FP_ADD
for _op in (Opcode.FMUL, Opcode.VMUL):
    _FU_BY_OPCODE[_op] = FuKind.FP_MUL
for _op in (Opcode.FDIV,):
    _FU_BY_OPCODE[_op] = FuKind.FP_DIV
for _op in MEM_OPS:
    _FU_BY_OPCODE[_op] = FuKind.MEM
for _op in BRANCH_OPS:
    _FU_BY_OPCODE[_op] = FuKind.BRANCH
for _op in (Opcode.RDTSC, Opcode.FENCE, Opcode.NOP, Opcode.HALT):
    _FU_BY_OPCODE[_op] = FuKind.NONE


def fu_kind(opcode):
    """Return the functional-unit class an opcode executes on."""
    return _FU_BY_OPCODE[opcode]


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``dest`` and ``srcs`` are flat register indices (see
    :mod:`repro.isa.registers`); ``imm`` is an integer or float immediate;
    ``target`` is a resolved instruction address for direct control flow.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: object = None
    target: Optional[int] = None

    def is_branch(self):
        return self.opcode in BRANCH_OPS

    def is_conditional_branch(self):
        return self.opcode in CONDITIONAL_BRANCHES

    def is_mem(self):
        return self.opcode in MEM_OPS

    def is_load(self):
        return self.opcode in LOAD_OPS

    def is_store(self):
        return self.opcode in STORE_OPS

    @property
    def fu(self):
        return fu_kind(self.opcode)

    def reads(self):
        """Registers read by this instruction (in operand order)."""
        return self.srcs

    def writes(self):
        """Register written by this instruction, or None."""
        return self.dest

    def __str__(self):
        from .registers import reg_name

        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        operands.extend(reg_name(src) for src in self.srcs)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(f"-> {self.target:#x}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


_MASK64 = (1 << 64) - 1


def to_unsigned64(value):
    """Wrap a Python int to an unsigned 64-bit value."""
    return value & _MASK64


def to_signed64(value):
    """Interpret a Python int as a signed 64-bit value."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def eval_int_alu(opcode, a, b, imm):
    """Evaluate an integer ALU/MUL/DIV opcode.

    ``a`` and ``b`` are unsigned 64-bit source values (``b`` may be None for
    immediate forms).  Returns the unsigned 64-bit result.
    """
    if opcode is Opcode.LI:
        return to_unsigned64(imm)
    if opcode is Opcode.MOV:
        return a
    if opcode is Opcode.ADD:
        return to_unsigned64(a + b)
    if opcode is Opcode.ADDI:
        return to_unsigned64(a + imm)
    if opcode is Opcode.SUB:
        return to_unsigned64(a - b)
    if opcode is Opcode.AND:
        return a & b
    if opcode is Opcode.ANDI:
        return a & to_unsigned64(imm)
    if opcode is Opcode.OR:
        return a | b
    if opcode is Opcode.ORI:
        return a | to_unsigned64(imm)
    if opcode is Opcode.XOR:
        return a ^ b
    if opcode is Opcode.XORI:
        return a ^ to_unsigned64(imm)
    if opcode is Opcode.SLL:
        return to_unsigned64(a << (b & 63))
    if opcode is Opcode.SLLI:
        return to_unsigned64(a << (imm & 63))
    if opcode is Opcode.SRL:
        return a >> (b & 63)
    if opcode is Opcode.SRLI:
        return a >> (imm & 63)
    if opcode is Opcode.SLT:
        return 1 if to_signed64(a) < to_signed64(b) else 0
    if opcode is Opcode.SLTI:
        return 1 if to_signed64(a) < imm else 0
    if opcode is Opcode.SLTU:
        return 1 if a < b else 0
    if opcode is Opcode.MUL:
        return to_unsigned64(to_signed64(a) * to_signed64(b))
    if opcode is Opcode.MULI:
        return to_unsigned64(to_signed64(a) * imm)
    if opcode is Opcode.DIV:
        if b == 0:
            return _MASK64
        quotient = abs(to_signed64(a)) // abs(to_signed64(b))
        if (to_signed64(a) < 0) != (to_signed64(b) < 0):
            quotient = -quotient
        return to_unsigned64(quotient)
    if opcode is Opcode.REM:
        if b == 0:
            return a
        sa, sb = to_signed64(a), to_signed64(b)
        remainder = abs(sa) % abs(sb)
        if sa < 0:
            remainder = -remainder
        return to_unsigned64(remainder)
    raise ValueError(f"not an integer ALU opcode: {opcode}")


def eval_branch(opcode, a, b):
    """Evaluate a conditional branch predicate on unsigned 64-bit values."""
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return to_signed64(a) < to_signed64(b)
    if opcode is Opcode.BGE:
        return to_signed64(a) >= to_signed64(b)
    if opcode is Opcode.BLTU:
        return a < b
    if opcode is Opcode.BGEU:
        return a >= b
    raise ValueError(f"not a conditional branch: {opcode}")

"""Instruction set definition.

A deliberately small RISC-style ISA that is nonetheless rich enough to
express every gadget in the paper (Figs. 3, 8, 10 and 12):

* integer/floating/vector ALU operations with the Table-1 functional-unit
  classes,
* loads/stores on a byte-addressed memory (8-byte aligned words),
* conditional branches, direct/indirect jumps, and ``call``/``ret`` that go
  through an in-memory stack (so SpectreRSB stack-overwrite and stack-flush
  variants are expressible),
* ``clflush`` (evict a line from the whole hierarchy), ``rdtsc`` (read the
  cycle counter) and ``fence`` (drain serialization), which together form
  the flush+reload timing probe of Fig. 8 lines 17-22.

Instructions are immutable; a :class:`~repro.isa.program.Program` is a list
of them with all branch targets resolved to instruction addresses.

Everything the cycle simulator asks about an instruction every cycle is
decided here, *once*, at decode time: :class:`Opcode` and :class:`FuKind`
are ``IntEnum`` s with contiguous values so they index flat dispatch
tables, and :class:`Instruction` precomputes its classification flags
(``branch``/``load``/``store``/...), functional-unit class, rename class
and load type into plain ``__slots__`` attributes.  The hot path reads
attributes and indexes lists — no properties, no ``enum`` hashing, no
set-membership tests.
"""

from __future__ import annotations

import enum

from .registers import reg_class

INSTR_BYTES = 4
WORD_BYTES = 8


class FuKind(enum.IntEnum):
    """Functional-unit classes, matching Table 1 of the paper.

    Values are contiguous so unit pools can be flat lists indexed by
    kind; ``label`` carries the Table-1 name for reports.
    """

    def __new__(cls, value, label):
        obj = int.__new__(cls, value)
        obj._value_ = value
        obj.label = label
        return obj

    INT_ALU = (0, "int_alu")
    INT_MUL = (1, "int_mult")
    INT_DIV = (2, "int_div")
    FP_ADD = (3, "fp_add")
    FP_MUL = (4, "fp_mult")
    FP_DIV = (5, "fp_div")
    MEM = (6, "mem_port")
    BRANCH = (7, "branch")
    NONE = (8, "none")


NUM_FU_KINDS = len(FuKind)


class Opcode(enum.IntEnum):
    """Opcodes with contiguous integer values (table-dispatch friendly).

    ``mnemonic`` is the assembly spelling; the integer value is an
    implementation detail and never serialized.
    """

    def __new__(cls, value, mnemonic):
        obj = int.__new__(cls, value)
        obj._value_ = value
        obj.mnemonic = mnemonic
        return obj

    # Integer ALU (1 cycle).
    LI = (0, "li")
    MOV = (1, "mov")
    ADD = (2, "add")
    SUB = (3, "sub")
    AND = (4, "and")
    OR = (5, "or")
    XOR = (6, "xor")
    SLL = (7, "sll")
    SRL = (8, "srl")
    SLT = (9, "slt")
    SLTU = (10, "sltu")
    ADDI = (11, "addi")
    ANDI = (12, "andi")
    ORI = (13, "ori")
    XORI = (14, "xori")
    SLLI = (15, "slli")
    SRLI = (16, "srli")
    SLTI = (17, "slti")
    # Integer multiply (2 cycles) / divide (5 cycles).
    MUL = (18, "mul")
    MULI = (19, "muli")
    DIV = (20, "div")
    REM = (21, "rem")
    # Floating point: add-class (5), mul (10), div (15).
    FADD = (22, "fadd")
    FSUB = (23, "fsub")
    FCVT = (24, "fcvt")
    FMOV = (25, "fmov")
    FMUL = (26, "fmul")
    FDIV = (27, "fdiv")
    # Vector (two 64-bit lanes; mapped onto the fp units).
    VADD = (28, "vadd")
    VMUL = (29, "vmul")
    VSPLAT = (30, "vsplat")
    VEXTRACT = (31, "vextract")
    # Memory.
    LOAD = (32, "load")
    STORE = (33, "store")
    FLOAD = (34, "fload")
    FSTORE = (35, "fstore")
    VLOAD = (36, "vload")
    VSTORE = (37, "vstore")
    CLFLUSH = (38, "clflush")
    # Control flow.
    BEQ = (39, "beq")
    BNE = (40, "bne")
    BLT = (41, "blt")
    BGE = (42, "bge")
    BLTU = (43, "bltu")
    BGEU = (44, "bgeu")
    JMP = (45, "jmp")
    JR = (46, "jr")
    CALL = (47, "call")
    RET = (48, "ret")
    # Misc.
    RDTSC = (49, "rdtsc")
    FENCE = (50, "fence")
    NOP = (51, "nop")
    HALT = (52, "halt")


NUM_OPCODES = len(Opcode)

#: Mnemonic → opcode (assembler front end).
OPCODES_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}

#: Opcodes computed on the integer ALU.
INT_ALU_OPS = frozenset({
    Opcode.LI, Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
    Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT, Opcode.SLTU,
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.SLTI,
})

CONDITIONAL_BRANCHES = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU, Opcode.BGEU,
})

BRANCH_OPS = CONDITIONAL_BRANCHES | {Opcode.JMP, Opcode.JR, Opcode.CALL,
                                     Opcode.RET}

MEM_OPS = frozenset({
    Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE, Opcode.VLOAD,
    Opcode.VSTORE, Opcode.CLFLUSH,
})

LOAD_OPS = frozenset({Opcode.LOAD, Opcode.FLOAD, Opcode.VLOAD})
STORE_OPS = frozenset({Opcode.STORE, Opcode.FSTORE, Opcode.VSTORE})

_FU_BY_OPCODE = {}
for _op in INT_ALU_OPS:
    _FU_BY_OPCODE[_op] = FuKind.INT_ALU
for _op in (Opcode.MUL, Opcode.MULI):
    _FU_BY_OPCODE[_op] = FuKind.INT_MUL
for _op in (Opcode.DIV, Opcode.REM):
    _FU_BY_OPCODE[_op] = FuKind.INT_DIV
for _op in (Opcode.FADD, Opcode.FSUB, Opcode.FCVT, Opcode.FMOV, Opcode.VADD,
            Opcode.VSPLAT, Opcode.VEXTRACT):
    _FU_BY_OPCODE[_op] = FuKind.FP_ADD
for _op in (Opcode.FMUL, Opcode.VMUL):
    _FU_BY_OPCODE[_op] = FuKind.FP_MUL
for _op in (Opcode.FDIV,):
    _FU_BY_OPCODE[_op] = FuKind.FP_DIV
for _op in MEM_OPS:
    _FU_BY_OPCODE[_op] = FuKind.MEM
for _op in BRANCH_OPS:
    _FU_BY_OPCODE[_op] = FuKind.BRANCH
for _op in (Opcode.RDTSC, Opcode.FENCE, Opcode.NOP, Opcode.HALT):
    _FU_BY_OPCODE[_op] = FuKind.NONE

#: Flat decode tables indexed by integer opcode.
FU_OF = [_FU_BY_OPCODE[op] for op in Opcode]
IS_BRANCH = [op in BRANCH_OPS for op in Opcode]
IS_COND_BRANCH = [op in CONDITIONAL_BRANCHES for op in Opcode]
IS_MEM = [op in MEM_OPS for op in Opcode]
IS_LOAD = [op in LOAD_OPS for op in Opcode]
IS_STORE = [op in STORE_OPS for op in Opcode]
#: What the pipeline treats as a load/store: ``ret`` pops and ``call``
#: pushes the return address through the in-memory stack.
IS_PIPE_LOAD = [op in LOAD_OPS or op is Opcode.RET for op in Opcode]
IS_PIPE_STORE = [op in STORE_OPS or op is Opcode.CALL for op in Opcode]
#: Dispatch-immediate opcodes (complete at dispatch, no backend use).
IS_IMMEDIATE = [op in (Opcode.NOP, Opcode.HALT, Opcode.FENCE)
                for op in Opcode]
#: Value type a load produces ("int" / "float" / "vec"), else None.
LOAD_TYPE = [None] * NUM_OPCODES
LOAD_TYPE[Opcode.LOAD] = "int"
LOAD_TYPE[Opcode.FLOAD] = "float"
LOAD_TYPE[Opcode.VLOAD] = "vec"


def fu_kind(opcode):
    """Return the functional-unit class an opcode executes on."""
    return FU_OF[opcode]


class Instruction:
    """One decoded instruction.

    ``dest`` and ``srcs`` are flat register indices (see
    :mod:`repro.isa.registers`); ``imm`` is an integer or float immediate;
    ``target`` is a resolved instruction address for direct control flow.

    Construction precomputes everything the per-cycle pipeline loops ask
    about — classification flags, functional-unit class, rename class of
    the destination — into plain read-only-by-convention attributes, so
    dispatch/issue/commit never pay for a property call or a frozenset
    membership test.  The predicate *methods* (``is_branch()`` & co.)
    are kept as the stable API for code off the hot path.
    """

    __slots__ = ("opcode", "dest", "srcs", "imm", "target",
                 "op", "fu", "branch", "cond_branch", "mem", "load",
                 "store", "pipe_load", "pipe_store", "immediate",
                 "rename_class", "load_type", "n_srcs")

    def __init__(self, opcode, dest=None, srcs=(), imm=None, target=None):
        self.opcode = opcode
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.target = target
        # -- decode-time static metadata (the per-cycle fast path) --
        op = int(opcode)
        self.op = op
        self.fu = FU_OF[op]
        self.branch = IS_BRANCH[op]
        self.cond_branch = IS_COND_BRANCH[op]
        self.mem = IS_MEM[op]
        self.load = IS_LOAD[op]
        self.store = IS_STORE[op]
        self.pipe_load = IS_PIPE_LOAD[op]
        self.pipe_store = IS_PIPE_STORE[op]
        self.immediate = IS_IMMEDIATE[op]
        self.load_type = LOAD_TYPE[op]
        self.n_srcs = len(self.srcs)
        if dest is None or dest == 0:        # REG_ZERO writes rename nothing
            self.rename_class = None
        else:
            self.rename_class = reg_class(dest)

    # -- stable predicate API (off the hot path) ------------------------------

    def is_branch(self):
        return self.branch

    def is_conditional_branch(self):
        return self.cond_branch

    def is_mem(self):
        return self.mem

    def is_load(self):
        return self.load

    def is_store(self):
        return self.store

    def reads(self):
        """Registers read by this instruction (in operand order)."""
        return self.srcs

    def writes(self):
        """Register written by this instruction, or None."""
        return self.dest

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.opcode is other.opcode and self.dest == other.dest and
                self.srcs == other.srcs and self.imm == other.imm and
                self.target == other.target)

    def __hash__(self):
        return hash((self.op, self.dest, self.srcs, self.imm, self.target))

    def __repr__(self):
        return f"Instruction({self})"

    def __str__(self):
        from .registers import reg_name

        parts = [self.opcode.mnemonic]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        operands.extend(reg_name(src) for src in self.srcs)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(f"-> {self.target:#x}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


_MASK64 = (1 << 64) - 1


def to_unsigned64(value):
    """Wrap a Python int to an unsigned 64-bit value."""
    return value & _MASK64


def to_signed64(value):
    """Interpret a Python int as a signed 64-bit value."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def _div64(a, b):
    if b == 0:
        return _MASK64
    sa, sb = to_signed64(a), to_signed64(b)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & _MASK64


def _rem64(a, b):
    if b == 0:
        return a
    sa, sb = to_signed64(a), to_signed64(b)
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & _MASK64


#: Integer ALU/MUL/DIV dispatch table: ``fn(a, b, imm) -> u64``.
#: Indexed by integer opcode; None marks non-ALU opcodes.
ALU_EVAL = [None] * NUM_OPCODES
ALU_EVAL[Opcode.LI] = lambda a, b, imm: imm & _MASK64
ALU_EVAL[Opcode.MOV] = lambda a, b, imm: a
ALU_EVAL[Opcode.ADD] = lambda a, b, imm: (a + b) & _MASK64
ALU_EVAL[Opcode.ADDI] = lambda a, b, imm: (a + imm) & _MASK64
ALU_EVAL[Opcode.SUB] = lambda a, b, imm: (a - b) & _MASK64
ALU_EVAL[Opcode.AND] = lambda a, b, imm: a & b
ALU_EVAL[Opcode.ANDI] = lambda a, b, imm: a & (imm & _MASK64)
ALU_EVAL[Opcode.OR] = lambda a, b, imm: a | b
ALU_EVAL[Opcode.ORI] = lambda a, b, imm: a | (imm & _MASK64)
ALU_EVAL[Opcode.XOR] = lambda a, b, imm: a ^ b
ALU_EVAL[Opcode.XORI] = lambda a, b, imm: a ^ (imm & _MASK64)
ALU_EVAL[Opcode.SLL] = lambda a, b, imm: (a << (b & 63)) & _MASK64
ALU_EVAL[Opcode.SLLI] = lambda a, b, imm: (a << (imm & 63)) & _MASK64
ALU_EVAL[Opcode.SRL] = lambda a, b, imm: a >> (b & 63)
ALU_EVAL[Opcode.SRLI] = lambda a, b, imm: a >> (imm & 63)
ALU_EVAL[Opcode.SLT] = \
    lambda a, b, imm: 1 if to_signed64(a) < to_signed64(b) else 0
ALU_EVAL[Opcode.SLTI] = lambda a, b, imm: 1 if to_signed64(a) < imm else 0
ALU_EVAL[Opcode.SLTU] = lambda a, b, imm: 1 if a < b else 0
ALU_EVAL[Opcode.MUL] = \
    lambda a, b, imm: (to_signed64(a) * to_signed64(b)) & _MASK64
ALU_EVAL[Opcode.MULI] = lambda a, b, imm: (to_signed64(a) * imm) & _MASK64
ALU_EVAL[Opcode.DIV] = lambda a, b, imm: _div64(a, b)
ALU_EVAL[Opcode.REM] = lambda a, b, imm: _rem64(a, b)


def eval_int_alu(opcode, a, b, imm):
    """Evaluate an integer ALU/MUL/DIV opcode.

    ``a`` and ``b`` are unsigned 64-bit source values (``b`` may be None for
    immediate forms).  Returns the unsigned 64-bit result.
    """
    fn = ALU_EVAL[opcode]
    if fn is None:
        raise ValueError(f"not an integer ALU opcode: {opcode!r}")
    return fn(a, b, imm)


#: Conditional-branch dispatch table: ``fn(a, b) -> bool``.
BRANCH_EVAL = [None] * NUM_OPCODES
BRANCH_EVAL[Opcode.BEQ] = lambda a, b: a == b
BRANCH_EVAL[Opcode.BNE] = lambda a, b: a != b
BRANCH_EVAL[Opcode.BLT] = lambda a, b: to_signed64(a) < to_signed64(b)
BRANCH_EVAL[Opcode.BGE] = lambda a, b: to_signed64(a) >= to_signed64(b)
BRANCH_EVAL[Opcode.BLTU] = lambda a, b: a < b
BRANCH_EVAL[Opcode.BGEU] = lambda a, b: a >= b


def eval_branch(opcode, a, b):
    """Evaluate a conditional branch predicate on unsigned 64-bit values."""
    fn = BRANCH_EVAL[opcode]
    if fn is None:
        raise ValueError(f"not a conditional branch: {opcode!r}")
    return fn(a, b)

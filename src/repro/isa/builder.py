"""Fluent program builder.

Gadget and workload generators compose programs programmatically.  The
builder accumulates assembly text and defers to the (single, well-tested)
assembler, so there is exactly one parsing/resolution path in the library::

    b = ProgramBuilder(image)
    b.li("r1", "@array1")
    with b.label("loop"):
        b.load("r2", "r1", 0)
        b.addi("r1", "r1", 8)
        b.bne("r2", "r0", "loop")
    b.halt()
    program = b.build()

Every mnemonic is available as a method; unknown attributes raise
immediately so typos fail at build-construction time rather than assembly
time.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional

from .assembler import assemble
from .instructions import Opcode
from .memory_image import MemoryImage

_MNEMONICS = frozenset(op.mnemonic for op in Opcode)


class ProgramBuilder:
    """Accumulates assembly lines and assembles them on :meth:`build`."""

    def __init__(self, memory_image: Optional[MemoryImage] = None):
        self.memory_image = memory_image
        self._lines: List[str] = []
        self._label_counter = 0

    # -- structural helpers -------------------------------------------------

    def raw(self, line):
        """Append a raw assembly line (instruction, label or directive)."""
        self._lines.append(line)
        return self

    def comment(self, text):
        self._lines.append(f"# {text}")
        return self

    def mark(self, name):
        """Place label ``name`` at the current position."""
        self._lines.append(f"{name}:")
        return self

    @contextlib.contextmanager
    def label(self, name):
        """Context-manager form of :meth:`mark` for readable loop bodies."""
        self.mark(name)
        yield self

    def fresh_label(self, stem="L"):
        """Return a unique label name."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def repeat(self, count, instruction_text):
        """Emit ``count`` copies of one instruction (nop sleds etc.)."""
        self._lines.append(f".repeat {count}, {instruction_text}")
        return self

    def nops(self, count):
        """Emit a sled of ``count`` nop instructions."""
        return self.repeat(count, "nop")

    # -- instruction emission ------------------------------------------------

    def emit(self, mnemonic, *operands):
        """Emit one instruction from mnemonic and operand strings/ints."""
        if mnemonic not in _MNEMONICS:
            raise AttributeError(f"unknown mnemonic: {mnemonic!r}")
        rendered = ", ".join(str(op) for op in operands)
        line = f"    {mnemonic} {rendered}" if rendered else f"    {mnemonic}"
        self._lines.append(line)
        return self

    def __getattr__(self, name):
        if name in _MNEMONICS:
            def emitter(*operands):
                return self.emit(name, *operands)
            return emitter
        raise AttributeError(name)

    # Named wrappers for mnemonics that shadow keywords/builtins, so call
    # sites can avoid getattr tricks.
    def and_(self, *operands):
        return self.emit("and", *operands)

    def or_(self, *operands):
        return self.emit("or", *operands)

    # -- output ---------------------------------------------------------------

    def source(self):
        """Return the accumulated assembly text."""
        return "\n".join(self._lines) + "\n"

    def build(self):
        """Assemble the accumulated program."""
        return assemble(self.source(), memory_image=self.memory_image)

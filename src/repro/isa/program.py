"""Program container: a resolved instruction sequence plus metadata.

A :class:`Program` owns the instruction list (addresses are
``index * INSTR_BYTES``), the label table produced by the assembler, and
optional *branch scope* metadata used by the taint tracker of the defense
(§6 of the paper): for each forward conditional branch the scope is the
fall-through body ``[pc + 4, target)``, i.e. the region executed when the
bounds check passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instructions import INSTR_BYTES, Instruction

#: pc → instruction-index shift (INSTR_BYTES is a power of two).
_PC_SHIFT = INSTR_BYTES.bit_length() - 1


class Program:
    """An assembled program.

    Parameters
    ----------
    instructions:
        The resolved instruction list.
    labels:
        Mapping of label name to instruction address.
    symbols:
        Mapping of data-symbol name to byte address (shared with the
        :class:`~repro.isa.memory_image.MemoryImage` the program runs
        against).
    """

    def __init__(self, instructions, labels=None, symbols=None):
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self.symbols: Dict[str, int] = dict(symbols or {})
        # Fetch is on the simulator's per-cycle hot path: cache the
        # bounds once instead of recomputing len() per call.
        self._count = len(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    @property
    def end_pc(self):
        """First address past the last instruction."""
        return len(self.instructions) * INSTR_BYTES

    def fetch(self, pc) -> Optional[Instruction]:
        """Return the instruction at ``pc``, or None past the end."""
        if pc & (INSTR_BYTES - 1):
            raise ValueError(f"misaligned pc: {pc:#x}")
        index = pc >> _PC_SHIFT
        if 0 <= index < self._count:
            return self.instructions[index]
        return None

    def address_of(self, label):
        """Return the address of a label."""
        return self.labels[label]

    def scope_end(self, pc):
        """Return the branch-scope end address for the branch at ``pc``.

        The scope of a forward conditional branch is its fall-through body:
        the instructions executed when the branch is *not taken*, ending at
        the branch target.  Backward and unconditional branches have no
        scope (returns None).  This mirrors the compiler-provided
        ``Bns``/``Bne`` addresses of §6.
        """
        instr = self.fetch(pc)
        if instr is None or not instr.is_conditional_branch():
            return None
        if instr.target is None or instr.target <= pc:
            return None
        return instr.target

    def disassemble(self):
        """Return a human-readable listing of the whole program."""
        addr_to_label = {addr: name for name, addr in self.labels.items()}
        lines = []
        for index, instr in enumerate(self.instructions):
            pc = index * INSTR_BYTES
            label = addr_to_label.get(pc)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {pc:#06x}: {instr}")
        return "\n".join(lines)

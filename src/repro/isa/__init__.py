"""Instruction set, assembler, program representation and golden model."""

from .assembler import AssemblyError, assemble
from .builder import ProgramBuilder
from .instructions import (INSTR_BYTES, WORD_BYTES, FuKind, Instruction,
                           Opcode, to_signed64, to_unsigned64)
from .interpreter import (Interpreter, InterpreterError, InterpreterResult,
                          run_program)
from .memory_image import MemoryImage
from .program import Program
from .registers import (NUM_ARCH_REGS, REG_SP, REG_ZERO, fp_reg, int_reg,
                        parse_reg, reg_class, reg_name, vec_reg)

__all__ = [
    "AssemblyError", "assemble", "ProgramBuilder", "INSTR_BYTES",
    "WORD_BYTES", "FuKind", "Instruction", "Opcode", "to_signed64",
    "to_unsigned64", "Interpreter", "InterpreterError", "InterpreterResult",
    "run_program", "MemoryImage", "Program", "NUM_ARCH_REGS", "REG_SP",
    "REG_ZERO", "fp_reg", "int_reg", "parse_reg", "reg_class", "reg_name",
    "vec_reg",
]

"""Architectural register file layout.

The ISA exposes three register classes, mirroring Table 1 of the paper
(integer, floating point, and xmm/vector):

* ``r0`` .. ``r31`` — 64-bit integer registers.  ``r0`` is hardwired to
  zero (reads return 0, writes are discarded).  By software convention
  ``r29`` is the stack pointer used by ``call``/``ret``.
* ``f0`` .. ``f15`` — 64-bit floating-point registers.
* ``x0`` .. ``x7``  — 128-bit vector registers, modeled as two 64-bit lanes.

Internally every register is a small integer index into one flat space so
the pipeline's rename table is a plain list.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 16
NUM_VEC_REGS = 8

INT_BASE = 0
FP_BASE = NUM_INT_REGS
VEC_BASE = NUM_INT_REGS + NUM_FP_REGS
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS + NUM_VEC_REGS

#: Index of the hardwired-zero integer register.
REG_ZERO = 0
#: Software-convention stack pointer (used implicitly by call/ret).
REG_SP = 29
#: Software-convention link register (available to hand-written code).
REG_LINK = 30

INT_CLASS = "int"
FP_CLASS = "fp"
VEC_CLASS = "vec"


def int_reg(n):
    """Return the flat index of integer register ``r<n>``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {n}")
    return INT_BASE + n


def fp_reg(n):
    """Return the flat index of floating-point register ``f<n>``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {n}")
    return FP_BASE + n


def vec_reg(n):
    """Return the flat index of vector register ``x<n>``."""
    if not 0 <= n < NUM_VEC_REGS:
        raise ValueError(f"vector register index out of range: {n}")
    return VEC_BASE + n


def reg_class(reg):
    """Return the register class ("int", "fp" or "vec") of a flat index."""
    if INT_BASE <= reg < FP_BASE:
        return INT_CLASS
    if FP_BASE <= reg < VEC_BASE:
        return FP_CLASS
    if VEC_BASE <= reg < NUM_ARCH_REGS:
        return VEC_CLASS
    raise ValueError(f"register index out of range: {reg}")


def reg_name(reg):
    """Return the assembly name of a flat register index."""
    cls = reg_class(reg)
    if cls == INT_CLASS:
        return f"r{reg - INT_BASE}"
    if cls == FP_CLASS:
        return f"f{reg - FP_BASE}"
    return f"x{reg - VEC_BASE}"


def parse_reg(name):
    """Parse an assembly register name ("r5", "f3", "x1", "sp") to an index."""
    text = name.strip().lower()
    if text == "sp":
        return REG_SP
    if text == "lr":
        return REG_LINK
    if len(text) < 2 or text[0] not in "rfx":
        raise ValueError(f"not a register name: {name!r}")
    try:
        index = int(text[1:])
    except ValueError:
        raise ValueError(f"not a register name: {name!r}") from None
    if text[0] == "r":
        return int_reg(index)
    if text[0] == "f":
        return fp_reg(index)
    return vec_reg(index)


def zero_value(reg):
    """Return the reset value appropriate for a register's class."""
    cls = reg_class(reg)
    if cls == INT_CLASS:
        return 0
    if cls == FP_CLASS:
        return 0.0
    return (0, 0)


def make_register_file():
    """Return a list holding the reset value of every architectural register."""
    return [zero_value(reg) for reg in range(NUM_ARCH_REGS)]

"""Functional reference interpreter (golden model).

Executes a :class:`~repro.isa.program.Program` with simple sequential
semantics and no timing.  The out-of-order core, with or without runahead,
must always produce the same *architectural* end state as this
interpreter — the property-based differential tests in
``tests/pipeline/test_differential.py`` assert exactly that.

Timing-dependent results are implementation-defined: ``rdtsc`` here
returns the executed-instruction count, so differential tests exclude it.
``clflush`` and ``fence`` are architectural no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .instructions import (INSTR_BYTES, WORD_BYTES, Instruction, Opcode,
                           eval_branch, eval_int_alu, to_signed64,
                           to_unsigned64)
from .program import Program
from .registers import (FP_CLASS, INT_CLASS, NUM_ARCH_REGS, REG_SP, REG_ZERO,
                        VEC_CLASS, make_register_file, reg_class)


class InterpreterError(RuntimeError):
    """Raised on invalid execution (misalignment, runaway programs...)."""


@dataclass
class InterpreterResult:
    """Architectural end state of an interpreted run."""

    registers: List[object]
    memory: Dict[int, object]
    steps: int
    halted: bool
    pc: int
    trace: List[int] = field(default_factory=list)

    def reg(self, index):
        return self.registers[index]


def _read_word(memory, addr):
    if addr % WORD_BYTES:
        raise InterpreterError(f"misaligned load address: {addr:#x}")
    return memory.get(addr, 0)


def _write_word(memory, addr, value):
    if addr % WORD_BYTES:
        raise InterpreterError(f"misaligned store address: {addr:#x}")
    memory[addr] = value


def _as_int(value):
    if isinstance(value, float):
        return to_unsigned64(int(value))
    return to_unsigned64(int(value))


def _as_float(value):
    return float(value)


class Interpreter:
    """Stepwise functional executor; use :func:`run_program` for one-shots."""

    def __init__(self, program: Program, memory_image=None, initial_sp=None):
        self.program = program
        self.registers = make_register_file()
        self.memory: Dict[int, object] = {}
        if memory_image is not None:
            self.memory.update(memory_image.initial_words())
        if initial_sp is not None:
            self.registers[REG_SP] = to_unsigned64(initial_sp)
        self.pc = 0
        self.steps = 0
        self.halted = False

    # -- register access ------------------------------------------------------

    def read_reg(self, reg):
        if reg == REG_ZERO:
            return 0
        return self.registers[reg]

    def write_reg(self, reg, value):
        if reg == REG_ZERO:
            return
        cls = reg_class(reg)
        if cls == INT_CLASS:
            value = to_unsigned64(int(value))
        elif cls == FP_CLASS:
            value = float(value)
        self.registers[reg] = value

    # -- execution -------------------------------------------------------------

    def step(self):
        """Execute one instruction; returns False once halted/off the end."""
        if self.halted:
            return False
        instr = self.program.fetch(self.pc)
        if instr is None:
            self.halted = True
            return False
        self.steps += 1
        next_pc = self.pc + INSTR_BYTES
        op = instr.opcode

        if op in (Opcode.NOP, Opcode.FENCE, Opcode.CLFLUSH):
            pass
        elif op is Opcode.HALT:
            self.halted = True
            self.pc = next_pc
            return False
        elif op is Opcode.RDTSC:
            self.write_reg(instr.dest, self.steps)
        elif op is Opcode.LOAD:
            addr = to_unsigned64(self.read_reg(instr.srcs[0]) + instr.imm)
            self.write_reg(instr.dest, _as_int(_read_word(self.memory, addr)))
        elif op is Opcode.FLOAD:
            addr = to_unsigned64(self.read_reg(instr.srcs[0]) + instr.imm)
            self.write_reg(instr.dest, _as_float(_read_word(self.memory, addr)))
        elif op is Opcode.VLOAD:
            addr = to_unsigned64(self.read_reg(instr.srcs[0]) + instr.imm)
            lane0 = _as_int(_read_word(self.memory, addr))
            lane1 = _as_int(_read_word(self.memory, addr + WORD_BYTES))
            self.write_reg(instr.dest, (lane0, lane1))
        elif op is Opcode.STORE:
            value = self.read_reg(instr.srcs[0])
            addr = to_unsigned64(self.read_reg(instr.srcs[1]) + instr.imm)
            _write_word(self.memory, addr, _as_int(value))
        elif op is Opcode.FSTORE:
            value = self.read_reg(instr.srcs[0])
            addr = to_unsigned64(self.read_reg(instr.srcs[1]) + instr.imm)
            _write_word(self.memory, addr, _as_float(value))
        elif op is Opcode.VSTORE:
            lanes = self.read_reg(instr.srcs[0])
            addr = to_unsigned64(self.read_reg(instr.srcs[1]) + instr.imm)
            _write_word(self.memory, addr, _as_int(lanes[0]))
            _write_word(self.memory, addr + WORD_BYTES, _as_int(lanes[1]))
        elif op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV):
            a = _as_float(self.read_reg(instr.srcs[0]))
            b = _as_float(self.read_reg(instr.srcs[1]))
            if op is Opcode.FADD:
                result = a + b
            elif op is Opcode.FSUB:
                result = a - b
            elif op is Opcode.FMUL:
                result = a * b
            else:
                result = a / b if b else float("inf")
            self.write_reg(instr.dest, result)
        elif op is Opcode.FCVT:
            self.write_reg(instr.dest,
                           float(to_signed64(self.read_reg(instr.srcs[0]))))
        elif op is Opcode.FMOV:
            self.write_reg(instr.dest, _as_float(self.read_reg(instr.srcs[0])))
        elif op in (Opcode.VADD, Opcode.VMUL):
            a = self.read_reg(instr.srcs[0])
            b = self.read_reg(instr.srcs[1])
            if op is Opcode.VADD:
                result = (to_unsigned64(a[0] + b[0]), to_unsigned64(a[1] + b[1]))
            else:
                result = (to_unsigned64(a[0] * b[0]), to_unsigned64(a[1] * b[1]))
            self.write_reg(instr.dest, result)
        elif op is Opcode.VSPLAT:
            value = _as_int(self.read_reg(instr.srcs[0]))
            self.write_reg(instr.dest, (value, value))
        elif op is Opcode.VEXTRACT:
            lanes = self.read_reg(instr.srcs[0])
            self.write_reg(instr.dest, _as_int(lanes[instr.imm & 1]))
        elif instr.is_conditional_branch():
            a = _as_int(self.read_reg(instr.srcs[0]))
            b = _as_int(self.read_reg(instr.srcs[1]))
            if eval_branch(op, a, b):
                next_pc = instr.target
        elif op is Opcode.JMP:
            next_pc = instr.target
        elif op is Opcode.JR:
            next_pc = _as_int(self.read_reg(instr.srcs[0]))
        elif op is Opcode.CALL:
            sp = to_unsigned64(_as_int(self.read_reg(REG_SP)) - WORD_BYTES)
            _write_word(self.memory, sp, self.pc + INSTR_BYTES)
            self.write_reg(REG_SP, sp)
            next_pc = instr.target
        elif op is Opcode.RET:
            sp = _as_int(self.read_reg(REG_SP))
            next_pc = _as_int(_read_word(self.memory, sp))
            self.write_reg(REG_SP, to_unsigned64(sp + WORD_BYTES))
        else:
            # Integer ALU / MUL / DIV family.
            a = _as_int(self.read_reg(instr.srcs[0])) if instr.srcs else 0
            b = _as_int(self.read_reg(instr.srcs[1])) if len(instr.srcs) > 1 else None
            self.write_reg(instr.dest, eval_int_alu(op, a, b, instr.imm))

        self.pc = next_pc
        return True

    def run(self, max_steps=1_000_000):
        """Run until halt or ``max_steps``; returns an InterpreterResult."""
        while self.steps < max_steps:
            if not self.step():
                break
        else:
            raise InterpreterError(
                f"program did not halt within {max_steps} steps")
        return InterpreterResult(
            registers=list(self.registers),
            memory=dict(self.memory),
            steps=self.steps,
            halted=self.halted,
            pc=self.pc,
        )


def run_program(program, memory_image=None, initial_sp=None,
                max_steps=1_000_000):
    """Interpret a program and return its architectural end state."""
    interp = Interpreter(program, memory_image=memory_image,
                         initial_sp=initial_sp)
    return interp.run(max_steps=max_steps)

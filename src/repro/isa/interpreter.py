"""Functional reference interpreter (golden model).

Executes a :class:`~repro.isa.program.Program` with simple sequential
semantics and no timing.  The out-of-order core, with or without runahead,
must always produce the same *architectural* end state as this
interpreter — the property-based differential tests in
``tests/pipeline/test_differential.py`` assert exactly that.

Timing-dependent results are implementation-defined: ``rdtsc`` here
returns the executed-instruction count, so differential tests exclude it.
``clflush`` and ``fence`` are architectural no-ops.

Execution dispatches through a flat handler table indexed by the integer
opcode (one list index per step instead of a ~25-arm ``elif`` chain),
which matters because differential tests interpret millions of steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .instructions import (ALU_EVAL, INSTR_BYTES, NUM_OPCODES, WORD_BYTES,
                           Instruction, Opcode, eval_branch, eval_int_alu,
                           to_signed64, to_unsigned64)
from .program import Program
from .registers import (FP_CLASS, INT_CLASS, NUM_ARCH_REGS, REG_SP, REG_ZERO,
                        VEC_CLASS, make_register_file, reg_class)


class InterpreterError(RuntimeError):
    """Raised on invalid execution (misalignment, runaway programs...)."""


@dataclass
class InterpreterResult:
    """Architectural end state of an interpreted run."""

    registers: List[object]
    memory: Dict[int, object]
    steps: int
    halted: bool
    pc: int
    trace: List[int] = field(default_factory=list)
    #: Data addresses touched, in order (loads, stores, call/ret stack
    #: traffic) — only populated when run with ``record_accesses=True``.
    accesses: List[int] = field(default_factory=list)

    def reg(self, index):
        return self.registers[index]


def _read_word(memory, addr):
    if addr % WORD_BYTES:
        raise InterpreterError(f"misaligned load address: {addr:#x}")
    return memory.get(addr, 0)


def _write_word(memory, addr, value):
    if addr % WORD_BYTES:
        raise InterpreterError(f"misaligned store address: {addr:#x}")
    memory[addr] = value


def _as_int(value):
    if type(value) is int:
        return to_unsigned64(value)
    return to_unsigned64(int(value))


def _as_float(value):
    return float(value)


class Interpreter:
    """Stepwise functional executor; use :func:`run_program` for one-shots."""

    def __init__(self, program: Program, memory_image=None, initial_sp=None,
                 record_accesses=False):
        self.program = program
        self.registers = make_register_file()
        self.memory: Dict[int, object] = {}
        if memory_image is not None:
            self.memory.update(memory_image.initial_words())
        if initial_sp is not None:
            self.registers[REG_SP] = to_unsigned64(initial_sp)
        self.pc = 0
        self.steps = 0
        self.halted = False
        #: Ordered data addresses, or None when recording is off — the
        #: footprint oracle in repro.verify.crosscheck diffs these
        #: against the simulator's cache state to spot transient fills.
        self.accesses: List[int] = [] if record_accesses else None

    # -- register access ------------------------------------------------------

    def read_reg(self, reg):
        if reg == REG_ZERO:
            return 0
        return self.registers[reg]

    def write_reg(self, reg, value):
        if reg == REG_ZERO:
            return
        cls = reg_class(reg)
        if cls == INT_CLASS:
            value = to_unsigned64(int(value))
        elif cls == FP_CLASS:
            value = float(value)
        self.registers[reg] = value

    # -- execution -------------------------------------------------------------

    def step(self):
        """Execute one instruction; returns False once halted/off the end."""
        if self.halted:
            return False
        instr = self.program.fetch(self.pc)
        if instr is None:
            self.halted = True
            return False
        self.steps += 1
        if instr.op == _OP_HALT:
            self.halted = True
            self.pc += INSTR_BYTES
            return False
        self.pc = _HANDLERS[instr.op](self, instr)
        return True

    def run(self, max_steps=1_000_000):
        """Run until halt or ``max_steps``; returns an InterpreterResult."""
        while self.steps < max_steps:
            if not self.step():
                break
        else:
            raise InterpreterError(
                f"program did not halt within {max_steps} steps")
        return InterpreterResult(
            registers=list(self.registers),
            memory=dict(self.memory),
            steps=self.steps,
            halted=self.halted,
            pc=self.pc,
            accesses=self.accesses if self.accesses is not None else [],
        )


# -- opcode handlers (each returns the next pc) --------------------------------

_OP_HALT = int(Opcode.HALT)


def _op_nop(interp, instr):
    return interp.pc + INSTR_BYTES


def _op_rdtsc(interp, instr):
    interp.write_reg(instr.dest, interp.steps)
    return interp.pc + INSTR_BYTES


def _op_load(interp, instr):
    addr = to_unsigned64(interp.read_reg(instr.srcs[0]) + instr.imm)
    if interp.accesses is not None:
        interp.accesses.append(addr)
    interp.write_reg(instr.dest, _as_int(_read_word(interp.memory, addr)))
    return interp.pc + INSTR_BYTES


def _op_fload(interp, instr):
    addr = to_unsigned64(interp.read_reg(instr.srcs[0]) + instr.imm)
    if interp.accesses is not None:
        interp.accesses.append(addr)
    interp.write_reg(instr.dest, _as_float(_read_word(interp.memory, addr)))
    return interp.pc + INSTR_BYTES


def _op_vload(interp, instr):
    addr = to_unsigned64(interp.read_reg(instr.srcs[0]) + instr.imm)
    if interp.accesses is not None:
        interp.accesses.extend((addr, addr + WORD_BYTES))
    lane0 = _as_int(_read_word(interp.memory, addr))
    lane1 = _as_int(_read_word(interp.memory, addr + WORD_BYTES))
    interp.write_reg(instr.dest, (lane0, lane1))
    return interp.pc + INSTR_BYTES


def _op_store(interp, instr):
    value = interp.read_reg(instr.srcs[0])
    addr = to_unsigned64(interp.read_reg(instr.srcs[1]) + instr.imm)
    if interp.accesses is not None:
        interp.accesses.append(addr)
    _write_word(interp.memory, addr, _as_int(value))
    return interp.pc + INSTR_BYTES


def _op_fstore(interp, instr):
    value = interp.read_reg(instr.srcs[0])
    addr = to_unsigned64(interp.read_reg(instr.srcs[1]) + instr.imm)
    if interp.accesses is not None:
        interp.accesses.append(addr)
    _write_word(interp.memory, addr, _as_float(value))
    return interp.pc + INSTR_BYTES


def _op_vstore(interp, instr):
    lanes = interp.read_reg(instr.srcs[0])
    addr = to_unsigned64(interp.read_reg(instr.srcs[1]) + instr.imm)
    if interp.accesses is not None:
        interp.accesses.extend((addr, addr + WORD_BYTES))
    _write_word(interp.memory, addr, _as_int(lanes[0]))
    _write_word(interp.memory, addr + WORD_BYTES, _as_int(lanes[1]))
    return interp.pc + INSTR_BYTES


def _op_fadd(interp, instr):
    a = _as_float(interp.read_reg(instr.srcs[0]))
    b = _as_float(interp.read_reg(instr.srcs[1]))
    interp.write_reg(instr.dest, a + b)
    return interp.pc + INSTR_BYTES


def _op_fsub(interp, instr):
    a = _as_float(interp.read_reg(instr.srcs[0]))
    b = _as_float(interp.read_reg(instr.srcs[1]))
    interp.write_reg(instr.dest, a - b)
    return interp.pc + INSTR_BYTES


def _op_fmul(interp, instr):
    a = _as_float(interp.read_reg(instr.srcs[0]))
    b = _as_float(interp.read_reg(instr.srcs[1]))
    interp.write_reg(instr.dest, a * b)
    return interp.pc + INSTR_BYTES


def _op_fdiv(interp, instr):
    a = _as_float(interp.read_reg(instr.srcs[0]))
    b = _as_float(interp.read_reg(instr.srcs[1]))
    interp.write_reg(instr.dest, a / b if b else float("inf"))
    return interp.pc + INSTR_BYTES


def _op_fcvt(interp, instr):
    interp.write_reg(instr.dest,
                     float(to_signed64(interp.read_reg(instr.srcs[0]))))
    return interp.pc + INSTR_BYTES


def _op_fmov(interp, instr):
    interp.write_reg(instr.dest, _as_float(interp.read_reg(instr.srcs[0])))
    return interp.pc + INSTR_BYTES


def _op_vadd(interp, instr):
    a = interp.read_reg(instr.srcs[0])
    b = interp.read_reg(instr.srcs[1])
    interp.write_reg(instr.dest, (to_unsigned64(a[0] + b[0]),
                                  to_unsigned64(a[1] + b[1])))
    return interp.pc + INSTR_BYTES


def _op_vmul(interp, instr):
    a = interp.read_reg(instr.srcs[0])
    b = interp.read_reg(instr.srcs[1])
    interp.write_reg(instr.dest, (to_unsigned64(a[0] * b[0]),
                                  to_unsigned64(a[1] * b[1])))
    return interp.pc + INSTR_BYTES


def _op_vsplat(interp, instr):
    value = _as_int(interp.read_reg(instr.srcs[0]))
    interp.write_reg(instr.dest, (value, value))
    return interp.pc + INSTR_BYTES


def _op_vextract(interp, instr):
    lanes = interp.read_reg(instr.srcs[0])
    interp.write_reg(instr.dest, _as_int(lanes[instr.imm & 1]))
    return interp.pc + INSTR_BYTES


def _op_cond_branch(interp, instr):
    a = _as_int(interp.read_reg(instr.srcs[0]))
    b = _as_int(interp.read_reg(instr.srcs[1]))
    if eval_branch(instr.opcode, a, b):
        return instr.target
    return interp.pc + INSTR_BYTES


def _op_jmp(interp, instr):
    return instr.target


def _op_jr(interp, instr):
    return _as_int(interp.read_reg(instr.srcs[0]))


def _op_call(interp, instr):
    sp = to_unsigned64(_as_int(interp.read_reg(REG_SP)) - WORD_BYTES)
    if interp.accesses is not None:
        interp.accesses.append(sp)
    _write_word(interp.memory, sp, interp.pc + INSTR_BYTES)
    interp.write_reg(REG_SP, sp)
    return instr.target


def _op_ret(interp, instr):
    sp = _as_int(interp.read_reg(REG_SP))
    if interp.accesses is not None:
        interp.accesses.append(sp)
    next_pc = _as_int(_read_word(interp.memory, sp))
    interp.write_reg(REG_SP, to_unsigned64(sp + WORD_BYTES))
    return next_pc


def _op_int_alu(interp, instr):
    srcs = instr.srcs
    a = _as_int(interp.read_reg(srcs[0])) if srcs else 0
    b = _as_int(interp.read_reg(srcs[1])) if len(srcs) > 1 else None
    interp.write_reg(instr.dest, ALU_EVAL[instr.op](a, b, instr.imm))
    return interp.pc + INSTR_BYTES


_HANDLERS = [None] * NUM_OPCODES
for _op in Opcode:
    if ALU_EVAL[_op] is not None:
        _HANDLERS[_op] = _op_int_alu
_HANDLERS[Opcode.NOP] = _op_nop
_HANDLERS[Opcode.FENCE] = _op_nop
_HANDLERS[Opcode.CLFLUSH] = _op_nop
_HANDLERS[Opcode.RDTSC] = _op_rdtsc
_HANDLERS[Opcode.LOAD] = _op_load
_HANDLERS[Opcode.FLOAD] = _op_fload
_HANDLERS[Opcode.VLOAD] = _op_vload
_HANDLERS[Opcode.STORE] = _op_store
_HANDLERS[Opcode.FSTORE] = _op_fstore
_HANDLERS[Opcode.VSTORE] = _op_vstore
_HANDLERS[Opcode.FADD] = _op_fadd
_HANDLERS[Opcode.FSUB] = _op_fsub
_HANDLERS[Opcode.FMUL] = _op_fmul
_HANDLERS[Opcode.FDIV] = _op_fdiv
_HANDLERS[Opcode.FCVT] = _op_fcvt
_HANDLERS[Opcode.FMOV] = _op_fmov
_HANDLERS[Opcode.VADD] = _op_vadd
_HANDLERS[Opcode.VMUL] = _op_vmul
_HANDLERS[Opcode.VSPLAT] = _op_vsplat
_HANDLERS[Opcode.VEXTRACT] = _op_vextract
for _op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLTU,
            Opcode.BGEU):
    _HANDLERS[_op] = _op_cond_branch
_HANDLERS[Opcode.JMP] = _op_jmp
_HANDLERS[Opcode.JR] = _op_jr
_HANDLERS[Opcode.CALL] = _op_call
_HANDLERS[Opcode.RET] = _op_ret


def run_program(program, memory_image=None, initial_sp=None,
                max_steps=1_000_000, record_accesses=False):
    """Interpret a program and return its architectural end state."""
    interp = Interpreter(program, memory_image=memory_image,
                         initial_sp=initial_sp,
                         record_accesses=record_accesses)
    return interp.run(max_steps=max_steps)

"""Declarative experiment specs: :class:`Trial` and :class:`Sweep`.

A *trial* is one self-contained, reproducible measurement — an attack
run, an IPC comparison, a transient-window probe — described entirely by
JSON-serializable parameters (names and numbers, never live objects).
That restriction is what buys everything else in the harness: trials can
be hashed for the result cache, pickled to worker processes, written to
disk, and re-run bit-identically.

A *sweep* is an ordered list of trials, usually built as a cartesian
grid over parameter axes (:meth:`Sweep.grid`).  Order is part of the
spec: executors must return results in trial order no matter how many
workers ran them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: Trial kinds understood by :mod:`repro.harness.runner`.
TRIAL_KINDS = ("attack", "ipc", "window", "run", "taint", "extract",
               "verify")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding used for hashing and byte-comparison."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stable_seed(*parts: str) -> int:
    """Deterministic 32-bit seed derived from string parts.

    Independent of PYTHONHASHSEED, interpreter, and platform — the same
    trial always receives the same seed, which keeps cached results
    valid across processes.
    """
    digest = hashlib.sha256("\x1f".join(parts).encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class Trial:
    """One reproducible experiment, described by data only.

    ``params`` must contain only JSON-encodable values (str/int/float/
    bool/None and nested lists/dicts of those).  ``seed`` is derived
    from the params when not given, so identical specs get identical
    seeds regardless of their position in a sweep.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    seed: Optional[int] = None

    def __post_init__(self):
        if self.kind not in TRIAL_KINDS:
            raise ValueError(f"unknown trial kind {self.kind!r}; "
                             f"expected one of {TRIAL_KINDS}")
        # Fail fast on non-serializable params (live objects etc.).
        try:
            encoded = canonical_json(self.params)
        except TypeError as exc:
            raise TypeError(
                f"trial params must be JSON-serializable: {exc}") from exc
        if self.seed is None:
            self.seed = stable_seed(self.kind, encoded)
        if self.label is None:
            self.label = self._default_label()

    def _default_label(self) -> str:
        bits = [self.kind]
        for key in ("workload", "variant", "target", "defense", "runahead",
                    "contender"):
            value = self.params.get(key)
            if value is not None:
                bits.append(str(value))
        return ":".join(bits)

    def canonical(self) -> str:
        """Canonical encoding of everything that defines the outcome."""
        return canonical_json({"kind": self.kind, "params": self.params,
                               "seed": self.seed})

    def spec_hash(self) -> str:
        """Content hash of the trial spec alone (no code version)."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params,
                "label": self.label, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Trial":
        return cls(kind=data["kind"], params=dict(data.get("params", {})),
                   label=data.get("label"), seed=data.get("seed"))


@dataclass
class Sweep:
    """An ordered collection of trials with a name.

    The name identifies the experiment (``fig7``, ``ablations``...) in
    reports and on the CLI; it does not enter the cache key — only each
    trial's own spec does, so two sweeps sharing a trial share its
    cached result.
    """

    name: str
    trials: List[Trial] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    def add(self, kind: str, **params) -> Trial:
        """Append one trial; returns it for convenience."""
        trial = Trial(kind=kind, params=params)
        self.trials.append(trial)
        return trial

    def extend(self, trials: Iterable[Trial]) -> "Sweep":
        self.trials.extend(trials)
        return self

    @classmethod
    def grid(cls, name: str, kind: str, base: Optional[Mapping] = None,
             description: str = "", **axes: Sequence) -> "Sweep":
        """Cartesian product of parameter axes, in axis-given order.

        >>> Sweep.grid("demo", "attack",
        ...            variant=["pht", "btb"], runahead=["original"])
        """
        sweep = cls(name=name, description=description)
        keys = list(axes)
        for combo in itertools.product(*(axes[k] for k in keys)):
            params = dict(base or {})
            params.update(zip(keys, combo))
            sweep.add(kind, **params)
        return sweep

    def signature(self) -> str:
        """Content hash of the ordered trial specs (name excluded).

        Two sweeps with identical trials in identical order share a
        signature regardless of how they were built — this is what a
        campaign manifest pins, so ``resume`` can verify it is
        completing the same experiment it started.
        """
        payload = canonical_json([t.canonical() for t in self.trials])
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "description": self.description,
                "trials": [t.to_dict() for t in self.trials]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        return cls(name=data["name"],
                   description=data.get("description", ""),
                   trials=[Trial.from_dict(t)
                           for t in data.get("trials", [])])

"""Paper experiments as named sweep presets.

Each preset maps one table/figure/section of the paper to a declarative
:class:`~repro.harness.spec.Sweep` plus a renderer that turns the sweep
result back into the text block the reproduction reports.  The
benchmarks, the examples and ``python -m repro sweep <name>`` all build
their experiments here, so a figure is defined in exactly one place.

``build(quick=True)`` returns a reduced grid for CI smoke runs — fewer
axis points, same trial kinds and the same code paths end to end.

Public contract
---------------
* :data:`PRESETS` / :func:`get` are the catalogue: every entry is a
  :class:`Preset` whose ``build(quick=False)`` returns a fresh,
  JSON-serializable :class:`~repro.harness.spec.Sweep` and whose
  ``render(result)`` turns the executed sweep back into the report
  text.  ``repro sweep``/``repro report``, every ``benchmarks/bench_*``
  file and the examples resolve experiments only through here.
* Sweeps must be **byte-identical at any worker count**: trial params
  may contain only registry names and numbers, and any randomness must
  derive from committed seed constants (`FIG9_NOISE_SEED` et al.).
* Trial params are the *cache identity*: renaming or reordering presets
  is free (the sweep name is not hashed), but changing a trial's params
  recomputes it — which is also how two presets share cached rows by
  emitting identical trials (see ``cross_core_bandwidth``).
* Some rendered *findings* are empirical properties of the committed
  constants (Fig. 9's monotone success curve, the smt/trace co-runner
  calibration results) — pinned by the benchmarks; re-verify when
  retuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..analysis.report import format_bars, format_latency_plot, format_table
from .aggregate import (attack_matrix, geometric_mean_speedup, ipc_table,
                        speedup_bars)
from .executor import SweepResult
from .registry import make_config
from .spec import Sweep

ATTACK_VARIANTS = ("pht", "btb", "rsb-overwrite", "rsb-flush")
CHANNEL_RECEIVERS = ("flush-reload", "evict-reload", "prime-probe")
DEFENSE_MACHINES = ("original", "secure", "branch-skip")
RUNAHEAD_VARIANTS = ("original", "precise", "vector")
FIG7_KERNELS = ("zeusmp", "wrf", "bwaves", "lbm", "mcf", "gems")
FIG7_KERNELS_QUICK = ("zeusmp", "mcf", "gems")
SEC6_PERF_KERNELS = ("lbm", "mcf", "gems")


@dataclass(frozen=True)
class Preset:
    name: str
    title: str
    build: Callable[..., Sweep]          # build(quick=False) -> Sweep
    render: Callable[[SweepResult], str]


# ---------------------------------------------------------------- table1

def _build_table1(quick: bool = False) -> Sweep:
    sweep = Sweep("table1", description="Table 1 reference machine")
    sweep.add("run", workload="reference", runahead="none",
              config_base="paper")
    return sweep


def _render_table1(result: SweepResult) -> str:
    config = make_config("paper")
    h = config.hierarchy
    rows = [
        ("Core", "out-of-order (cycle model)"),
        ("Processor width", f"{config.width}-wide fetch/decode/dispatch/"
                            "commit"),
        ("Pipeline depth", f"{config.frontend_depth} front-end stages"),
        ("Branch predictor", "two-level adaptive predictor"),
        ("Functional units",
         "4 int add (1cy), 2 int mult (2cy), 1 int div (5cy), "
         "2 fp add (5cy), 1 fp mult (10cy), 1 fp div (15cy)"),
        ("Register file", f"{config.int_regs} int, {config.fp_regs} fp, "
                          f"{config.vec_regs} xmm"),
        ("ROB", f"{config.rob_size} entries"),
        ("Queues", f"i ({config.iq_size}), load ({config.lq_size}), "
                   f"store ({config.sq_size})"),
        ("L1 I-cache", "16KB, 4 way, 2 cycle"),
        ("L1 D-cache", "16KB, 4 way, 2 cycle"),
        ("L2 cache", "128KB, 8 way, 8 cycle"),
        ("L3 cache", "4MB, 8 way, 32 cycle"),
        ("Memory", f"request-based contention model, {h.mem_latency} cycle"),
    ]
    ref = result.one("run", workload="reference")["result"]
    return (format_table(["Component", "Parameter"], rows) +
            f"\n\nreference run: {ref['cycles']} cycles, "
            f"IPC {ref['ipc']:.3f}")


# ------------------------------------------------------------------ fig4

def _build_fig4(quick: bool = False) -> Sweep:
    variants = ("pht", "rsb-flush") if quick else ATTACK_VARIANTS
    return Sweep.grid("fig4", "attack",
                      base={"runahead": "original"},
                      description="Fig. 4: Spectre variants under runahead",
                      variant=list(variants))


def _render_fig4(result: SweepResult) -> str:
    rows = []
    for record in result.select("attack"):
        res = record["result"]
        rows.append((res["variant"], res["recovered"],
                     res["stats"]["runahead_episodes"],
                     res["stats"]["inv_branches"],
                     res["stats"]["runahead_prefetches"]))
    table = format_table(
        ["variant", "recovered secret", "episodes", "unresolved branches",
         "prefetches"], rows)
    return (f"{table}\n\nplanted secret: 86 — every Fig. 4 variant leaks "
            "under runahead.\n"
            "rsb-flush models ret2spec-style RSB/stack desync; the "
            "stalling\nload is the victim's own return-address read "
            "(Fig. 4c).")


# ------------------------------------------------------------------ fig7

def _build_fig7(quick: bool = False) -> Sweep:
    kernels = FIG7_KERNELS_QUICK if quick else FIG7_KERNELS
    return Sweep.grid("fig7", "ipc",
                      base={"baseline": "none", "contender": "original"},
                      description="Fig. 7: normalized IPC, no-runahead vs "
                                  "runahead",
                      workload=list(kernels))


def _render_fig7(result: SweepResult) -> str:
    rows = result.results("ipc")
    mean = geometric_mean_speedup(rows)
    return (ipc_table(rows, baseline_label="no-runahead") +
            "\n\nnormalized IPC (runahead / no-runahead):\n" +
            speedup_bars(rows) +
            f"\n\ngeometric mean speedup: {mean:.3f}x "
            "(paper: ~1.11x average)")


# ------------------------------------------------------------------ fig9

def _build_fig9(quick: bool = False) -> Sweep:
    sweep = Sweep("fig9", description="Fig. 9: probe latencies of the PoC")
    sweep.add("attack", variant="pht", runahead="original", secret_value=86)
    return sweep


def _render_fig9(result: SweepResult) -> str:
    res = result.one("attack", variant="pht")["result"]
    latencies = res["latencies"]
    secret = res["secret"]
    plot = format_latency_plot(
        latencies, title="probe access time (cycles) per index:")
    return (f"{plot}\n\n"
            f"planted secret       : {secret}\n"
            f"recovered            : {res['recovered']}\n"
            f"dip latency          : {latencies[secret]} cycles\n"
            f"median probe latency : "
            f"{sorted(latencies)[len(latencies) // 2]} cycles\n"
            f"runahead episodes    : {res['stats']['runahead_episodes']}\n"
            f"unresolved branches  : {res['stats']['inv_branches']}\n"
            f"(paper: drop at index 86, ~100 vs ~350 cycles)")


# ------------------------------------------------------- fig9_noise_sweep

#: A noisy covert channel: probe jitter, co-runner evictions and
#: prefetch pollution — strong enough that one trial usually fails and
#: multi-trial aggregation is required.
FIG9_NOISE = {"jitter": 24, "evict_rate": 0.04, "pollute_rate": 0.04}
FIG9_NOISE_TRIALS = (1, 3, 5, 9)
FIG9_NOISE_TRIALS_QUICK = (1, 5)
FIG9_NOISE_SECRET = [83, 80, 69, 67]          # "SPEC"
FIG9_NOISE_SECRET_QUICK = [83, 67]            # "SC"
#: Fixed base seed shared by every trials point, so a larger trial
#: count extends (rather than re-rolls) the smaller one's noise draws.
#: That makes the points comparable (prefix property), but decoding is
#: a majority vote, so monotonicity of the success curve is an
#: *empirical* property of these committed constants — pinned by
#: benchmarks/bench_channel_noise.py, re-verify when retuning.
FIG9_NOISE_SEED = 7


def _build_fig9_noise(quick: bool = False) -> Sweep:
    trials_axis = FIG9_NOISE_TRIALS_QUICK if quick else FIG9_NOISE_TRIALS
    secret = FIG9_NOISE_SECRET_QUICK if quick else FIG9_NOISE_SECRET
    sweep = Sweep("fig9_noise_sweep",
                  description="Fig. 9 under a noisy receiver: "
                              "success rate vs measurement trials")
    for trials in trials_axis:
        sweep.add("extract", variant="pht", receiver="flush-reload",
                  secret=secret, trials=trials, noise=dict(FIG9_NOISE),
                  runahead="original", seed=FIG9_NOISE_SEED)
    return sweep


def _render_fig9_noise(result: SweepResult) -> str:
    rows = []
    labels, rates = [], []
    for record in result.select("extract"):
        res = record["result"]
        rows.append((res["trials"], f"{res['success_rate']:.2f}",
                     _recovered_text(res["recovered"]),
                     f"{res['bits_per_kcycle']:.3f}",
                     f"{res['bandwidth_bits_per_s']:,.0f}"))
        labels.append(f"{res['trials']} trial(s)")
        rates.append(res["success_rate"])
    table = format_table(
        ["trials", "success rate", "recovered", "bits/kcycle", "bits/s"],
        rows)
    secret = result.select("extract")[0]["result"]["secret"]
    return (f"{table}\n\nsuccess rate vs trials:\n"
            f"{format_bars(labels, rates)}\n\n"
            f"planted secret: {_recovered_text(secret)!r} | noise: "
            f"{FIG9_NOISE} | receiver: flush-reload\n"
            "one noisy trial rarely decodes; median aggregation + "
            "majority vote across\ntrials recovers the full secret "
            "(bandwidth = correctly recovered bits /\nsimulated cycles "
            "at a nominal 2 GHz clock).")


# ------------------------------------------------------ channel_bandwidth

CHANNEL_BW_NOISE = {"jitter": 12, "evict_rate": 0.01, "pollute_rate": 0.01}
#: Trials cost only measurement (the victim run is simulated once), so
#: the bandwidth table can afford enough of them that prime+probe — the
#: noisiest strategy (any of 8 primed ways per set can be hit) — votes
#: its way past per-trial false positives.
CHANNEL_BW_TRIALS = 5


def _build_channel_bandwidth(quick: bool = False) -> Sweep:
    secret = FIG9_NOISE_SECRET_QUICK if quick else FIG9_NOISE_SECRET
    sweep = Sweep("channel_bandwidth",
                  description="covert-channel bandwidth per receiver "
                              "strategy")
    for receiver in CHANNEL_RECEIVERS:
        sweep.add("extract", variant="pht", receiver=receiver,
                  secret=secret, trials=CHANNEL_BW_TRIALS,
                  noise=dict(CHANNEL_BW_NOISE), runahead="original",
                  seed=FIG9_NOISE_SEED)
    return sweep


def _render_channel_bandwidth(result: SweepResult) -> str:
    rows = []
    for record in result.select("extract"):
        res = record["result"]
        kcycles = res["total_cycles"] / 1000.0
        rows.append((res["receiver"], f"{res['success_rate']:.2f}",
                     _recovered_text(res["recovered"]),
                     f"{kcycles:.1f}",
                     f"{res['bits_per_kcycle']:.3f}",
                     f"{res['bandwidth_bits_per_s']:,.0f}"))
    table = format_table(
        ["receiver", "success rate", "recovered", "kcycles",
         "bits/kcycle", "bits/s @2GHz"], rows)
    return (f"{table}\n\nmild noise ({CHANNEL_BW_NOISE}), "
            f"{CHANNEL_BW_TRIALS} trials per byte.\n"
            "flush+reload is the paper's channel; evict+reload drops the "
            "clflush\nrequirement (training-warmed entries are excluded); "
            "prime+probe watches its\nown primed L3 sets and pays one "
            "benign calibration run.")


def _recovered_text(values) -> str:
    from ..channel.extract import render_byte_text
    return render_byte_text(values)


# ------------------------------------------------------- fig10_cross_core

#: Mild measurement noise for the cross-core sweeps: enough that one
#: trial can err, easily voted away at CROSS_CORE_TRIALS.
CROSS_CORE_NOISE = {"jitter": 12, "evict_rate": 0.01, "pollute_rate": 0.01}
CROSS_CORE_TRIALS = 5


def _build_fig10_cross_core(quick: bool = False) -> Sweep:
    secret = FIG9_NOISE_SECRET_QUICK if quick else FIG9_NOISE_SECRET
    receivers = ("flush-reload", "prime-probe") if quick \
        else CHANNEL_RECEIVERS
    sweep = Sweep("fig10_cross_core",
                  description="cross-core covert channel (shared "
                              "inclusive L3) vs the runahead defenses")
    for machine in DEFENSE_MACHINES:
        for receiver in receivers:
            sweep.add("extract", variant="pht", receiver=receiver,
                      secret=secret, trials=CROSS_CORE_TRIALS,
                      noise=dict(CROSS_CORE_NOISE), runahead=machine,
                      seed=FIG9_NOISE_SEED, cores=2)
    return sweep


def _render_fig10_cross_core(result: SweepResult) -> str:
    records = result.select("extract")
    receivers = list(dict.fromkeys(
        r["result"]["receiver"] for r in records))
    rows = []
    for machine in DEFENSE_MACHINES:
        row: List[str] = [machine]
        for receiver in receivers:
            res = result.one("extract", runahead=machine,
                             receiver=receiver)["result"]
            row.append(f"{res['success_rate']:.2f} "
                       f"({_recovered_text(res['recovered'])})")
        rows.append(tuple(row))
    table = format_table(
        ["machine"] + [f"{r} success" for r in receivers], rows)
    secret = records[0]["result"]["secret"]
    return (f"{table}\n\n"
            f"planted secret: {_recovered_text(secret)!r} | transmitter "
            f"on core 0, receiver probing the shared L3 from core 1 | "
            f"noise {CROSS_CORE_NOISE}, {CROSS_CORE_TRIALS} trials/byte.\n"
            "the baseline machine leaks the full secret *cross-core* — "
            "eviction and priming\nwork through inclusive-L3 "
            "back-invalidation — while the secure-runahead and\n"
            "branch-skip defenses close the channel entirely (nothing "
            "decodes).")


# ----------------------------------------------------- cross_core_bandwidth

def _build_cross_core_bandwidth(quick: bool = False) -> Sweep:
    secret = FIG9_NOISE_SECRET_QUICK if quick else FIG9_NOISE_SECRET
    sweep = Sweep("cross_core_bandwidth",
                  description="channel capacity: same-core vs cross-core "
                              "per receiver strategy")
    for receiver in CHANNEL_RECEIVERS:
        # Same-core rows are exactly the channel_bandwidth trials (no
        # topology key), so the two presets share cached results.
        sweep.add("extract", variant="pht", receiver=receiver,
                  secret=secret, trials=CHANNEL_BW_TRIALS,
                  noise=dict(CHANNEL_BW_NOISE), runahead="original",
                  seed=FIG9_NOISE_SEED)
        sweep.add("extract", variant="pht", receiver=receiver,
                  secret=secret, trials=CHANNEL_BW_TRIALS,
                  noise=dict(CHANNEL_BW_NOISE), runahead="original",
                  seed=FIG9_NOISE_SEED, cores=2)
    return sweep


def _render_cross_core_bandwidth(result: SweepResult) -> str:
    rows = []
    for record in result.select("extract"):
        res = record["result"]
        cores = record["params"].get("cores", 1)
        rows.append((res["receiver"],
                     "cross-core" if cores > 1 else "same-core",
                     f"{res['success_rate']:.2f}",
                     _recovered_text(res["recovered"]),
                     f"{res['bits_per_kcycle']:.3f}",
                     f"{res['bandwidth_bits_per_s']:,.0f}"))
    table = format_table(
        ["receiver", "placement", "success rate", "recovered",
         "bits/kcycle", "bits/s @2GHz"], rows)
    return (f"{table}\n\nmild noise ({CHANNEL_BW_NOISE}), "
            f"{CHANNEL_BW_TRIALS} trials per byte.\n"
            "cross-core reload hits land at LLC latency instead of L1 "
            "(the receiver's\nprivate caches never hold the victim's "
            "lines), shrinking the timing margin\nbut leaving every "
            "strategy a working cross-core channel.")


# ------------------------------------------------------ smt_corunner_sweep

#: Overlay co-runner model from PR 3 (measurement-layer evictions) used
#: as the comparison point for real interfering instruction streams.
SMT_OVERLAY_NOISE = {"jitter": 12, "evict_rate": 0.04}
SMT_CORUNNERS = ("zeusmp", "lbm", "mcf")
SMT_CORUNNERS_QUICK = ("lbm",)
SMT_SWEEP_RECEIVERS = ("flush-reload", "prime-probe")


def _build_smt_corunner(quick: bool = False) -> Sweep:
    secret = FIG9_NOISE_SECRET_QUICK if quick else FIG9_NOISE_SECRET
    corunners = SMT_CORUNNERS_QUICK if quick else SMT_CORUNNERS
    sweep = Sweep("smt_corunner_sweep",
                  description="co-runner interference: overlay noise "
                              "model vs real SMT / cross-core streams")
    for receiver in SMT_SWEEP_RECEIVERS:
        base = dict(variant="pht", receiver=receiver, secret=secret,
                    trials=CROSS_CORE_TRIALS, runahead="original",
                    seed=FIG9_NOISE_SEED)
        sweep.add("extract", cores=2, **base)
        sweep.add("extract", cores=2, noise=dict(SMT_OVERLAY_NOISE),
                  **base)
        for corunner in corunners:
            sweep.add("extract", cores=2, corunner=corunner, smt=True,
                      **base)
            sweep.add("extract", cores=3, corunner=corunner, **base)
    return sweep


def _smt_scenario_label(params) -> str:
    corunner = params.get("corunner")
    if corunner is None:
        return "overlay noise" if params.get("noise") else "clean"
    if params.get("smt"):
        return f"SMT co-runner ({corunner})"
    return f"cross-core co-runner ({corunner})"


def _render_smt_corunner(result: SweepResult) -> str:
    rows = []
    for record in result.select("extract"):
        res = record["result"]
        rows.append((res["receiver"],
                     _smt_scenario_label(record["params"]),
                     f"{res['success_rate']:.2f}",
                     _recovered_text(res["recovered"]),
                     f"{res['bits_per_kcycle']:.3f}",
                     f"{res['bandwidth_bits_per_s']:,.0f}"))
    table = format_table(
        ["receiver", "co-runner scenario", "success rate", "recovered",
         "bits/kcycle", "bits/s @2GHz"], rows)
    return (f"{table}\n\nall scenarios cross-core "
            f"({CROSS_CORE_TRIALS} trials/byte); overlay noise = "
            f"{SMT_OVERLAY_NOISE}.\n"
            "the overlay model draws i.i.d. per-trial evictions, which "
            "majority voting\nremoves; a real co-runner's interference "
            "is *structured* — the same sets are\ndisturbed in every "
            "re-measurement — so it either misses the probe sets\n"
            "entirely (streaming kernels, calibrated away) or defeats "
            "prime+probe's\nbenign-run calibration outright "
            "(pointer-chasing mcf).  reload channels only\nlose "
            "bandwidth to contention: a co-runner in its own physical "
            "window cannot\nfake a reload hit on the victim's lines.")


# ------------------------------------------------------------ fig7_traces

TRACE_KERNELS = ("trace-mcf", "trace-stream", "trace-gcc", "trace-zipf")
TRACE_KERNELS_QUICK = ("trace-mcf", "trace-stream")


def _build_fig7_traces(quick: bool = False) -> Sweep:
    kernels = TRACE_KERNELS_QUICK if quick else TRACE_KERNELS
    return Sweep.grid("fig7_traces", "ipc",
                      base={"baseline": "none", "contender": "original"},
                      description="Fig. 7 under trace-driven workloads: "
                                  "IPC with/without runahead",
                      workload=list(kernels))


def _render_fig7_traces(result: SweepResult) -> str:
    rows = result.results("ipc")
    mean = geometric_mean_speedup(rows)
    return (ipc_table(rows, baseline_label="no-runahead") +
            "\n\nnormalized IPC (runahead / no-runahead):\n" +
            speedup_bars(rows) +
            f"\n\ngeometric mean speedup: {mean:.3f}x\n"
            "trace replays are pure access streams (no compute to hide "
            "latency), so gains\nrun higher than the Fig. 7 kernels; the "
            "structure still differentiates: the\nmcf-style chase is "
            "serialized (dependent loads go INV — runahead prefetches\n"
            "only the arc streams), streaming prefetches everything, "
            "zipf's hot set is\ncache-resident.")


# ---------------------------------------------------- trace_pressure_sweep

#: Co-runner rows of the trace-pressure sweep: clean cross-core baseline,
#: a streaming trace, and the mcf-style chase trace.
TRACE_PRESSURE_CORUNNERS = (None, "trace-stream", "trace-mcf")
TRACE_PRESSURE_RECEIVERS = ("prime-probe", "flush-reload")


def _build_trace_pressure(quick: bool = False) -> Sweep:
    secret = FIG9_NOISE_SECRET_QUICK if quick else FIG9_NOISE_SECRET
    sweep = Sweep("trace_pressure_sweep",
                  description="extraction success under trace-driven "
                              "co-runner cache pressure")
    for receiver in TRACE_PRESSURE_RECEIVERS:
        for corunner in TRACE_PRESSURE_CORUNNERS:
            params = dict(variant="pht", receiver=receiver, secret=secret,
                          trials=CROSS_CORE_TRIALS, runahead="original",
                          seed=FIG9_NOISE_SEED)
            if corunner is None:
                params["cores"] = 2
            else:
                params.update(cores=3, corunner=corunner,
                              corunner_runahead="original")
            sweep.add("extract", **params)
    return sweep


def _trace_pressure_label(params) -> str:
    corunner = params.get("corunner")
    if corunner is None:
        return "no co-runner"
    return f"{corunner} (runahead)"


def _render_trace_pressure(result: SweepResult) -> str:
    rows = []
    for record in result.select("extract"):
        res = record["result"]
        rows.append((res["receiver"],
                     _trace_pressure_label(record["params"]),
                     f"{res['success_rate']:.2f}",
                     _recovered_text(res["recovered"]),
                     f"{res['bits_per_kcycle']:.3f}",
                     f"{res['bandwidth_bits_per_s']:,.0f}"))
    table = format_table(
        ["receiver", "co-runner pressure", "success rate", "recovered",
         "bits/kcycle", "bits/s @2GHz"], rows)
    return (f"{table}\n\nall rows cross-core, no measurement noise, "
            f"{CROSS_CORE_TRIALS} trials/byte; co-runners are\n"
            "trace replays on a *runahead* core (the paper's machine), "
            "whose prefetch\ntraffic densifies their cache pressure.\n"
            "the streaming trace sweeps a contiguous low set band the "
            "benign calibration\nrun learns to ignore; the mcf-style "
            "chase's node graph + arc arrays alias the\nset range where "
            "the probe entries live, so calibration ignores the secret's"
            "\nown sets and prime+probe decodes nothing.  reload "
            "channels lose only\nbandwidth: a co-runner in its own "
            "physical window cannot fake a reload hit.")


# ----------------------------------------------------------------- fig10

def _build_fig10(quick: bool = False) -> Sweep:
    sweep = Sweep("fig10", description="Fig. 10: transient-window scenarios")
    sled = 2048 if quick else 4096
    sweep.add("window", runahead="none", sled=sled)
    sweep.add("window", runahead="original", sled=sled)
    sweep.add("window", runahead="original", async_flushes=1, sled=sled)
    return sweep


def _render_fig10(result: SweepResult) -> str:
    n1 = result.one("window", runahead="none")["result"]
    n2 = result.one("window", runahead="original", async_flushes=None,
                    )["result"]
    n3 = result.one("window", runahead="original",
                    async_flushes=1)["result"]
    rows = [
        ("1 normal: flush once (N1)", n1["window"], n1["pseudo_retired"],
         n1["runahead_episodes"], n1["cycles"], 255),
        ("2 runahead: flush once (N2)", n2["window"], n2["pseudo_retired"],
         n2["runahead_episodes"], n2["cycles"], 480),
        ("3 runahead: flush repeatedly (N3)", n3["window"],
         n3["pseudo_retired"], n3["runahead_episodes"], n3["cycles"], 840),
    ]
    table = format_table(
        ["scenario", "window", "pseudo-retired", "episodes", "cycles",
         "paper"], rows)
    return (f"{table}\n\n"
            f"ratios: N2/N1 = {n2['window'] / n1['window']:.2f} "
            f"(paper 1.88), N3/N2 = {n3['window'] / n2['window']:.2f} "
            f"(paper 1.75)\n"
            "N1 matches the paper exactly (ROB-bound); N2/N3 exceed the "
            "ROB\nwith the paper's ordering.")


# ----------------------------------------------------------------- fig11

FIG11_SECRET = 127
FIG11_PADDING = 300


def _build_fig11(quick: bool = False) -> Sweep:
    return Sweep.grid("fig11", "attack",
                      base={"variant": "pht",
                            "secret_value": FIG11_SECRET,
                            "nop_padding": FIG11_PADDING},
                      description="Fig. 11: gadget beyond the ROB",
                      runahead=["none", "original"])


def _render_fig11(result: SweepResult) -> str:
    baseline = result.one("attack", runahead="none")["result"]
    runahead = result.one("attack", runahead="original")["result"]
    base_plot = format_latency_plot(
        baseline["latencies"], height=8,
        title=f"no-runahead machine ({FIG11_PADDING}-nop padded gadget):")
    ra_plot = format_latency_plot(
        runahead["latencies"], height=8,
        title="runahead machine (same gadget):")
    return (f"{base_plot}\n\n{ra_plot}\n\n"
            f"no-runahead: "
            f"{'leak' if baseline['leaked'] else 'NO leak'} | "
            f"runahead: leak at {runahead['recovered']} "
            f"(planted {FIG11_SECRET})\n"
            "(paper: leakage only on the runahead machine, index 127)")


# ----------------------------------------------------------------- fig12

def _build_fig12(quick: bool = False) -> Sweep:
    sweep = Sweep("fig12", description="Fig. 12: Btag / IS tagging table")
    sweep.add("taint")
    return sweep


def _render_fig12(result: SweepResult) -> str:
    res = result.one("taint")["result"]
    display = []
    for label, want_btag, got_btag, want_is, got_is in res["rows"]:
        if want_btag is not None:
            status = "ok" if label not in res["mismatches"] else "MISMATCH"
            display.append((label, want_btag, got_btag, want_is, got_is,
                            status))
        else:
            display.append((label, "-", "-", "-", "-", ""))
    table = format_table(
        ["instr", "Btag (paper)", "Btag (ours)", "IS (paper)", "IS (ours)",
         ""], display)
    verdict = ("every Btag and IS cell matches Fig. 12."
               if not res["mismatches"]
               else f"MISMATCHES: {res['mismatches']}")
    return f"{table}\n\n{verdict}"


# ----------------------------------------------------------------- sec43

def _build_sec43(quick: bool = False) -> Sweep:
    machines = ("original", "precise") if quick else RUNAHEAD_VARIANTS
    return Sweep.grid("sec43", "attack",
                      base={"variant": "pht"},
                      description="§4.3: SPECRUN on runahead variants",
                      runahead=list(machines))


def _render_sec43(result: SweepResult) -> str:
    rows = []
    for record in result.select("attack"):
        res = record["result"]
        extra = ""
        if res["runahead"] == "precise":
            extra = f"filtered={res['stats']['filtered_instructions']}"
        elif res["runahead"] == "vector":
            extra = f"vector-prefetches={res['stats']['vector_prefetches']}"
        rows.append((res["runahead"], res["recovered"],
                     res["stats"]["runahead_episodes"],
                     res["stats"]["runahead_prefetches"], extra))
    table = format_table(
        ["runahead variant", "recovered secret", "episodes", "prefetches",
         "variant-specific"], rows)
    return (f"{table}\n\nall runahead designs leak the planted secret "
            "(paper §4.3).")


# ------------------------------------------------------------------ sec6

def _build_sec6(quick: bool = False) -> Sweep:
    variants = ("pht", "rsb-flush") if quick else ATTACK_VARIANTS
    kernels = ("gems",) if quick else SEC6_PERF_KERNELS
    sweep = Sweep("sec6",
                  description="§6: secure runahead — security + overhead")
    for machine in DEFENSE_MACHINES:
        for variant in variants:
            sweep.add("attack", variant=variant, runahead=machine)
    for machine in DEFENSE_MACHINES:
        for kernel in kernels:
            sweep.add("ipc", workload=kernel, baseline="none",
                      contender=machine)
    return sweep


def _render_sec6(result: SweepResult) -> str:
    attacks = result.results("attack")
    variants = list(dict.fromkeys(res["variant"] for res in attacks))
    sec_table = attack_matrix(attacks, rows=variants,
                              cols=list(DEFENSE_MACHINES))
    perf_rows = []
    kernels = list(dict.fromkeys(
        res["workload"] for res in result.results("ipc")))
    for kernel in kernels:
        row: List[str] = [kernel]
        for machine in DEFENSE_MACHINES:
            res = result.one("ipc", workload=kernel,
                             contender=machine)["result"]
            row.append(f"{res['speedup']:.3f}x")
        perf_rows.append(tuple(row))
    perf_table = format_table(
        ["kernel"] + [f"{m} speedup" for m in DEFENSE_MACHINES], perf_rows)
    return (f"security matrix (cell = attack outcome):\n{sec_table}\n\n"
            f"speedup over no-runahead:\n{perf_table}\n\n"
            "both defenses block every variant while retaining a benefit\n"
            "on the streaming kernels (paper §6: overhead may increase).")


# -------------------------------------------------------------- ablations

ABLATION_ROBS = (64, 128, 256, 512)
ABLATION_ROBS_QUICK = (64, 256)
ABLATION_LATENCIES = (100, 200, 400)
ABLATION_LATENCIES_QUICK = (100, 400)
ABLATION_PREDICTORS = ("bimodal", "gshare", "twolevel")
ABLATION_PREDICTORS_QUICK = ("bimodal", "twolevel")
ABLATION_SL_CAPS = (4, 16, 64)
ABLATION_SL_CAPS_QUICK = (4, 64)


def _build_ablations(quick: bool = False) -> Sweep:
    robs = ABLATION_ROBS_QUICK if quick else ABLATION_ROBS
    lats = ABLATION_LATENCIES_QUICK if quick else ABLATION_LATENCIES
    preds = ABLATION_PREDICTORS_QUICK if quick else ABLATION_PREDICTORS
    caps = ABLATION_SL_CAPS_QUICK if quick else ABLATION_SL_CAPS
    sweep = Sweep("ablations",
                  description="design-parameter sweeps (DESIGN.md)")
    for rob in robs:
        sweep.add("window", runahead="none", sled=1024,
                  config={"rob_size": rob})
    for latency in lats:
        sweep.add("window", runahead="original", sled=8192,
                  config={"mem_latency": latency})
    for predictor in preds:
        sweep.add("attack", variant="pht", runahead="original",
                  config={"predictor": predictor})
    for capacity in caps:
        sweep.add("attack", variant="pht", runahead="secure",
                  runahead_kwargs={"sl_capacity": capacity})
    return sweep


def _render_ablations(result: SweepResult) -> str:
    rob_rows = [(r["params"]["config"]["rob_size"], r["result"]["window"])
                for r in result.select("window", runahead="none")]
    lat_rows = [(r["params"]["config"]["mem_latency"],
                 r["result"]["window"])
                for r in result.select("window", runahead="original")]
    pred_rows = [(r["params"]["config"]["predictor"],
                  r["result"]["recovered"] if r["result"]["leaked"]
                  else "no leak")
                 for r in result.select("attack", runahead="original")
                 if r["params"].get("config")]
    sl_rows = [(r["params"]["runahead_kwargs"]["sl_capacity"],
                "yes" if r["result"]["leaked"] else "no")
               for r in result.select("attack", runahead="secure")]
    text = [
        "ROB sweep (no runahead) — transient window == ROB-1:",
        format_table(["ROB", "window"], rob_rows),
        "",
        "memory-latency sweep (runahead) — window grows with stall "
        "length:",
        format_table(["mem latency", "window"], lat_rows),
        "",
        "direction-predictor sweep — recovered secret per predictor:",
        format_table(["predictor", "recovered"], pred_rows),
        "",
        "SL-cache capacity sweep (secure runahead) — leak blocked at "
        "every size:",
        format_table(["capacity (lines)", "leaked"], sl_rows),
    ]
    return "\n".join(text)


# ----------------------------------------------------- verify_cross_check

VERIFY_DEFENSES = ("original", "no-runahead", "secure", "branch-skip")
VERIFY_DEFENSES_QUICK = ("original", "branch-skip")
VERIFY_GEN_FAMILIES = ("spec", "stale", "straight")
VERIFY_GEN_SEEDS = 200
VERIFY_GEN_SEEDS_QUICK = 12


def _build_verify_cross_check(quick: bool = False) -> Sweep:
    from ..verify.targets import target_names
    defenses = VERIFY_DEFENSES_QUICK if quick else VERIFY_DEFENSES
    n_seeds = VERIFY_GEN_SEEDS_QUICK if quick else VERIFY_GEN_SEEDS
    sweep = Sweep("verify_cross_check",
                  description="differential gate: static checker verdicts "
                              "vs simulator ground truth")
    for name in target_names():
        for defense in defenses:
            sweep.add("verify", target=name, defense=defense,
                      cross_check=True)
    # Seeded random gadgets: families cycle so any seed count covers all
    # three.  Seeds are plain 0..N-1 — the generator is deterministic,
    # so the sweep stays byte-identical at any worker count.
    for seed in range(n_seeds):
        family = VERIFY_GEN_FAMILIES[seed % len(VERIFY_GEN_FAMILIES)]
        for defense in defenses:
            sweep.add("verify", target=f"gen:{family}:{seed}",
                      defense=defense, cross_check=True)
    return sweep


def _render_verify_cross_check(result: SweepResult) -> str:
    records = result.select("verify")
    named, gen = [], []
    for record in records:
        (gen if record["result"]["target"].startswith("gen:")
         else named).append(record["result"])
    rows = []
    for res in named:
        windows = ",".join(sorted({r["window"] for r in res["reports"]}))
        verdict = f"flag({windows})" if not res["clean"] else "clean"
        cell = res["cross_check"]
        rows.append((res["target"], res["defense"], verdict,
                     "leak" if cell["leaked"] else "quiet",
                     cell["oracle"], "ok" if res["ok"] else "DISAGREE"))
    table = format_table(
        ["target", "defense", "checker", "simulator", "oracle", "cell"],
        rows)
    fam_rows = []
    for family in VERIFY_GEN_FAMILIES:
        cells = [res for res in gen
                 if res["target"].split(":")[1] == family]
        programs = len({res["target"] for res in cells})
        flagged = sum(1 for res in cells if not res["clean"])
        agreed = sum(1 for res in cells if res["ok"])
        fam_rows.append((family, programs, len(cells), flagged,
                         f"{agreed}/{len(cells)}"))
    gen_table = format_table(
        ["family", "programs", "cells", "flagged", "agreed"], fam_rows)
    disagreements = [line for res in named + gen
                     for line in res.get("disagreements", [])]
    n_cells = len(named) + len(gen)
    verdict = (f"CROSS-CHECK OK: {n_cells} cells, checker and simulator "
               "agree everywhere." if not disagreements else
               f"CROSS-CHECK FAILED: {len(disagreements)} disagreement(s)"
               ":\n" + "\n".join(f"  - {d}" for d in disagreements))
    return (f"registered attack workloads:\n{table}\n\n"
            f"seeded random gadgets:\n{gen_table}\n\n"
            "contract: flagged under 'original' => the simulator extracts "
            "the secret;\nclean under a defense => that controller "
            f"extracts nothing.\n\n{verdict}")


PRESETS: Dict[str, Preset] = {
    p.name: p for p in [
        Preset("table1", "Table 1: processor configuration",
               _build_table1, _render_table1),
        Preset("fig4", "Fig. 4: SPECRUN across Spectre variants",
               _build_fig4, _render_fig4),
        Preset("fig7", "Fig. 7: normalized IPC with/without runahead",
               _build_fig7, _render_fig7),
        Preset("fig9", "Fig. 9: PoC probe-latency dip",
               _build_fig9, _render_fig9),
        Preset("fig9_noise_sweep",
               "noisy-channel success rate vs measurement trials",
               _build_fig9_noise, _render_fig9_noise),
        Preset("channel_bandwidth",
               "covert-channel bandwidth per receiver strategy",
               _build_channel_bandwidth, _render_channel_bandwidth),
        Preset("fig10_cross_core",
               "cross-core covert channel vs the runahead defenses",
               _build_fig10_cross_core, _render_fig10_cross_core),
        Preset("cross_core_bandwidth",
               "channel capacity: same-core vs cross-core",
               _build_cross_core_bandwidth, _render_cross_core_bandwidth),
        Preset("smt_corunner_sweep",
               "co-runner interference: overlay vs real streams",
               _build_smt_corunner, _render_smt_corunner),
        Preset("fig7_traces",
               "Fig. 7 under trace-driven workloads",
               _build_fig7_traces, _render_fig7_traces),
        Preset("trace_pressure_sweep",
               "extraction success under trace-driven co-runner pressure",
               _build_trace_pressure, _render_trace_pressure),
        Preset("fig10", "Fig. 10: transient-window scenarios",
               _build_fig10, _render_fig10),
        Preset("fig11", "Fig. 11: leaking beyond the ROB",
               _build_fig11, _render_fig11),
        Preset("fig12", "Fig. 12: Btag / IS tagging table",
               _build_fig12, _render_fig12),
        Preset("sec43", "§4.3: SPECRUN on runahead variants",
               _build_sec43, _render_sec43),
        Preset("sec6", "§6: secure-runahead defense matrix",
               _build_sec6, _render_sec6),
        Preset("ablations", "design-parameter ablation sweeps",
               _build_ablations, _render_ablations),
        Preset("verify_cross_check",
               "differential gate: leak checker vs cycle simulator",
               _build_verify_cross_check, _render_verify_cross_check),
    ]
}


def get(name: str) -> Preset:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; "
                       f"known: {sorted(PRESETS)}") from None

"""Name → object resolution for trial parameters.

Trials carry only names and numbers; this module turns them into live
simulator objects inside whichever process executes the trial.  Keeping
construction here (rather than in the spec) is what makes trials
picklable and hashable.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Mapping, Optional

from ..channel.noise import NoiseModel
from ..channel.receiver import RECEIVERS, receiver_class
from ..defense.restrictions import BranchRestrictedRunahead
from ..defense.secure import SecureRunahead
from ..isa.assembler import assemble
from ..isa.memory_image import MemoryImage
from ..memory.hierarchy import HierarchyConfig
from ..pipeline.config import CoreConfig, RunaheadConfig
from ..runahead.base import NoRunahead, RunaheadController
from ..runahead.original import OriginalRunahead
from ..runahead.precise import PreciseRunahead
from ..runahead.vector import VectorRunahead
from ..workloads.base import Workload
from ..workloads.suite import spec_like_suite

#: Every runahead controller (and defense — defenses are controllers).
CONTROLLERS: Dict[str, type] = {
    "none": NoRunahead,
    "no-runahead": NoRunahead,
    "original": OriginalRunahead,
    "precise": PreciseRunahead,
    "vector": VectorRunahead,
    "secure": SecureRunahead,
    "branch-skip": BranchRestrictedRunahead,
}

#: CoreConfig override keys that actually live on the memory hierarchy.
_HIERARCHY_KEYS = ("mem_latency", "mem_occupancy")
#: CoreConfig override keys that live on the runahead tunables.
_RUNAHEAD_KEYS = tuple(f.name for f in
                       dataclasses.fields(RunaheadConfig))


def make_controller(name: Optional[str],
                    **kwargs) -> Optional[RunaheadController]:
    """Instantiate a fresh controller by registry name.

    ``None``/"none" maps to :class:`NoRunahead` so every trial states
    its machine explicitly in reports.
    """
    if name is None:
        name = "none"
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise KeyError(f"unknown runahead controller {name!r}; "
                       f"known: {sorted(set(CONTROLLERS))}") from None
    return cls(**kwargs)


def make_config(base: str = "paper",
                overrides: Optional[Mapping[str, Any]] = None) -> CoreConfig:
    """Build a :class:`CoreConfig` from a base preset plus flat overrides.

    Flat keys are routed to the right sub-config: ``mem_latency`` and
    ``mem_occupancy`` rebuild the hierarchy, runahead tunables
    (``exit_overhead``, ``sl_cache_entries``, ...) rebuild the runahead
    config, everything else must be a direct ``CoreConfig`` field.
    """
    if base not in ("paper", "small"):
        raise ValueError(f"unknown config base {base!r} "
                         "(expected 'paper' or 'small')")
    factory = CoreConfig.paper if base == "paper" else CoreConfig.small
    overrides = dict(overrides or {})

    hier_over = {k: overrides.pop(k) for k in _HIERARCHY_KEYS
                 if k in overrides}
    ra_over = {k: overrides.pop(k) for k in _RUNAHEAD_KEYS
               if k in overrides}

    config = factory(**overrides)
    if hier_over:
        config = config.with_overrides(
            hierarchy=dataclasses.replace(config.hierarchy, **hier_over))
    if ra_over:
        config = config.with_overrides(
            runahead=dataclasses.replace(config.runahead, **ra_over))
    return config


def resolve_receiver(name: Optional[str]):
    """Validate a covert-channel receiver name (see ``RECEIVERS``).

    Returns the receiver class, or ``None`` for ``None`` (the in-program
    probe path).  Raises ``KeyError`` with the known names otherwise —
    trials carry receiver *names* only; instances are built per run
    inside :mod:`repro.channel.session`.
    """
    if name is None:
        return None
    return receiver_class(name)


def make_noise(spec) -> Optional[NoiseModel]:
    """Validate a trial's noise spec (dict/None) into a NoiseModel."""
    return NoiseModel.from_spec(spec)


def _build_reference() -> Workload:
    """The Table-1 reference run: a 64-element cold-array walk."""
    def build():
        image = MemoryImage()
        image.alloc_array("data", 64)
        program = assemble("""
            li r1, @data
            li r2, 64
        loop:
            load r3, r1, 0
            addi r1, r1, 8
            addi r2, r2, -1
            bne r2, r0, loop
            halt
        """, memory_image=image)
        return program, image, None
    return Workload(name="reference",
                    description="Table-1 reference run (64-load walk)",
                    build=build, memory_bound=True,
                    cache_key="reference/64")


def workloads() -> Dict[str, Workload]:
    """All named workloads: the Fig. 7 suite, the reference kernel, and
    the synthetic trace-replay suite (``trace-mcf``/``trace-stream``/
    ``trace-gcc``/``trace-zipf``)."""
    from ..trace import trace_suite

    table = dict(spec_like_suite())
    ref = _build_reference()
    table[ref.name] = ref
    table.update(trace_suite())
    return table


def get_workload(name: str) -> Workload:
    """Resolve a workload name.

    Besides the :func:`workloads` table, names of the form
    ``trace:<path>`` replay a recorded trace file
    (:func:`repro.trace.replay.replay_workload_from_file`) — still a
    plain string, so such trials stay JSON-serializable.
    """
    if name.startswith("trace:"):
        from ..trace import replay_workload_from_file
        try:
            return replay_workload_from_file(name[len("trace:"):])
        except OSError as exc:
            raise KeyError(f"cannot read trace workload {name!r}: "
                           f"{exc}") from exc
    table = workloads()
    try:
        return table[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {sorted(table)}") from None

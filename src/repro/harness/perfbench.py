"""Core-throughput measurement: simulated cycles per wall-clock second.

The perf trajectory for the simulator hot path.  Three machines —
normal (no runahead), original runahead, and secure runahead — run three
representative kernels (compute-bound ``zeusmp``, pointer-chasing
``mcf``, streaming ``gems``); each scenario reports its simulated cycle
count, best-of-N wall seconds, and the derived cycles/second.

``python -m repro bench-perf`` emits these measurements as
``BENCH_core.json`` at the repo root and can compare a fresh run
against a committed baseline with a relative tolerance (the CI perf job
does exactly that, non-blocking, at ±20 %).

Wall-clock numbers are machine- and load-dependent by nature; the
committed baseline pins the expected throughput on CI-class hardware,
while behavioural equality is pinned separately by the golden-stats
tests (``tests/pipeline/test_golden_stats.py``).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

from .registry import get_workload, make_controller

#: (bench label, workload name, controller name).
SCENARIOS: Tuple[Tuple[str, str, str], ...] = (
    ("normal/zeusmp", "zeusmp", "none"),
    ("normal/mcf", "mcf", "none"),
    ("normal/gems", "gems", "none"),
    ("runahead/zeusmp", "zeusmp", "original"),
    ("runahead/mcf", "mcf", "original"),
    ("runahead/gems", "gems", "original"),
    ("secure/zeusmp", "zeusmp", "secure"),
    ("secure/mcf", "mcf", "secure"),
    ("secure/gems", "gems", "secure"),
)


def measure_scenario(workload_name: str, controller_name: str,
                     repeats: int = 3) -> Dict:
    """Run one scenario ``repeats`` times; report the best throughput.

    Best-of-N is the standard wall-clock protocol: it filters scheduler
    noise while staying a single-number summary.  Simulated cycles are
    identical across repeats (the simulator is deterministic), so only
    the wall time varies.
    """
    workload = get_workload(workload_name)
    best_wall: Optional[float] = None
    cycles = committed = 0
    for _ in range(repeats):
        controller = make_controller(controller_name)
        start = time.perf_counter()
        core = workload.run(runahead=controller)
        wall = time.perf_counter() - start
        cycles = core.stats.cycles
        committed = core.stats.committed
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "workload": workload_name,
        "controller": controller_name,
        "simulated_cycles": cycles,
        "committed": committed,
        "wall_seconds": round(best_wall, 4),
        "cycles_per_second": round(cycles / best_wall) if best_wall else 0,
    }


def run_benchmark(repeats: int = 3) -> Dict:
    """Measure every scenario; returns the ``BENCH_core`` payload."""
    scenarios = {}
    total_cycles = 0
    total_wall = 0.0
    for label, workload_name, controller_name in SCENARIOS:
        record = measure_scenario(workload_name, controller_name,
                                  repeats=repeats)
        scenarios[label] = record
        total_cycles += record["simulated_cycles"]
        total_wall += record["wall_seconds"]
    return {
        "bench": "core_throughput",
        "repeats": repeats,
        "scenarios": scenarios,
        "total_simulated_cycles": total_cycles,
        "total_wall_seconds": round(total_wall, 4),
        "cycles_per_second": round(total_cycles / total_wall)
        if total_wall else 0,
    }


def measure_fig7_quick(workers: int = 1) -> Dict:
    """Wall-time the Fig. 7 quick IPC sweep end to end (cache disabled).

    This is the headline number of the hot-path optimization issue: the
    sweep that every CI run and local iteration waits on.
    """
    from . import presets as preset_registry
    from .executor import ProcessPoolExecutor, SerialExecutor

    sweep = preset_registry.get("fig7").build(quick=True)
    executor = SerialExecutor() if workers == 1 \
        else ProcessPoolExecutor(workers=workers)
    start = time.perf_counter()
    result = executor.execute(sweep, cache=None)
    wall = time.perf_counter() - start
    return {
        "preset": "fig7 --quick",
        "trials": len(result.records),
        "workers": workers,
        "wall_seconds": round(wall, 4),
    }


#: Fleet widths of the ``cores`` scaling axis (the 2..16 sweep).
FLEET_WIDTHS: Tuple[int, ...] = (2, 4, 8, 12, 16)


def measure_cores_scaling(widths: Tuple[int, ...] = FLEET_WIDTHS) -> Dict:
    """The ``cores`` axis: N-lane fleet throughput on fig7 --quick.

    For each width N the lane list is the fig7 quick-tier ipc trials
    replicated cyclically to N lanes.  The serial reference computes
    every lane individually through :func:`repro.harness.runner.run_trial`
    (what N independent solo runs cost); the fleet side runs the same
    lane list through :class:`repro.batch.FleetExecutor` at width N,
    which batches the lanes and computes each *distinct* spec once
    (deterministic purity — the same argument behind the result cache).
    Aggregate throughput is total simulated cycles across all N lanes
    per wall second, and both sides must agree record-for-record
    (``identical`` in each point; the fleet tests gate on it too).
    """
    from ..batch.executor import FleetExecutor
    from . import presets as preset_registry
    from .runner import run_trial
    from .spec import Sweep

    trials = list(preset_registry.get("fig7").build(quick=True).trials)
    points: List[Dict] = []
    for width in widths:
        lanes = [trials[i % len(trials)] for i in range(width)]
        start = time.perf_counter()
        serial_results = [run_trial(t) for t in lanes]
        serial_wall = time.perf_counter() - start
        sweep = Sweep(name=f"fig7_quick_x{width}", trials=list(lanes))
        start = time.perf_counter()
        fleet = FleetExecutor(width=width).execute(sweep, cache=None)
        fleet_wall = time.perf_counter() - start
        fleet_results = [record["result"] for record in fleet.records]
        aggregate = sum(r["stats_base"]["cycles"] +
                        r["stats_contender"]["cycles"]
                        for r in serial_results)
        speedup = serial_wall / fleet_wall if fleet_wall else 0.0
        points.append({
            "width": width,
            "distinct_trials": len({t.spec_hash() for t in lanes}),
            "aggregate_cycles": aggregate,
            "serial_wall_seconds": round(serial_wall, 4),
            "serial_cycles_per_second": round(aggregate / serial_wall)
            if serial_wall else 0,
            "fleet_wall_seconds": round(fleet_wall, 4),
            "fleet_cycles_per_second": round(aggregate / fleet_wall)
            if fleet_wall else 0,
            "speedup": round(speedup, 2),
            "identical": serial_results == fleet_results,
        })
    return {"preset": "fig7 --quick", "lane": "ipc trial",
            "points": points}


def render_cores(axis: Dict) -> str:
    """Human-readable table of the ``cores`` scaling axis."""
    lines = [f"fleet scaling ({axis['preset']}, lane = {axis['lane']}):",
             f"{'width':>6s} {'distinct':>9s} {'agg cycles':>11s} "
             f"{'serial c/s':>11s} {'fleet c/s':>11s} {'speedup':>8s}"]
    for point in axis["points"]:
        flag = "" if point["identical"] else "  MISMATCH!"
        lines.append(
            f"{point['width']:>6d} {point['distinct_trials']:>9d} "
            f"{point['aggregate_cycles']:>11d} "
            f"{point['serial_cycles_per_second']:>11d} "
            f"{point['fleet_cycles_per_second']:>11d} "
            f"{point['speedup']:>7.2f}x{flag}")
    return "\n".join(lines)


def render(payload: Dict) -> str:
    """Human-readable table of one benchmark payload."""
    lines = [f"{'scenario':18s} {'cycles':>10s} {'wall s':>8s} "
             f"{'cycles/s':>12s}"]
    for label, record in payload["scenarios"].items():
        lines.append(f"{label:18s} {record['simulated_cycles']:>10d} "
                     f"{record['wall_seconds']:>8.3f} "
                     f"{record['cycles_per_second']:>12d}")
    lines.append(f"{'total':18s} {payload['total_simulated_cycles']:>10d} "
                 f"{payload['total_wall_seconds']:>8.3f} "
                 f"{payload['cycles_per_second']:>12d}")
    return "\n".join(lines)


def compare(fresh: Dict, baseline: Dict, tolerance: float = 0.2) -> List[str]:
    """Compare a fresh payload against a baseline.

    Returns a list of regression messages (empty = within tolerance).
    Simulated cycle counts must match *exactly* (they are deterministic
    behaviour, not performance); throughput may regress by at most
    ``tolerance`` relative to the baseline.  Faster-than-baseline is
    never a failure.
    """
    problems = []
    base_scenarios = baseline.get("scenarios", {})
    for label, record in fresh.get("scenarios", {}).items():
        base = base_scenarios.get(label)
        if base is None:
            problems.append(f"{label}: missing from baseline")
            continue
        if record["simulated_cycles"] != base["simulated_cycles"]:
            problems.append(
                f"{label}: simulated cycles changed "
                f"{base['simulated_cycles']} -> "
                f"{record['simulated_cycles']} (behaviour regression!)")
        floor = base["cycles_per_second"] * (1.0 - tolerance)
        if record["cycles_per_second"] < floor:
            problems.append(
                f"{label}: throughput {record['cycles_per_second']}/s "
                f"below tolerance floor {floor:.0f}/s "
                f"(baseline {base['cycles_per_second']}/s)")
    for label in base_scenarios:
        if label not in fresh.get("scenarios", {}):
            problems.append(f"{label}: scenario disappeared")
    return problems


#: History entries kept per payload — enough to read a trend without
#: letting BENCH_core.json grow without bound.
HISTORY_LIMIT = 24


def history_entry(payload: Dict) -> Dict:
    """Condense one benchmark payload into a history line.

    Keeps only the numbers a trend reader needs: per-scenario
    throughput and wall time, the aggregate, and the fig7 quick-sweep
    wall time when measured.
    """
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cycles_per_second": payload["cycles_per_second"],
        "total_wall_seconds": payload["total_wall_seconds"],
        "scenarios": {
            label: {
                "cycles_per_second": record["cycles_per_second"],
                "wall_seconds": record["wall_seconds"],
            }
            for label, record in payload.get("scenarios", {}).items()
        },
    }
    sweep = payload.get("fig7_quick_sweep")
    if sweep:
        entry["fig7_quick_seconds"] = sweep["wall_seconds"]
    cores = payload.get("cores")
    if cores:
        entry["cores"] = {str(point["width"]): point["speedup"]
                          for point in cores["points"]}
    return entry


def append_history(payload: Dict, limit: int = HISTORY_LIMIT) -> Dict:
    """Append this run to ``payload['history']`` (capped), in place.

    Every ``bench-perf`` run records itself, so the committed
    BENCH_core.json carries the recent per-scenario trajectory instead
    of a single point.  Returns the appended entry.
    """
    entry = history_entry(payload)
    history = list(payload.get("history", []))
    history.append(entry)
    payload["history"] = history[-limit:]
    return entry


def render_delta(fresh: Dict, baseline: Dict) -> str:
    """Per-scenario delta table of a fresh payload vs a baseline.

    Shows relative throughput change (positive = faster than the
    baseline).  Scenarios present on only one side are flagged rather
    than dropped.
    """
    lines = [f"{'scenario':18s} {'base c/s':>12s} {'fresh c/s':>12s} "
             f"{'delta':>8s}"]
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})
    for label in sorted(set(base_scenarios) | set(fresh_scenarios)):
        base = base_scenarios.get(label)
        record = fresh_scenarios.get(label)
        if base is None:
            lines.append(f"{label:18s} {'-':>12s} "
                         f"{record['cycles_per_second']:>12d} {'new':>8s}")
            continue
        if record is None:
            lines.append(f"{label:18s} {base['cycles_per_second']:>12d} "
                         f"{'-':>12s} {'gone':>8s}")
            continue
        base_cps = base["cycles_per_second"]
        delta = ((record["cycles_per_second"] - base_cps) / base_cps
                 if base_cps else 0.0)
        lines.append(f"{label:18s} {base_cps:>12d} "
                     f"{record['cycles_per_second']:>12d} {delta:>+8.1%}")
    base_total = baseline.get("cycles_per_second", 0)
    fresh_total = fresh.get("cycles_per_second", 0)
    total_delta = ((fresh_total - base_total) / base_total
                   if base_total else 0.0)
    lines.append(f"{'total':18s} {base_total:>12d} {fresh_total:>12d} "
                 f"{total_delta:>+8.1%}")
    return "\n".join(lines)


def load_payload(path: str) -> Dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def dump_payload(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")

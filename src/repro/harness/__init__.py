"""Experiment orchestration: declarative sweeps, sharded execution,
content-addressed result caching, and paper-figure presets.

Typical use::

    from repro.harness import presets, run_sweep

    preset = presets.get("fig7")
    result = run_sweep(preset.build(), workers=4)
    print(preset.render(result))

Every trial is pure data (see :mod:`repro.harness.spec`), executed by
:mod:`repro.harness.runner` in whatever process the executor picks, and
cached on disk keyed by trial spec + code fingerprint
(:mod:`repro.harness.cache`).
"""

from . import presets
from .aggregate import (attack_cell, attack_matrix, geomean,
                        geometric_mean_speedup, ipc_table, speedup_bars)
from .cache import (CACHE_DIR_ENV, CACHE_DISABLE_ENV, CacheBackend,
                    DirectoryCacheBackend, ResultCache,
                    SqliteCacheBackend, code_fingerprint,
                    default_cache_dir, resolve_cache)
from .executor import (Executor, ProcessPoolExecutor, SerialExecutor,
                       SweepResult, default_workers, make_record,
                       run_sweep)
from .registry import (CONTROLLERS, get_workload, make_config,
                       make_controller, workloads)
from .runner import TrialError, run_trial
from .spec import Sweep, Trial, canonical_json, stable_seed

__all__ = [
    "presets", "attack_cell", "attack_matrix", "geomean",
    "geometric_mean_speedup", "ipc_table", "speedup_bars",
    "CACHE_DIR_ENV", "CACHE_DISABLE_ENV", "CacheBackend",
    "DirectoryCacheBackend", "ResultCache", "SqliteCacheBackend",
    "code_fingerprint", "default_cache_dir", "resolve_cache",
    "Executor", "ProcessPoolExecutor", "SerialExecutor", "SweepResult",
    "default_workers", "make_record", "run_sweep", "CONTROLLERS",
    "get_workload", "make_config", "make_controller", "workloads",
    "TrialError", "run_trial", "Sweep", "Trial", "canonical_json",
    "stable_seed",
]

"""Content-addressed on-disk result cache.

Cache key = SHA-256 of (trial spec canonical JSON, code fingerprint,
external-input digests).  The code fingerprint hashes every ``.py``
file of the installed ``repro`` package, so any change to the
simulator invalidates every cached record automatically — no manual
versioning, no stale results after a refactor.  Changing a trial's
config changes its spec and therefore its key, giving per-trial
invalidation for free.  The one way a trial can reference data
*outside* its spec is a ``trace:<path>`` workload name
(:mod:`repro.trace` file replays); the content of every such file is
hashed into the key, so re-recording a trace invalidates exactly the
trials that replay it.

Records are JSON files under ``<root>/<key[:2]>/<key>.json`` so a CI
cache restore is a plain directory copy.  The default root is
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-specrun``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from functools import lru_cache
from typing import Any, Dict, Optional

from .spec import Trial, canonical_json

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable that disables caching entirely when set to "1".
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"

_RECORD_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-specrun"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every .py file of the repro package (path + bytes)."""
    import repro
    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def _external_trace_paths(value: Any) -> list:
    """Collect ``trace:<path>`` workload references inside trial params."""
    if isinstance(value, str):
        return [value[len("trace:"):]] if value.startswith("trace:") else []
    if isinstance(value, dict):
        return [p for v in value.values() for p in _external_trace_paths(v)]
    if isinstance(value, (list, tuple)):
        return [p for v in value for p in _external_trace_paths(v)]
    return []


def _external_digests(paths) -> Dict[str, str]:
    """Content digest per referenced file (sentinel when unreadable —
    such trials fail at run time, so nothing wrong gets cached)."""
    digests: Dict[str, str] = {}
    for path in sorted(set(paths)):
        try:
            digest = hashlib.sha256(
                pathlib.Path(path).read_bytes()).hexdigest()
        except OSError:
            digest = "unreadable"
        digests[path] = digest
    return digests


class ResultCache:
    """Maps trial specs to stored result records.

    ``get``/``put`` never raise on I/O problems — a broken cache entry
    or an unwritable directory degrades to a miss, because the cache
    must never change experiment outcomes.
    """

    def __init__(self, root: Optional[pathlib.Path] = None,
                 code_version: Optional[str] = None):
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.code_version = code_version or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, trial: Trial) -> str:
        payload_dict = {"code": self.code_version,
                        "trial": json.loads(trial.canonical())}
        externals = _external_trace_paths(trial.params)
        if externals:
            payload_dict["externals"] = _external_digests(externals)
        payload = canonical_json(payload_dict)
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, trial: Trial) -> Optional[Dict[str, Any]]:
        """Return the cached result payload for this trial, or None."""
        path = self._path(self.key(trial))
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if record.get("version") != _RECORD_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return record["result"]

    def put(self, trial: Trial, result: Dict[str, Any]) -> None:
        key = self.key(trial)
        path = self._path(key)
        record = {
            "version": _RECORD_VERSION,
            "key": key,
            "code": self.code_version,
            "trial": trial.to_dict(),
            "result": result,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record, sort_keys=True, indent=1),
                           encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every record under the cache root; returns the count."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        return (f"cache {self.root} (code {self.code_version[:12]}): "
                f"{self.hits} hits, {self.misses} misses")


def resolve_cache(cache="auto") -> Optional[ResultCache]:
    """Turn the executor's ``cache`` argument into a ResultCache or None.

    "auto" builds the default cache unless ``$REPRO_NO_CACHE=1``;
    ``None``/False disables; an existing :class:`ResultCache` passes
    through; a path-like builds a cache rooted there.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    if cache == "auto":
        if os.environ.get(CACHE_DISABLE_ENV) == "1":
            return None
        return ResultCache()
    return ResultCache(root=pathlib.Path(cache))

"""Content-addressed result cache behind a pluggable backend API.

Cache key = SHA-256 of (trial spec canonical JSON, code fingerprint,
external-input digests).  The code fingerprint hashes every ``.py``
file of the installed ``repro`` package, so any change to the
simulator invalidates every cached record automatically — no manual
versioning, no stale results after a refactor.  Changing a trial's
config changes its spec and therefore its key, giving per-trial
invalidation for free.  The one way a trial can reference data
*outside* its spec is a ``trace:<path>`` workload name
(:mod:`repro.trace` file replays); the content of every such file is
hashed into the key, so re-recording a trace invalidates exactly the
trials that replay it.

Storage is a :class:`CacheBackend`:

* :class:`DirectoryCacheBackend` (the historical layout, also exported
  as ``ResultCache``) keeps one JSON file per record under
  ``<root>/<key[:2]>/<key>.json`` so a CI cache restore is a plain
  directory copy.  The default root is ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro-specrun``.
* :class:`SqliteCacheBackend` packs every record into one SQLite file —
  a single artifact to ship around, and the natural store for
  :mod:`repro.campaign` runs that want their whole state in one
  directory.
* :class:`repro.campaign.httpcache.HttpCacheBackend` (URI =
  ``http://host:port``) stores records behind a campaign coordinator
  or standalone cache server on another host — the multi-host remote
  store.  It lives with the campaign network stack; ``resolve_cache``
  loads it lazily so this module stays free of network code.

``resolve_cache`` turns user-facing cache arguments into backends and
understands ``dir:<path>`` / ``sqlite:<path>`` / ``http://<url>``
URIs; every backend reports its own URI via :meth:`CacheBackend.uri`.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import pathlib
import sqlite3
from functools import lru_cache
from typing import Any, Dict, Optional

from .spec import Trial, canonical_json

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable that disables caching entirely when set to "1".
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"

_RECORD_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-specrun"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every .py file of the repro package (path + bytes)."""
    import repro
    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def _external_trace_paths(value: Any) -> list:
    """Collect ``trace:<path>`` workload references inside trial params."""
    if isinstance(value, str):
        return [value[len("trace:"):]] if value.startswith("trace:") else []
    if isinstance(value, dict):
        return [p for v in value.values() for p in _external_trace_paths(v)]
    if isinstance(value, (list, tuple)):
        return [p for v in value for p in _external_trace_paths(v)]
    return []


def _external_digests(paths) -> Dict[str, str]:
    """Content digest per referenced file (sentinel when unreadable —
    such trials fail at run time, so nothing wrong gets cached)."""
    digests: Dict[str, str] = {}
    for path in sorted(set(paths)):
        try:
            digest = hashlib.sha256(
                pathlib.Path(path).read_bytes()).hexdigest()
        except OSError:
            digest = "unreadable"
        digests[path] = digest
    return digests


class CacheBackend(abc.ABC):
    """Maps trial specs to stored result records.

    The public surface every backend implements identically:
    ``get``/``put``/``contains``/``evict``/``stats`` (plus ``clear``
    and ``uri``).  ``get``/``put`` never raise on I/O problems — a
    broken record or an unwritable store degrades to a miss, because
    the cache must never change experiment outcomes.  Keying is shared
    (:meth:`key`): identical trials hit the same record in any backend.

    Subclasses provide only the raw record storage:
    :meth:`_load` / :meth:`_store` / :meth:`_exists` / :meth:`_delete` /
    :meth:`count` / :meth:`clear` — none of which may raise.
    """

    #: URI scheme of the backend (``dir`` / ``sqlite``).
    scheme = "?"

    def __init__(self, code_version: Optional[str] = None):
        self.code_version = code_version or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # -------------------------------------------------------- keying

    def key(self, trial: Trial) -> str:
        payload_dict = {"code": self.code_version,
                        "trial": json.loads(trial.canonical())}
        externals = _external_trace_paths(trial.params)
        if externals:
            payload_dict["externals"] = _external_digests(externals)
        payload = canonical_json(payload_dict)
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------ public surface

    def get(self, trial: Trial) -> Optional[Dict[str, Any]]:
        """Return the cached result payload for this trial, or None."""
        record = self._load(self.key(trial))
        if record is None or record.get("version") != _RECORD_VERSION \
                or "result" not in record:
            self.misses += 1
            return None
        self.hits += 1
        return record["result"]

    def put(self, trial: Trial, result: Dict[str, Any]) -> None:
        key = self.key(trial)
        record = {
            "version": _RECORD_VERSION,
            "key": key,
            "code": self.code_version,
            "trial": trial.to_dict(),
            "result": result,
        }
        self._store(key, record)
        self.puts += 1

    def contains(self, trial: Trial) -> bool:
        """True when a record for this trial exists (no hit/miss count)."""
        return self._exists(self.key(trial))

    def evict(self, trial: Trial) -> bool:
        """Drop one trial's record; True when something was removed."""
        removed = self._delete(self.key(trial))
        if removed:
            self.evictions += 1
        return removed

    def stats(self) -> Dict[str, Any]:
        """Counters + store-wide figures, JSON-ready (for ``status``)."""
        lookups = self.hits + self.misses
        return {
            "backend": self.scheme,
            "uri": self.uri(),
            "records": self.count(),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def describe(self) -> str:
        return (f"cache {self.uri()} (code {self.code_version[:12]}): "
                f"{self.hits} hits, {self.misses} misses")

    @abc.abstractmethod
    def uri(self) -> str:
        """``<scheme>:<location>`` string accepted by resolve_cache."""

    # ------------------------------------------------- storage hooks

    @abc.abstractmethod
    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        """Raw record for a key, or None (never raises)."""

    @abc.abstractmethod
    def _store(self, key: str, record: Dict[str, Any]) -> None:
        """Persist a record (never raises; failure degrades to a miss)."""

    @abc.abstractmethod
    def _exists(self, key: str) -> bool:
        """True when a record is present (never raises)."""

    @abc.abstractmethod
    def _delete(self, key: str) -> bool:
        """Remove one record; True when it existed (never raises)."""

    @abc.abstractmethod
    def count(self) -> int:
        """Number of stored records (never raises)."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Delete every record; returns the count removed."""


class DirectoryCacheBackend(CacheBackend):
    """One JSON file per record under ``<root>/<key[:2]>/<key>.json``.

    Byte-compatible with the historical ``ResultCache`` layout: records
    written by either spelling are interchangeable, and a CI cache
    restore stays a plain directory copy.
    """

    scheme = "dir"

    def __init__(self, root: Optional[pathlib.Path] = None,
                 code_version: Optional[str] = None):
        super().__init__(code_version=code_version)
        self.root = pathlib.Path(root) if root else default_cache_dir()

    def uri(self) -> str:
        return f"dir:{self.root}"

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def _store(self, key: str, record: Dict[str, Any]) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record, sort_keys=True, indent=1),
                           encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass

    def _exists(self, key: str) -> bool:
        try:
            return self._path(key).is_file()
        except OSError:
            return False

    def _delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except OSError:
            return False

    def count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))

    def clear(self) -> int:
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


#: Historical name of the directory backend (public API since PR 1).
ResultCache = DirectoryCacheBackend


class SqliteCacheBackend(CacheBackend):
    """Every record in one SQLite file — a single shippable artifact.

    A fresh connection is opened per operation, so instances survive
    ``fork`` into campaign worker processes (which never touch the
    cache anyway — all cache I/O happens in the parent) and never hold
    the file locked between calls.
    """

    scheme = "sqlite"

    def __init__(self, path: Optional[pathlib.Path] = None,
                 code_version: Optional[str] = None):
        super().__init__(code_version=code_version)
        self.path = pathlib.Path(path) if path \
            else default_cache_dir() / "results.sqlite"

    def uri(self) -> str:
        return f"sqlite:{self.path}"

    def _run(self, fn, default):
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=10.0)
            try:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS records ("
                    "key TEXT PRIMARY KEY, record TEXT NOT NULL)")
                out = fn(conn)
                conn.commit()
                return out
            finally:
                conn.close()
        except (sqlite3.Error, OSError, ValueError):
            return default

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        def fetch(conn):
            row = conn.execute(
                "SELECT record FROM records WHERE key = ?",
                (key,)).fetchone()
            return json.loads(row[0]) if row else None
        return self._run(fetch, None)

    def _store(self, key: str, record: Dict[str, Any]) -> None:
        text = json.dumps(record, sort_keys=True)
        self._run(lambda conn: conn.execute(
            "INSERT OR REPLACE INTO records (key, record) VALUES (?, ?)",
            (key, text)), None)

    def _exists(self, key: str) -> bool:
        return self._run(
            lambda conn: conn.execute(
                "SELECT 1 FROM records WHERE key = ?",
                (key,)).fetchone() is not None,
            False)

    def _delete(self, key: str) -> bool:
        return self._run(
            lambda conn: conn.execute(
                "DELETE FROM records WHERE key = ?", (key,)).rowcount > 0,
            False)

    def count(self) -> int:
        return self._run(
            lambda conn: conn.execute(
                "SELECT COUNT(*) FROM records").fetchone()[0],
            0)

    def clear(self) -> int:
        def wipe(conn):
            (n,) = conn.execute("SELECT COUNT(*) FROM records").fetchone()
            conn.execute("DELETE FROM records")
            return n
        return self._run(wipe, 0)


def resolve_cache(cache="auto") -> Optional[CacheBackend]:
    """Turn a user-facing ``cache`` argument into a backend or None.

    * ``None``/``False`` disables caching;
    * an existing :class:`CacheBackend` passes through;
    * ``"auto"`` builds the default directory backend unless
      ``$REPRO_NO_CACHE=1``;
    * ``"dir:<path>"`` / ``"sqlite:<path>"`` URIs pick a backend
      explicitly; ``"http://host:port"`` builds the remote backend
      talking to a campaign coordinator or standalone cache server;
    * any other path-like builds a directory backend rooted there
      (the historical behaviour).
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, CacheBackend):
        return cache
    if cache == "auto":
        if os.environ.get(CACHE_DISABLE_ENV) == "1":
            return None
        return DirectoryCacheBackend()
    if isinstance(cache, str):
        if cache.startswith("dir:"):
            return DirectoryCacheBackend(
                root=pathlib.Path(cache[len("dir:"):]))
        if cache.startswith("sqlite:"):
            return SqliteCacheBackend(
                path=pathlib.Path(cache[len("sqlite:"):]))
        if cache.startswith(("http://", "https://")):
            # Lazy import: the remote backend lives with the campaign
            # network stack, keeping this module free of network code.
            from ..campaign.httpcache import HttpCacheBackend
            return HttpCacheBackend(cache)
    return DirectoryCacheBackend(root=pathlib.Path(cache))

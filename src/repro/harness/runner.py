"""Trial execution: turn a :class:`~repro.harness.spec.Trial` into a
JSON-serializable result record.

Every trial kind resolves its named parameters through
:mod:`repro.harness.registry`, builds fresh simulator objects, runs the
measurement, and returns plain data.  Nothing here keeps state between
trials — that is what makes trials safe to fan out across processes and
to cache by content hash.

Trial kinds and their parameters (all optional unless noted):

``attack``
    ``variant`` (required), ``runahead`` + ``runahead_kwargs``,
    ``config_base``/``config``, ``secret_value``, ``nop_padding``;
    optionally ``receiver``/``noise``/``trials``/``seed`` to measure
    through a :mod:`repro.channel` receiver instead of the in-program
    probe, and ``cores``/``corunner``/``smt``/``corunner_runahead`` to
    place victim, attacker and co-runners on a shared-L3 multi-core
    topology (:class:`repro.multicore.scenario.Topology`).
``extract``
    ``secret`` (required: string or list of byte values), ``variant``,
    ``receiver``, ``noise``, ``trials``, ``runahead`` +
    ``runahead_kwargs``, ``config_base``/``config``, ``seed``, plus the
    same ``cores``/``corunner``/``smt``/``corunner_runahead`` topology
    params — the multi-byte covert-channel extraction of
    :func:`repro.channel.extract.extract_secret`.
``ipc``
    ``workload`` (required), ``baseline`` (default no-runahead),
    ``contender`` (default original) + ``contender_kwargs``,
    ``config_base``/``config``, ``max_cycles``.

Wherever a workload name is accepted (``workload``/``corunner``), the
registry also resolves the synthetic trace suite (``trace-mcf``,
``trace-stream``, ``trace-gcc``, ``trace-zipf``) and saved trace files
(``trace:<path>``) — see :mod:`repro.trace`.
``window``
    ``runahead``, ``async_flushes``, ``sled``,
    ``config_base``/``config``.
``run``
    ``workload`` (required), ``runahead`` + ``runahead_kwargs``,
    ``config_base``/``config``, ``max_cycles``.
``taint``
    no parameters — the Fig. 12 worked example.
``verify``
    ``target`` (required: a :mod:`repro.verify.targets` name or
    ``gen:<family>:<seed>``), ``defense`` (default "original"),
    ``windows``, ``spec_depth``/``runahead_len``/``max_window_forks``/
    ``max_arch_steps``, ``shard`` (``[k, n]``: explore only window
    forks with ``index % n == k`` — merge shards with
    :func:`repro.verify.merge_reports`), ``cross_check`` (bool: also
    run the target on the cycle simulator and hold the
    :mod:`repro.verify.crosscheck` contract), ``max_cycles`` (the
    cross-check simulation budget).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..attack.specrun import SpecRunAttack
from ..attack.window import measure_window
from ..channel.extract import extract_secret
from ..defense.taint_demo import run_fig12
from .registry import get_workload, make_config, make_controller
from .spec import TRIAL_KINDS, Trial


class TrialError(RuntimeError):
    """A trial failed; carries the trial label for diagnostics."""


#: Multi-core placement params shared by the attack and extract kinds.
_TOPOLOGY_KEYS = ("cores", "corunner", "smt", "corunner_runahead")


def _stats_dict(stats) -> Dict[str, Any]:
    return dataclasses.asdict(stats)


def _config_from(params) -> Any:
    return make_config(params.get("config_base", "paper"),
                       params.get("config"))


def _run_attack(trial: Trial) -> Dict[str, Any]:
    params = trial.params
    controller = make_controller(params.get("runahead", "original"),
                                 **params.get("runahead_kwargs", {}))
    gadget_kwargs = {}
    for key in ("secret_value", "nop_padding"):
        if key in params:
            gadget_kwargs[key] = params[key]
    for key in _TOPOLOGY_KEYS:
        if key in params:
            gadget_kwargs[key] = params[key]
    attack = SpecRunAttack(variant=params["variant"], runahead=controller,
                           config=_config_from(params),
                           receiver=params.get("receiver"),
                           noise=params.get("noise"),
                           trials=params.get("trials", 1),
                           seed=params.get("seed", trial.seed),
                           **gadget_kwargs)
    result = attack.run(max_cycles=params.get("max_cycles", 3_000_000))
    record = {
        "variant": params["variant"],
        "runahead": result.runahead_name,
        "secret": attack.attack.secret_value,
        "leaked": result.leaked,
        "recovered": result.recovered_secret,
        "succeeded": result.succeeded,
        "latencies": list(result.latencies),
        "stats": _stats_dict(result.stats),
    }
    if result.channel is not None:
        record["channel"] = result.channel.to_dict()
    return record


def _run_extract(trial: Trial) -> Dict[str, Any]:
    params = trial.params
    make_runahead = (lambda: make_controller(
        params.get("runahead", "original"),
        **params.get("runahead_kwargs", {})))
    gadget_kwargs = {key: params[key] for key in ("nop_padding",)
                     if key in params}
    topology_kwargs = {key: params[key] for key in _TOPOLOGY_KEYS
                       if key in params}
    result = extract_secret(
        params["secret"],
        variant=params.get("variant", "pht"),
        receiver=params.get("receiver", "flush-reload"),
        noise=params.get("noise"),
        trials=params.get("trials", 1),
        runahead=make_runahead,
        config=_config_from(params),
        seed=params.get("seed", trial.seed),
        max_cycles=params.get("max_cycles", 3_000_000),
        **topology_kwargs, **gadget_kwargs)
    return result.to_dict()


def ipc_record(workload, baseline, contender, base, cont) -> Dict[str, Any]:
    """The deterministic ``ipc`` payload from two finished cores.

    Shared by the serial runner and the fleet executor
    (:mod:`repro.batch`): both assemble records through this one
    function, so batched execution is bit-identical by construction.
    """
    speedup = (cont.stats.ipc / base.stats.ipc) if base.stats.ipc else 0.0
    return {
        "workload": workload.name,
        "memory_bound": workload.memory_bound,
        "baseline": baseline.name,
        "contender": contender.name,
        "ipc_base": base.stats.ipc,
        "ipc_contender": cont.stats.ipc,
        "speedup": speedup,
        "episodes": cont.stats.runahead_episodes,
        "prefetches": cont.stats.runahead_prefetches,
        "stats_base": _stats_dict(base.stats),
        "stats_contender": _stats_dict(cont.stats),
    }


def workload_record(workload, controller, core) -> Dict[str, Any]:
    """The deterministic ``run`` payload from one finished core (shared
    with the fleet executor, like :func:`ipc_record`)."""
    return {
        "workload": workload.name,
        "runahead": controller.name,
        "halted": core.halted,
        "cycles": core.stats.cycles,
        "ipc": core.stats.ipc,
        "stats": _stats_dict(core.stats),
    }


def _run_ipc(trial: Trial) -> Dict[str, Any]:
    params = trial.params
    workload = get_workload(params["workload"])
    config = _config_from(params)
    max_cycles = params.get("max_cycles", 5_000_000)
    baseline = make_controller(params.get("baseline", "none"),
                               **params.get("baseline_kwargs", {}))
    contender = make_controller(params.get("contender", "original"),
                                **params.get("contender_kwargs", {}))
    base = workload.run(runahead=baseline, config=config,
                        max_cycles=max_cycles)
    cont = workload.run(runahead=contender, config=config,
                        max_cycles=max_cycles)
    return ipc_record(workload, baseline, contender, base, cont)


def _run_window(trial: Trial) -> Dict[str, Any]:
    params = trial.params
    controller = make_controller(params.get("runahead", "none"),
                                 **params.get("runahead_kwargs", {}))
    measurement = measure_window(
        controller,
        async_flushes=params.get("async_flushes", 0),
        sled=params.get("sled", 4096),
        config=_config_from(params))
    return dataclasses.asdict(measurement)


def _run_workload(trial: Trial) -> Dict[str, Any]:
    params = trial.params
    workload = get_workload(params["workload"])
    controller = make_controller(params.get("runahead", "none"),
                                 **params.get("runahead_kwargs", {}))
    core = workload.run(runahead=controller, config=_config_from(params),
                        max_cycles=params.get("max_cycles", 5_000_000))
    return workload_record(workload, controller, core)


def resolve_verify_target(name: str):
    """Resolve a verify target name (registry or ``gen:...``) to a case."""
    from ..verify.targets import build_target
    if name.startswith("gen:"):
        from ..verify.gen import gen_target
        return gen_target(name)
    return build_target(name)


def verify_record(case, result, shard=None) -> Dict[str, Any]:
    """The deterministic ``verify`` payload (shared-record pattern)."""
    record = {
        "target": case.name,
        "defense": result.defense,
        "windows": list(result.windows),
        "clean": result.clean,
        "n_reports": len(result.reports),
        "reports": [r.to_dict() for r in result.reports],
        "arch_steps": result.arch_steps,
        "window_steps": result.window_steps,
        "spec_forks": result.spec_forks,
        "runahead_forks": result.runahead_forks,
        "suppressed": result.suppressed,
    }
    if shard is not None:
        record["shard"] = list(shard)
    return record


def _run_verify(trial: Trial) -> Dict[str, Any]:
    from ..verify import VerifyOptions, check_program
    from ..verify.report import WINDOWS

    params = trial.params
    case = resolve_verify_target(params["target"])
    defense = params.get("defense", "original")
    options = VerifyOptions()
    for key in ("spec_depth", "runahead_len", "max_arch_steps",
                "max_window_forks"):
        if key in params:
            setattr(options, key, params[key])
    shard = params.get("shard")
    fork_filter = None
    if shard is not None:
        index, count = shard
        if params.get("cross_check"):
            raise TrialError("verify trial cannot combine shard with "
                             "cross_check: the contract needs the full "
                             "report set")
        fork_filter = lambda fork: fork % count == index
    result = check_program(
        case.program, case.image, secret_addrs=case.secret_addrs,
        initial_sp=case.initial_sp, defense=defense,
        windows=params.get("windows", list(WINDOWS)),
        options=options, fork_filter=fork_filter)
    record = verify_record(case, result, shard=shard)
    if params.get("cross_check"):
        from ..verify.crosscheck import cross_check_case
        cross = cross_check_case(
            case, defenses=(defense,), options=options,
            max_cycles=params.get("max_cycles", 3_000_000))
        record["cross_check"] = cross.cells[0].to_dict()
        record["ok"] = cross.ok
        record["disagreements"] = list(cross.disagreements)
    return record


def _run_taint(trial: Trial) -> Dict[str, Any]:
    rows = [list(row) for row in run_fig12()]
    mismatches = [label for label, want_btag, got_btag, want_is, got_is
                  in rows
                  if want_btag is not None
                  and (got_btag != want_btag or got_is != want_is)]
    return {"rows": rows, "mismatches": mismatches}


_RUNNERS = {
    "attack": _run_attack,
    "ipc": _run_ipc,
    "window": _run_window,
    "run": _run_workload,
    "taint": _run_taint,
    "extract": _run_extract,
    "verify": _run_verify,
}


def run_trial(trial: Trial) -> Dict[str, Any]:
    """Execute one trial and return its result payload (pure data)."""
    try:
        runner = _RUNNERS[trial.kind]
    except KeyError:
        # Same wording and kind order as Trial.__post_init__ — a test
        # pins the two lists against each other and against _RUNNERS.
        raise TrialError(
            f"no runner for trial kind {trial.kind!r}; expected one of "
            f"{TRIAL_KINDS}") from None
    try:
        return runner(trial)
    except TrialError:
        raise
    except Exception as exc:
        raise TrialError(f"trial {trial.label!r} failed: {exc}") from exc

"""Sharded sweep execution with deterministic, ordered results.

``run_sweep`` fans cache-missing trials out across ``multiprocessing``
workers and reassembles results **in trial order**, so the aggregated
output of a sweep is byte-identical no matter how many workers ran it
(or how the OS scheduled them).  Each trial is self-contained — the
worker resolves names to fresh simulator objects via the registry, and
the simulator itself is fully deterministic — so sharding cannot change
any measurement.  (A trial's ``seed`` is part of its spec and cache
key, reserved for future stochastic workloads; current runners don't
consume it.)

All cache I/O happens in the parent process: workers only compute.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .cache import ResultCache, resolve_cache
from .runner import TrialError, run_trial
from .spec import Sweep, Trial

#: Environment variable providing the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return min(4, os.cpu_count() or 1)


@dataclass
class SweepResult:
    """Ordered results of one sweep run.

    ``records[i]`` corresponds to ``sweep.trials[i]`` and contains the
    deterministic payload only; volatile run metadata (cache hits,
    wall-clock) lives on the result object itself so ``to_json`` stays
    byte-stable across runs and worker counts.
    """

    name: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    cached: List[bool] = field(default_factory=list)
    workers: int = 1
    elapsed: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @staticmethod
    def _lookup(mapping: Dict[str, Any], dotted: str):
        value: Any = mapping
        for part in dotted.split("."):
            if not isinstance(value, dict) or part not in value:
                return None
            value = value[part]
        return value

    def select(self, kind: Optional[str] = None,
               pred: Optional[Callable[[Dict[str, Any]], bool]] = None,
               **filters) -> List[Dict[str, Any]]:
        """Records matching a kind and parameter equalities.

        Filter keys address trial params; dots descend into nested
        dicts, with ``__`` accepted as a dot stand-in for keyword use
        (``config__rob_size=64``).
        """
        out = []
        for record in self.records:
            if kind is not None and record["kind"] != kind:
                continue
            params = record["params"]
            if any(self._lookup(params, key.replace("__", ".")) != want
                   for key, want in filters.items()):
                continue
            if pred is not None and not pred(record):
                continue
            out.append(record)
        return out

    def one(self, kind: Optional[str] = None, **filters) -> Dict[str, Any]:
        matches = self.select(kind=kind, **filters)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one record for kind={kind} {filters}, "
                f"got {len(matches)}")
        return matches[0]

    def results(self, kind: Optional[str] = None,
                **filters) -> List[Dict[str, Any]]:
        """Just the result payloads of matching records."""
        return [r["result"] for r in self.select(kind=kind, **filters)]

    def to_json(self, indent: int = 2) -> str:
        """Canonical encoding — byte-identical for identical sweeps."""
        return json.dumps({"sweep": self.name, "records": self.records},
                          sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        data = json.loads(text)
        return cls(name=data["sweep"], records=data["records"],
                   cached=[False] * len(data["records"]))

    def describe(self) -> str:
        total = len(self.records)
        return (f"sweep {self.name}: {total} trials, "
                f"{self.cache_hits} cached, {self.cache_misses} computed, "
                f"{self.workers} worker(s), {self.elapsed:.2f}s")


def _make_record(trial: Trial, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"kind": trial.kind, "label": trial.label,
            "params": trial.params, "seed": trial.seed,
            "spec_hash": trial.spec_hash(), "result": result}


def _worker(payload: Tuple[int, Dict[str, Any]]) \
        -> Tuple[int, Optional[Dict[str, Any]], Optional[str]]:
    index, trial_dict = payload
    try:
        return index, run_trial(Trial.from_dict(trial_dict)), None
    except Exception as exc:   # surfaced in the parent as TrialError
        return index, None, f"{type(exc).__name__}: {exc}"


def run_sweep(sweep: Sweep, workers: Optional[int] = None, cache="auto",
              force: bool = False,
              progress: Optional[Callable[[str], None]] = None) \
        -> SweepResult:
    """Execute every trial of ``sweep``; results come back in trial order.

    Parameters
    ----------
    workers:
        Process count for the cache-missing trials.  ``None`` reads
        ``$REPRO_WORKERS`` (default: min(4, cpu count)); 1 runs inline.
    cache:
        "auto" (default on-disk cache, honouring ``$REPRO_NO_CACHE``),
        ``None`` to disable, a :class:`ResultCache`, or a directory path.
    force:
        Recompute every trial even on a cache hit (fresh results are
        still written back).
    progress:
        Optional callable receiving one line per trial state change.
    """
    started = time.monotonic()
    workers = default_workers() if workers is None else max(1, workers)
    store: Optional[ResultCache] = resolve_cache(cache)
    say = progress or (lambda line: None)

    records: List[Optional[Dict[str, Any]]] = [None] * len(sweep.trials)
    cached_flags = [False] * len(sweep.trials)
    pending: List[Tuple[int, Trial]] = []

    for index, trial in enumerate(sweep.trials):
        hit = None if (store is None or force) else store.get(trial)
        if hit is not None:
            records[index] = _make_record(trial, hit)
            cached_flags[index] = True
            say(f"[{index + 1}/{len(sweep.trials)}] {trial.label}: cached")
        else:
            pending.append((index, trial))

    def finish(index: int, trial: Trial, result: Dict[str, Any]):
        records[index] = _make_record(trial, result)
        if store is not None:
            store.put(trial, result)
        say(f"[{index + 1}/{len(sweep.trials)}] {trial.label}: done")

    if len(pending) <= 1 or workers == 1:
        for index, trial in pending:
            finish(index, trial, run_trial(trial))
    else:
        by_index = {index: trial for index, trial in pending}
        jobs = [(index, trial.to_dict()) for index, trial in pending]
        procs = min(workers, len(pending))
        with multiprocessing.Pool(processes=procs) as pool:
            for index, result, error in pool.imap_unordered(
                    _worker, jobs, chunksize=1):
                if error is not None:
                    pool.terminate()
                    raise TrialError(
                        f"trial {by_index[index].label!r} failed in "
                        f"worker: {error}")
                finish(index, by_index[index], result)

    return SweepResult(
        name=sweep.name,
        records=[r for r in records if r is not None],
        cached=cached_flags,
        workers=workers,
        elapsed=time.monotonic() - started,
        cache_hits=store.hits if store else 0,
        cache_misses=len(pending))

"""Sweep execution behind a pluggable :class:`Executor` API.

An executor turns a :class:`~repro.harness.spec.Sweep` into a
:class:`SweepResult` with results **in trial order**, so the aggregated
output of a sweep is byte-identical no matter which executor ran it or
how many workers it used.  Each trial is self-contained — the worker
resolves names to fresh simulator objects via the registry, and the
simulator itself is fully deterministic — so sharding cannot change any
measurement.  (A trial's ``seed`` is part of its spec and cache key,
reserved for future stochastic workloads; current runners don't
consume it.)

Four executors ship today:

* :class:`SerialExecutor` — everything inline, no processes;
* :class:`ProcessPoolExecutor` — the classic ``multiprocessing`` pool
  fan-out (byte-identical to the serial path by construction);
* :class:`repro.batch.FleetExecutor` — the batched struct-of-arrays
  fleet kernel (``executor="fleet"``): all of a sweep's bare core-runs
  advance as lanes of one :class:`repro.batch.FleetCore`, deduplicating
  identical run specs within the batch;
* :class:`repro.campaign.CampaignExecutor` — journaled, resumable,
  work-stealing execution for large campaigns (crash resume, retries,
  per-trial timeouts, live status).  Campaigns can also shard across
  machines: a read-write coordinator
  (:mod:`repro.campaign.coordinator`) leases trials to worker hosts
  over HTTP, and ``http://`` cache URIs point any executor at a
  remote result store.

``run_sweep`` remains the convenience entry point: it picks a serial or
pool executor from the ``workers`` argument exactly as it always has.

All cache I/O happens in the parent process: workers only compute.
"""

from __future__ import annotations

import abc
import json
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.metrics import get_registry
from .cache import CacheBackend, resolve_cache
from .runner import TrialError, run_trial
from .spec import Sweep, Trial

#: Environment variable providing the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable naming the default executor (see EXECUTORS).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Executor names resolvable by :func:`make_executor` (and the CLI's
#: ``--executor`` flag / ``$REPRO_EXECUTOR``).  ``tools/check_docs.py``
#: validates every ``executor=<name>`` mentioned in the docs against
#: this table.
EXECUTORS = {
    "serial": "everything inline in the calling process",
    "pool": "multiprocessing fan-out across worker processes",
    "fleet": "batched struct-of-arrays fleet kernel (repro.batch)",
}

_warned_bad_workers = False


def default_workers() -> int:
    """Worker count from ``$REPRO_WORKERS``, else ``min(4, cpus)``.

    A malformed value warns once and falls back to the default — it is
    never silently ignored (and never re-parsed downstream: callers get
    a valid int from here, full stop).
    """
    global _warned_bad_workers
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if not _warned_bad_workers:
                _warned_bad_workers = True
                warnings.warn(
                    f"ignoring malformed {WORKERS_ENV}={env!r} "
                    f"(expected an integer); using the default worker "
                    f"count", RuntimeWarning, stacklevel=2)
    return min(4, os.cpu_count() or 1)


@dataclass
class SweepResult:
    """Ordered results of one sweep run.

    ``records[i]`` corresponds to ``sweep.trials[i]`` and contains the
    deterministic payload only; volatile run metadata (cache hits,
    wall-clock) lives on the result object itself so ``to_json`` stays
    byte-stable across runs, executors and worker counts.
    """

    name: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    cached: List[bool] = field(default_factory=list)
    workers: int = 1
    elapsed: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @staticmethod
    def _lookup(mapping: Dict[str, Any], dotted: str):
        value: Any = mapping
        for part in dotted.split("."):
            if not isinstance(value, dict) or part not in value:
                return None
            value = value[part]
        return value

    def select(self, kind: Optional[str] = None,
               pred: Optional[Callable[[Dict[str, Any]], bool]] = None,
               **filters) -> List[Dict[str, Any]]:
        """Records matching a kind and parameter equalities.

        Filter keys address trial params; dots descend into nested
        dicts, with ``__`` accepted as a dot stand-in for keyword use
        (``config__rob_size=64``).
        """
        out = []
        for record in self.records:
            if kind is not None and record["kind"] != kind:
                continue
            params = record["params"]
            if any(self._lookup(params, key.replace("__", ".")) != want
                   for key, want in filters.items()):
                continue
            if pred is not None and not pred(record):
                continue
            out.append(record)
        return out

    def one(self, kind: Optional[str] = None, **filters) -> Dict[str, Any]:
        matches = self.select(kind=kind, **filters)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one record for kind={kind} {filters}, "
                f"got {len(matches)}")
        return matches[0]

    def results(self, kind: Optional[str] = None,
                **filters) -> List[Dict[str, Any]]:
        """Just the result payloads of matching records."""
        return [r["result"] for r in self.select(kind=kind, **filters)]

    def to_json(self, indent: int = 2) -> str:
        """Canonical encoding — byte-identical for identical sweeps."""
        return json.dumps({"sweep": self.name, "records": self.records},
                          sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        data = json.loads(text)
        return cls(name=data["sweep"], records=data["records"],
                   cached=[False] * len(data["records"]))

    def describe(self) -> str:
        total = len(self.records)
        return (f"sweep {self.name}: {total} trials, "
                f"{self.cache_hits} cached, {self.cache_misses} computed, "
                f"{self.workers} worker(s), {self.elapsed:.2f}s")


def make_record(trial: Trial, result: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic per-trial record every executor must emit."""
    return {"kind": trial.kind, "label": trial.label,
            "params": trial.params, "seed": trial.seed,
            "spec_hash": trial.spec_hash(), "result": result}


_make_record = make_record


@dataclass
class _Plan:
    """Cache-scan outcome shared by every executor: what is already
    served and what still needs computing."""

    sweep: Sweep
    store: Optional[CacheBackend]
    records: List[Optional[Dict[str, Any]]]
    cached_flags: List[bool]
    pending: List[Tuple[int, Trial]]
    say: Callable[[str], None]

    def finish(self, index: int, trial: Trial, result: Dict[str, Any]):
        self.records[index] = make_record(trial, result)
        if self.store is not None:
            self.store.put(trial, result)
        get_registry().counter(
            "repro_trials_finished_total",
            "Trials completed by any executor",
            labels={"kind": trial.kind}).inc()
        self.say(f"[{index + 1}/{len(self.sweep.trials)}] "
                 f"{trial.label}: done")


def plan_sweep(sweep: Sweep, cache="auto", force: bool = False,
               progress: Optional[Callable[[str], None]] = None) -> _Plan:
    """Scan the cache and split a sweep into served + pending trials."""
    store = resolve_cache(cache)
    say = progress or (lambda line: None)
    records: List[Optional[Dict[str, Any]]] = [None] * len(sweep.trials)
    cached_flags = [False] * len(sweep.trials)
    pending: List[Tuple[int, Trial]] = []
    for index, trial in enumerate(sweep.trials):
        hit = None if (store is None or force) else store.get(trial)
        if hit is not None:
            records[index] = make_record(trial, hit)
            cached_flags[index] = True
            say(f"[{index + 1}/{len(sweep.trials)}] {trial.label}: cached")
        else:
            pending.append((index, trial))
    registry = get_registry()
    hits = len(sweep.trials) - len(pending)
    if hits:
        registry.counter("repro_cache_lookups_total",
                         "Result-cache lookups by outcome",
                         labels={"outcome": "hit"}).inc(hits)
    if pending:
        registry.counter("repro_cache_lookups_total",
                         "Result-cache lookups by outcome",
                         labels={"outcome": "miss"}).inc(len(pending))
    return _Plan(sweep=sweep, store=store, records=records,
                 cached_flags=cached_flags, pending=pending, say=say)


def _timed_run(trial: Trial) -> Dict[str, Any]:
    """Inline trial execution with a wall-time observation."""
    begin = time.monotonic()
    result = run_trial(trial)
    get_registry().histogram(
        "repro_trial_seconds",
        "Per-trial compute wall time").observe(
        time.monotonic() - begin)
    return result


def _seal(plan: _Plan, workers: int, started: float) -> SweepResult:
    return SweepResult(
        name=plan.sweep.name,
        records=[r for r in plan.records if r is not None],
        cached=plan.cached_flags,
        workers=workers,
        elapsed=time.monotonic() - started,
        cache_hits=plan.store.hits if plan.store else 0,
        cache_misses=len(plan.pending))


class Executor(abc.ABC):
    """Strategy for running a sweep's trials.

    The contract every implementation must honour:

    * ``execute(sweep, cache) -> SweepResult`` with ``records`` in
      trial order, **byte-identical** (``to_json``) to a serial run;
    * cache reads/writes happen in the calling process only;
    * a deterministic trial failure surfaces as
      :class:`~repro.harness.runner.TrialError`.
    """

    @abc.abstractmethod
    def execute(self, sweep: Sweep, cache="auto", force: bool = False,
                progress: Optional[Callable[[str], None]] = None) \
            -> SweepResult:
        """Run every trial; return ordered results."""


class SerialExecutor(Executor):
    """Everything inline in the calling process — the reference
    semantics all other executors must reproduce byte-for-byte."""

    def execute(self, sweep: Sweep, cache="auto", force: bool = False,
                progress: Optional[Callable[[str], None]] = None) \
            -> SweepResult:
        started = time.monotonic()
        plan = plan_sweep(sweep, cache=cache, force=force,
                          progress=progress)
        for index, trial in plan.pending:
            plan.finish(index, trial, _timed_run(trial))
        return _seal(plan, workers=1, started=started)


def _pool_worker(payload: Tuple[int, Dict[str, Any]]) \
        -> Tuple[int, Optional[Dict[str, Any]], Optional[str]]:
    index, trial_dict = payload
    try:
        return index, run_trial(Trial.from_dict(trial_dict)), None
    except Exception as exc:   # surfaced in the parent as TrialError
        return index, None, f"{type(exc).__name__}: {exc}"


_worker = _pool_worker


class ProcessPoolExecutor(Executor):
    """Fan cache-missing trials out across a ``multiprocessing`` pool.

    Results are reassembled in trial order, so the output is
    byte-identical to :class:`SerialExecutor` at any worker count.
    With one worker (or at most one pending trial) it runs inline —
    no pool is spawned for work that cannot be parallelised.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = default_workers() if workers is None \
            else max(1, workers)

    def execute(self, sweep: Sweep, cache="auto", force: bool = False,
                progress: Optional[Callable[[str], None]] = None) \
            -> SweepResult:
        started = time.monotonic()
        plan = plan_sweep(sweep, cache=cache, force=force,
                          progress=progress)
        if len(plan.pending) <= 1 or self.workers == 1:
            for index, trial in plan.pending:
                plan.finish(index, trial, _timed_run(trial))
        else:
            by_index = {index: trial for index, trial in plan.pending}
            jobs = [(index, trial.to_dict())
                    for index, trial in plan.pending]
            procs = min(self.workers, len(plan.pending))
            with multiprocessing.Pool(processes=procs) as pool:
                for index, result, error in pool.imap_unordered(
                        _pool_worker, jobs, chunksize=1):
                    if error is not None:
                        pool.terminate()
                        raise TrialError(
                            f"trial {by_index[index].label!r} failed in "
                            f"worker: {error}")
                    plan.finish(index, by_index[index], result)
        return _seal(plan, workers=self.workers, started=started)


def make_executor(name: str, workers: Optional[int] = None) -> Executor:
    """Resolve an executor name (see :data:`EXECUTORS`) to an instance.

    ``fleet`` resolves lazily to :class:`repro.batch.FleetExecutor` so
    the harness package has no import-time dependency on the batch
    kernel.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return ProcessPoolExecutor(workers=workers)
    if name == "fleet":
        from ..batch.executor import FleetExecutor
        return FleetExecutor()
    raise ValueError(f"unknown executor {name!r} "
                     f"(known: {', '.join(sorted(EXECUTORS))})")


def run_sweep(sweep: Sweep, workers: Optional[int] = None, cache="auto",
              force: bool = False,
              progress: Optional[Callable[[str], None]] = None,
              executor: Optional[str] = None) -> SweepResult:
    """Execute every trial of ``sweep``; results come back in trial
    order.  Thin wrapper that picks an :class:`Executor` from
    ``executor``/``workers`` — the stable entry point since PR 1.

    Parameters
    ----------
    workers:
        Process count for the cache-missing trials.  ``None`` reads
        ``$REPRO_WORKERS`` (default: min(4, cpu count)); 1 runs inline.
    cache:
        "auto" (default on-disk cache, honouring ``$REPRO_NO_CACHE``),
        ``None`` to disable, a :class:`CacheBackend`, a directory path,
        or a ``dir:<path>`` / ``sqlite:<path>`` URI.
    force:
        Recompute every trial even on a cache hit (fresh results are
        still written back).
    progress:
        Optional callable receiving one line per trial state change.
    executor:
        Executor name (see :data:`EXECUTORS`); ``None`` reads
        ``$REPRO_EXECUTOR`` and otherwise keeps the historical
        workers-based pick (serial at 1, pool above).  All executors
        produce byte-identical results, so this only chooses *how* the
        same answer is computed.
    """
    name = executor or os.environ.get(EXECUTOR_ENV) or None
    workers = default_workers() if workers is None else max(1, workers)
    if name:
        chosen = make_executor(name, workers=workers)
    else:
        chosen = SerialExecutor() if workers == 1 \
            else ProcessPoolExecutor(workers=workers)
    return chosen.execute(sweep, cache=cache, force=force,
                          progress=progress)

"""Aggregation helpers over sweep results.

These replace the ad-hoc reduction loops the benchmark scripts used to
carry: geometric means over IPC records, speedup tables/bars, and
attack-outcome matrices.  Everything operates on the plain result
payloads produced by :mod:`repro.harness.runner`, so the same helpers
serve the benchmarks, the examples and ``python -m repro report``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.report import format_bars, format_table


def geomean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def geometric_mean_speedup(ipc_results: Iterable[Dict[str, Any]]) -> float:
    """Geometric mean over the ``speedup`` field of IPC result payloads."""
    return geomean(row["speedup"] for row in ipc_results)


def ipc_table(ipc_results: Sequence[Dict[str, Any]],
              baseline_label: str = "baseline") -> str:
    """Fig. 7-style table from IPC result payloads, in given order."""
    rows = [(row["workload"], "1.000", f"{row['speedup']:.3f}",
             f"{row['ipc_base']:.3f}", f"{row['ipc_contender']:.3f}",
             row["episodes"], row["prefetches"]) for row in ipc_results]
    return format_table(
        ["benchmark", baseline_label, "contender", "IPC base",
         "IPC contender", "episodes", "prefetches"], rows)


def speedup_bars(ipc_results: Sequence[Dict[str, Any]]) -> str:
    return format_bars([row["workload"] for row in ipc_results],
                       [row["speedup"] for row in ipc_results], unit="x")


def attack_cell(result: Dict[str, Any]) -> str:
    """Render one attack outcome the way the §6 matrix prints it."""
    return f"LEAK {result['recovered']}" if result["leaked"] else "blocked"


def attack_matrix(attack_results: Sequence[Dict[str, Any]],
                  rows: Sequence[str], cols: Sequence[str],
                  row_field: str = "variant",
                  col_field: str = "runahead") -> str:
    """Pivot attack payloads into a rows × cols outcome table."""
    index: Dict[Tuple[str, str], Dict[str, Any]] = {
        (res[row_field], res[col_field]): res for res in attack_results}
    table_rows = []
    for row in rows:
        cells: List[str] = [row]
        for col in cols:
            res = index.get((row, col))
            cells.append(attack_cell(res) if res else "-")
        table_rows.append(tuple(cells))
    return format_table([row_field] + list(cols), table_rows)


def stats_field(records: Sequence[Dict[str, Any]], field: str) -> List[Any]:
    """Extract one ``stats`` field across result payloads."""
    return [record["stats"][field] for record in records]

"""A small Prometheus-style metrics registry (stdlib only).

Counters, gauges, and histograms keyed by name + label set, rendered
in the Prometheus text exposition format for the ``/metrics`` routes
on ``campaign serve`` and ``campaign coordinate``.  A process-global
default registry (:func:`get_registry`) lets the harness executor,
campaign engine, and coordinator record into one pool without plumbing
a registry through every call signature; tests swap in a fresh
registry via :func:`set_registry`.

All mutation goes through one coarse lock per registry — the hottest
caller records once per *trial* (tens of milliseconds of simulation),
so contention is irrelevant and correctness under the coordinator's
threaded HTTP handlers is what matters.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

_DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonic counter series (one label set of a family)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Settable gauge series."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Cumulative-bucket histogram series."""

    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, lock: threading.Lock,
                 buckets: Iterable[float] = _DEFAULT_BUCKETS) -> None:
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)   # +inf tail
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.total += value
            self.count += 1


class MetricsRegistry:
    """Family store: ``counter()``/``gauge()``/``histogram()`` create
    or return the series for (name, labels); ``render()`` emits the
    whole registry as Prometheus text."""

    _TYPES = {"counter": Counter, "gauge": Gauge,
              "histogram": Histogram}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (type, help, {label_key: series})
        self._families: Dict[str, Tuple[str, str, Dict]] = {}

    def _series(self, kind: str, name: str, help_text: str,
                labels: Optional[Dict[str, str]], **kwargs):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help_text, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family[0]}, not {kind}")
            series = family[2].get(key)
            if series is None:
                series = self._TYPES[kind](self._lock, **kwargs)
                family[2][key] = series
            return series

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._series("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._series("gauge", name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Iterable[float] = _DEFAULT_BUCKETS,
                  ) -> Histogram:
        return self._series("histogram", name, help_text, labels,
                            buckets=buckets)

    @staticmethod
    def _format(value: float) -> str:
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)

    def render(self) -> str:
        """Prometheus text exposition of every family, sorted by name
        so output is stable for tests and diffing."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._families):
                kind, help_text, series_map = self._families[name]
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                for key in sorted(series_map):
                    series = series_map[key]
                    if kind == "histogram":
                        running = 0
                        for edge, count in zip(series.buckets,
                                               series.counts):
                            running += count
                            le = 'le="%s"' % self._format(edge)
                            lines.append(
                                f"{name}_bucket"
                                f"{_label_text(key, le)} {running}")
                        le = 'le="+Inf"'
                        lines.append(
                            f"{name}_bucket{_label_text(key, le)}"
                            f" {series.count}")
                        lines.append(f"{name}_sum{_label_text(key)} "
                                     f"{self._format(series.total)}")
                        lines.append(f"{name}_count{_label_text(key)} "
                                     f"{series.count}")
                    else:
                        lines.append(f"{name}{_label_text(key)} "
                                     f"{self._format(series.value)}")
        return "\n".join(lines) + "\n"


_default = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry the harness and campaign layers
    record into."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, registry
    return previous

"""Observability: event tracing, metrics, and campaign dashboards.

Three independent layers, all stdlib-only and all strictly off the
result path (enabling any of them never changes ``CoreStats``, sweep
JSON, or cache keys):

``repro.obs.events``   typed micro-architectural event schema plus the
                       compact varint-encoded ``.evt`` container.
``repro.obs.sink``     pluggable :class:`TraceSink` implementations the
                       simulator emits into (memory ring / binary file).
``repro.obs.metrics``  a small Prometheus-style registry (counters,
                       gauges, histograms) threaded through the harness
                       executor, campaign engine and coordinator.
``repro.obs.view``     cycle-level timeline rendering of one ``.evt``
                       trace (text sparkline or single-file HTML).
``repro.obs.campaign`` campaign-facing adapters: journal-derived trial
                       timeline, status-to-metrics bridge, and the
                       ``--dashboard`` HTML page.
"""

from .events import (EV_CACHE_EVICT, EV_CACHE_FILL, EV_CACHE_PROBE,
                     EV_COMMIT, EV_DISPATCH, EV_FETCH, EV_FLUSH,
                     EV_INV, EV_ISSUE, EV_MEM_ACCESS, EV_MISPREDICT,
                     EV_PSEUDO_RETIRE, EV_RA_ENTER, EV_RA_EXIT,
                     EV_SQUASH, EVENT_NAMES, EVENT_SCHEMA, LEVEL_IDS,
                     LEVEL_NAMES, decode_events, encode_events,
                     event_name, load_events, save_events)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      get_registry, set_registry)
from .sink import FileSink, MemorySink, TraceSink, attach_sink
from .view import render_html, render_text, summarize_events

__all__ = [
    "EV_CACHE_EVICT", "EV_CACHE_FILL", "EV_CACHE_PROBE", "EV_COMMIT",
    "EV_DISPATCH", "EV_FETCH", "EV_FLUSH", "EV_INV", "EV_ISSUE",
    "EV_MEM_ACCESS", "EV_MISPREDICT", "EV_PSEUDO_RETIRE", "EV_RA_ENTER",
    "EV_RA_EXIT", "EV_SQUASH",
    "EVENT_NAMES", "EVENT_SCHEMA", "LEVEL_IDS", "LEVEL_NAMES",
    "decode_events", "encode_events", "event_name", "load_events",
    "save_events",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry",
    "set_registry",
    "FileSink", "MemorySink", "TraceSink", "attach_sink",
    "render_html", "render_text", "summarize_events",
]

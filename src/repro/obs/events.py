"""Typed simulator events and the compact binary ``.evt`` container.

An event is the 4-tuple ``(cycle, kind, a, b)`` — two integer payload
slots are enough for every event the simulator emits (a PC, a sequence
number, a cache-line address, a level id, a count).  The schema below
is the single source of truth for what each slot means; the viewer,
the docs, and the tests all read it from here.

The ``.evt`` container is a five-byte magic header followed by a flat
stream of varint-encoded events.  Cycles are delta-encoded against the
previous event and zigzag-mapped, because covert-channel receiver
probes replay recorded timestamps and can therefore step backwards in
time; payload slots are zigzag-mapped too so the format never has to
care about signedness.  A ~1M-cycle mcf trace lands around five bytes
per event.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

# ---------------------------------------------------------------- schema

EV_FETCH = 1          # a=pc                front end fetched one instr
EV_DISPATCH = 2       # a=seq  b=pc         entered the ROB
EV_ISSUE = 3          # a=seq  b=pc         left the issue queue
EV_COMMIT = 4         # a=seq  b=pc         architecturally retired
EV_PSEUDO_RETIRE = 5  # a=seq  b=pc         runahead pseudo-retire
EV_SQUASH = 6         # a=count b=pc        pipeline flush (b = new pc)
EV_MISPREDICT = 7     # a=seq  b=pc         branch resolved wrong
EV_RA_ENTER = 8       # a=seq  b=pc         runahead entered (stall head)
EV_RA_EXIT = 9        # a=duration b=pc     runahead exited
EV_INV = 10           # a=seq  b=pc         result poisoned INV
EV_MEM_ACCESS = 11    # a=line b=level      timed data access resolved
EV_CACHE_FILL = 12    # a=line b=level      line installed at level
EV_CACHE_EVICT = 13   # a=line b=level      line evicted from level
EV_CACHE_PROBE = 14   # a=line b=level      receiver probe (untimed path)
EV_FLUSH = 15         # a=line              clflush-style line flush

#: kind -> (name, (slot-a meaning, slot-b meaning))
EVENT_SCHEMA = {
    EV_FETCH: ("fetch", ("pc", "")),
    EV_DISPATCH: ("dispatch", ("seq", "pc")),
    EV_ISSUE: ("issue", ("seq", "pc")),
    EV_COMMIT: ("commit", ("seq", "pc")),
    EV_PSEUDO_RETIRE: ("pseudo_retire", ("seq", "pc")),
    EV_SQUASH: ("squash", ("count", "pc")),
    EV_MISPREDICT: ("mispredict", ("seq", "pc")),
    EV_RA_ENTER: ("runahead_enter", ("seq", "pc")),
    EV_RA_EXIT: ("runahead_exit", ("cycles", "pc")),
    EV_INV: ("inv", ("seq", "pc")),
    EV_MEM_ACCESS: ("mem_access", ("line", "level")),
    EV_CACHE_FILL: ("cache_fill", ("line", "level")),
    EV_CACHE_EVICT: ("cache_evict", ("line", "level")),
    EV_CACHE_PROBE: ("cache_probe", ("line", "level")),
    EV_FLUSH: ("flush", ("line", "")),
}

EVENT_NAMES = {kind: spec[0] for kind, spec in EVENT_SCHEMA.items()}

#: memory-hierarchy level strings (repro.memory.hierarchy) -> small ints
LEVEL_IDS = {"l1": 1, "l2": 2, "l3": 3, "mem": 4, "pending": 5}
LEVEL_NAMES = {ident: name for name, ident in LEVEL_IDS.items()}


def event_name(kind: int) -> str:
    return EVENT_NAMES.get(kind, f"unknown_{kind}")


# ------------------------------------------------------------- container

MAGIC = b"REVT\x01"

Event = Tuple[int, int, int, int]         # (cycle, kind, a, b)


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _put_uvarint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def encode_events(events: Iterable[Event],
                  prev_cycle: int = 0) -> bytes:
    """Encode a run of events (no header) delta'd against
    ``prev_cycle``; streaming writers call this per chunk."""
    buf = bytearray()
    for cycle, kind, a, b in events:
        _put_uvarint(buf, kind)
        _put_uvarint(buf, _zigzag(cycle - prev_cycle))
        _put_uvarint(buf, _zigzag(a))
        _put_uvarint(buf, _zigzag(b))
        prev_cycle = cycle
    return bytes(buf)


def decode_events(data: bytes, prev_cycle: int = 0) -> List[Event]:
    """Inverse of :func:`encode_events`; raises ``ValueError`` on a
    truncated stream."""
    events: List[Event] = []
    pos, end = 0, len(data)

    def take() -> int:
        nonlocal pos
        shift = result = 0
        while True:
            if pos >= end:
                raise ValueError("truncated .evt stream")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    while pos < end:
        kind = take()
        prev_cycle += _unzigzag(take())
        a = _unzigzag(take())
        b = _unzigzag(take())
        events.append((prev_cycle, kind, a, b))
    return events


def save_events(path, events: Iterable[Event]) -> int:
    """Write a complete ``.evt`` file; returns the event count."""
    events = list(events)
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(encode_events(events))
    return len(events)


def load_events(path) -> List[Event]:
    """Read a ``.evt`` file back into ``(cycle, kind, a, b)`` tuples."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(MAGIC):
        raise ValueError(f"{path}: not a .evt trace (bad magic)")
    return decode_events(data[len(MAGIC):])

"""Trace sinks the simulator emits events into.

The zero-overhead-when-off contract lives in the *emitters*, not here:
``Core`` and ``MemoryHierarchy`` hold ``self.trace = None`` by default
and guard every emit with an is-``None`` test, so an untraced run pays
one pointer check per instrumented site and allocates nothing.  When a
sink is attached it receives ``emit(cycle, kind, a, b)`` calls and must
never touch simulator state — sinks observe, they do not participate.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .events import MAGIC, Event, encode_events

_FLUSH_BYTES = 1 << 16


class TraceSink:
    """Interface: override :meth:`emit`; :meth:`close` is optional."""

    def emit(self, cycle: int, kind: int, a: int = 0,
             b: int = 0) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySink(TraceSink):
    """Keep events in memory — unbounded list, or a ring of the last
    ``capacity`` events (flight-recorder mode for long runs)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events = (deque(maxlen=capacity) if capacity
                        else deque())

    def emit(self, cycle: int, kind: int, a: int = 0,
             b: int = 0) -> None:
        self._events.append((cycle, kind, a, b))

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class FileSink(TraceSink):
    """Stream events into a compact binary ``.evt`` file.

    Events are varint-encoded in ~64 KiB chunks so multi-million-event
    traces never hold the whole stream in memory.  The file is valid
    only after :meth:`close` (truncated tails raise on load).
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "wb")
        self._handle.write(MAGIC)
        self._pending: List[Event] = []
        self._prev_cycle = 0
        self.count = 0

    def emit(self, cycle: int, kind: int, a: int = 0,
             b: int = 0) -> None:
        self._pending.append((cycle, kind, a, b))
        self.count += 1
        if len(self._pending) >= 8192:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._handle.write(
                encode_events(self._pending, self._prev_cycle))
            self._prev_cycle = self._pending[-1][0]
            self._pending.clear()

    def close(self) -> None:
        if self._handle is not None:
            self._flush()
            self._handle.close()
            self._handle = None


def attach_sink(core, sink: Optional[TraceSink]) -> None:
    """Point a built ``Core`` (and its memory hierarchy, if any) at a
    sink; pass ``None`` to detach."""
    core.trace = sink
    hierarchy = getattr(core, "hierarchy", None)
    if hierarchy is not None:
        hierarchy.trace = sink

"""Trace sinks the simulator emits events into.

The zero-overhead-when-off contract lives in the *emitters*, not here:
``Core`` and ``MemoryHierarchy`` hold ``self.trace = None`` by default
and guard every emit with an is-``None`` test, so an untraced run pays
one pointer check per instrumented site and allocates nothing.  When a
sink is attached it receives ``emit(cycle, kind, a, b)`` calls and must
never touch simulator state — sinks observe, they do not participate.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .events import MAGIC, Event, encode_events

_FLUSH_BYTES = 1 << 16


class TraceSink:
    """Interface: override :meth:`emit`; :meth:`close` is optional."""

    def emit(self, cycle: int, kind: int, a: int = 0,
             b: int = 0) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    @property
    def closed(self) -> bool:
        return False

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        # Runs on error too: whatever was emitted before the exception
        # is flushed and the file sealed (flush-on-error).  The guard
        # keeps an explicit close() inside the ``with`` block from
        # turning into a double-close error here.
        if not self.closed:
            self.close()


class MemorySink(TraceSink):
    """Keep events in memory — unbounded list, or a ring of the last
    ``capacity`` events (flight-recorder mode for long runs)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events = (deque(maxlen=capacity) if capacity
                        else deque())

    def emit(self, cycle: int, kind: int, a: int = 0,
             b: int = 0) -> None:
        self._events.append((cycle, kind, a, b))

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class FileSink(TraceSink):
    """Stream events into a compact binary ``.evt`` file.

    Events are varint-encoded in ~64 KiB chunks so multi-million-event
    traces never hold the whole stream in memory.  The file is valid
    only after :meth:`close` (truncated tails raise on load).

    Use as a context manager for exception safety: ``__exit__`` closes
    (and therefore flushes the buffered tail) even when the block
    raises.  After :meth:`close`, :meth:`emit` and a second explicit
    :meth:`close` raise :class:`ValueError` instead of silently
    buffering into (or writing to) a closed handle.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "wb")
        self._handle.write(MAGIC)
        self._pending: List[Event] = []
        self._prev_cycle = 0
        self.count = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    def emit(self, cycle: int, kind: int, a: int = 0,
             b: int = 0) -> None:
        if self._handle is None:
            raise ValueError(f"FileSink({self.path!s}) is closed; "
                             f"events emitted now would be lost")
        self._pending.append((cycle, kind, a, b))
        self.count += 1
        if len(self._pending) >= 8192:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._handle.write(
                encode_events(self._pending, self._prev_cycle))
            self._prev_cycle = self._pending[-1][0]
            self._pending.clear()

    def close(self) -> None:
        if self._handle is None:
            raise ValueError(f"FileSink({self.path!s}) already closed")
        handle = self._handle
        self._handle = None     # mark closed first: no re-entry even
        try:                    # if the final flush fails
            if self._pending:
                handle.write(
                    encode_events(self._pending, self._prev_cycle))
                self._pending.clear()
        finally:
            handle.close()      # the OS handle never leaks


def attach_sink(core, sink: Optional[TraceSink]) -> None:
    """Point a built ``Core`` (and its memory hierarchy, if any) at a
    sink; pass ``None`` to detach."""
    core.trace = sink
    hierarchy = getattr(core, "hierarchy", None)
    if hierarchy is not None:
        hierarchy.trace = sink

"""Campaign-facing observability adapters.

Everything here derives strictly from read-only campaign state (the
journal and the status dict) — same contract as ``campaign serve``:
no simulator imports, never writes a byte into the campaign directory.

``journal_timeline``   per-trial timeline rows (start/end/host/status)
                       reconstructed from journal ``trial``/``lease``
                       events, plus a per-host rollup — the data model
                       behind the dashboard's timeline explorer.
``status_metrics``     bridge the ``campaign_status`` dict onto gauges
                       in a throwaway registry, rendered as Prometheus
                       text for the ``/metrics`` route.
``dashboard_html``     the single-file ``--dashboard`` page: inline
                       CSS/JS, polls ``/status`` + ``/timeline`` (and
                       ``/coordinator`` when present), no external
                       assets.
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import MetricsRegistry, get_registry


def journal_timeline(directory, limit: int = 500) -> Dict:
    """Reconstruct per-trial timeline rows from the journal.

    ``trial`` events carry the wall-clock completion ``time`` and the
    compute ``elapsed``, so each computed trial becomes a
    ``[time - elapsed, time]`` bar; cached trials are zero-width
    markers.  ``lease`` events attribute bars to hosts under the
    coordinator; single-host runs have no host column.  Only the most
    recent ``limit`` trials are returned (the page stays light on
    100k-trial campaigns) — ``truncated`` reports how many were cut.
    """
    from ..campaign.journal import CampaignDir

    cdir = CampaignDir(directory)
    manifest = cdir.read_manifest()
    trials: Dict = {}
    lease_host: Dict = {}
    active: Dict = {}
    hosts: Dict[str, Dict] = {}
    retries: Dict = {}
    runs = 0

    def host_row(name: str) -> Dict:
        row = hosts.get(name)
        if row is None:
            row = hosts[name] = {"done": 0, "active_leases": 0,
                                 "expired_leases": 0, "last_seen": None}
        return row

    for event in cdir.events():
        kind = event.get("event")
        stamp = event.get("time")
        key = (event.get("sweep"), event.get("index"))
        if kind == "start":
            runs += 1
        elif kind == "lease":
            lease_host[key] = event.get("host")
            active[key] = event.get("host")
            row = host_row(event.get("host") or "?")
            row["last_seen"] = stamp
        elif kind == "renew":
            row = host_row(event.get("host") or "?")
            row["last_seen"] = stamp
        elif kind == "lease-expired":
            host = active.pop(key, None) or event.get("host")
            if host:
                host_row(host)["expired_leases"] += 1
        elif kind == "retry":
            retries[key] = event.get("attempt", 0)
        elif kind == "trial":
            elapsed = float(event.get("elapsed") or 0.0)
            host = event.get("host") or lease_host.get(key)
            trials[key] = {
                "sweep": key[0], "index": key[1],
                "status": event.get("status"),
                "run": event.get("run"),
                "retries": event.get("retries",
                                     retries.get(key, 0)),
                "host": host,
                "end": stamp,
                "start": (stamp - elapsed) if stamp else None,
                "elapsed": elapsed,
            }
            active.pop(key, None)
            if host:
                row = host_row(host)
                row["done"] += 1
                row["last_seen"] = stamp

    for host in active.values():
        if host:
            host_row(host)["active_leases"] += 1

    rows = sorted(trials.values(),
                  key=lambda row: (row["end"] or 0.0,
                                   row["sweep"], row["index"]))
    truncated = max(0, len(rows) - limit)
    rows = rows[truncated:]
    stamps = ([row["start"] for row in rows if row["start"]] +
              [row["end"] for row in rows if row["end"]])
    return {
        "campaign": manifest.get("name"),
        "total_trials": manifest.get("total_trials"),
        "runs": runs,
        "t0": min(stamps) if stamps else None,
        "t1": max(stamps) if stamps else None,
        "trials": rows,
        "hosts": hosts,
        "truncated": truncated,
    }


def status_metrics(status: Dict,
                   registry: Optional[MetricsRegistry] = None) -> str:
    """Render the status dict as Prometheus gauges, appended to the
    process registry (live executor/engine/coordinator series when the
    serving process is also computing)."""
    fresh = MetricsRegistry()
    gauge = fresh.gauge
    gauge("repro_campaign_trials_total",
          "Trials in the campaign manifest").set(
        status.get("total_trials") or 0)
    gauge("repro_campaign_trials_completed",
          "Trials done or cache-served").set(
        status.get("completed") or 0)
    gauge("repro_campaign_trials_computed",
          "Trials computed by workers").set(
        status.get("computed") or 0)
    gauge("repro_campaign_trials_cached",
          "Trials served from the result cache").set(
        status.get("cached") or 0)
    gauge("repro_campaign_progress_ratio",
          "completed / total").set(status.get("progress") or 0.0)
    gauge("repro_campaign_cache_hit_ratio",
          "cached / completed").set(
        status.get("cache_hit_rate") or 0.0)
    gauge("repro_campaign_runs_total",
          "Journalled engine runs (resumes included)").set(
        status.get("runs") or 0)
    gauge("repro_campaign_errors", "Journalled error events").set(
        len(status.get("errors") or ()))
    gauge("repro_campaign_finished",
          "1 once every sweep is sealed").set(
        1 if status.get("state") == "finished" else 0)
    throughput = status.get("trials_per_second")
    if throughput is not None:
        gauge("repro_campaign_trials_per_second",
              "Recent completion rate").set(throughput)
    eta = status.get("eta_seconds")
    if eta is not None:
        gauge("repro_campaign_eta_seconds",
              "Remaining / recent rate").set(eta)
    process = (registry if registry is not None
               else get_registry()).render()
    return fresh.render() + process


def dashboard_html(title: str = "repro campaign") -> str:
    """The ``--dashboard`` page.  All data arrives via JSON polling;
    the page itself is static, so the server renders it once."""
    # One literal with doubled braces for CSS/JS; only the title is
    # interpolated (and it is operator-supplied, not campaign data —
    # campaign data reaches the DOM via textContent only).
    return _DASHBOARD_TEMPLATE.replace("__TITLE__", title)


_DASHBOARD_TEMPLATE = """<!doctype html>
<html><head><meta charset="utf-8">
<title>__TITLE__</title>
<style>
:root { --ink:#1a1a2e; --dim:#667; --line:#d8dce4; --bg:#f7f8fa;
        --done:#2a6f97; --cached:#9aa3b2; --failed:#c1443c;
        --lease:#f4a259; }
body { font:14px/1.5 system-ui,sans-serif; margin:0; color:var(--ink);
       background:var(--bg); }
header { background:#fff; border-bottom:1px solid var(--line);
         padding:.7rem 1.2rem; display:flex; align-items:baseline;
         gap:1rem; }
h1 { font-size:1.05rem; margin:0; }
#state { font-size:.8rem; padding:.1rem .55rem; border-radius:.8rem;
         background:var(--cached); color:#fff; }
#state.finished { background:var(--done); }
#state.in-progress { background:var(--lease); }
main { padding:1rem 1.2rem; max-width:70rem; margin:0 auto; }
section { background:#fff; border:1px solid var(--line);
          border-radius:.4rem; padding: .8rem 1rem; margin:0 0 1rem; }
h2 { font-size:.82rem; margin:0 0 .5rem; text-transform:uppercase;
     letter-spacing:.06em; color:var(--dim); }
#bar { height:14px; background:var(--bg); border-radius:7px;
       overflow:hidden; border:1px solid var(--line); }
#bar>div { height:100%; background:var(--done); width:0; }
.cards { display:flex; flex-wrap:wrap; gap:1.6rem; margin-top:.6rem; }
.cards b { display:block; font-size:1.15rem; }
.cards span { color:var(--dim); font-size:.78rem; }
table { border-collapse:collapse; width:100%; font-size:.85rem; }
th,td { text-align:left; padding:.2rem .6rem .2rem 0;
        border-bottom:1px solid var(--line); }
th { color:var(--dim); font-weight:600; }
#tl { position:relative; height:300px; overflow-y:auto;
      border:1px solid var(--line); border-radius:.3rem; }
.row { position:relative; height:14px; }
.trial { position:absolute; height:10px; top:2px; border-radius:2px;
         min-width:3px; background:var(--done); }
.trial.cached { background:var(--cached); }
.trial.failed { background:var(--failed); }
.legend { color:var(--dim); font-size:.78rem; margin-top:.4rem; }
.swatch { display:inline-block; width:.7em; height:.7em;
          border-radius:2px; margin:0 .25em 0 .9em;
          vertical-align:baseline; }
#err { color:var(--failed); white-space:pre-wrap; }
footer { color:var(--dim); font-size:.75rem; padding:0 1.2rem 1rem;
         max-width:70rem; margin:0 auto; }
</style></head><body>
<header><h1 id="name">__TITLE__</h1><span id="state">loading</span>
</header>
<main>
<section><h2>Progress</h2>
  <div id="bar"><div></div></div>
  <div class="cards">
    <div><b id="done">&ndash;</b><span>trials done</span></div>
    <div><b id="computed">&ndash;</b><span>computed</span></div>
    <div><b id="cached">&ndash;</b><span>cache-served</span></div>
    <div><b id="rate">&ndash;</b><span>trials / s</span></div>
    <div><b id="eta">&ndash;</b><span>ETA</span></div>
    <div><b id="runs">&ndash;</b><span>engine runs</span></div>
  </div>
  <p id="err"></p>
</section>
<section id="hostbox" hidden><h2>Hosts</h2>
  <table><thead><tr><th>host</th><th>trials done</th>
  <th>active leases</th><th>expired leases</th><th>last seen</th></tr>
  </thead><tbody id="hosts"></tbody></table>
</section>
<section><h2>Trial timeline</h2>
  <div id="tl"></div>
  <div class="legend" id="tlnote">
    <span class="swatch" style="background:var(--done)"></span>computed
    <span class="swatch" style="background:var(--cached)"></span>cached
    <span class="swatch" style="background:var(--failed)"></span>failed
  </div>
</section>
</main>
<footer>repro campaign dashboard &middot; refreshes every 2&nbsp;s
&middot; JSON: <code>/status</code>, <code>/timeline</code>,
<code>/metrics</code></footer>
<script>
"use strict";
const $ = id => document.getElementById(id);
const fmt = (v, d=1) => v == null ? "\\u2013" : (+v).toFixed(d);
function fmtEta(s) {
  if (s == null) return "\\u2013";
  if (s < 90) return Math.round(s) + " s";
  if (s < 5400) return (s / 60).toFixed(1) + " min";
  return (s / 3600).toFixed(1) + " h";
}
async function getJSON(path) {
  const res = await fetch(path, {cache: "no-store"});
  if (!res.ok) throw new Error(path + " \\u2192 " + res.status);
  return res.json();
}
function renderStatus(st) {
  $("name").textContent = st.name || "campaign";
  const badge = $("state");
  badge.textContent = st.state;
  badge.className = st.state === "finished" ? "finished"
                    : (st.state === "in-progress" ? "in-progress" : "");
  $("bar").firstElementChild.style.width =
      Math.round(100 * (st.progress || 0)) + "%";
  $("done").textContent = st.completed + " / " + st.total_trials;
  $("computed").textContent = st.computed;
  $("cached").textContent = st.cached;
  $("rate").textContent = fmt(st.trials_per_second, 2);
  $("eta").textContent = st.state === "finished" ? "done"
                                                 : fmtEta(st.eta_seconds);
  $("runs").textContent = st.runs;
  $("err").textContent = (st.errors || []).join("\\n");
}
function renderHosts(hosts) {
  const names = Object.keys(hosts || {});
  $("hostbox").hidden = names.length === 0;
  const body = $("hosts");
  body.replaceChildren();
  for (const name of names.sort()) {
    const h = hosts[name], tr = document.createElement("tr");
    const age = h.last_seen
        ? fmt(Date.now() / 1000 - h.last_seen, 0) + " s ago" : "\\u2013";
    for (const cell of [name, h.done, h.active_leases,
                        h.expired_leases, age]) {
      const td = document.createElement("td");
      td.textContent = cell;
      tr.appendChild(td);
    }
    body.appendChild(tr);
  }
}
function renderTimeline(tl) {
  const box = $("tl");
  box.replaceChildren();
  const t0 = tl.t0, t1 = Math.max(tl.t1 || 0, t0 + 1e-3);
  const scale = 100 / (t1 - t0);
  for (const trial of tl.trials.slice().reverse()) {
    const row = document.createElement("div");
    row.className = "row";
    const bar = document.createElement("div");
    bar.className = "trial " + (trial.status || "");
    const left = ((trial.start || trial.end || t0) - t0) * scale;
    bar.style.left = Math.max(0, left) + "%";
    bar.style.width = Math.max(0.4, (trial.elapsed || 0) * scale) + "%";
    bar.title = trial.sweep + "[" + trial.index + "] " + trial.status +
        (trial.host ? " @" + trial.host : "") +
        " \\u2014 " + fmt(trial.elapsed, 3) + " s" +
        (trial.retries ? " (" + trial.retries + " retries)" : "");
    row.appendChild(bar);
    box.appendChild(row);
  }
  if (tl.truncated) {
    const note = document.createElement("div");
    note.textContent = "\\u2026 " + tl.truncated +
        " earlier trials not shown";
    note.className = "legend";
    box.appendChild(note);
  }
}
async function tick() {
  try {
    const st = await getJSON("/status");
    renderStatus(st);
    const tl = await getJSON("/timeline");
    renderHosts(tl.hosts);
    renderTimeline(tl);
  } catch (err) {
    $("err").textContent = String(err);
  }
}
tick();
setInterval(tick, 2000);
</script>
</body></html>
"""

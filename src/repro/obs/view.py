"""Render one ``.evt`` trace as a cycle-level timeline.

``summarize_events`` reconstructs derived series from the raw event
stream — ROB occupancy (dispatch adds, commit/pseudo-retire/squash
remove), runahead episodes, per-kind counts, memory-level breakdown —
and bins them over the cycle span.  ``render_text`` draws a sparkline
timeline in the terminal; ``render_html`` writes a self-contained HTML
page (inline SVG, no external assets) for sharing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .events import (EV_CACHE_EVICT, EV_CACHE_FILL, EV_CACHE_PROBE,
                     EV_COMMIT, EV_DISPATCH, EV_FETCH, EV_INV,
                     EV_ISSUE, EV_MEM_ACCESS, EV_MISPREDICT,
                     EV_PSEUDO_RETIRE, EV_RA_ENTER, EV_RA_EXIT,
                     EV_SQUASH, Event, LEVEL_NAMES, event_name)

_SPARK = " .:-=+*#%@"
_ROB_DELTA = {EV_DISPATCH: 1, EV_COMMIT: -1, EV_PSEUDO_RETIRE: -1}


def summarize_events(events: Sequence[Event],
                     bins: int = 64) -> Dict:
    """Derive timeline series from a raw event stream.

    Degenerate traces are first-class: a zero-event or single-cycle
    stream yields a well-formed summary (``span`` is clamped to ≥ 1 so
    the bin scaling below never divides by zero) and the renderers show
    a "no events" notice instead of an empty timeline.
    """
    bins = max(1, bins)
    counts: Dict[str, int] = {}
    levels: Dict[str, int] = {}
    episodes: List[Dict] = []
    open_enter: Tuple[int, int] = None
    occupancy = 0
    max_occupancy = 0
    occ_track: List[Tuple[int, int]] = []   # (cycle, occupancy after)
    first_cycle = events[0][0] if events else 0
    last_cycle = first_cycle
    for cycle, kind, a, b in events:
        counts[event_name(kind)] = counts.get(event_name(kind), 0) + 1
        if cycle > last_cycle:
            last_cycle = cycle
        delta = _ROB_DELTA.get(kind)
        if delta is not None:
            occupancy += delta
        elif kind == EV_SQUASH:
            occupancy = max(0, occupancy - a)
        elif kind == EV_RA_ENTER:
            open_enter = (cycle, b)
        elif kind == EV_RA_EXIT:
            start = open_enter[0] if open_enter else cycle - a
            episodes.append({"enter": start, "exit": cycle,
                             "cycles": a, "pc": b})
            open_enter = None
        elif kind in (EV_MEM_ACCESS, EV_CACHE_PROBE):
            level = LEVEL_NAMES.get(b, str(b))
            levels[level] = levels.get(level, 0) + 1
        if delta is not None or kind == EV_SQUASH:
            if occupancy > max_occupancy:
                max_occupancy = occupancy
            occ_track.append((cycle, occupancy))
    if open_enter is not None:              # trace ended mid-episode
        episodes.append({"enter": open_enter[0], "exit": last_cycle,
                         "cycles": last_cycle - open_enter[0],
                         "pc": open_enter[1], "open": True})

    span = max(1, last_cycle - first_cycle)
    occ_bins = [0] * bins
    for cycle, occ in occ_track:
        index = min(bins - 1, (cycle - first_cycle) * bins // span)
        if occ > occ_bins[index]:
            occ_bins[index] = occ
    ra_bins = [0.0] * bins
    for episode in episodes:
        lo = min(bins - 1,
                 max(0, (episode["enter"] - first_cycle) * bins // span))
        hi = min(bins - 1,
                 max(0, (episode["exit"] - first_cycle) * bins // span))
        for index in range(lo, hi + 1):
            ra_bins[index] = 1.0

    return {
        "events": len(events),
        "first_cycle": first_cycle,
        "last_cycle": last_cycle,
        "counts": counts,
        "levels": levels,
        "episodes": episodes,
        "max_occupancy": max_occupancy,
        "occupancy_bins": occ_bins,
        "runahead_bins": ra_bins,
        "bins": bins,
    }


def _sparkline(values: Sequence[float], peak: float) -> str:
    if peak <= 0:
        return " " * len(values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[min(top, int(value * top / peak + 0.5))]
        for value in values)


def render_text(summary: Dict) -> str:
    """Terminal timeline: ROB occupancy sparkline with runahead bands,
    event counts, and the episode table.

    A zero-event trace renders a notice instead of an empty timeline.
    """
    if not summary["events"]:
        return ("trace: 0 events\n\n"
                "  (no events — nothing to draw; record with "
                "`repro obs record <workload>`)")
    lines = [
        f"trace: {summary['events']} events, cycles "
        f"{summary['first_cycle']}..{summary['last_cycle']}",
        "",
        f"ROB occupancy (peak {summary['max_occupancy']}):",
        "  |" + _sparkline(summary["occupancy_bins"],
                           summary["max_occupancy"]) + "|",
        "  |" + "".join("R" if flag else " "
                        for flag in summary["runahead_bins"]) +
        "|  (R = runahead active)",
        "",
        "event counts:",
    ]
    for name in sorted(summary["counts"]):
        lines.append(f"  {name:<16} {summary['counts'][name]}")
    if summary["levels"]:
        lines.append("")
        lines.append("memory accesses by resolved level:")
        for level in sorted(summary["levels"]):
            lines.append(f"  {level:<16} {summary['levels'][level]}")
    episodes = summary["episodes"]
    lines.append("")
    lines.append(f"runahead episodes: {len(episodes)}")
    for episode in episodes[:20]:
        flag = " (unterminated)" if episode.get("open") else ""
        lines.append(
            f"  cycle {episode['enter']:>8} .. {episode['exit']:>8}  "
            f"({episode['cycles']} cycles)  pc=0x{episode['pc']:x}"
            f"{flag}")
    if len(episodes) > 20:
        lines.append(f"  ... {len(episodes) - 20} more")
    return "\n".join(lines)


def render_html(summary: Dict, title: str = "trace") -> str:
    """Self-contained HTML timeline (inline SVG polyline + runahead
    bands); no scripts, no external assets."""
    bins = summary["bins"]
    width, height = 720, 160
    if not summary["events"]:
        return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem;
        color: #1a1a2e; }} .note {{ color: #666; }}</style></head>
<body><h1>{title}</h1>
<p class="note">no events — nothing to draw.</p>
</body></html>
"""
    step = width / max(1, bins)
    peak = max(1, summary["max_occupancy"])
    points = " ".join(
        f"{index * step + step / 2:.1f},"
        f"{height - value * (height - 10) / peak:.1f}"
        for index, value in enumerate(summary["occupancy_bins"]))
    bands = "".join(
        f'<rect x="{index * step:.1f}" y="0" width="{step:.1f}" '
        f'height="{height}" fill="#f4c26b" opacity="0.35"/>'
        for index, flag in enumerate(summary["runahead_bins"]) if flag)
    count_rows = "".join(
        f"<tr><td>{name}</td>"
        f"<td>{summary['counts'][name]}</td></tr>"
        for name in sorted(summary["counts"]))
    episode_rows = "".join(
        f"<tr><td>{episode['enter']}</td><td>{episode['exit']}</td>"
        f"<td>{episode['cycles']}</td>"
        f"<td>0x{episode['pc']:x}</td></tr>"
        for episode in summary["episodes"][:200])
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem;
        color: #1a1a2e; }}
h1 {{ font-size: 1.2rem; }} h2 {{ font-size: 1rem; }}
svg {{ border: 1px solid #ccc; background: #fbfbfd; }}
table {{ border-collapse: collapse; margin: .5rem 0; }}
td, th {{ border: 1px solid #ddd; padding: .15rem .6rem;
          text-align: right; }}
td:first-child {{ text-align: left; }}
.note {{ color: #666; }}
</style></head><body>
<h1>{title}</h1>
<p class="note">{summary['events']} events, cycles
{summary['first_cycle']}&ndash;{summary['last_cycle']},
peak ROB occupancy {summary['max_occupancy']};
shaded bands mark runahead episodes.</p>
<svg viewBox="0 0 {width} {height}" width="{width}"
     height="{height}">{bands}
<polyline fill="none" stroke="#2a6f97" stroke-width="1.5"
          points="{points}"/></svg>
<h2>Event counts</h2><table>{count_rows}</table>
<h2>Runahead episodes ({len(summary['episodes'])})</h2>
<table><tr><th>enter</th><th>exit</th><th>cycles</th><th>pc</th></tr>
{episode_rows}</table>
</body></html>
"""

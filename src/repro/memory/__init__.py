"""Memory subsystem: caches, replacement, main memory, hierarchy."""

from .cache import CacheConfig, CacheStats, SetAssociativeCache
from .hierarchy import (LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_MEM,
                        LEVEL_PENDING, PHYS_WINDOW_STRIDE, AccessResult,
                        CoreView, HierarchyConfig, HierarchyStats,
                        MemoryHierarchy, SharedHierarchy)
from .main_memory import ChannelStats, MainMemory, MemoryChannel
from .replacement import (FifoPolicy, LruPolicy, RandomPolicy,
                          ReplacementPolicy, make_policy)

__all__ = [
    "CacheConfig", "CacheStats", "SetAssociativeCache", "LEVEL_L1",
    "LEVEL_L2", "LEVEL_L3", "LEVEL_MEM", "LEVEL_PENDING", "AccessResult",
    "HierarchyConfig", "HierarchyStats", "MemoryHierarchy", "SharedHierarchy",
    "CoreView", "PHYS_WINDOW_STRIDE", "ChannelStats",
    "MainMemory", "MemoryChannel", "FifoPolicy", "LruPolicy", "RandomPolicy",
    "ReplacementPolicy", "make_policy",
]

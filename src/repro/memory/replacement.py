"""Cache replacement policies.

Each policy operates on a per-set "way list": an :class:`OrderedDict`
mapping tag to None, ordered from eviction candidate (front) to most
protected (back).  Policies are stateless across sets except for the
deterministic PRNG used by :class:`RandomPolicy` (the simulator must be
reproducible, so no global randomness).
"""

from __future__ import annotations

from collections import OrderedDict


class ReplacementPolicy:
    """Interface: decides ordering within one cache set."""

    name = "base"

    def on_hit(self, ways: OrderedDict, tag) -> None:
        """Called when ``tag`` is re-referenced."""
        raise NotImplementedError

    def victim(self, ways: OrderedDict):
        """Return the tag to evict from a full set."""
        raise NotImplementedError

    def on_fill(self, ways: OrderedDict, tag) -> None:
        """Called after ``tag`` is inserted."""
        ways[tag] = None


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: hits refresh recency; evict the oldest."""

    name = "lru"

    def on_hit(self, ways, tag):
        ways.move_to_end(tag)

    def victim(self, ways):
        return next(iter(ways))


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not refresh; evict the oldest fill."""

    name = "fifo"

    def on_hit(self, ways, tag):
        pass

    def victim(self, ways):
        return next(iter(ways))


class RandomPolicy(ReplacementPolicy):
    """Pseudo-random eviction from a deterministic 64-bit LCG."""

    name = "random"

    _MULT = 6364136223846793005
    _INC = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed=1):
        self._state = (seed or 1) & self._MASK

    def _next(self, bound):
        self._state = (self._state * self._MULT + self._INC) & self._MASK
        return (self._state >> 33) % bound

    def on_hit(self, ways, tag):
        pass

    def victim(self, ways):
        index = self._next(len(ways))
        for i, tag in enumerate(ways):
            if i == index:
                return tag
        raise AssertionError("unreachable")


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name, seed=1):
    """Instantiate a replacement policy by name ("lru", "fifo", "random")."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy: {name!r}") from None
    if cls is RandomPolicy:
        return cls(seed=seed)
    return cls()

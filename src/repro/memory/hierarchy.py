"""Cache hierarchy: per-core private slices over a shared last-level cache.

The hierarchy is split along the boundary real multi-core parts share:

* :class:`SharedHierarchy` owns the **L3 and the memory channel** — the
  resources every core (and SMT thread) on the socket contends for.
* :class:`MemoryHierarchy` (alias :data:`CoreView`) is one core's
  **private slice** — L1I/L1D/L2, its MSHRs (pending fills) and its
  statistics — plus references to the shared level.  It preserves the
  exact single-core API the pipeline, the runahead controllers and the
  covert-channel receivers bind to; a standalone ``MemoryHierarchy()``
  transparently builds its own single-view shared level, so single-core
  callers never see the split.

The design decisions that the SPECRUN experiments depend on:

* **Lazy fills.**  A miss to main memory registers a *pending fill*; the
  line becomes probe-visible only at its completion cycle.  A runahead
  prefetch issued at cycle T is therefore invisible to the attacker's
  probe until T + memory latency — and `clflush` on an in-flight line
  (Fig. 10 case ③) drops the fill while the stalling load still receives
  its data, so runahead can re-enter.
* **MSHR merging.**  A second access to an in-flight line does not issue a
  new memory request; it simply waits for the existing completion.
  MSHRs are per core view, as in real private-cache miss handling: two
  *different* cores missing the same line each issue a request (they
  still contend on the shared channel).
* **Hit-path fills are immediate.**  L2/L3 hits install the line into the
  levels above right away; the tens-of-cycles visibility error this
  introduces is irrelevant to every experiment, while the memory-path
  laziness above is load-bearing.
* **Inclusive, back-invalidating L3 — multi-core only.**  With two or
  more views attached, evicting a line from the shared L3 invalidates
  every private copy on every core (the property cross-core
  prime+probe and evict+reload rely on: priming an L3 set pushes the
  victim's line out of the victim's own L1/L2).  A single-view
  hierarchy keeps the historical non-inclusive behaviour so the
  single-core golden-stats fixtures stay byte-identical.
* **Per-core physical windows.**  Each view can carry a ``phys_base``
  offset applied to every address it is handed, so co-runner streams
  assembled at the same low virtual addresses as the victim occupy
  disjoint lines in the shared L3.  The victim and the attacker's
  measurement view use base 0 (flush+reload's shared-memory
  assumption); co-runners get 1 GiB-aligned windows, preserving set
  indices at every level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.events import (EV_CACHE_EVICT as _EV_EVICT,
                          EV_CACHE_FILL as _EV_FILL,
                          EV_CACHE_PROBE as _EV_PROBE,
                          EV_FLUSH as _EV_FLUSH,
                          EV_MEM_ACCESS as _EV_ACCESS, LEVEL_IDS)
from .cache import CacheConfig, SetAssociativeCache
from .main_memory import MemoryChannel

LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_L3 = "l3"
LEVEL_MEM = "mem"
LEVEL_PENDING = "pending"

#: "No pending fill" sentinel for the next-fill fast path (any real
#: completion cycle compares smaller).
_NO_FILL = float("inf")

#: Stride between per-core physical windows (1 GiB: a multiple of every
#: cache's set span, so offsetting preserves set indices).
PHYS_WINDOW_STRIDE = 1 << 30

#: LEVEL_* string -> small int for trace-event payload slots.
_LID_L1 = LEVEL_IDS[LEVEL_L1]
_LID_L2 = LEVEL_IDS[LEVEL_L2]
_LID_L3 = LEVEL_IDS[LEVEL_L3]
_LID_MEM = LEVEL_IDS[LEVEL_MEM]
_LID_PENDING = LEVEL_IDS[LEVEL_PENDING]


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry per Table 1 of the paper (see ``paper()``)."""

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l3: CacheConfig
    mem_latency: int = 200
    mem_occupancy: int = 8

    @classmethod
    def paper(cls):
        """The exact Table-1 configuration."""
        return cls(
            l1i=CacheConfig("l1i", 16 * 1024, 4, latency=2),
            l1d=CacheConfig("l1d", 16 * 1024, 4, latency=2),
            l2=CacheConfig("l2", 128 * 1024, 8, latency=8),
            l3=CacheConfig("l3", 4 * 1024 * 1024, 8, latency=32),
            mem_latency=200,
            mem_occupancy=8,
        )

    @classmethod
    def small(cls, mem_latency=200, mem_occupancy=8):
        """A scaled-down hierarchy for fast unit tests."""
        return cls(
            l1i=CacheConfig("l1i", 1024, 2, latency=2),
            l1d=CacheConfig("l1d", 1024, 2, latency=2),
            l2=CacheConfig("l2", 4 * 1024, 4, latency=8),
            l3=CacheConfig("l3", 16 * 1024, 4, latency=32),
            mem_latency=mem_latency,
            mem_occupancy=mem_occupancy,
        )

    @property
    def line_bytes(self):
        return self.l1d.line_bytes

    @property
    def data_hit_latency(self):
        """Latency of an L1D hit (the fastest possible data access)."""
        return self.l1d.latency

    @property
    def llc_hit_latency(self):
        """Latency of an access served by the shared L3 (the fastest a
        *cross-core* observation of another core's fill can be)."""
        return self.l1d.latency + self.l2.latency + self.l3.latency

    @property
    def data_miss_latency(self):
        """Nominal latency of a full walk to main memory (no contention)."""
        return (self.l1d.latency + self.l2.latency + self.l3.latency +
                self.mem_latency)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int          # cycles from the access until data is available
    level: str            # which level served it (LEVEL_* constant)
    completion: int       # absolute cycle at which data is available
    line: int             # block-aligned (physical) address
    merged: bool = False  # True if this access merged into an in-flight fill

    @property
    def is_memory_level(self):
        """True if the data had to come from main memory (runahead trigger)."""
        return self.level in (LEVEL_MEM, LEVEL_PENDING)


@dataclass(slots=True)
class _PendingFill:
    completion: int
    fill_data: bool       # install into the data-side caches on completion
    fill_inst: bool       # install into L1I on completion
    dropped: bool = False # clflush arrived while in flight


@dataclass
class HierarchyStats:
    data_accesses: int = 0
    inst_accesses: int = 0
    mem_requests: int = 0
    merged_requests: int = 0
    flushes: int = 0
    dropped_fills: int = 0
    prefetch_requests: int = 0


class _SharedL3(SetAssociativeCache):
    """The shared last-level cache.

    Identical to :class:`SetAssociativeCache` except that, when the
    owning :class:`SharedHierarchy` is inclusive (two or more views),
    every eviction **back-invalidates** the victim line from every
    core's private caches.  Routing this through the cache object itself
    (rather than the hierarchy walk) means direct fills — notably the
    receivers' priming/eviction-set construction — uphold inclusion
    too.
    """

    def __init__(self, config: CacheConfig, shared: "SharedHierarchy"):
        super().__init__(config)
        self._shared = shared

    def fill(self, addr):
        evicted = super().fill(addr)
        if evicted is not None and self._shared.inclusive:
            self._shared._back_invalidate(evicted)
        return evicted


class SharedHierarchy:
    """The socket-level shared slice: L3, memory channel, core views.

    Build one and attach views::

        shared = SharedHierarchy(config, cores=0)
        victim = shared.add_core()                  # phys window 0
        noisy  = shared.add_core(phys_base=PHYS_WINDOW_STRIDE)
        smt    = shared.add_smt_thread(victim,
                                       phys_base=2 * PHYS_WINDOW_STRIDE)

    or ask for ``cores=N`` uniform views up front.  ``inclusive``
    defaults to "two or more views attached" — a single-view hierarchy
    behaves exactly like the historical monolithic ``MemoryHierarchy``
    (no back-invalidation), which the golden-stats fixtures pin down.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 cores: int = 1, inclusive: Optional[bool] = None):
        self.config = config or HierarchyConfig.paper()
        self._inclusive = inclusive
        self.l3 = _SharedL3(self.config.l3, self)
        self.channel = MemoryChannel(self.config.mem_latency,
                                     self.config.mem_occupancy)
        self.views: List["MemoryHierarchy"] = []
        for _ in range(cores):
            MemoryHierarchy(shared=self)   # registers itself

    @property
    def inclusive(self) -> bool:
        """Whether L3 evictions back-invalidate private copies."""
        if self._inclusive is not None:
            return self._inclusive
        return len(self.views) > 1

    def core(self, index: int) -> "MemoryHierarchy":
        return self.views[index]

    def add_core(self, phys_base: int = 0) -> "MemoryHierarchy":
        """Attach a new core view with its own private L1I/L1D/L2."""
        return MemoryHierarchy(shared=self, phys_base=phys_base)

    def add_smt_thread(self, sibling: "MemoryHierarchy",
                       phys_base: int = 0) -> "MemoryHierarchy":
        """Attach an SMT thread: shares ``sibling``'s private caches.

        The thread gets its own pending-fill map and statistics (its
        misses are its own) but fills and evicts the sibling's L1I/L1D/
        L2 — the co-runner interference an SMT pair actually has.
        """
        return MemoryHierarchy(shared=self, phys_base=phys_base,
                               smt_with=sibling)

    # -- shared-level operations ------------------------------------------------

    def _back_invalidate(self, line):
        """Inclusive L3 evicted ``line``: clear every private copy."""
        for view in self.views:
            view.l1d.invalidate(line)
            view.l1i.invalidate(line)
            view.l2.invalidate(line)

    def flush_phys_line(self, line):
        """``clflush`` a physical line everywhere: every view's private
        caches, the shared L3, and any in-flight fill on any view (the
        waiting loads still complete — only the install is dropped)."""
        self._back_invalidate(line)
        self.l3.invalidate(line)
        for view in self.views:
            pending = view._pending.get(line)
            if pending is not None and not pending.dropped:
                pending.dropped = True
                view.stats.dropped_fills += 1

    def apply_completed(self, now):
        """Install every view's pending fills whose completion passed."""
        for view in self.views:
            if now >= view.next_fill:
                view.apply_completed(now)

    def next_event(self):
        """Earliest pending-fill completion across all views, or None."""
        best = None
        for view in self.views:
            if view._pending and (best is None or view.next_fill < best):
                best = view.next_fill
        return best

    def reset(self):
        """Reset the shared level and every attached view."""
        self.l3.reset()
        self.channel.reset()
        for view in self.views:
            view.l1i.reset()
            view.l1d.reset()
            view.l2.reset()
            view._pending.clear()
            view.next_fill = _NO_FILL
            view.stats = HierarchyStats()


class MemoryHierarchy:
    """One core's view: private L1I/L1D + L2 over the shared L3.

    Standalone construction (``MemoryHierarchy(config)``) builds a
    private single-view :class:`SharedHierarchy` underneath, preserving
    the historical single-core API and behaviour exactly.  Views of an
    explicit shared hierarchy are created through
    :meth:`SharedHierarchy.add_core` / :meth:`~SharedHierarchy.
    add_smt_thread`.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None, *,
                 shared: Optional[SharedHierarchy] = None,
                 phys_base: int = 0,
                 smt_with: Optional["MemoryHierarchy"] = None):
        if shared is None:
            shared = SharedHierarchy(config, cores=0)
        elif config is not None and config != shared.config:
            raise ValueError(
                "config disagrees with the shared hierarchy's config")
        self.shared = shared
        self.config = shared.config
        self.phys_base = phys_base
        self.view_id = len(shared.views)
        if smt_with is not None:
            if smt_with.shared is not shared:
                raise ValueError("SMT sibling belongs to another hierarchy")
            self.l1i = smt_with.l1i
            self.l1d = smt_with.l1d
            self.l2 = smt_with.l2
        else:
            self.l1i = SetAssociativeCache(self.config.l1i)
            self.l1d = SetAssociativeCache(self.config.l1d)
            self.l2 = SetAssociativeCache(self.config.l2)
        self.l3 = shared.l3
        self.channel = shared.channel
        self._pending: Dict[int, _PendingFill] = {}
        #: Earliest completion among this view's pending fills (kept
        #: exact; public so the core can gate its per-cycle
        #: ``apply_completed`` call on one integer compare).
        self.next_fill = _NO_FILL
        self.stats = HierarchyStats()
        #: Observability sink (repro.obs.sink) — ``None`` means tracing
        #: is off; sinks never influence timing, fills, or stats.
        self.trace = None
        shared.views.append(self)

    # -- helpers -----------------------------------------------------------------

    def line_of(self, addr):
        """Physical line address of ``addr`` in this view's window."""
        return (addr + self.phys_base) & ~(self.config.line_bytes - 1)

    def apply_completed(self, now):
        """Install every pending fill whose completion has passed."""
        if now < self.next_fill:
            return
        pending_map = self._pending
        done = [line for line, p in pending_map.items()
                if p.completion <= now]
        trace = self.trace
        for line in done:
            pending = pending_map.pop(line)
            if pending.dropped:
                continue
            if trace is None:
                if pending.fill_data:
                    self.l3.fill(line)
                    self.l2.fill(line)
                    self.l1d.fill(line)
                if pending.fill_inst:
                    self.l3.fill(line)
                    self.l2.fill(line)
                    self.l1i.fill(line)
                continue
            # Traced path: same fills, but capture each level's victim
            # so evictions become events.  fill() return values were
            # always produced — the untraced path merely ignores them.
            if pending.fill_data:
                levels = ((self.l3, _LID_L3), (self.l2, _LID_L2),
                          (self.l1d, _LID_L1))
            else:
                levels = ()
            if pending.fill_inst:
                levels += ((self.l3, _LID_L3), (self.l2, _LID_L2),
                           (self.l1i, _LID_L1))
            for cache, level_id in levels:
                evicted = cache.fill(line)
                trace.emit(now, _EV_FILL, line, level_id)
                if evicted is not None:
                    trace.emit(now, _EV_EVICT, evicted, level_id)
        self.next_fill = min(
            (p.completion for p in pending_map.values()),
            default=_NO_FILL)

    def next_event(self):
        """Earliest pending-fill completion, or None (for cycle skipping)."""
        if not self._pending:
            return None
        return self.next_fill

    # -- data path ----------------------------------------------------------------

    def access_data(self, addr, now, *, fill=True, lru_update=True,
                    prefetch=False):
        """Access the data side; returns an :class:`AccessResult`.

        ``fill=False`` lets the caller (the secure-runahead defense)
        receive the data without installing the line into any cache level.
        ``prefetch=True`` only affects statistics.
        """
        self.apply_completed(now)
        line = self.line_of(addr)
        self.stats.data_accesses += 1
        if prefetch:
            self.stats.prefetch_requests += 1

        trace = self.trace
        pending = self._pending.get(line)
        if pending is not None and not pending.dropped:
            # MSHR merge: wait on the in-flight fill.
            self.stats.merged_requests += 1
            if fill:
                pending.fill_data = True
            latency = max(1, pending.completion - now)
            if trace is not None:
                trace.emit(now, _EV_ACCESS, line, _LID_PENDING)
            return AccessResult(latency, LEVEL_PENDING, now + latency, line,
                                merged=True)

        l1_latency = self.config.l1d.latency
        if self.l1d.lookup(line, update=lru_update):
            if trace is not None:
                trace.emit(now, _EV_ACCESS, line, _LID_L1)
            return AccessResult(l1_latency, LEVEL_L1, now + l1_latency, line)

        l2_latency = l1_latency + self.config.l2.latency
        if self.l2.lookup(line, update=lru_update):
            if fill:
                self.l1d.fill(line)
                if trace is not None:
                    trace.emit(now, _EV_FILL, line, _LID_L1)
            if trace is not None:
                trace.emit(now, _EV_ACCESS, line, _LID_L2)
            return AccessResult(l2_latency, LEVEL_L2, now + l2_latency, line)

        l3_latency = l2_latency + self.config.l3.latency
        if self.l3.lookup(line, update=lru_update):
            if fill:
                self.l2.fill(line)
                self.l1d.fill(line)
                if trace is not None:
                    trace.emit(now, _EV_FILL, line, _LID_L2)
                    trace.emit(now, _EV_FILL, line, _LID_L1)
            if trace is not None:
                trace.emit(now, _EV_ACCESS, line, _LID_L3)
            return AccessResult(l3_latency, LEVEL_L3, now + l3_latency, line)

        completion = self.channel.request(now) + l3_latency
        self.stats.mem_requests += 1
        self._pending[line] = _PendingFill(completion, fill_data=fill,
                                           fill_inst=False)
        if completion < self.next_fill:
            self.next_fill = completion
        if trace is not None:
            trace.emit(now, _EV_ACCESS, line, _LID_MEM)
        return AccessResult(completion - now, LEVEL_MEM, completion, line)

    # -- instruction path -----------------------------------------------------------

    def access_inst(self, addr, now):
        """Access the instruction side (L1I → L2 → L3 → memory)."""
        self.apply_completed(now)
        line = self.line_of(addr)
        self.stats.inst_accesses += 1

        pending = self._pending.get(line)
        if pending is not None and not pending.dropped:
            self.stats.merged_requests += 1
            pending.fill_inst = True
            latency = max(1, pending.completion - now)
            return AccessResult(latency, LEVEL_PENDING, now + latency, line,
                                merged=True)

        l1_latency = self.config.l1i.latency
        if self.l1i.lookup(line):
            return AccessResult(l1_latency, LEVEL_L1, now + l1_latency, line)

        l2_latency = l1_latency + self.config.l2.latency
        if self.l2.lookup(line):
            self.l1i.fill(line)
            return AccessResult(l2_latency, LEVEL_L2, now + l2_latency, line)

        l3_latency = l2_latency + self.config.l3.latency
        if self.l3.lookup(line):
            self.l2.fill(line)
            self.l1i.fill(line)
            return AccessResult(l3_latency, LEVEL_L3, now + l3_latency, line)

        completion = self.channel.request(now) + l3_latency
        self.stats.mem_requests += 1
        self._pending[line] = _PendingFill(completion, fill_data=False,
                                           fill_inst=True)
        if completion < self.next_fill:
            self.next_fill = completion
        return AccessResult(completion - now, LEVEL_MEM, completion, line)

    # -- maintenance -----------------------------------------------------------------

    def flush_line(self, addr):
        """``clflush``: evict from every level **on every core** and drop
        any in-flight fill anywhere (the flush is to the coherence
        domain, not to this view)."""
        self.stats.flushes += 1
        line = self.line_of(addr)
        if self.trace is not None:
            # The maintenance path is untimed; flush events carry
            # cycle 0 and order by stream position only.
            self.trace.emit(0, _EV_FLUSH, line)
        self.shared.flush_phys_line(line)

    def warm(self, addr, level=LEVEL_L1, inst=False):
        """Install a line directly (experiment setup, no timing charged)."""
        line = self.line_of(addr)
        self.l3.fill(line)
        if level == LEVEL_L3:
            return
        self.l2.fill(line)
        if level == LEVEL_L2:
            return
        (self.l1i if inst else self.l1d).fill(line)

    def warm_range(self, start, size_bytes, level=LEVEL_L1):
        """Warm every line in ``[start, start + size_bytes)``."""
        line_bytes = self.config.line_bytes
        line = start & ~(line_bytes - 1)
        while line < start + size_bytes:
            self.warm(line, level=level)
            line += line_bytes

    def warm_code_range(self, start, size_bytes):
        """Warm a code region into *both* L1 caches (plus L2/L3).

        Instruction fetch hits L1I while flush+reload probes read the
        same addresses through the data side, so a hot code region must
        be resident on both paths.  One pass per line replaces the old
        warm-data-range-then-refill-L1I double walk in ``Core.__init__``.
        """
        line_bytes = self.config.line_bytes
        base = self.phys_base
        virt = start & ~(line_bytes - 1)
        end = start + size_bytes
        while virt < end:
            line = virt + base
            self.l3.fill(line)
            self.l2.fill(line)
            self.l1d.fill(line)
            self.l1i.fill(line)
            virt += line_bytes

    def probe_latency(self, addr, now):
        """Latency a data access at ``now`` *would* see — read-only.

        The covert-channel receivers (:mod:`repro.channel.receiver`) time
        their probes with this instead of :meth:`access_data`: it walks
        the same levels and charges the same cumulative latencies, but
        performs no fills, no LRU updates and no statistics, so a
        multi-trial receiver can re-measure the post-run hierarchy
        without the measurement perturbing what it measures.  (Pending
        fills that have completed by ``now`` are installed first —
        across *every* view of the shared hierarchy, exactly as any
        access at ``now`` would observe them; a cross-core receiver must
        see the victim's completed fills in the shared L3.)

        Returns ``(latency, level)`` with ``level`` a ``LEVEL_*``
        constant.  A still-in-flight line costs the remaining wait, as in
        the MSHR-merge path of :meth:`access_data`; a full miss costs the
        nominal (contention-free) memory walk.
        """
        self.shared.apply_completed(now)
        line = self.line_of(addr)
        trace = self.trace
        pending = self._pending.get(line)
        if pending is not None and not pending.dropped:
            if trace is not None:
                trace.emit(now, _EV_PROBE, line, _LID_PENDING)
            return max(1, pending.completion - now), LEVEL_PENDING
        latency = self.config.l1d.latency
        if self.l1d.probe(line):
            if trace is not None:
                trace.emit(now, _EV_PROBE, line, _LID_L1)
            return latency, LEVEL_L1
        latency += self.config.l2.latency
        if self.l2.probe(line):
            if trace is not None:
                trace.emit(now, _EV_PROBE, line, _LID_L2)
            return latency, LEVEL_L2
        latency += self.config.l3.latency
        if self.l3.probe(line):
            if trace is not None:
                trace.emit(now, _EV_PROBE, line, _LID_L3)
            return latency, LEVEL_L3
        if trace is not None:
            trace.emit(now, _EV_PROBE, line, _LID_MEM)
        return latency + self.config.mem_latency, LEVEL_MEM

    def present_in(self, addr, level):
        """Presence probe for tests/analysis (no side effects)."""
        line = self.line_of(addr)
        cache = {LEVEL_L1: self.l1d, LEVEL_L2: self.l2, LEVEL_L3: self.l3}[level]
        return cache.probe(line)

    def reset(self):
        """Reset this view *and* the shared level it references.

        (Historical single-core semantics; with multiple views attached
        prefer :meth:`SharedHierarchy.reset`, which resets every view.)
        """
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            cache.reset()
        self.channel.reset()
        self._pending.clear()
        self.next_fill = _NO_FILL
        self.stats = HierarchyStats()


#: The per-core facade name used by the multi-core subsystem; a
#: standalone :class:`MemoryHierarchy` *is* a single-core view.
CoreView = MemoryHierarchy

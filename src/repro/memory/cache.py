"""Set-associative cache (tags and recency only).

The simulator keeps a single coherent value store (main memory, updated at
commit); caches track *presence* and *recency*, which is what all the
timing — and the entire covert channel — depends on.  A line is either
present in a cache level or not; ``clflush`` removes it from every level.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .replacement import make_policy


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    ``latency`` is the lookup latency charged when this level is reached;
    total access latency is the sum of latencies along the walk, as in
    Table 1 of the paper (L1 2, L2 8, L3 32, memory 200).
    """

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 2
    replacement: str = "lru"

    def __post_init__(self):
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                f"{self.name}: size must be a multiple of assoc * line size")

    @property
    def n_sets(self):
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def n_lines(self):
        return self.size_bytes // self.line_bytes


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        total = self.accesses
        return self.misses / total if total else 0.0


class SetAssociativeCache:
    """One level of set-associative cache with pluggable replacement."""

    def __init__(self, config: CacheConfig, rng_seed=1):
        self.config = config
        self._policy = make_policy(config.replacement, seed=rng_seed)
        self._sets = [OrderedDict() for _ in range(config.n_sets)]
        self._set_shift = (config.line_bytes - 1).bit_length()
        self._set_mask = config.n_sets - 1
        if config.n_sets & self._set_mask:
            raise ValueError(f"{config.name}: set count must be a power of 2")
        self.stats = CacheStats()

    # -- address mapping -------------------------------------------------------

    def line_of(self, addr):
        """Return the line (block-aligned) address containing ``addr``."""
        return addr & ~(self.config.line_bytes - 1)

    def _set_and_tag(self, addr):
        line = addr >> self._set_shift
        return self._sets[line & self._set_mask], line

    # -- operations --------------------------------------------------------------

    def probe(self, addr):
        """Presence check with no side effects (no recency update, no stats)."""
        ways, tag = self._set_and_tag(addr)
        return tag in ways

    def lookup(self, addr, update=True):
        """Return True on hit.  Updates recency and hit/miss statistics.

        ``update=False`` suppresses the recency update (used to keep
        runahead-mode hits from perturbing replacement state when modeling
        stealth variants) but still counts statistics.
        """
        ways, tag = self._set_and_tag(addr)
        if tag in ways:
            if update:
                self._policy.on_hit(ways, tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, addr):
        """Insert the line holding ``addr``; returns the evicted line or None."""
        ways, tag = self._set_and_tag(addr)
        if tag in ways:
            self._policy.on_hit(ways, tag)
            return None
        evicted = None
        if len(ways) >= self.config.assoc:
            victim = self._policy.victim(ways)
            del ways[victim]
            evicted = victim << self._set_shift
            self.stats.evictions += 1
        self._policy.on_fill(ways, tag)
        self.stats.fills += 1
        return evicted

    def invalidate(self, addr):
        """Remove the line holding ``addr``; returns True if it was present."""
        ways, tag = self._set_and_tag(addr)
        if tag in ways:
            del ways[tag]
            self.stats.invalidations += 1
            return True
        return False

    def occupancy(self):
        """Total number of resident lines."""
        return sum(len(ways) for ways in self._sets)

    def resident_lines(self):
        """Return all resident line addresses (for tests and analysis)."""
        lines = []
        for ways in self._sets:
            lines.extend(tag << self._set_shift for tag in ways)
        return lines

    def reset(self):
        """Drop all contents and statistics."""
        for ways in self._sets:
            ways.clear()
        self.stats = CacheStats()
